"""CLI resilience flags: --fault-plan, --quarantine-out, --checkpoint-dir,
--resume — the acceptance surface for the chaos CI job."""

from __future__ import annotations

import json

import pytest

from repro.campus.dataset import cached_campus_dataset
from repro.experiments.cli import main
from repro.faults import NO_FAULTS, active_plan

#: The acceptance scenario: 5% row corruption, 10% scan timeouts.
CHAOS_PLAN = "zeek_corrupt_rate=0.05,scan_timeout_rate=0.10"


@pytest.fixture(scope="module")
def logs_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("zeek-logs")
    dataset = cached_campus_dataset(seed="cli-resil", scale="small")
    ssl_path, x509_path = dataset.write_zeek_logs(str(directory))
    return ssl_path, x509_path


class TestFaultPlanFlag:
    def test_chaos_run_exits_zero_with_degradation_summary(
            self, logs_dir, tmp_path, capsys):
        ssl_path, x509_path = logs_dir
        quarantine_path = tmp_path / "quarantine.jsonl"
        report_path = tmp_path / "report.json"
        status = main(["--ssl-log", ssl_path, "--x509-log", x509_path,
                       "--fault-plan", CHAOS_PLAN,
                       "--quarantine-out", str(quarantine_path),
                       "--run-report", str(report_path)])
        out = capsys.readouterr().out
        assert status == 0
        assert "Chain categories" in out
        assert "degraded:" in out
        assert "quarantined" in out

        # Every dropped row is on disk with its reason and raw bytes.
        records = [json.loads(line) for line in
                   quarantine_path.read_text().splitlines()]
        assert records
        assert all(r["reason"] and r["raw"] and r["line"] > 0
                   for r in records)
        assert {r["source"] for r in records} <= {ssl_path, x509_path}

        # The RunReport carries the resilience counters.
        resilience = json.loads(report_path.read_text())["resilience"]
        assert resilience["faults_injected"] > 0
        assert resilience["quarantined_records"] == len(records)

    def test_plan_cleared_after_run(self, logs_dir, capsys):
        ssl_path, x509_path = logs_dir
        main(["--ssl-log", ssl_path, "--x509-log", x509_path,
              "--fault-plan", "zeek_corrupt_rate=0.01"])
        capsys.readouterr()
        assert active_plan() is NO_FAULTS

    def test_bad_fault_plan_exits_2(self, capsys):
        status = main(["--fault-plan", "zeek_corrupt_rate=lots"])
        captured = capsys.readouterr()
        assert status == 2
        assert "bad fault plan" in captured.err
        assert "Traceback" not in captured.err

    def test_unknown_fault_plan_key_exits_2(self, capsys):
        status = main(["--fault-plan", "bogus_rate=0.1"])
        captured = capsys.readouterr()
        assert status == 2
        assert "bogus_rate" in captured.err

    def test_quarantine_out_alone_enables_tolerant_reads(
            self, logs_dir, tmp_path, capsys):
        # No fault plan — a genuinely damaged file: one truncated row
        # appended to an otherwise valid ssl.log.
        ssl_path, x509_path = logs_dir
        damaged = tmp_path / "damaged-ssl.log"
        damaged.write_text(open(ssl_path).read() + "truncated-row\n")
        quarantine_path = tmp_path / "q.jsonl"
        status = main(["--ssl-log", str(damaged), "--x509-log", x509_path,
                       "--quarantine-out", str(quarantine_path)])
        out = capsys.readouterr().out
        assert status == 0
        assert "degraded: 1 record quarantined" in out
        record = json.loads(quarantine_path.read_text())
        assert record["reason"] == "column-count"
        assert record["raw"] == "truncated-row"


class TestStrictModeLocation:
    def test_malformed_log_error_names_file_and_line(self, tmp_path,
                                                     capsys):
        bad = tmp_path / "bad.log"
        bad.write_text("#fields\ta\tb\n#types\tstring\tstring\nonly-one\n")
        status = main(["--ssl-log", str(bad), "--x509-log", str(bad)])
        captured = capsys.readouterr()
        assert status == 2
        assert "malformed Zeek log" in captured.err
        assert f"{bad}:3:" in captured.err


class TestCheckpointResume:
    def test_resume_requires_checkpoint_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--resume"])
        assert excinfo.value.code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_resumed_run_output_is_identical(self, logs_dir, tmp_path,
                                             capsys):
        ssl_path, x509_path = logs_dir
        ckpt = tmp_path / "ckpt"
        base_args = ["--ssl-log", ssl_path, "--x509-log", x509_path,
                     "--checkpoint-dir", str(ckpt)]
        assert main(base_args) == 0
        cold_out = capsys.readouterr().out
        assert sorted(p.name for p in ckpt.iterdir()) == [
            "stage-categorize.ckpt", "stage-dga.ckpt",
            "stage-hybrid.ckpt", "stage-interception.ckpt"]

        assert main(base_args + ["--resume"]) == 0
        resumed_out = capsys.readouterr().out
        assert resumed_out == cold_out

    def test_chaos_run_resumes_identically(self, logs_dir, tmp_path,
                                           capsys):
        # Same logs + same fault plan on both runs: corruption draws are
        # line-number-keyed, so the resumed run sees identical input and
        # serves every stage from the checkpoint.
        ssl_path, x509_path = logs_dir
        ckpt = tmp_path / "chaos-ckpt"
        args = ["--ssl-log", ssl_path, "--x509-log", x509_path,
                "--fault-plan", CHAOS_PLAN, "--checkpoint-dir", str(ckpt)]
        assert main(args) == 0
        first_out = capsys.readouterr().out
        assert main(args + ["--resume"]) == 0
        second_out = capsys.readouterr().out
        assert second_out == first_out
        assert "recomputing" not in second_out

"""The ``generate`` subcommand: flags, output layout, and the closed loop."""

from __future__ import annotations

import json
import os

import pytest

from repro.campus.workload import GENERATION_SHARDS
from repro.experiments.cli import main


class TestGenerateCommand:
    def test_generates_discoverable_shard_layout(self, tmp_path, capsys):
        out = str(tmp_path / "gen")
        assert main(["generate", "--out", out, "--seed", "11",
                     "--scale", "small"]) == 0
        message = capsys.readouterr().out
        assert "broadcast x509.log" in message
        assert f"--shard-dir {out}" in message
        names = sorted(os.listdir(out))
        assert names == [f"ssl-{s:02d}.log"
                         for s in range(GENERATION_SHARDS)] + ["x509.log"]
        # No hidden merge intermediates left behind.
        assert not [n for n in os.listdir(out) if n.endswith(".part")]

    def test_generated_dir_feeds_shard_dir_analysis(self, tmp_path, capsys):
        out = str(tmp_path / "loop")
        assert main(["generate", "--out", out, "--seed", "11",
                     "--scale", "small"]) == 0
        capsys.readouterr()
        assert main(["--shard-dir", out, "--jobs", "2"]) == 0
        analysis = capsys.readouterr().out
        assert "Chain categories" in analysis
        assert "distinct certificates:" in analysis

    def test_legacy_writer_flag_identical_output(self, tmp_path, capsys):
        compiled_dir = str(tmp_path / "compiled")
        legacy_dir = str(tmp_path / "legacy")
        assert main(["generate", "--out", compiled_dir, "--seed", "7"]) == 0
        assert main(["generate", "--out", legacy_dir, "--seed", "7",
                     "--legacy-writer"]) == 0
        capsys.readouterr()
        for name in sorted(os.listdir(compiled_dir)):
            with open(os.path.join(compiled_dir, name)) as a, \
                    open(os.path.join(legacy_dir, name)) as b:
                assert a.read() == b.read(), name

    def test_rejects_nonpositive_jobs(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["generate", "--out", str(tmp_path / "x"), "--jobs", "0"])
        assert "--jobs must be at least 1" in capsys.readouterr().err

    def test_unwritable_out_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory\n")
        status = main(["generate", "--out", str(blocker / "sub")])
        captured = capsys.readouterr()
        assert status == 2
        assert "Traceback" not in captured.err

    def test_metrics_export_covers_generation(self, tmp_path, capsys):
        out = str(tmp_path / "gen")
        metrics = tmp_path / "metrics.prom"
        assert main(["generate", "--out", out, "--seed", "11",
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        text = metrics.read_text()
        assert "repro_generate_shards_total" in text
        assert 'repro_zeek_rows_total{direction="written"' in text

    def test_run_report_records_generate_argv(self, tmp_path, capsys):
        out = str(tmp_path / "gen")
        report = tmp_path / "run.json"
        assert main(["generate", "--out", out, "--seed", "11",
                     "--run-report", str(report)]) == 0
        capsys.readouterr()
        recorded = json.loads(report.read_text())
        assert recorded["argv"][0] == "generate"

"""EXPERIMENTS.md generation."""

from __future__ import annotations

import os

import pytest

from repro.campus import cached_campus_dataset
from repro.experiments import registry
from repro.experiments.reportgen import EXPERIMENT_ORDER, write_experiments_md


@pytest.fixture(scope="module")
def dataset():
    return cached_campus_dataset(seed=5, scale="small")


class TestReportGen:
    def test_order_covers_registry(self):
        assert set(EXPERIMENT_ORDER) == set(registry()), (
            "every registered experiment must appear in EXPERIMENTS.md "
            "(and vice versa)")

    def test_write_selected(self, dataset, tmp_path):
        path = str(tmp_path / "EXPERIMENTS.md")
        text = write_experiments_md(path, dataset,
                                    experiments=["table6", "figure6"])
        assert os.path.exists(path)
        assert "## table6" in text
        assert "## figure6" in text
        assert "Government" in text
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == text

    def test_header_mentions_scale_and_seed(self, dataset, tmp_path):
        path = str(tmp_path / "E.md")
        text = write_experiments_md(path, dataset, experiments=["table6"])
        assert "seed=5" in text
        assert "scale=small" in text

    def test_committed_experiments_md_fresh(self):
        """The repository's EXPERIMENTS.md covers every experiment."""
        repo_root = os.path.join(os.path.dirname(__file__), "..", "..")
        path = os.path.join(repo_root, "EXPERIMENTS.md")
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        for exp_id in EXPERIMENT_ORDER:
            assert f"## {exp_id}:" in text, exp_id

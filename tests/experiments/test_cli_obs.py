"""CLI observability flags: --metrics-out, --run-report, --version, errors."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.experiments.cli import main, package_version


class TestVersion:
    def test_version_flag_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "certchain-analyze" in out
        assert package_version() in out

    def test_package_version_is_nonempty(self):
        assert package_version()


class TestLogsModeErrors:
    def test_missing_ssl_log_exits_2_with_one_line_error(self, tmp_path,
                                                         capsys):
        missing = str(tmp_path / "nope.log")
        status = main(["--ssl-log", missing, "--x509-log", missing])
        captured = capsys.readouterr()
        assert status == 2
        assert captured.err.count("\n") == 1
        assert "cannot read log" in captured.err
        assert "Traceback" not in captured.err

    def test_malformed_log_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.log"
        bad.write_text("#fields\ta\tb\n#types\tstring\tstring\nonly-one\n")
        status = main(["--ssl-log", str(bad), "--x509-log", str(bad)])
        assert status == 2
        assert "malformed Zeek log" in capsys.readouterr().err

    def test_only_one_log_flag_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--ssl-log", "x.log"])
        assert excinfo.value.code == 2


class TestObservabilityOutputs:
    def test_metrics_and_run_report_written(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        report = tmp_path / "report.json"
        # A unique seed forces a fresh (uncached) dataset + analysis so the
        # counters below reflect a real pipeline run inside this main().
        status = main(["--scale", "small", "--seed", "obs-cli-report",
                       "-e", "table2",
                       "--metrics-out", str(metrics),
                       "--run-report", str(report)])
        assert status == 0
        capsys.readouterr()

        text = metrics.read_text()
        assert "# TYPE repro_pipeline_chains_total counter" in text
        assert "repro_interception_chains_total" in text

        data = json.loads(report.read_text())
        assert data["version"] == package_version()
        assert "analyze_chains" in data["stages"]
        assert data["throughput"]["chains_analyzed"] > 0
        assert "structure_cache_hit_rate" in data["cache"]
        assert data["counters"]["interception_verdicts"]

    def test_unwritable_metrics_path_exits_2_cleanly(self, tmp_path, capsys):
        metrics = tmp_path / "no" / "such" / "dir" / "m.prom"
        status = main(["--scale", "small", "-e", "table2",
                       "--metrics-out", str(metrics)])
        captured = capsys.readouterr()
        assert status == 2
        assert "cannot write metrics" in captured.err
        assert "Traceback" not in captured.err

    def test_json_metrics_when_path_ends_json(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        status = main(["--scale", "small", "-e", "table2",
                       "--metrics-out", str(metrics)])
        assert status == 0
        capsys.readouterr()
        data = json.loads(metrics.read_text())
        assert data["repro_pipeline_chains_total"]["kind"] == "counter"

    def test_trace_out_written_and_valid(self, tmp_path, capsys):
        from repro.obs.traceexport import validate_trace
        trace_path = tmp_path / "trace.json"
        # Unique seed: a cached dataset would skip the analysis spans.
        status = main(["--scale", "small", "--seed", "obs-cli-trace",
                       "-e", "table2", "--trace-out", str(trace_path)])
        assert status == 0
        capsys.readouterr()
        trace = json.loads(trace_path.read_text())
        validate_trace(trace)
        span_names = {e["name"] for e in trace["traceEvents"]
                      if e["ph"] == "X"}
        assert "analyze_chains" in span_names

    def test_unwritable_trace_path_exits_2_cleanly(self, tmp_path, capsys):
        trace_path = tmp_path / "no" / "such" / "dir" / "t.json"
        status = main(["--scale", "small", "-e", "table2",
                       "--trace-out", str(trace_path)])
        captured = capsys.readouterr()
        assert status == 2
        assert "cannot write trace" in captured.err
        assert "Traceback" not in captured.err

    def test_serve_metrics_responds_during_run(self, tmp_path, capsys):
        # Port 0 binds an ephemeral port; the CLI announces the URL on
        # stderr before the run starts, which is enough to prove the
        # server came up — liveness during a run is covered by the
        # MetricsServer unit tests.
        status = main(["--scale", "small", "-e", "table2",
                       "--serve-metrics", "0"])
        captured = capsys.readouterr()
        assert status == 0
        assert "serving metrics at" in captured.err
        assert "/metrics" in captured.err


class TestBenchReportDispatch:
    def test_bench_report_subcommand_routes_and_reports(self, tmp_path,
                                                        capsys):
        bench = tmp_path / "BENCH_ingest.json"
        bench.write_text(json.dumps({
            "read": {"compiled_rows_per_second": 120000.0,
                     "compiled_over_legacy": 2.0},
            "engine": {"1": {"speedup_vs_serial": 1.5}}}))
        status = main(["bench-report", "--dir", str(tmp_path), "--check"])
        assert status == 0
        assert "Benchmark trajectory" in capsys.readouterr().out

    def test_bench_report_check_failure_propagates_exit_code(self,
                                                             tmp_path,
                                                             capsys):
        bench = tmp_path / "BENCH_ingest.json"
        bench.write_text(json.dumps({
            "read": {"compiled_rows_per_second": 1.0}}))
        status = main(["bench-report", "--dir", str(tmp_path), "--check"])
        assert status == 1
        assert "FAIL" in capsys.readouterr().out

    def test_two_runs_identical_counters(self, tmp_path):
        """The acceptance criterion: same seed, two fresh processes, and
        every metric name/label/counter value matches — only durations
        (the span histogram) may differ."""
        def run(tag: str) -> dict:
            path = tmp_path / f"{tag}.json"
            env = dict(os.environ)
            src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
            env["PYTHONPATH"] = os.path.abspath(src) + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH")
                else "")
            subprocess.run(
                [sys.executable, "-m", "repro.experiments.cli",
                 "--scale", "small", "-e", "table2",
                 "--metrics-out", str(path)],
                check=True, env=env, capture_output=True, timeout=300)
            data = json.loads(path.read_text())
            # Durations are the only values allowed to differ.
            data.pop("repro_span_duration_seconds", None)
            return data

        assert run("a") == run("b")

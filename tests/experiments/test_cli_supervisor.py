"""CLI supervised-execution flags: --task-timeout, --max-task-retries,
--run-journal / --resume — the operator surface of the supervisor and
the acceptance path for the worker-fault chaos CI job."""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.campus.dataset import cached_campus_dataset
from repro.experiments.cli import main
from repro.parallel import split_zeek_log
from repro.parallel.pool import NO_CPU_CLAMP_VAR

#: Crashes ≥2 first-attempt ingest workers (seed searched); every task
#: clears within the default retry budget.
CHAOS_PLAN = "seed=chaos-27,worker_crash_rate=0.5"


@pytest.fixture(scope="module")
def shard_dir(tmp_path_factory):
    base = tmp_path_factory.mktemp("cli-sup")
    dataset = cached_campus_dataset(seed="par-eq", scale="small")
    ssl_path, x509_path = dataset.write_zeek_logs(str(base / "whole"))
    shards = base / "shards"
    split_zeek_log(ssl_path, str(shards), 4)
    dst = shards / "x509.log"
    shutil.copy(x509_path, dst)
    return str(shards)


@pytest.fixture(autouse=True)
def _lift_cpu_clamp(monkeypatch):
    monkeypatch.setenv(NO_CPU_CLAMP_VAR, "1")


def tables_only(out: str) -> str:
    """Everything through the summary tallies — the bytes that must be
    invariant under chaos (degradation footers may differ)."""
    marker = "hybrid chains:"
    assert marker in out
    return out[: out.index("\n", out.index(marker)) + 1]


class TestFlagValidation:
    def test_task_timeout_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--task-timeout", "0"])
        assert excinfo.value.code == 2
        assert "--task-timeout must be positive" in capsys.readouterr().err

    def test_negative_retries_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--max-task-retries", "-1"])
        assert excinfo.value.code == 2
        assert "--max-task-retries" in capsys.readouterr().err

    def test_resume_accepts_run_journal_without_checkpoints(
            self, shard_dir, tmp_path, capsys):
        status = main(["--shard-dir", shard_dir, "--resume",
                       "--run-journal", str(tmp_path / "journal")])
        assert status == 0
        assert "Chain categories" in capsys.readouterr().out

    def test_generate_resume_requires_run_journal(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["generate", "--out", str(tmp_path / "g"), "--resume"])
        assert excinfo.value.code == 2
        assert "--run-journal" in capsys.readouterr().err


class TestWorkerChaosRun:
    def test_crash_plan_recovers_with_identical_tables(
            self, shard_dir, tmp_path, capsys):
        assert main(["--shard-dir", shard_dir, "--jobs", "2"]) == 0
        clean_out = capsys.readouterr().out

        report_path = tmp_path / "report.json"
        status = main(["--shard-dir", shard_dir, "--jobs", "2",
                       "--fault-plan", CHAOS_PLAN,
                       "--max-task-retries", "2",
                       "--run-report", str(report_path)])
        chaos_out = capsys.readouterr().out
        assert status == 0
        assert "recovered from" in chaos_out
        assert "worker_crash" in chaos_out
        assert tables_only(chaos_out) == tables_only(clean_out)

        resilience = json.loads(report_path.read_text())["resilience"]
        assert resilience["supervisor_worker_crashes"] >= 2
        assert resilience["supervisor_pool_rebuilds"] >= 1

    def test_task_timeout_flag_reaches_the_engines(self, shard_dir, capsys):
        # A generous deadline on a healthy run: nothing flagged, clean exit.
        status = main(["--shard-dir", shard_dir, "--jobs", "2",
                       "--task-timeout", "120"])
        out = capsys.readouterr().out
        assert status == 0
        assert "Chain categories" in out
        assert "recovered from" not in out


class TestJournalResume:
    def test_second_run_replays_the_journal(self, shard_dir, tmp_path,
                                            capsys):
        journal_dir = tmp_path / "journal"
        args = ["--shard-dir", shard_dir, "--jobs", "2",
                "--run-journal", str(journal_dir)]
        assert main(args) == 0
        first_out = capsys.readouterr().out
        # One namespaced journal per engine; four ingest shards.
        ingest_lines = (journal_dir / "ingest"
                        / "journal.jsonl").read_text().splitlines()
        assert len(ingest_lines) == 4
        assert (journal_dir / "analysis" / "journal.jsonl").exists()

        assert main(args + ["--resume"]) == 0
        resumed_out = capsys.readouterr().out
        assert "served from the run journal" in resumed_out
        assert tables_only(resumed_out) == tables_only(first_out)

    def test_generate_resume_replays_journaled_shards(self, tmp_path,
                                                      capsys):
        out = str(tmp_path / "gen")
        journal_dir = str(tmp_path / "journal")
        args = ["generate", "--out", out, "--seed", "11",
                "--scale", "small", "--run-journal", journal_dir]
        assert main(args) == 0
        capsys.readouterr()
        with open(os.path.join(out, "x509.log"), "rb") as handle:
            first_x509 = handle.read()

        assert main(args + ["--resume"]) == 0
        resumed_out = capsys.readouterr().out
        assert "served from the run journal" in resumed_out
        with open(os.path.join(out, "x509.log"), "rb") as handle:
            assert handle.read() == first_x509

"""CLI parallel flags: --shard-dir and --jobs produce identical output."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.campus.dataset import cached_campus_dataset
from repro.experiments.cli import main
from repro.parallel import split_zeek_log


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    base = tmp_path_factory.mktemp("cli-parallel")
    dataset = cached_campus_dataset(seed="cli-par", scale="small")
    ssl_path, x509_path = dataset.write_zeek_logs(str(base / "whole"))
    shard_dir = base / "shards"
    split_zeek_log(ssl_path, str(shard_dir), 3)
    shutil.copy(x509_path, shard_dir / "x509.log")
    return {"ssl": ssl_path, "x509": x509_path, "shard_dir": str(shard_dir)}


class TestShardDirFlag:
    def test_shard_dir_matches_single_pair_tables(self, corpus, capsys):
        assert main(["--ssl-log", corpus["ssl"],
                     "--x509-log", corpus["x509"]]) == 0
        single = capsys.readouterr().out
        assert main(["--shard-dir", corpus["shard_dir"], "--jobs", "2"]) == 0
        sharded = capsys.readouterr().out
        # Same analysis, different corpus label: compare everything after
        # the table title line.
        assert single.splitlines()[1:] == sharded.splitlines()[1:]
        assert corpus["shard_dir"] in sharded

    def test_jobs_counts_agree(self, corpus, capsys):
        outputs = []
        for jobs in ("1", "3"):
            assert main(["--shard-dir", corpus["shard_dir"],
                         "--jobs", jobs]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "distinct certificates:" in outputs[0]

    def test_empty_shard_dir_exits_2(self, tmp_path, capsys):
        status = main(["--shard-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert status == 2
        assert "no ssl" in captured.err
        assert "Traceback" not in captured.err


class TestQuarantineParity:
    def test_quarantine_jsonl_identical_across_jobs(self, corpus, tmp_path,
                                                    capsys):
        plan = "zeek_corrupt_rate=0.05"
        dumps = []
        for jobs in ("1", "3"):
            out_path = tmp_path / f"quarantine-{jobs}.jsonl"
            assert main(["--shard-dir", corpus["shard_dir"], "--jobs", jobs,
                         "--fault-plan", plan,
                         "--quarantine-out", str(out_path)]) == 0
            capsys.readouterr()
            dumps.append([json.loads(line) for line in
                          out_path.read_text().splitlines()])
        assert dumps[0]  # corruption produced quarantined rows
        assert dumps[0] == dumps[1]


class TestAnalysisCacheFlag:
    def test_warm_run_identical_and_artifact_present(self, corpus, tmp_path,
                                                     capsys):
        cache_dir = tmp_path / "analysis-cache"
        outputs = []
        for _ in range(2):
            assert main(["--shard-dir", corpus["shard_dir"], "--jobs", "2",
                         "--analysis-cache", str(cache_dir)]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        artifacts = [entry for entry in cache_dir.iterdir()
                     if entry.name.startswith("artifact-")]
        assert len(artifacts) == 1

    def test_cache_shared_between_serial_and_parallel_runs(self, corpus,
                                                           tmp_path, capsys):
        cache_dir = tmp_path / "analysis-cache"
        assert main(["--ssl-log", corpus["ssl"], "--x509-log", corpus["x509"],
                     "--analysis-cache", str(cache_dir)]) == 0
        cold = capsys.readouterr().out
        assert main(["--ssl-log", corpus["ssl"], "--x509-log", corpus["x509"],
                     "--jobs", "2", "--analysis-cache", str(cache_dir)]) == 0
        warm = capsys.readouterr().out
        assert cold == warm
        assert len(list(cache_dir.iterdir())) == 1


class TestFlagValidation:
    def test_jobs_requires_log_mode(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--jobs", "2"])
        assert excinfo.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_jobs_must_be_positive(self, corpus, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--shard-dir", corpus["shard_dir"], "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "at least 1" in capsys.readouterr().err

    def test_analysis_cache_requires_log_mode(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--analysis-cache", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "--analysis-cache" in capsys.readouterr().err

    def test_shard_dir_excludes_single_pair_flags(self, corpus, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--shard-dir", corpus["shard_dir"],
                  "--ssl-log", corpus["ssl"]])
        assert excinfo.value.code == 2
        assert "--shard-dir" in capsys.readouterr().err

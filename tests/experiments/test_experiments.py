"""Experiment registry, runners, and the CLI."""

from __future__ import annotations

import pytest

from repro.campus import cached_campus_dataset
from repro.experiments import registry, run_experiment
from repro.experiments.cli import build_parser, main

ALL_EXPERIMENTS = sorted(registry())


@pytest.fixture(scope="module")
def dataset():
    return cached_campus_dataset(seed=5, scale="small")


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {"table1", "table2", "table3", "table4", "table5",
                    "table6", "table7", "table8", "figure1", "figure4",
                    "figure5", "figure6", "figure7", "figure8",
                    "section4.3", "section5"}
        assert expected <= set(ALL_EXPERIMENTS)

    def test_ablations_registered(self):
        assert {"ablation-crosssign", "ablation-truststores",
                "ablation-blindspot"} <= set(ALL_EXPERIMENTS)

    def test_unknown_experiment_raises(self, dataset):
        with pytest.raises(KeyError):
            run_experiment("table99", dataset)


@pytest.mark.parametrize("exp_id", ALL_EXPERIMENTS)
def test_experiment_runs_and_renders(exp_id, dataset):
    result = run_experiment(exp_id, dataset)
    assert result.exp_id == exp_id
    assert result.title
    # Rendered table has a header rule and at least one data row.
    lines = result.rendered.splitlines()
    assert len(lines) >= 4
    assert set(lines[2]) <= {"-", " "}
    assert result.measured


class TestCLI:
    def test_listing_mode(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "section5" in out

    def test_run_one_experiment(self, capsys):
        assert main(["--scale", "small", "--seed", "5",
                     "-e", "table6"]) == 0
        out = capsys.readouterr().out
        assert "Table 6" in out
        assert "Government" in out

    def test_unknown_experiment_exits_nonzero(self, capsys):
        assert main(["--scale", "small", "--seed", "5",
                     "-e", "table99"]) == 2

    def test_log_mode_requires_both_paths(self):
        with pytest.raises(SystemExit):
            main(["--ssl-log", "only-one.log"])

    def test_log_mode(self, dataset, tmp_path, capsys):
        ssl_path, x509_path = dataset.write_zeek_logs(str(tmp_path))
        assert main(["--ssl-log", ssl_path, "--x509-log", x509_path]) == 0
        out = capsys.readouterr().out
        assert "Chain categories" in out
        assert "hybrid" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == "small"
        assert args.seed == "0"

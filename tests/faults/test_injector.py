"""FaultInjector: deterministic draws, rate partitioning, line corruption."""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector, FaultPlan, FlakyCTIndex
from repro.obs import instruments
from repro.resilience.errors import CTUnavailableError


class TestDeterminism:
    def test_same_plan_same_decisions(self):
        plan = FaultPlan(seed="det", scan_timeout_rate=0.3,
                         scan_reset_rate=0.2)
        a, b = FaultInjector(plan), FaultInjector(plan)
        ids = [f"srv-{i}" for i in range(200)]
        assert ([a.scan_fault(i) for i in ids]
                == [b.scan_fault(i) for i in ids])

    def test_different_seed_different_decisions(self):
        ids = [f"srv-{i}" for i in range(200)]
        one = [FaultInjector(FaultPlan(seed=1, scan_timeout_rate=0.5))
               .scan_fault(i) for i in ids]
        two = [FaultInjector(FaultPlan(seed=2, scan_timeout_rate=0.5))
               .scan_fault(i) for i in ids]
        assert one != two

    def test_each_attempt_gets_a_fresh_draw(self):
        injector = FaultInjector(FaultPlan(seed=3, scan_timeout_rate=0.5))
        decisions = {injector.scan_fault("srv", attempt)
                     for attempt in range(1, 20)}
        # With a 50% rate, 19 attempts seeing only one outcome would mean
        # the attempt number is being ignored.
        assert decisions == {"timeout", None}

    def test_draw_is_uniform_unit_interval(self):
        injector = FaultInjector(FaultPlan(seed=0))
        draws = [injector._draw("scope", str(i)) for i in range(500)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.4 < sum(draws) / len(draws) < 0.6


class TestScanFaultPartition:
    def test_rate_one_always_faults(self):
        injector = FaultInjector(FaultPlan(scan_timeout_rate=1.0))
        assert all(injector.scan_fault(f"s{i}") == "timeout"
                   for i in range(50))

    def test_kinds_are_partitioned_not_stacked(self):
        # The four kinds share one draw, so with rates summing to 1.0
        # every attempt hits exactly one fault.
        plan = FaultPlan(seed=7, scan_timeout_rate=0.25,
                         scan_reset_rate=0.25,
                         scan_slow_handshake_rate=0.25,
                         scan_truncated_chain_rate=0.25)
        injector = FaultInjector(plan)
        kinds = {injector.scan_fault(f"s{i}") for i in range(300)}
        assert kinds == {"timeout", "reset", "slow_handshake",
                         "truncated_chain"}

    def test_rates_approximate_frequencies(self):
        injector = FaultInjector(FaultPlan(seed=11, scan_timeout_rate=0.3))
        n = 2000
        hits = sum(injector.scan_fault(f"s{i}") == "timeout"
                   for i in range(n))
        assert 0.25 < hits / n < 0.35

    def test_zero_rates_never_fault(self):
        injector = FaultInjector(FaultPlan())
        assert all(injector.scan_fault(f"s{i}") is None for i in range(50))

    def test_faults_counted_on_metric(self):
        before = instruments.FAULTS_INJECTED.value(kind="scan_timeout")
        FaultInjector(FaultPlan(scan_timeout_rate=1.0)).scan_fault("s")
        assert (instruments.FAULTS_INJECTED.value(kind="scan_timeout")
                == before + 1)


class TestWorkerFaultPartition:
    def test_rate_one_always_faults(self):
        injector = FaultInjector(FaultPlan(seed=0, worker_crash_rate=1.0))
        assert all(injector.worker_fault(f"t:{i:04d}") == "crash"
                   for i in range(20))

    def test_kinds_are_partitioned_not_stacked(self):
        plan = FaultPlan(seed="wpart", worker_crash_rate=0.5,
                         worker_hang_rate=0.5)
        injector = FaultInjector(plan)
        outcomes = {injector.worker_fault(f"t:{i:04d}") for i in range(100)}
        # Rates sum to 1.0: every attempt faults, one kind per draw.
        assert outcomes == {"crash", "hang"}

    def test_zero_rates_never_fault(self):
        injector = FaultInjector(FaultPlan(seed=0))
        assert injector.worker_fault("t:0000") is None

    def test_retry_attempt_draws_afresh(self):
        injector = FaultInjector(FaultPlan(seed="wretry",
                                           worker_crash_rate=0.5))
        decisions = {injector.worker_fault("t:0007", attempt)
                     for attempt in range(1, 20)}
        assert decisions == {"crash", None}

    def test_same_plan_same_decisions(self):
        plan = FaultPlan(seed="wdet", worker_crash_rate=0.3,
                         worker_hang_rate=0.2)
        a, b = FaultInjector(plan), FaultInjector(plan)
        ids = [f"t:{i:04d}" for i in range(200)]
        assert ([a.worker_fault(i) for i in ids]
                == [b.worker_fault(i) for i in ids])

    def test_faults_counted_on_metric(self):
        before = instruments.FAULTS_INJECTED.value(kind="worker_crash")
        FaultInjector(FaultPlan(seed=0, worker_crash_rate=1.0)) \
            .worker_fault("t:0000")
        assert (instruments.FAULTS_INJECTED.value(kind="worker_crash")
                == before + 1)


class TestCorruptLine:
    LINE = "1453939200.000000\tC1\t10.0.0.1\t443\texample.com"

    def test_zero_rates_leave_rows_alone(self):
        injector = FaultInjector(FaultPlan())
        assert all(injector.corrupt_line(self.LINE, n) is None
                   for n in range(1, 100))

    def test_corrupt_appends_garbage_column(self):
        injector = FaultInjector(FaultPlan(zeek_corrupt_rate=1.0))
        corrupted = injector.corrupt_line(self.LINE, 1)
        assert corrupted is not None
        assert corrupted.startswith(self.LINE)
        assert corrupted.count("\t") == self.LINE.count("\t") + 1

    def test_truncate_cuts_mid_line(self):
        injector = FaultInjector(FaultPlan(zeek_truncate_rate=1.0))
        truncated = injector.corrupt_line(self.LINE, 1)
        assert truncated is not None
        assert truncated == self.LINE[: len(self.LINE) // 3]

    def test_decision_depends_on_line_number(self):
        injector = FaultInjector(FaultPlan(seed=5, zeek_corrupt_rate=0.5))
        outcomes = {injector.corrupt_line(self.LINE, n) is None
                    for n in range(1, 40)}
        assert outcomes == {True, False}


class _StubIndex:
    def __init__(self):
        self.calls = []

    def records_for_domain(self, domain):
        self.calls.append(("records", domain))
        return ["rec"]

    def issuers_for_domain(self, domain, overlapping=None):
        self.calls.append(("issuers", domain))
        return ["issuer"]

    def knows_domain(self, domain):
        self.calls.append(("knows", domain))
        return True

    def contains_certificate(self, certificate):
        return True

    def __len__(self):
        return 1


class TestFlakyCTIndex:
    def test_outage_rate_one_raises(self):
        flaky = FlakyCTIndex(_StubIndex(),
                             FaultInjector(FaultPlan(ct_outage_rate=1.0)))
        with pytest.raises(CTUnavailableError, match="unavailable"):
            flaky.issuers_for_domain("example.com")
        with pytest.raises(CTUnavailableError):
            flaky.records_for_domain("example.com")
        with pytest.raises(CTUnavailableError):
            flaky.knows_domain("example.com")

    def test_no_outage_delegates(self):
        inner = _StubIndex()
        flaky = FlakyCTIndex(inner, FaultInjector(FaultPlan()))
        assert flaky.issuers_for_domain("example.com") == ["issuer"]
        assert flaky.knows_domain("example.com")
        assert flaky.contains_certificate(object())
        assert len(flaky) == 1
        assert ("issuers", "example.com") in inner.calls

"""FaultPlan: parsing, validation, and the ambient install mechanism."""

from __future__ import annotations

import pytest

from repro.faults import (
    NO_FAULTS,
    FaultPlan,
    active_plan,
    clear_plan,
    install_plan,
)
from repro.faults.plan import PLAN_ENV_VAR


@pytest.fixture(autouse=True)
def _no_ambient_leak():
    """Every test starts and ends with no ambient plan installed."""
    clear_plan()
    yield
    clear_plan()


class TestFaultPlan:
    def test_default_plan_is_all_zero(self):
        plan = FaultPlan()
        assert not plan.any()
        assert all(rate == 0.0 for rate in plan.rates().values())
        assert plan.seed == 0

    def test_rates_excludes_seed(self):
        assert "seed" not in FaultPlan(seed="x").rates()

    def test_any_true_with_one_nonzero_rate(self):
        assert FaultPlan(ct_outage_rate=0.01).any()

    def test_scan_failure_rate_combines_timeout_and_reset(self):
        plan = FaultPlan(scan_timeout_rate=0.1, scan_reset_rate=0.05)
        assert plan.scan_failure_rate == pytest.approx(0.15)

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_out_of_range_rate_rejected(self, rate):
        with pytest.raises(ValueError, match=r"within \[0, 1\]"):
            FaultPlan(zeek_corrupt_rate=rate)


class TestParse:
    def test_parse_spec(self):
        plan = FaultPlan.parse(
            "zeek_corrupt_rate=0.05, scan_timeout_rate=0.1")
        assert plan.zeek_corrupt_rate == pytest.approx(0.05)
        assert plan.scan_timeout_rate == pytest.approx(0.1)
        assert plan.scan_reset_rate == 0.0

    def test_parse_worker_fault_keys(self):
        plan = FaultPlan.parse(
            "worker_crash_rate=0.25,worker_hang_rate=0.1")
        assert plan.worker_crash_rate == pytest.approx(0.25)
        assert plan.worker_hang_rate == pytest.approx(0.1)
        assert plan.any()

    def test_parse_carries_caller_seed(self):
        assert FaultPlan.parse("ct_outage_rate=0.2", seed="run-7").seed == "run-7"

    def test_seed_in_spec_wins(self):
        assert FaultPlan.parse("seed=abc", seed="xyz").seed == "abc"

    def test_empty_entries_ignored(self):
        plan = FaultPlan.parse(",, zeek_truncate_rate=0.3 ,")
        assert plan.zeek_truncate_rate == pytest.approx(0.3)

    def test_unknown_key_lists_valid_keys(self):
        with pytest.raises(ValueError, match="zeek_corrupt_rate"):
            FaultPlan.parse("zeke_corrupt_rate=0.1")

    def test_missing_equals_sign_rejected(self):
        with pytest.raises(ValueError, match="not key=value"):
            FaultPlan.parse("zeek_corrupt_rate")

    def test_non_numeric_rate_rejected(self):
        with pytest.raises(ValueError, match="not a number"):
            FaultPlan.parse("ct_outage_rate=lots")

    def test_parsed_rate_still_range_checked(self):
        with pytest.raises(ValueError, match=r"within \[0, 1\]"):
            FaultPlan.parse("ct_outage_rate=7")


class TestFromEnv:
    def test_unset_returns_none(self):
        assert FaultPlan.from_env({}) is None

    def test_blank_returns_none(self):
        assert FaultPlan.from_env({PLAN_ENV_VAR: "   "}) is None

    def test_spec_parsed_with_seed(self):
        plan = FaultPlan.from_env({PLAN_ENV_VAR: "scan_reset_rate=0.4"},
                                  seed=9)
        assert plan is not None
        assert plan.scan_reset_rate == pytest.approx(0.4)
        assert plan.seed == 9


class TestAmbientPlan:
    def test_nothing_installed_by_default(self):
        assert active_plan() is NO_FAULTS

    def test_install_and_clear(self):
        plan = FaultPlan(scan_timeout_rate=0.5)
        install_plan(plan)
        assert active_plan() is plan
        clear_plan()
        assert active_plan() is NO_FAULTS

    def test_installing_zero_rate_plan_clears(self):
        install_plan(FaultPlan(scan_timeout_rate=0.5))
        install_plan(FaultPlan())  # all-zero: equivalent to clearing
        assert active_plan() is NO_FAULTS

    def test_installing_none_clears(self):
        install_plan(FaultPlan(ct_outage_rate=1.0))
        install_plan(None)
        assert active_plan() is NO_FAULTS

"""DistinguishedName.parse memoization: identity, metrics, error handling."""

from __future__ import annotations

import pytest

from repro.obs import instruments
from repro.obs.metrics import get_registry
from repro.x509.dn import DistinguishedName, DNParseError, _PARSE_CACHE


@pytest.fixture(autouse=True)
def _fresh_cache():
    _PARSE_CACHE.clear()
    get_registry().reset()
    yield
    _PARSE_CACHE.clear()


class TestParseCache:
    def test_repeat_parse_returns_the_same_object(self):
        text = "CN=R3,O=Let's Encrypt,C=US"
        first = DistinguishedName.parse(text)
        second = DistinguishedName.parse(text)
        assert second is first
        assert first.common_name == "R3"

    def test_cached_result_equals_uncached(self):
        text = "CN=a b\\, c,OU=Dev+O=Org,C=DE"
        via_cache = DistinguishedName.parse(text)
        direct = DistinguishedName._parse_uncached(text)
        assert via_cache == direct
        assert via_cache.rfc4514() == direct.rfc4514()

    def test_hit_and_miss_metrics(self):
        DistinguishedName.parse("CN=one")            # miss
        DistinguishedName.parse("CN=one")            # hit
        DistinguishedName.parse("CN=one")            # hit
        DistinguishedName.parse("CN=two")            # miss
        assert instruments.DN_PARSE_CACHE.value(result="miss") == 2
        assert instruments.DN_PARSE_CACHE.value(result="hit") == 2

    def test_parse_errors_are_not_cached(self):
        with pytest.raises(DNParseError):
            DistinguishedName.parse("no-equals-sign")
        assert "no-equals-sign" not in _PARSE_CACHE
        with pytest.raises(DNParseError):
            DistinguishedName.parse("no-equals-sign")

    def test_distinct_inputs_same_name_both_cached(self):
        # "CN=x" and "CN=x " normalise to equal DNs but are distinct
        # cache keys; both resolve correctly.
        a = DistinguishedName.parse("CN=x")
        b = DistinguishedName.parse("CN=x ")
        assert a == b
        assert len(_PARSE_CACHE) == 2

"""Revocation substrate: CRLs, OCSP, and policy integration."""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

import pytest

from repro.tls.policy import BrowserPolicy, StrictPresentedChainPolicy, ValidationStatus
from repro.x509 import (
    CertificateFactory,
    CertificateRevocationList,
    OCSPResponder,
    RevocationChecker,
    RevocationStatus,
    name,
)

NOW = datetime(2021, 2, 1, tzinfo=timezone.utc)


@pytest.fixture()
def issued(pki, factory):
    r3 = pki.ca("lets_encrypt").intermediates["R3"]
    leaf = factory.leaf(r3, name("rev.example"), dns_names=["rev.example"])
    return leaf, r3


@pytest.fixture()
def crl(issued):
    leaf, r3 = issued
    return CertificateRevocationList(
        issuer=r3.certificate.subject,
        this_update=NOW - timedelta(days=1),
        next_update=NOW + timedelta(days=7),
    )


class TestCRL:
    def test_good_before_revocation(self, issued, crl):
        leaf, _ = issued
        assert crl.status_of(leaf, at=NOW) is RevocationStatus.GOOD

    def test_revoked_after_revocation(self, issued, crl):
        leaf, _ = issued
        crl.revoke(leaf)
        assert crl.status_of(leaf, at=NOW) is RevocationStatus.REVOKED

    def test_wrong_issuer_rejected_on_revoke(self, factory, crl):
        stranger = factory.self_signed(name("other.example"))
        with pytest.raises(ValueError):
            crl.revoke(stranger)

    def test_foreign_cert_unknown(self, factory, crl):
        stranger = factory.self_signed(name("other.example"))
        assert crl.status_of(stranger, at=NOW) is RevocationStatus.UNKNOWN

    def test_stale_crl_is_unknown(self, issued, crl):
        leaf, _ = issued
        crl.revoke(leaf)
        late = crl.next_update + timedelta(days=1)
        assert crl.status_of(leaf, at=late) is RevocationStatus.UNKNOWN


class TestOCSP:
    def test_fresh_answer(self, issued):
        leaf, _ = issued
        responder = OCSPResponder()
        responder.set_status(leaf, RevocationStatus.REVOKED, produced_at=NOW)
        assert responder.query(leaf, at=NOW + timedelta(days=1)) is \
            RevocationStatus.REVOKED

    def test_expired_answer_unknown(self, issued):
        leaf, _ = issued
        responder = OCSPResponder(validity=timedelta(days=2))
        responder.set_status(leaf, RevocationStatus.GOOD, produced_at=NOW)
        assert responder.query(leaf, at=NOW + timedelta(days=3)) is \
            RevocationStatus.UNKNOWN

    def test_unqueried_cert_unknown(self, issued):
        leaf, _ = issued
        assert OCSPResponder().query(leaf, at=NOW) is RevocationStatus.UNKNOWN


class TestChecker:
    def test_ocsp_beats_crl(self, issued, crl):
        leaf, _ = issued
        crl.revoke(leaf)
        responder = OCSPResponder()
        responder.set_status(leaf, RevocationStatus.GOOD, produced_at=NOW)
        checker = RevocationChecker([crl], responder)
        # OCSP's fresher GOOD wins over the CRL's REVOKED.
        assert checker.status_of(leaf, at=NOW) is RevocationStatus.GOOD

    def test_crl_fallback(self, issued, crl):
        leaf, _ = issued
        crl.revoke(leaf)
        checker = RevocationChecker([crl])
        assert checker.status_of(leaf, at=NOW) is RevocationStatus.REVOKED

    def test_any_revoked_finds_first(self, issued, crl):
        leaf, r3 = issued
        crl.revoke(leaf)
        checker = RevocationChecker([crl])
        assert checker.any_revoked([leaf, r3.certificate], at=NOW) is leaf


class TestPolicyIntegration:
    def test_browser_rejects_revoked_leaf(self, registry, issued, crl):
        leaf, r3 = issued
        crl.revoke(leaf)
        policy = BrowserPolicy(registry,
                               revocation=RevocationChecker([crl]))
        result = policy.validate((leaf, r3.certificate), at=NOW)
        assert result.status is ValidationStatus.REVOKED

    def test_browser_soft_fails_unknown(self, registry, issued):
        leaf, r3 = issued
        policy = BrowserPolicy(registry,
                               revocation=RevocationChecker())
        assert policy.validate((leaf, r3.certificate), at=NOW).ok

    def test_strict_rejects_revoked_member(self, registry, issued, crl):
        leaf, r3 = issued
        crl.revoke(leaf)
        policy = StrictPresentedChainPolicy(
            registry, revocation=RevocationChecker([crl]))
        result = policy.validate((leaf, r3.certificate), at=NOW)
        assert result.status is ValidationStatus.REVOKED

    def test_no_checker_means_no_revocation_checks(self, registry, issued,
                                                   crl):
        leaf, r3 = issued
        crl.revoke(leaf)
        assert BrowserPolicy(registry).validate(
            (leaf, r3.certificate), at=NOW).ok

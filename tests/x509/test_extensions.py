"""Extension semantics, especially tri-state basicConstraints presence."""

from __future__ import annotations

from repro.x509.extensions import (
    BasicConstraints,
    EKU,
    ExtendedKeyUsage,
    ExtensionSet,
    KeyUsage,
    SubjectAltName,
)


class TestBasicConstraints:
    def test_ca_permits_depth_unbounded(self):
        bc = BasicConstraints(ca=True, path_len=None)
        assert bc.permits_depth(10)

    def test_path_len_zero_blocks_subordinates(self):
        bc = BasicConstraints(ca=True, path_len=0)
        assert bc.permits_depth(0)
        assert not bc.permits_depth(1)

    def test_non_ca_permits_nothing(self):
        assert not BasicConstraints(ca=False).permits_depth(0)


class TestExtensionSetTriState:
    def test_absent_extension_is_neither_ca_nor_leaf(self):
        bare = ExtensionSet.bare()
        assert not bare.has_basic_constraints()
        assert not bare.declares_ca()
        assert not bare.declares_leaf()

    def test_present_false_is_leaf(self):
        ext = ExtensionSet(basic_constraints=BasicConstraints(ca=False))
        assert ext.has_basic_constraints()
        assert ext.declares_leaf()
        assert not ext.declares_ca()

    def test_present_true_is_ca(self):
        ext = ExtensionSet(basic_constraints=BasicConstraints(ca=True))
        assert ext.declares_ca()
        assert not ext.declares_leaf()

    def test_for_root_profile(self):
        ext = ExtensionSet.for_root("kid")
        assert ext.declares_ca()
        assert ext.key_usage.can_sign_certificates()
        assert ext.subject_key_id.key_id == "kid"

    def test_for_leaf_profile(self):
        ext = ExtensionSet.for_leaf("kid", "issuer-kid", dns_names=["a.com"])
        assert ext.declares_leaf()
        assert ext.extended_key_usage.allows(EKU.SERVER_AUTH)
        assert ext.authority_key_id.key_id == "issuer-kid"


class TestSubjectAltName:
    def test_exact_match(self):
        san = SubjectAltName(("example.com",))
        assert san.matches_host("example.com")
        assert san.matches_host("EXAMPLE.COM.")

    def test_wildcard_single_label(self):
        san = SubjectAltName(("*.example.com",))
        assert san.matches_host("www.example.com")
        assert not san.matches_host("example.com")
        assert not san.matches_host("a.b.example.com")

    def test_no_match(self):
        san = SubjectAltName(("example.com",))
        assert not san.matches_host("other.com")

    def test_ip_entry(self):
        san = SubjectAltName((), ("192.0.2.1",))
        assert san.matches_host("192.0.2.1")


class TestExtendedKeyUsage:
    def test_any_allows_everything(self):
        eku = ExtendedKeyUsage((EKU.ANY,))
        assert eku.allows(EKU.SERVER_AUTH)
        assert eku.allows(EKU.CODE_SIGNING)

    def test_specific_purpose_only(self):
        eku = ExtendedKeyUsage((EKU.SERVER_AUTH,))
        assert eku.allows(EKU.SERVER_AUTH)
        assert not eku.allows(EKU.CLIENT_AUTH)

"""Crypto-backed chain generation and fault injection (Appendix D corpus)."""

from __future__ import annotations

import pytest
from cryptography import x509 as cx509
from cryptography.exceptions import InvalidSignature, UnsupportedAlgorithm
from cryptography.hazmat.primitives.asymmetric.ec import ECDSA

from repro.x509 import name
from repro.x509.pem import (
    CryptoChainBuilder,
    FaultType,
    crypto_cert_to_record,
    decode_pem_bundle,
    encode_pem_bundle,
)


@pytest.fixture(scope="module")
def builder():
    return CryptoChainBuilder(key_pool_size=4)


def _names(*cns: str):
    return [name(cn, o="Test") for cn in cns]


class TestBuildChain:
    def test_clean_chain_verifies(self, builder):
        chain = builder.build_chain(_names("leaf", "inter", "root"))
        assert len(chain) == 3
        certs = [cx509.load_der_x509_certificate(c.der) for c in chain]
        for child, parent in zip(certs, certs[1:]):
            parent.public_key().verify(
                child.signature, child.tbs_certificate_bytes,
                ECDSA(child.signature_hash_algorithm))

    def test_root_is_self_signed(self, builder):
        chain = builder.build_chain(_names("leaf", "root"))
        root = cx509.load_der_x509_certificate(chain[-1].der)
        assert root.subject == root.issuer
        root.public_key().verify(root.signature, root.tbs_certificate_bytes,
                                 ECDSA(root.signature_hash_algorithm))

    def test_empty_names_rejected(self, builder):
        with pytest.raises(ValueError):
            builder.build_chain([])

    def test_serials_unique(self, builder):
        chain = builder.build_chain(_names("a", "b", "c"))
        certs = [cx509.load_der_x509_certificate(c.der) for c in chain]
        serials = {c.serial_number for c in certs}
        assert len(serials) == 3


class TestFaults:
    def test_wrong_key_breaks_signature(self, builder):
        chain = builder.build_chain(_names("leaf", "inter", "root"),
                                    fault=FaultType.WRONG_KEY, fault_position=0)
        leaf = cx509.load_der_x509_certificate(chain[0].der)
        parent = cx509.load_der_x509_certificate(chain[1].der)
        with pytest.raises(InvalidSignature):
            parent.public_key().verify(
                leaf.signature, leaf.tbs_certificate_bytes,
                ECDSA(leaf.signature_hash_algorithm))
        assert chain[0].fault is FaultType.WRONG_KEY

    def test_wrong_key_preserves_names(self, builder):
        chain = builder.build_chain(_names("leaf", "root"),
                                    fault=FaultType.WRONG_KEY, fault_position=0)
        # The names still chain; only the signature is bad — the exact
        # disagreement Appendix D probes.
        leaf = cx509.load_der_x509_certificate(chain[0].der)
        root = cx509.load_der_x509_certificate(chain[1].der)
        assert leaf.issuer == root.subject

    def test_truncated_der_fails_to_load(self, builder):
        chain = builder.build_chain(_names("leaf", "root"),
                                    fault=FaultType.TRUNCATED_DER,
                                    fault_position=1)
        with pytest.raises(ValueError):
            cx509.load_der_x509_certificate(chain[1].der)

    def test_unrecognized_key_oid(self, builder):
        chain = builder.build_chain(_names("leaf", "inter", "root"),
                                    fault=FaultType.UNRECOGNIZED_KEY,
                                    fault_position=1)
        cert = cx509.load_der_x509_certificate(chain[1].der)
        with pytest.raises(UnsupportedAlgorithm):
            cert.public_key()


class TestPemBundle:
    def test_round_trip(self, builder):
        chain = builder.build_chain(_names("leaf", "inter", "root"))
        bundle = encode_pem_bundle(chain)
        blobs = decode_pem_bundle(bundle)
        assert blobs == [c.der for c in chain]

    def test_decode_ignores_garbage_between_blocks(self, builder):
        chain = builder.build_chain(_names("leaf", "root"))
        bundle = ("junk line\n" + chain[0].pem() + "s_client chatter\n"
                  + chain[1].pem())
        assert len(decode_pem_bundle(bundle)) == 2

    def test_decode_empty(self):
        assert decode_pem_bundle("") == []


class TestRecordProjection:
    def test_projection_matches_names(self, builder):
        chain = builder.build_chain(_names("leaf", "root"))
        cert = cx509.load_der_x509_certificate(chain[0].der)
        record = crypto_cert_to_record(cert)
        assert record.subject.common_name == "leaf"
        assert record.issuer.common_name == "root"
        assert not record.is_self_signed

    def test_projection_handles_unrecognized_key(self, builder):
        chain = builder.build_chain(_names("leaf", "root"),
                                    fault=FaultType.UNRECOGNIZED_KEY,
                                    fault_position=0)
        cert = cx509.load_der_x509_certificate(chain[0].der)
        record = crypto_cert_to_record(cert)
        assert record.key_algorithm.value == "unknown"

"""The from-scratch DER encoder, validated against the cryptography parser."""

from __future__ import annotations

from datetime import datetime, timezone

import pytest
from cryptography import x509 as cx509
from hypothesis import given, settings, strategies as st

from repro.x509 import CertificateFactory, name
from repro.x509.der import (
    certificate_to_pem,
    chain_to_pem,
    der_bit_string,
    der_boolean,
    der_integer,
    der_oid,
    der_sequence,
    der_time,
    encode_certificate_der,
)
from repro.x509.pem import decode_pem_bundle


@pytest.fixture(scope="module")
def sample():
    factory = CertificateFactory(seed=55)
    root = factory.root(name("DER Test Root", o="DerOrg", c="US"))
    inter = factory.intermediate(root, name("DER Test Inter", o="DerOrg"))
    leaf = factory.leaf(inter, name("der-test.example"),
                        dns_names=["der-test.example", "*.der-test.example"])
    return leaf, inter.certificate, root.certificate


class TestPrimitives:
    def test_short_and_long_lengths(self):
        short = der_sequence(b"\x05\x00" * 10)
        assert short[1] == 20  # short-form length
        long = der_sequence(b"\x05\x00" * 200)
        assert long[1] == 0x82  # long form, two length bytes
        assert int.from_bytes(long[2:4], "big") == 400

    def test_integer_encoding(self):
        assert der_integer(0) == b"\x02\x01\x00"
        assert der_integer(127) == b"\x02\x01\x7f"
        # High bit set needs a leading zero octet.
        assert der_integer(128) == b"\x02\x02\x00\x80"
        assert der_integer(65537) == b"\x02\x03\x01\x00\x01"

    def test_oid_encoding(self):
        # id-ecPublicKey, the canonical multi-arc example.
        assert der_oid("1.2.840.10045.2.1") == \
            bytes.fromhex("06072a8648ce3d0201")
        assert der_oid("2.5.4.3") == bytes.fromhex("0603550403")

    def test_oid_requires_two_arcs(self):
        with pytest.raises(ValueError):
            der_oid("1")

    def test_boolean(self):
        assert der_boolean(True) == b"\x01\x01\xff"
        assert der_boolean(False) == b"\x01\x01\x00"

    def test_bit_string_prefixes_unused_count(self):
        assert der_bit_string(b"\xab", 4) == b"\x03\x02\x04\xab"

    def test_time_utctime_vs_generalized(self):
        utc = der_time(datetime(2021, 6, 1, tzinfo=timezone.utc))
        assert utc[0] == 0x17  # UTCTime
        general = der_time(datetime(2055, 6, 1, tzinfo=timezone.utc))
        assert general[0] == 0x18  # GeneralizedTime


class TestCertificateEncoding:
    def test_parses_with_cryptography(self, sample):
        for cert in sample:
            parsed = cx509.load_der_x509_certificate(
                encode_certificate_der(cert))
            assert parsed.version is cx509.Version.v3
            parsed.public_key()  # SPKI is well-formed

    def test_names_round_trip(self, sample):
        leaf, *_ = sample
        parsed = cx509.load_der_x509_certificate(encode_certificate_der(leaf))
        cns = parsed.subject.get_attributes_for_oid(
            cx509.NameOID.COMMON_NAME)
        assert cns[0].value == "der-test.example"
        issuer_cns = parsed.issuer.get_attributes_for_oid(
            cx509.NameOID.COMMON_NAME)
        assert issuer_cns[0].value == "DER Test Inter"

    def test_serial_and_validity_exact(self, sample):
        leaf, *_ = sample
        parsed = cx509.load_der_x509_certificate(encode_certificate_der(leaf))
        assert format(parsed.serial_number, "016x") == leaf.serial
        assert parsed.not_valid_before_utc == \
            leaf.validity.not_before.replace(microsecond=0)
        assert parsed.not_valid_after_utc == \
            leaf.validity.not_after.replace(microsecond=0)

    def test_extensions_survive(self, sample):
        leaf, inter, root = sample
        parsed = cx509.load_der_x509_certificate(encode_certificate_der(leaf))
        bc = parsed.extensions.get_extension_for_class(cx509.BasicConstraints)
        assert bc.value.ca is False
        san = parsed.extensions.get_extension_for_class(
            cx509.SubjectAlternativeName)
        assert set(san.value.get_values_for_type(cx509.DNSName)) == {
            "der-test.example", "*.der-test.example"}
        ku = parsed.extensions.get_extension_for_class(cx509.KeyUsage)
        assert ku.value.digital_signature
        parsed_root = cx509.load_der_x509_certificate(
            encode_certificate_der(root))
        root_bc = parsed_root.extensions.get_extension_for_class(
            cx509.BasicConstraints)
        assert root_bc.value.ca is True

    def test_bare_certificate_has_no_extensions(self, factory):
        bare = factory.self_signed(name("bare-der.local"))
        parsed = cx509.load_der_x509_certificate(encode_certificate_der(bare))
        assert len(parsed.extensions) == 0

    def test_ec_certificate(self, factory):
        from dataclasses import replace
        from repro.x509 import KeyAlgorithm
        cert = replace(factory.self_signed(name("ec-der.local")),
                       key_algorithm=KeyAlgorithm.ECDSA, key_bits=256)
        parsed = cx509.load_der_x509_certificate(encode_certificate_der(cert))
        from cryptography.hazmat.primitives.asymmetric import ec
        assert isinstance(parsed.public_key(), ec.EllipticCurvePublicKey)

    def test_deterministic(self, sample):
        leaf, *_ = sample
        assert encode_certificate_der(leaf) == encode_certificate_der(leaf)

    def test_localhost_style_dn_encodes(self, factory):
        from repro.x509.dn import DistinguishedName
        dn = DistinguishedName.parse(
            "emailAddress=webmaster@localhost,CN=localhost,OU=none,O=none,"
            "L=Sometown,ST=Someprovince,C=US")
        cert = factory.self_signed(dn)
        parsed = cx509.load_der_x509_certificate(encode_certificate_der(cert))
        assert "localhost" in parsed.subject.rfc4514_string()


class TestPemExport:
    def test_chain_bundle_round_trip(self, sample):
        bundle = chain_to_pem(sample)
        blobs = decode_pem_bundle(bundle)
        assert len(blobs) == 3
        for blob, cert in zip(blobs, sample):
            assert blob == encode_certificate_der(cert)

    def test_single_pem(self, sample):
        leaf, *_ = sample
        text = certificate_to_pem(leaf)
        assert text.startswith("-----BEGIN CERTIFICATE-----")
        assert text.rstrip().endswith("-----END CERTIFICATE-----")


@settings(max_examples=60, deadline=None)
@given(value=st.integers(min_value=0, max_value=2 ** 256))
def test_property_integer_round_trip_via_length(value):
    encoded = der_integer(value)
    assert encoded[0] == 0x02
    content = encoded[2:] if encoded[1] < 0x80 else \
        encoded[2 + (encoded[1] & 0x7F):]
    assert int.from_bytes(content, "big") == value


@settings(max_examples=60, deadline=None)
@given(arcs=st.lists(st.integers(0, 2 ** 28), min_size=1, max_size=6))
def test_property_oid_parses_with_cryptography(arcs):
    dotted = "1.3." + ".".join(str(a) for a in arcs)
    encoded = der_oid(dotted)
    # Smuggle the OID through a certificate extension-free path: wrap it in
    # an AlgorithmIdentifier inside an EKU-style SEQUENCE and decode the
    # bytes manually.
    assert encoded[0] == 0x06
    # Decode arcs back.
    body = encoded[2:]
    decoded = [body[0] // 40, body[0] % 40]
    acc = 0
    for byte in body[1:]:
        acc = (acc << 7) | (byte & 0x7F)
        if not byte & 0x80:
            decoded.append(acc)
            acc = 0
    assert decoded == [1, 3] + arcs


@settings(max_examples=40, deadline=None)
@given(cn=st.from_regex(r"[a-zA-Z0-9][a-zA-Z0-9 .\-]{0,30}", fullmatch=True),
       org=st.from_regex(r"[a-zA-Z][a-zA-Z0-9 ]{0,20}", fullmatch=True))
def test_property_names_survive_cryptography(cn, org):
    factory = CertificateFactory(seed=77)
    cert = factory.self_signed(name(cn, o=org))
    parsed = cx509.load_der_x509_certificate(encode_certificate_der(cert))
    values = {attr.value for attr in parsed.subject}
    assert cn in values
    assert org in values

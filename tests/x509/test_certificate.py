"""Certificate record model: identity, validity, name chaining."""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

import pytest

from repro.x509 import (
    Certificate,
    CertificateFactory,
    CertificateRole,
    KeyAlgorithm,
    ValidityPeriod,
    name,
)


@pytest.fixture()
def window():
    start = datetime(2020, 9, 1, tzinfo=timezone.utc)
    return ValidityPeriod(start, start + timedelta(days=365))


class TestValidityPeriod:
    def test_rejects_inverted_period(self):
        t = datetime(2021, 1, 1, tzinfo=timezone.utc)
        with pytest.raises(ValueError):
            ValidityPeriod(t, t - timedelta(days=1))

    def test_contains_bounds_inclusive(self, window):
        assert window.contains(window.not_before)
        assert window.contains(window.not_after)
        assert not window.contains(window.not_after + timedelta(seconds=1))

    def test_overlaps_symmetric(self, window):
        other = ValidityPeriod(window.not_after - timedelta(days=1),
                               window.not_after + timedelta(days=30))
        assert window.overlaps(other)
        assert other.overlaps(window)

    def test_disjoint_periods_do_not_overlap(self, window):
        later = ValidityPeriod(window.not_after + timedelta(days=1),
                               window.not_after + timedelta(days=10))
        assert not window.overlaps(later)

    def test_lifetime(self, window):
        assert window.lifetime == timedelta(days=365)

    def test_days_constructor(self):
        start = datetime(2021, 1, 1, tzinfo=timezone.utc)
        period = ValidityPeriod.days(start, 90)
        assert period.not_after == start + timedelta(days=90)


class TestCertificate:
    def test_self_signed_detection(self, window):
        dn = name("internal.corp", o="Acme")
        cert = Certificate(subject=dn, issuer=dn, serial="01", validity=window)
        assert cert.is_self_signed

    def test_self_signed_is_case_insensitive(self, window):
        cert = Certificate(subject=name("X", o="acme"),
                           issuer=name("x", o="ACME"),
                           serial="01", validity=window)
        assert cert.is_self_signed

    def test_issued_checks_subject_vs_issuer(self, window):
        ca = Certificate(subject=name("CA"), issuer=name("CA"),
                         serial="01", validity=window)
        leaf = Certificate(subject=name("leaf"), issuer=name("CA"),
                           serial="02", validity=window)
        assert ca.issued(leaf)
        assert not leaf.issued(ca)

    def test_fingerprint_distinguishes_serials(self, window):
        dn = name("x")
        a = Certificate(subject=dn, issuer=dn, serial="01", validity=window)
        b = a.with_serial("02")
        assert a.fingerprint != b.fingerprint

    def test_fingerprint_stable(self, window):
        dn = name("x")
        a = Certificate(subject=dn, issuer=dn, serial="01", validity=window)
        assert a.fingerprint == a.fingerprint

    def test_fingerprint_override(self, window):
        dn = name("x")
        a = Certificate(subject=dn, issuer=dn, serial="01", validity=window,
                        fingerprint_override="abc123")
        assert a.fingerprint == "abc123"

    def test_short_name_prefers_cn(self, window):
        cert = Certificate(subject=name("leaf", o="Org"), issuer=name("CA"),
                           serial="1", validity=window)
        assert cert.short_name() == "leaf"


class TestFactory:
    def test_root_is_self_signed_ca(self):
        factory = CertificateFactory(seed=1)
        root = factory.root(name("Test Root", o="T"))
        cert = root.certificate
        assert cert.is_self_signed
        assert cert.true_role is CertificateRole.ROOT
        assert cert.extensions.declares_ca()

    def test_intermediate_chains_to_root(self):
        factory = CertificateFactory(seed=1)
        root = factory.root(name("Root"))
        inter = factory.intermediate(root, name("Inter"))
        assert root.certificate.issued(inter.certificate)
        assert inter.certificate.signing_key_id == root.key_id

    def test_leaf_chains_to_intermediate(self):
        factory = CertificateFactory(seed=1)
        root = factory.root(name("Root"))
        inter = factory.intermediate(root, name("Inter"))
        leaf = factory.leaf(inter, name("example.com"),
                            dns_names=["example.com"])
        assert inter.certificate.issued(leaf)
        assert leaf.extensions.declares_leaf()
        assert leaf.extensions.subject_alt_name.matches_host("example.com")

    def test_leaf_omit_basic_constraints(self):
        factory = CertificateFactory(seed=1)
        root = factory.root(name("Root"))
        leaf = factory.leaf(root, name("x"), omit_basic_constraints=True)
        assert not leaf.extensions.has_basic_constraints()

    def test_self_signed_bare_has_no_extensions(self):
        factory = CertificateFactory(seed=1)
        cert = factory.self_signed(name("device.local"))
        assert cert.is_self_signed
        assert not cert.extensions.has_basic_constraints()

    def test_determinism_same_seed(self):
        a = CertificateFactory(seed=99).simple_chain(
            root_cn="R", intermediate_cns=["I"], leaf_cn="L")
        b = CertificateFactory(seed=99).simple_chain(
            root_cn="R", intermediate_cns=["I"], leaf_cn="L")
        assert [c.fingerprint for c in a] == [c.fingerprint for c in b]

    def test_different_seeds_differ(self):
        a = CertificateFactory(seed=1).simple_chain(
            root_cn="R", intermediate_cns=[], leaf_cn="L")
        b = CertificateFactory(seed=2).simple_chain(
            root_cn="R", intermediate_cns=[], leaf_cn="L")
        assert [c.fingerprint for c in a] != [c.fingerprint for c in b]

    def test_simple_chain_is_wire_ordered(self):
        chain = CertificateFactory(seed=5).simple_chain(
            root_cn="R", intermediate_cns=["I1", "I2"], leaf_cn="L")
        assert [c.short_name() for c in chain] == ["L", "I2", "I1", "R"]
        for child, parent in zip(chain, chain[1:]):
            assert parent.issued(child)

    def test_cross_sign_shares_subject_and_key(self):
        factory = CertificateFactory(seed=1)
        root_a = factory.root(name("Root A"))
        root_b = factory.root(name("Root B"))
        inter = factory.intermediate(root_a, name("Inter"))
        twin = factory.cross_sign(root_b, inter)
        assert twin.certificate.subject.matches(inter.certificate.subject)
        assert twin.key_id == inter.key_id
        assert twin.certificate.issuer.matches(root_b.subject)
        assert twin.certificate.serial != inter.certificate.serial

    def test_mismatched_pair_cert(self):
        factory = CertificateFactory(seed=1)
        cert = factory.mismatched_pair_cert(name("www.abc.com"),
                                            name("www.xyz.com"))
        assert not cert.is_self_signed
        assert cert.issuer.common_name == "www.abc.com"

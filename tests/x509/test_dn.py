"""Distinguished name parsing, formatting, and matching."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.x509.dn import (
    AttributeTypeAndValue,
    DistinguishedName,
    DNParseError,
)


class TestParse:
    def test_simple(self):
        dn = DistinguishedName.parse("CN=R3,O=Let's Encrypt,C=US")
        assert dn.common_name == "R3"
        assert dn.organization == "Let's Encrypt"
        assert dn.country == "US"
        assert len(dn) == 3

    def test_empty_string_gives_empty_dn(self):
        dn = DistinguishedName.parse("")
        assert dn.is_empty()
        assert len(dn) == 0

    def test_whitespace_around_components(self):
        dn = DistinguishedName.parse(" CN = example.com , O = Example ")
        assert dn.common_name == "example.com"
        assert dn.organization == "Example"

    def test_escaped_comma_in_value(self):
        dn = DistinguishedName.parse(r"O=GoDaddy.com\, Inc.,C=US")
        assert dn.organization == "GoDaddy.com, Inc."

    def test_escaped_plus_and_multivalued_rdn(self):
        dn = DistinguishedName.parse("CN=a+OU=b,C=US")
        assert dn.get("CN") == "a"
        assert dn.get("OU") == "b"

    def test_hex_escape(self):
        dn = DistinguishedName.parse(r"CN=a\2cb")
        assert dn.common_name == "a,b"

    def test_oid_attribute_type_mapped_to_short_name(self):
        dn = DistinguishedName.parse("2.5.4.3=example")
        assert dn.common_name == "example"

    def test_unknown_oid_preserved(self):
        dn = DistinguishedName.parse("1.2.3.4=x")
        assert dn.get("1.2.3.4") == "x"

    def test_missing_equals_raises(self):
        with pytest.raises(DNParseError):
            DistinguishedName.parse("CNexample")

    def test_empty_type_raises(self):
        with pytest.raises(DNParseError):
            DistinguishedName.parse("=value")

    def test_dangling_escape_raises(self):
        with pytest.raises(DNParseError):
            DistinguishedName.parse("CN=a\\")


class TestRender:
    def test_round_trip_simple(self):
        text = "CN=R3,O=Let's Encrypt,C=US"
        assert DistinguishedName.parse(text).rfc4514() == text

    def test_round_trip_with_specials(self):
        dn = DistinguishedName.from_pairs([("O", "GoDaddy.com, Inc."), ("C", "US")])
        again = DistinguishedName.parse(dn.rfc4514())
        assert again == dn

    def test_leading_space_escaped(self):
        dn = DistinguishedName.from_pairs([("CN", " padded ")])
        assert DistinguishedName.parse(dn.rfc4514()).common_name == " padded "

    def test_leading_hash_escaped(self):
        dn = DistinguishedName.from_pairs([("CN", "#tag")])
        assert DistinguishedName.parse(dn.rfc4514()).common_name == "#tag"


class TestMatching:
    def test_matches_is_case_insensitive(self):
        a = DistinguishedName.parse("CN=Example,O=Acme")
        b = DistinguishedName.parse("cn=example,o=ACME")
        assert a.matches(b)

    def test_matches_ignores_order(self):
        a = DistinguishedName.parse("CN=x,O=y")
        b = DistinguishedName.parse("O=y,CN=x")
        assert a.matches(b)
        assert a != b  # structural equality is order-sensitive

    def test_mismatch(self):
        a = DistinguishedName.parse("CN=x")
        b = DistinguishedName.parse("CN=y")
        assert not a.matches(b)

    def test_hashable_and_eq(self):
        a = DistinguishedName.parse("CN=x,O=y")
        b = DistinguishedName.parse("CN=x,O=y")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_get_all(self):
        dn = DistinguishedName.parse("OU=a,OU=b,CN=x")
        assert dn.get_all("OU") == ["a", "b"]

    def test_get_missing_returns_none(self):
        assert DistinguishedName.parse("CN=x").organization is None


_VALUE_ALPHABET = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="\x00"),
    min_size=1, max_size=30,
)


@given(values=st.lists(_VALUE_ALPHABET, min_size=1, max_size=5))
def test_property_round_trip_any_values(values):
    """parse(render(dn)) == dn for arbitrary attribute values."""
    pairs = [("CN" if i == 0 else "OU", v) for i, v in enumerate(values)]
    dn = DistinguishedName.from_pairs(pairs)
    assert DistinguishedName.parse(dn.rfc4514()) == dn


@given(values=st.lists(_VALUE_ALPHABET, min_size=1, max_size=4))
def test_property_matches_is_reflexive(values):
    dn = DistinguishedName.from_pairs([("CN", v) for v in values])
    assert dn.matches(dn)


@given(value=_VALUE_ALPHABET)
def test_property_normalized_casefold(value):
    a = DistinguishedName.from_pairs([("CN", value)])
    b = DistinguishedName.from_pairs([("CN", value.upper())])
    assert a.matches(b)

"""Memoized serialization: DER cache and fingerprint memo semantics.

The generation fast path serializes the same certificate objects tens of
thousands of times (once per presenting connection for fingerprints,
once per PEM render for DER).  Both memos must be invisible: identical
bytes, hit/miss accounting on the DER side, and — the subtle hazard —
no aliasing between certificates that share a *fingerprint* (the
canonical excludes extensions) while differing in DER.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs import instruments
from repro.obs.metrics import get_registry
from repro.x509 import CertificateFactory, name
from repro.x509 import der as der_module
from repro.x509.der import certificate_to_pem, encode_certificate_der
from repro.x509.extensions import ExtensionSet


@pytest.fixture()
def leaf():
    factory = CertificateFactory(seed=77)
    root = factory.root(name("Memo Test Root", o="MemoOrg", c="US"))
    return factory.leaf(root, name("memo-test.example"),
                        dns_names=["memo-test.example"])


class TestDERMemo:
    def test_repeat_encode_hits_cache_with_identical_bytes(self, leaf):
        der_module._DER_MEMO.clear()
        get_registry().reset()
        first = encode_certificate_der(leaf)
        assert instruments.DER_ENCODE_CACHE.value(result="miss") == 1
        second = encode_certificate_der(leaf)
        assert second == first
        assert instruments.DER_ENCODE_CACHE.value(result="hit") == 1

    def test_pem_rides_the_der_memo(self, leaf):
        der_module._DER_MEMO.clear()
        get_registry().reset()
        certificate_to_pem(leaf)
        certificate_to_pem(leaf)
        assert instruments.DER_ENCODE_CACHE.value(result="hit") == 1

    def test_same_fingerprint_different_extensions_not_aliased(self, leaf):
        """The memo key is the certificate object, never the fingerprint:
        the fingerprint canonical excludes extensions, so two objects can
        share a fingerprint while their DER must differ."""
        stripped = dataclasses.replace(leaf, extensions=ExtensionSet())
        assert stripped.fingerprint == leaf.fingerprint
        der_module._DER_MEMO.clear()
        assert encode_certificate_der(stripped) != \
            encode_certificate_der(leaf)
        # And again from a warm cache: still distinct entries.
        assert encode_certificate_der(stripped) != \
            encode_certificate_der(leaf)


class TestFingerprintMemo:
    def test_memo_matches_first_computation(self, leaf):
        assert leaf.fingerprint == leaf.fingerprint
        assert leaf._fingerprint_memo == leaf.fingerprint

    def test_replace_recomputes_cleanly(self, leaf):
        _ = leaf.fingerprint  # prime the memo
        changed = dataclasses.replace(leaf, serial="deadbeef")
        assert changed._fingerprint_memo is None
        assert changed.fingerprint != leaf.fingerprint

    def test_memo_excluded_from_equality(self, leaf):
        primed = dataclasses.replace(leaf)
        _ = leaf.fingerprint  # memo set on one side only
        assert primed == leaf
        assert hash(primed) == hash(leaf)

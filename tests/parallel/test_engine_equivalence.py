"""Parallel ingestion == serial ingestion, byte for byte.

The engine's central guarantee: for the same shard set, the merged chain
map — including dict insertion order, every Counter's key order, and all
usage accumulators — is identical whether read by one process or many,
and identical to the original serial read/join/aggregate path.  These
tests pin that guarantee at every layer: raw chain maps, AnalysisResult
tables, quarantine contents under corruption, exported metric values,
and checkpoint fingerprints.
"""

from __future__ import annotations

import shutil

import pytest

from repro.campus.dataset import cached_campus_dataset
from repro.core.categorization import ChainCategory
from repro.core.chain import aggregate_chains
from repro.core.pipeline import ChainStructureAnalyzer
from repro.faults import FaultPlan
from repro.obs.metrics import get_registry
from repro.parallel import discover_shards, ingest_logs, ingest_shards, \
    split_zeek_log
from repro.parallel.supervisor import SupervisorConfig
from repro.resilience import Quarantine
from repro.resilience.journal import RunJournal
from repro.zeek.format import read_zeek_log
from repro.zeek.records import SSLRecord, X509Record
from repro.zeek.tap import join_logs

JOBS_MATRIX = [1, 2, 4]


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """One dataset, written as a single pair AND as four broadcast shards."""
    base = tmp_path_factory.mktemp("parallel-corpus")
    dataset = cached_campus_dataset(seed="par-eq", scale="small")
    ssl_path, x509_path = dataset.write_zeek_logs(str(base / "whole"))
    shard_dir = base / "shards"
    split_zeek_log(ssl_path, str(shard_dir), 4)
    # Certificates are de-duplicated corpus-wide, so the x509 log is
    # broadcast whole to every shard rather than split.
    shutil.copy(x509_path, shard_dir / "x509.log")
    return {
        "ssl": ssl_path,
        "x509": x509_path,
        "shards": discover_shards(str(shard_dir)),
    }


def serial_chains(ssl_path: str, x509_path: str):
    """The pre-engine reference path: legacy reader, list join, one pass."""
    _, ssl_rows = read_zeek_log(ssl_path, compiled=False)
    _, x509_rows = read_zeek_log(x509_path, compiled=False)
    joined = join_logs([SSLRecord.from_row(r) for r in ssl_rows],
                       [X509Record.from_row(r) for r in x509_rows])
    return aggregate_chains(joined)


def canon(chains):
    """Full observable state of a chain map, order included."""
    return [(key, tuple(c.fingerprint for c in chain.certificates),
             chain.usage.connections, chain.usage.established,
             sorted(chain.usage.client_ips), list(chain.usage.ports.items()),
             chain.usage.sni_present, sorted(chain.usage.snis),
             chain.usage.first_seen, chain.usage.last_seen,
             sorted(chain.usage.server_ips))
            for key, chain in chains.items()]


class TestEngineMatchesSerial:
    def test_unsharded_ingest_equals_legacy_serial_path(self, corpus):
        reference = serial_chains(corpus["ssl"], corpus["x509"])
        ingest = ingest_logs(corpus["ssl"], corpus["x509"], jobs=1)
        assert canon(ingest.chains) == canon(reference)
        assert ingest.missing_certs == 0

    def test_sharded_ingest_equals_legacy_serial_path(self, corpus):
        reference = serial_chains(corpus["ssl"], corpus["x509"])
        ingest = ingest_shards(corpus["shards"], jobs=2)
        assert canon(ingest.chains) == canon(reference)


class TestJobsInvariance:
    def test_chain_maps_identical_across_worker_counts(self, corpus):
        results = [ingest_shards(corpus["shards"], jobs=jobs)
                   for jobs in JOBS_MATRIX]
        baseline = canon(results[0].chains)
        assert baseline  # non-trivial corpus
        for result in results[1:]:
            assert canon(result.chains) == baseline

    def test_tallies_and_fingerprints_identical(self, corpus):
        results = [ingest_shards(corpus["shards"], jobs=jobs)
                   for jobs in JOBS_MATRIX]
        baseline = results[0]
        assert baseline.ssl_rows > 0
        assert baseline.cert_fingerprints  # dedup'd, first-seen order
        for result in results[1:]:
            assert result.cert_fingerprints == baseline.cert_fingerprints
            assert (result.ssl_rows, result.x509_rows, result.joined,
                    result.missing_certs, result.aggregated,
                    result.skipped_empty) == \
                (baseline.ssl_rows, baseline.x509_rows, baseline.joined,
                 baseline.missing_certs, baseline.aggregated,
                 baseline.skipped_empty)

    def test_analysis_tables_identical_across_worker_counts(
            self, corpus, registry):
        tables = []
        for jobs in JOBS_MATRIX:
            ingest = ingest_shards(corpus["shards"], jobs=jobs)
            result = ChainStructureAnalyzer(registry).analyze_ingest(ingest)
            path_stats = result.multicert_path_stats(
                ChainCategory.NON_PUBLIC_ONLY)
            tables.append((result.categorized.summary_rows(), path_stats))
        assert tables[0][0]  # Table 2 rows exist
        for rows, stats in tables[1:]:
            assert rows == tables[0][0]
            assert stats == tables[0][1]

    def test_checkpoint_fingerprint_identical_across_worker_counts(
            self, corpus, registry):
        analyzer = ChainStructureAnalyzer(registry)
        fingerprints = {
            analyzer._fingerprint(
                ingest_shards(corpus["shards"], jobs=jobs).chains)
            for jobs in JOBS_MATRIX}
        assert len(fingerprints) == 1

    def test_metric_values_identical_across_worker_counts(self, corpus):
        # Everything except wall-clock timing and the worker gauge must be
        # invariant under --jobs: workers stay silent and the driver emits
        # canonical values from the merged result.
        snapshots = []
        for jobs in JOBS_MATRIX:
            get_registry().reset()
            ingest_shards(corpus["shards"], jobs=jobs)
            snapshot = get_registry().snapshot()
            snapshots.append({
                family: [(s["labels"], s["value"]) for s in data["samples"]]
                for family, data in snapshot.items()
                if data["kind"] == "counter"
            })
        assert snapshots[0]["repro_zeek_rows_total"]
        for snapshot in snapshots[1:]:
            assert snapshot == snapshots[0]


class TestCorruptionEquivalence:
    """5% corruption over the SAME shard set: identical quarantine and
    chains no matter how many workers read it (draws are keyed by the
    plan seed and each shard file's line numbers, never by worker)."""

    PLAN = FaultPlan(seed="par-chaos", zeek_corrupt_rate=0.05)

    def _run(self, corpus, jobs):
        quarantine = Quarantine()
        ingest = ingest_shards(corpus["shards"], jobs=jobs, plan=self.PLAN,
                               quarantine=quarantine)
        return ingest, quarantine

    def test_quarantine_identical_across_worker_counts(self, corpus):
        runs = [self._run(corpus, jobs) for jobs in JOBS_MATRIX]
        _, base_q = runs[0]
        assert base_q.records  # the plan actually corrupted rows
        for _, quarantine in runs[1:]:
            assert quarantine.records == base_q.records

    def test_degraded_chains_identical_across_worker_counts(self, corpus):
        runs = [self._run(corpus, jobs) for jobs in JOBS_MATRIX]
        base_ingest, _ = runs[0]
        for ingest, _ in runs[1:]:
            assert canon(ingest.chains) == canon(base_ingest.chains)

    def test_corruption_actually_changed_the_input(self, corpus):
        clean = ingest_shards(corpus["shards"], jobs=2)
        degraded, _ = self._run(corpus, 2)
        assert degraded.ssl_rows + degraded.x509_rows < \
            clean.ssl_rows + clean.x509_rows


class TestColumnarToggleEquivalence:
    """The columnar hot path (default) against its own escape hatch:
    flipping ``columnar=False`` must change nothing observable."""

    def test_chain_maps_identical_with_and_without_columnar(self, corpus):
        for jobs in JOBS_MATRIX:
            columnar = ingest_shards(corpus["shards"], jobs=jobs)
            rowwise = ingest_shards(corpus["shards"], jobs=jobs,
                                    columnar=False)
            assert canon(columnar.chains) == canon(rowwise.chains)
            assert columnar.cert_fingerprints == rowwise.cert_fingerprints
            assert (columnar.ssl_rows, columnar.joined,
                    columnar.missing_certs, columnar.aggregated,
                    columnar.skipped_empty) == \
                (rowwise.ssl_rows, rowwise.joined, rowwise.missing_certs,
                 rowwise.aggregated, rowwise.skipped_empty)

    def test_quarantine_parity_under_corruption(self, corpus):
        plan = FaultPlan(seed="col-chaos", zeek_corrupt_rate=0.05)
        records = []
        for columnar in (True, False):
            quarantine = Quarantine()
            ingest_shards(corpus["shards"], jobs=2, plan=plan,
                          quarantine=quarantine, columnar=columnar)
            records.append(quarantine.records)
        assert records[0]  # the plan actually corrupted rows
        assert records[0] == records[1]

    def test_worker_crashes_with_journal_and_resume(self, corpus,
                                                    tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_NO_CPU_CLAMP", "1")
        reference = serial_chains(corpus["ssl"], corpus["x509"])
        chaos = FaultPlan(seed="col-crash", worker_crash_rate=0.5)
        with RunJournal(str(tmp_path / "journal")) as journal:
            crashed = ingest_shards(
                corpus["shards"], jobs=2,
                supervise=SupervisorConfig(plan=chaos, max_task_retries=3,
                                           journal=journal))
        assert any(i.incident == "worker_crash"
                   for i in crashed.supervisor.incidents)
        assert canon(crashed.chains) == canon(reference)
        # A resumed run replays the journaled columnar partials and
        # still reduces to the identical chain map.
        with RunJournal(str(tmp_path / "journal")) as journal:
            resumed = ingest_shards(
                corpus["shards"], jobs=2,
                supervise=SupervisorConfig(journal=journal, resume=True))
        assert resumed.supervisor.journal_replayed >= 1
        assert canon(resumed.chains) == canon(reference)

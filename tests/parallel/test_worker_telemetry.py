"""Worker telemetry end to end: spans cross the pool, traces show pids.

The acceptance bar for the telemetry sink: a ``--jobs 4`` ingest over
four shards, with the CPU clamp lifted, must yield a Chrome-trace JSON
whose span events come from four distinct worker pids — proof that the
capture/attach path survives pickling and that the exporter maps each
worker onto its own process track.
"""

from __future__ import annotations

import json
import logging
import shutil

import pytest

from repro.campus.dataset import cached_campus_dataset
from repro.obs.metrics import get_registry
from repro.obs.sink import get_sink
from repro.obs.traceexport import distinct_pids, validate_trace, write_trace
from repro.obs.tracing import get_tracer
from repro.parallel import discover_shards, ingest_shards, split_zeek_log
from repro.parallel.pool import NO_CPU_CLAMP_VAR, clamp_jobs, make_pool
from repro.scan import ActiveScanner, ScanTarget


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    base = tmp_path_factory.mktemp("telemetry-corpus")
    dataset = cached_campus_dataset(seed="telemetry", scale="small")
    ssl_path, x509_path = dataset.write_zeek_logs(str(base / "whole"))
    shard_dir = base / "shards"
    split_zeek_log(ssl_path, str(shard_dir), 4)
    shutil.copy(x509_path, shard_dir / "x509.log")
    return discover_shards(str(shard_dir))


@pytest.fixture(autouse=True)
def fresh_telemetry():
    get_sink().reset()
    get_tracer().reset()
    yield
    get_sink().reset()


class TestClampJobs:
    def test_effective_capped_by_units_and_cpu(self, monkeypatch):
        monkeypatch.delenv(NO_CPU_CLAMP_VAR, raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 2)
        assert clamp_jobs(8, 4) == (8, 2)
        assert clamp_jobs(8, 1) == (8, 1)
        assert clamp_jobs(1, 4) == (1, 1)

    def test_none_requested_defaults_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(NO_CPU_CLAMP_VAR, raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 3)
        assert clamp_jobs(None, 8) == (3, 3)

    def test_env_var_lifts_cpu_clamp_not_unit_clamp(self, monkeypatch):
        monkeypatch.setenv(NO_CPU_CLAMP_VAR, "1")
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert clamp_jobs(4, 4) == (4, 4)
        assert clamp_jobs(4, 2) == (4, 2)  # units still cap


class TestIngestTelemetry:
    def test_pool_run_collects_one_record_per_shard(self, corpus,
                                                    monkeypatch):
        monkeypatch.setenv(NO_CPU_CLAMP_VAR, "1")
        ingest = ingest_shards(corpus, jobs=2)
        assert ingest.jobs == 2
        sink = get_sink()
        assert [t.unit for t in sink.records
                if t.kind == "ingest"] == [0, 1, 2, 3]
        assert sink.summary()["ingest"]["records"] == 4
        # Every shard body traced at least its outer ingest_shard span;
        # the columnar default reads through columnar_read spans and
        # marks each shard's payload size.
        names = {span.name for _, span in sink.spans()}
        assert "ingest_shard" in names
        assert "columnar_read" in names
        assert "shard_payload" in names

    def test_inline_run_collects_identical_record_set(self, corpus):
        ingest_shards(corpus, jobs=1)
        sink = get_sink()
        assert [t.unit for t in sink.records
                if t.kind == "ingest"] == [0, 1, 2, 3]
        # Inline capture drains worker spans out of the driver tracer:
        # no ingest_shard span may appear on the driver's own timeline.
        driver_names = {r.name for r in get_tracer().finished}
        assert "ingest_shard" not in driver_names
        assert "parallel_ingest" in driver_names

    def test_trace_export_shows_four_distinct_worker_pids(self, corpus,
                                                          tmp_path,
                                                          monkeypatch):
        monkeypatch.setenv(NO_CPU_CLAMP_VAR, "1")
        ingest = ingest_shards(corpus, jobs=4)
        assert ingest.jobs == 4  # clamp lifted: truly four processes
        trace_path = tmp_path / "trace.json"
        write_trace(str(trace_path))
        trace = json.loads(trace_path.read_text())
        validate_trace(trace)
        worker_pids = distinct_pids(trace, category="ingest")
        assert len(worker_pids) >= 4
        # Worker tracks are labelled kind-unit for the Perfetto UI.
        thread_names = {e["args"]["name"]
                        for e in trace["traceEvents"]
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"ingest-00", "ingest-01",
                "ingest-02", "ingest-03"} <= thread_names


def _dead_targets(count: int):
    # Known-dead targets (server=None) exercise the full scan_many
    # batching and telemetry path without needing a certificate fleet.
    return [ScanTarget(server_id=f"srv-{i:02d}",
                       hostname=f"host{i}.example")
            for i in range(count)]


class TestScanTelemetry:
    def test_parallel_scan_attaches_batch_records(self, monkeypatch):
        monkeypatch.setenv(NO_CPU_CLAMP_VAR, "1")
        scanner = ActiveScanner(seed="telemetry-scan")
        scanner.scan_many(_dead_targets(6), jobs=2)
        records = [t for t in get_sink().records if t.kind == "scan"]
        assert [t.unit for t in records] == [0, 1]
        names = {span.name for t in records for span in t.spans}
        assert "scan_batch" in names

    def test_scan_results_identical_with_and_without_pool(self,
                                                          monkeypatch):
        monkeypatch.setenv(NO_CPU_CLAMP_VAR, "1")
        targets = _dead_targets(6)
        inline = ActiveScanner(seed="telemetry-scan").scan_many(
            targets, jobs=1)
        pooled = ActiveScanner(seed="telemetry-scan").scan_many(
            targets, jobs=3)
        assert pooled == inline


def _worker_root_level(_: int) -> int:
    return logging.getLogger("repro").getEffectiveLevel()


class TestWorkerLoggingPropagation:
    def test_bootstrap_applies_the_handed_level(self):
        # S2: the unit the pool initializer runs — force-reconfigures
        # the worker's root logger to the driver's level.
        from repro.obs.logging import configure_logging
        from repro.parallel.pool import _bootstrap_worker
        configure_logging(level="WARNING", force=True)
        try:
            _bootstrap_worker("DEBUG")
            assert logging.getLogger("repro").getEffectiveLevel() \
                == logging.DEBUG
        finally:
            configure_logging(level="WARNING", force=True)

    def test_pool_workers_run_at_driver_level(self, monkeypatch):
        monkeypatch.setenv(NO_CPU_CLAMP_VAR, "1")
        from repro.obs.logging import configure_logging
        configure_logging(level="DEBUG", force=True)
        try:
            with make_pool(2) as pool:
                levels = set(pool.map(_worker_root_level, range(2)))
        finally:
            configure_logging(level="WARNING", force=True)
        assert levels == {logging.DEBUG}


class TestMetricsStayInvariant:
    def test_counter_export_identical_inline_vs_pool(self, corpus,
                                                     monkeypatch):
        monkeypatch.setenv(NO_CPU_CLAMP_VAR, "1")
        snapshots = []
        for jobs in (1, 4):
            get_registry().reset()
            get_sink().reset()
            ingest_shards(corpus, jobs=jobs)
            snapshot = get_registry().snapshot()
            snapshots.append({
                family: [(s["labels"], s["value"]) for s in data["samples"]]
                for family, data in snapshot.items()
                if data["kind"] == "counter"})
        assert snapshots[0] == snapshots[1]
        # Other kinds may linger as zeroed children from earlier tests
        # (registry.reset() keeps the child set); the ingest sample is
        # what this run must have produced.
        assert ({"kind": "ingest"}, 4) in \
            snapshots[0]["repro_worker_telemetry_records_total"]

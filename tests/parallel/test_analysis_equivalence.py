"""Parallel analysis == serial analysis, byte for byte.

The enrichment engine's central guarantee: for the same chain map, every
paper output — Table 1/2/3/6/7/8, Figure 6, the §4.3 single-certificate
stats, and the per-category chain orderings — is identical whether the
stages run serially (``jobs=None``), inline through the partition engine
(``jobs=1``), or across a real process pool, and identical at every
``jobs`` value.  Counter-valued metrics must be invariant too: workers
stay silent and the driver emits canonical values from the merge.
"""

from __future__ import annotations

import os

import pytest

from repro.campus.dataset import cached_campus_dataset
from repro.core.categorization import ChainCategory
from repro.core.chain import aggregate_chains
from repro.core.matching import analyze_structure
from repro.obs.metrics import get_registry
from repro.parallel import analyze_partitions, ingest_logs, partition_index
from repro.parallel.analysis import DEFAULT_PARTITIONS

JOBS_MATRIX = [1, 2, 4]


@pytest.fixture(scope="module")
def dataset():
    """A small campaign with CT index, vendor directory and disclosures —
    so Table 1 (interception) and cross-sign bridging are non-trivial."""
    return cached_campus_dataset(seed="ana-eq", scale="small")


@pytest.fixture(scope="module")
def chains(dataset):
    return aggregate_chains(dataset.joined())


def render(result):
    """Every observable output of one analysis, orderings included."""
    return {
        "table1": result.interception.category_table(result.chains),
        "table2": result.categorized.summary_rows(),
        "table3": result.hybrid.table3_rows(),
        "table6": result.hybrid.table6_rows(),
        "table7": result.hybrid.table7_rows(),
        "table8": {c.value: result.multicert_path_stats(c)
                   for c in ChainCategory},
        "figure6": result.hybrid.figure6_histogram(),
        "singles": {c.value: result.single_cert_stats(c)
                    for c in ChainCategory},
        "orders": {c.value: [chain.key
                             for chain in result.categorized.chains(c)]
                   for c in ChainCategory},
    }


class TestAnalysisJobsInvariance:
    def test_tables_identical_across_jobs_and_vs_serial(self, dataset,
                                                        chains):
        get_registry().reset()
        serial = render(dataset.analyzer().analyze_chains(chains))
        # The corpus exercises every comparison surface.
        assert serial["table2"]
        assert sum(row["issuers"] for row in serial["table1"]) > 0
        assert serial["table3"]
        assert any(count for _, count in serial["figure6"])
        for jobs in JOBS_MATRIX:
            get_registry().reset()
            result = dataset.analyzer().analyze_chains(chains, jobs=jobs)
            assert render(result) == serial

    def test_counter_metrics_identical_across_jobs(self, dataset, chains):
        # Everything except wall-clock timing and the worker gauge must be
        # invariant under jobs: the partition count is fixed, workers run
        # with metrics disabled, and the driver emits canonical values.
        snapshots = []
        for jobs in JOBS_MATRIX:
            get_registry().reset()
            dataset.analyzer().analyze_chains(chains, jobs=jobs)
            snapshot = get_registry().snapshot()
            snapshots.append({
                family: [(s["labels"], s["value"]) for s in data["samples"]]
                for family, data in snapshot.items()
                if data["kind"] == "counter"
            })
        assert snapshots[0]["repro_analysis_chains_total"]
        assert snapshots[0]["repro_analysis_partitions_total"] == \
            [({"outcome": "ok"}, float(DEFAULT_PARTITIONS))]
        for snapshot in snapshots[1:]:
            assert snapshot == snapshots[0]

    def test_pool_path_matches_inline(self, dataset, chains, monkeypatch):
        """Force a real ProcessPoolExecutor (the CPU clamp would otherwise
        run inline on small boxes) — the tasks and partials must survive
        the pickle boundary with identical output."""
        get_registry().reset()
        baseline = render(dataset.analyzer().analyze_chains(chains, jobs=1))
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        get_registry().reset()
        pooled = dataset.analyzer().analyze_chains(chains, jobs=2)
        assert render(pooled) == baseline


class TestEagerStructures:
    def test_structure_cache_prefilled_for_every_multicert_chain(
            self, dataset, chains):
        result = dataset.analyzer().analyze_chains(chains, jobs=1)
        multi = [c for c in chains.values() if c.length > 1]
        assert multi  # non-trivial corpus
        assert len(result._structure_cache) == 2 * len(multi)
        for chain in multi:
            assert chain.key + ("L",) in result._structure_cache
            assert chain.key + ("N",) in result._structure_cache

    def test_prefilled_structures_match_fresh_analysis(self, dataset,
                                                       chains):
        result = dataset.analyzer().analyze_chains(chains, jobs=1)
        disclosures = dataset.disclosures
        for chain in list(chains.values())[:25]:
            if chain.length <= 1:
                continue
            for require_leaf in (True, False):
                cached = result.structure_of(chain,
                                             require_leaf=require_leaf)
                fresh = analyze_structure(chain.certificates,
                                          disclosures=disclosures,
                                          require_leaf=require_leaf)
                assert cached.pair_matches == fresh.pair_matches
                assert cached.segments == fresh.segments
                assert cached.complete_paths == fresh.complete_paths
                assert cached.best_path == fresh.best_path
                assert cached.mismatch_ratio == fresh.mismatch_ratio

    def test_hybrid_analyses_reference_driver_chains(self, dataset, chains):
        """Worker output crossed a pickle boundary; the driver must rebind
        analyses to the chain map's own objects."""
        result = dataset.analyzer().analyze_chains(chains, jobs=2)
        for analysis in result.hybrid.analyses:
            assert analysis.chain is chains[analysis.chain.key]
            assert analysis.structure.certificates \
                is analysis.chain.certificates


class TestPartitioning:
    def test_partition_index_is_stable_and_in_range(self, chains):
        for key in chains:
            index = partition_index(key, DEFAULT_PARTITIONS)
            assert 0 <= index < DEFAULT_PARTITIONS
            assert index == partition_index(key, DEFAULT_PARTITIONS)

    def test_partitioning_spreads_a_real_corpus(self, chains):
        used = {partition_index(key, DEFAULT_PARTITIONS) for key in chains}
        assert len(used) > 1

    def test_partition_count_independent_of_jobs(self, dataset, chains):
        enrichments = [
            analyze_partitions(chains, registry=dataset.registry,
                               disclosures=dataset.disclosures, jobs=jobs)
            for jobs in JOBS_MATRIX]
        baseline = enrichments[0]
        assert baseline.partitions == DEFAULT_PARTITIONS
        for enriched in enrichments[1:]:
            assert enriched.partitions == baseline.partitions
            assert enriched.categories == baseline.categories
            assert sorted(enriched.hybrid_by_key) == \
                sorted(baseline.hybrid_by_key)


class TestIngestJobsClamp:
    def test_requested_jobs_recorded_and_clamped(self, dataset, tmp_path):
        ssl_path, x509_path = dataset.write_zeek_logs(str(tmp_path))
        ingest = ingest_logs(ssl_path, x509_path, jobs=64)
        assert ingest.requested_jobs == 64
        # One shard and a finite CPU count both cap the effective value.
        assert ingest.jobs == 1
        assert ingest.jobs <= (os.cpu_count() or 1)

"""Supervised dispatch: crash/hang recovery, retries, journals, fallback.

Unit-level coverage of :func:`repro.parallel.supervisor.run_supervised`
against tiny arithmetic tasks — the engine-level byte-identity chaos
tests live in ``test_supervisor_recovery.py``.  The start method is
fork, so module-level task functions pickle into pool workers directly.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.parallel.supervisor import (HANG_SECONDS_VAR, SupervisorConfig,
                                       heartbeat, resolve_config,
                                       run_supervised)
from repro.resilience import Quarantine, RunJournal


def square(task):
    return task * task


def odd_explodes(task):
    if task % 2:
        raise ValueError(f"bad:{task}")
    return task


def never_called(task):
    raise AssertionError(f"task {task} should have been replayed")


def fingerprint_of(task):
    return f"fp-{task}"


CRASH_ALL = FaultPlan(seed="sup-crash", worker_crash_rate=1.0)


class TestInline:
    def test_results_in_task_order(self):
        run = run_supervised("t", [1, 2, 3], square, jobs=1)
        assert run.results == [1, 4, 9]
        assert not run.degraded
        assert run.summary_lines() == []

    def test_zero_tasks(self):
        run = run_supervised("t", [], square, jobs=4)
        assert run.results == []
        assert not run.degraded

    def test_heartbeat_is_noop_in_driver(self):
        heartbeat("t:0000")  # no deadline run active: must not raise


class TestPool:
    def test_results_in_task_order(self):
        run = run_supervised("t", list(range(6)), square, jobs=2)
        assert run.results == [0, 1, 4, 9, 16, 25]
        assert not run.degraded

    def test_lowest_indexed_task_error_wins(self):
        # Ordinary task exceptions are not infrastructure: no retry, and
        # the error a serial loop would have hit first is the one raised.
        with pytest.raises(ValueError, match="bad:1"):
            run_supervised("t", [0, 1, 2, 3], odd_explodes, jobs=2)


class TestCrashRecovery:
    def test_poison_tasks_recovered_in_driver(self):
        quarantine = Quarantine()
        config = SupervisorConfig(plan=CRASH_ALL, max_task_retries=1,
                                  quarantine=quarantine)
        run = run_supervised("t", [2, 3], square, jobs=2, config=config)
        assert run.results == [4, 9]
        assert run.degraded
        assert run.fallbacks == 2
        assert sorted(run.quarantined) == ["t:0000", "t:0001"]
        assert run.pool_rebuilds >= 1
        kinds = {incident.incident for incident in run.incidents}
        assert "worker_crash" in kinds
        assert "serial_fallback" in kinds
        assert len(quarantine) == 2
        assert all(r.reason == "poison_task" for r in quarantine)
        assert any("recovered in-driver" in line
                   for line in run.summary_lines())

    def test_serial_fallback_disabled_drops_with_none(self):
        config = SupervisorConfig(plan=CRASH_ALL, max_task_retries=0,
                                  serial_fallback=False)
        run = run_supervised("t", [2], square, jobs=2, config=config)
        assert run.results == [None]
        assert run.quarantined == ["t:0000"]
        assert run.fallbacks == 0
        assert any("dropped" in line for line in run.summary_lines())

    def test_partial_crash_rate_always_recovers_correct_results(self):
        plan = FaultPlan(seed="sup-partial", worker_crash_rate=0.4)
        for _ in range(2):
            config = SupervisorConfig(plan=plan, max_task_retries=3)
            run = run_supervised("t", list(range(6)), square, jobs=2,
                                 config=config)
            assert run.results == [t * t for t in range(6)]

    def test_incident_report_shape(self):
        config = SupervisorConfig(plan=CRASH_ALL, max_task_retries=0)
        run = run_supervised("t", [5], square, jobs=2, config=config)
        report = run.report()
        assert report["kind"] == "t"
        assert report["tasks"] == 1
        assert report["quarantined"] == ["t:0000"]
        assert report["fallbacks"] == 1
        assert any(entry["incident"] == "worker_crash"
                   for entry in report["incidents"])


class TestHangRecovery:
    def test_hung_worker_detected_and_recovered(self, monkeypatch):
        # The injected hang sleeps far past the deadline; kill_pool reaps
        # the sleeping worker when the watchdog fires.
        monkeypatch.setenv(HANG_SECONDS_VAR, "30")
        plan = FaultPlan(seed="sup-hang", worker_hang_rate=1.0)
        config = SupervisorConfig(plan=plan, max_task_retries=0,
                                  task_timeout=0.3, poll_interval=0.05)
        run = run_supervised("t", [4], square, jobs=2, config=config)
        assert run.results == [16]
        assert any(incident.incident == "worker_hang"
                   for incident in run.incidents)
        assert run.pool_rebuilds >= 1
        assert run.fallbacks == 1

    def test_deadline_leaves_healthy_tasks_alone(self):
        config = SupervisorConfig(task_timeout=30.0, poll_interval=0.05)
        run = run_supervised("t", [1, 2, 3], square, jobs=2, config=config)
        assert run.results == [1, 4, 9]
        assert not run.degraded


class TestJournal:
    def test_resume_replays_completed_tasks(self, tmp_path):
        with RunJournal(str(tmp_path / "j")) as journal:
            config = SupervisorConfig(journal=journal)
            first = run_supervised("t", [1, 2, 3], square, jobs=1,
                                   config=config,
                                   fingerprint_fn=fingerprint_of)
        assert first.results == [1, 4, 9]
        assert first.journal_replayed == 0

        with RunJournal(str(tmp_path / "j")) as journal:
            config = SupervisorConfig(journal=journal, resume=True)
            second = run_supervised("t", [1, 2, 3], never_called, jobs=1,
                                    config=config,
                                    fingerprint_fn=fingerprint_of)
        assert second.results == [1, 4, 9]
        assert second.journal_replayed == 3

    def test_without_resume_journal_is_write_only(self, tmp_path):
        with RunJournal(str(tmp_path / "j")) as journal:
            run_supervised("t", [2], square, jobs=1,
                           config=SupervisorConfig(journal=journal),
                           fingerprint_fn=fingerprint_of)
        with RunJournal(str(tmp_path / "j")) as journal:
            run = run_supervised("t", [2], square, jobs=1,
                                 config=SupervisorConfig(journal=journal),
                                 fingerprint_fn=fingerprint_of)
        assert run.journal_replayed == 0
        assert run.results == [4]

    def test_stale_fingerprint_recomputes(self, tmp_path):
        with RunJournal(str(tmp_path / "j")) as journal:
            run_supervised("t", [3], square, jobs=1,
                           config=SupervisorConfig(journal=journal),
                           fingerprint_fn=fingerprint_of)
        with RunJournal(str(tmp_path / "j")) as journal:
            config = SupervisorConfig(journal=journal, resume=True)
            run = run_supervised("t", [3], square, jobs=1, config=config,
                                 fingerprint_fn=lambda task: "changed")
        assert run.journal_replayed == 0
        assert run.results == [9]

    def test_validate_fn_vetoes_replay(self, tmp_path):
        with RunJournal(str(tmp_path / "j")) as journal:
            run_supervised("t", [3], square, jobs=1,
                           config=SupervisorConfig(journal=journal),
                           fingerprint_fn=fingerprint_of)
        with RunJournal(str(tmp_path / "j")) as journal:
            config = SupervisorConfig(journal=journal, resume=True)
            run = run_supervised("t", [3], square, jobs=1, config=config,
                                 fingerprint_fn=fingerprint_of,
                                 validate_fn=lambda task, payload: False)
        assert run.journal_replayed == 0
        assert run.results == [9]

    def test_partial_journal_resumes_remaining_tasks(self, tmp_path):
        # Simulate a driver killed after two of four tasks: only those
        # two are journaled, and the resume recomputes just the rest.
        with RunJournal(str(tmp_path / "j")) as journal:
            for i in (0, 1):
                journal.record("t", f"t:{i:04d}", fingerprint_of(i), i * i)
        with RunJournal(str(tmp_path / "j")) as journal:
            config = SupervisorConfig(journal=journal, resume=True)
            run = run_supervised("t", [0, 1, 2, 3], square, jobs=1,
                                 config=config,
                                 fingerprint_fn=fingerprint_of)
        assert run.journal_replayed == 2
        assert run.results == [0, 1, 4, 9]


class TestResolveConfig:
    def test_defaults_fill_without_mutating_caller(self):
        plan = FaultPlan(seed="r", worker_crash_rate=0.5)
        quarantine = Quarantine()
        caller = SupervisorConfig(max_task_retries=7)
        config = resolve_config(caller, plan=plan, quarantine=quarantine)
        assert config is not caller
        assert config.max_task_retries == 7
        assert config.plan is plan
        assert config.quarantine is quarantine
        assert caller.plan is None and caller.quarantine is None

    def test_zero_rate_plan_not_installed(self):
        config = resolve_config(None, plan=FaultPlan(seed="r"))
        assert config.plan is None

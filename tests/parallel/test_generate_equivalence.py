"""Parallel generation == serial generation, byte for byte.

The generation engine's central guarantee: the ``ssl-NN.log`` shard
files and the broadcast ``x509.log`` are identical at any ``--jobs``,
and their in-order concatenation (data rows; headers are pinned via
``open_time``) reproduces the serial ``build_campus_dataset`` write-out
exactly.  These tests pin that guarantee at every layer: raw bytes,
behaviour under an active fault plan (generation draws from its own
derived streams, so a plan must not perturb it), the closed
generate → ingest → analyze loop against the in-memory pipeline, and
exported counter values.
"""

from __future__ import annotations

import os

import pytest

from repro.campus.dataset import build_campus_dataset, resolve_scale
from repro.campus.workload import GENERATION_SHARDS, STUDY_START
from repro.core.categorization import ChainCategory
from repro.core.chain import aggregate_chains
from repro.faults import FaultPlan, clear_plan, install_plan
from repro.obs.metrics import get_registry
from repro.parallel import discover_shards, generate_dataset, ingest_shards

JOBS_MATRIX = [1, 2, 4]
SEED = "gen-eq"


def read_all(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def data_rows(text):
    return [line for line in text.splitlines(keepends=True)
            if not line.startswith("#")]


@pytest.fixture(scope="module")
def serial_logs(tmp_path_factory):
    """The reference: the serial builder's single ssl/x509 pair."""
    out = tmp_path_factory.mktemp("serial")
    dataset = build_campus_dataset(seed=SEED, scale=resolve_scale("small"))
    ssl_path, x509_path = dataset.write_zeek_logs(str(out),
                                                  open_time=STUDY_START)
    return {"dataset": dataset, "ssl": read_all(ssl_path),
            "x509": read_all(x509_path)}


@pytest.fixture(scope="module")
def generated(tmp_path_factory, serial_logs):
    """One generation run per jobs value, pool path forced via cpu_count."""
    outputs = {}
    patcher = pytest.MonkeyPatch()
    patcher.setattr(os, "cpu_count", lambda: 4)
    try:
        for jobs in JOBS_MATRIX:
            out = str(tmp_path_factory.mktemp(f"gen-j{jobs}"))
            get_registry().reset()
            result = generate_dataset(out, seed=SEED,
                                      scale=resolve_scale("small"),
                                      jobs=jobs)
            outputs[jobs] = {"out": out, "result": result}
    finally:
        patcher.undo()
    return outputs


class TestGoldenByteIdentity:
    def test_layout_is_ssl_shards_plus_broadcast_x509(self, generated):
        for jobs, run in generated.items():
            names = sorted(os.listdir(run["out"]))
            expected = [f"ssl-{s:02d}.log" for s in range(GENERATION_SHARDS)]
            assert names == expected + ["x509.log"], (jobs, names)

    def test_x509_log_byte_identical_to_serial(self, generated, serial_logs):
        for jobs, run in generated.items():
            merged = read_all(os.path.join(run["out"], "x509.log"))
            assert merged == serial_logs["x509"], f"jobs={jobs}"

    def test_ssl_shard_concatenation_matches_serial(self, generated,
                                                    serial_logs):
        reference = data_rows(serial_logs["ssl"])
        assert reference  # non-trivial corpus
        for jobs, run in generated.items():
            concatenated = []
            for shard in range(GENERATION_SHARDS):
                text = read_all(os.path.join(run["out"],
                                             f"ssl-{shard:02d}.log"))
                concatenated.extend(data_rows(text))
            assert concatenated == reference, f"jobs={jobs}"

    def test_every_file_identical_across_jobs(self, generated):
        names = sorted(os.listdir(generated[1]["out"]))
        for name in names:
            baseline = read_all(os.path.join(generated[1]["out"], name))
            for jobs in JOBS_MATRIX[1:]:
                other = read_all(os.path.join(generated[jobs]["out"], name))
                assert other == baseline, (name, jobs)

    def test_row_tallies_match_the_files(self, generated, serial_logs):
        for run in generated.values():
            result = run["result"]
            assert result.ssl_rows == len(data_rows(serial_logs["ssl"]))
            assert result.x509_rows == len(data_rows(serial_logs["x509"]))
            assert result.shard_count == GENERATION_SHARDS
            assert all(spec.x509_path.endswith("x509.log")
                       for spec in result.shards)

    def test_legacy_writer_produces_identical_bytes(self, tmp_path,
                                                    generated):
        """``compiled=False`` is a perf baseline, never a format fork."""
        out = str(tmp_path / "legacy")
        generate_dataset(out, seed=SEED, scale=resolve_scale("small"),
                         jobs=1, compiled=False)
        for name in sorted(os.listdir(generated[1]["out"])):
            assert read_all(os.path.join(out, name)) == \
                read_all(os.path.join(generated[1]["out"], name)), name


class TestFaultPlanIsolation:
    def test_generation_identical_under_active_fault_plan(self, tmp_path,
                                                          generated):
        """Generation draws from its own derived RNG streams: an ambient
        fault plan (which perturbs scans and log reads) must not move a
        single generated byte."""
        out = str(tmp_path / "faulted")
        install_plan(FaultPlan(seed=99, scan_timeout_rate=0.5,
                               scan_truncated_chain_rate=0.5,
                               zeek_corrupt_rate=0.2, ct_outage_rate=0.3))
        try:
            generate_dataset(out, seed=SEED, scale=resolve_scale("small"),
                             jobs=1)
        finally:
            clear_plan()
        for name in sorted(os.listdir(generated[1]["out"])):
            assert read_all(os.path.join(out, name)) == \
                read_all(os.path.join(generated[1]["out"], name)), name


class TestClosedLoop:
    def test_shard_dir_ingest_reproduces_tables_exactly(self, generated,
                                                        serial_logs):
        """The tentpole loop: parallel-generated shards, discovered and
        ingested via the shard engine, must reproduce Tables 1/2/3 (and
        the full category orderings) of the in-memory pipeline."""
        dataset = serial_logs["dataset"]
        serial = dataset.analyzer().analyze_chains(
            aggregate_chains(dataset.joined()))
        reference = _tables(serial)
        assert reference["table2"]  # non-trivial corpus
        for jobs, run in generated.items():
            shards = discover_shards(run["out"])
            assert len(shards) == GENERATION_SHARDS
            ingest = ingest_shards(shards, jobs=1)
            assert ingest.missing_certs == 0, f"jobs={jobs}"
            result = dataset.analyzer().analyze_chains(ingest.chains)
            assert _tables(result) == reference, f"jobs={jobs}"


def _tables(result):
    return {
        "table1": result.interception.category_table(result.chains),
        "table2": result.categorized.summary_rows(),
        "table3": result.hybrid.table3_rows(),
        "orders": {c.value: [chain.key
                             for chain in result.categorized.chains(c)]
                   for c in ChainCategory},
    }


class TestJobsAndMetrics:
    def test_jobs_clamped_and_requested_recorded(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        result = generate_dataset(str(tmp_path / "clamp"), seed=SEED,
                                  scale=resolve_scale("small"), jobs=64)
        assert result.requested_jobs == 64
        assert result.jobs == 2

    def test_counter_metrics_identical_across_jobs(self, tmp_path_factory,
                                                   monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        snapshots = []
        for jobs in JOBS_MATRIX:
            out = str(tmp_path_factory.mktemp(f"metrics-j{jobs}"))
            get_registry().reset()
            generate_dataset(out, seed=SEED, scale=resolve_scale("small"),
                             jobs=jobs)
            snapshot = get_registry().snapshot()
            snapshots.append({
                family: [(s["labels"], s["value"]) for s in data["samples"]]
                for family, data in snapshot.items()
                if data["kind"] == "counter"})
        assert any(labels == {"direction": "written", "path": "ssl"}
                   and value > 0
                   for labels, value in snapshots[0]["repro_zeek_rows_total"])
        assert snapshots[0]["repro_generate_shards_total"] == \
            [({"outcome": "ok"}, float(GENERATION_SHARDS))]
        for snapshot in snapshots[1:]:
            assert snapshot == snapshots[0]

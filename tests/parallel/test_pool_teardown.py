"""Pool teardown: no orphan workers after crashes, hangs, or interrupts.

``kill_pool`` must reap every child it terminates — a supervisor that
recovers from a hang by abandoning the pool would otherwise leak one
sleeping worker per incident.  ``multiprocessing.active_children()``
both lists and reaps our direct children, so an empty list after each
scenario proves the teardown was complete.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.faults import FaultPlan
from repro.parallel.pool import kill_pool, make_pool
from repro.parallel.supervisor import (HANG_SECONDS_VAR, SupervisorConfig,
                                       run_supervised)


def square(task):
    return task * task


def sleep_forever(task):
    time.sleep(60)
    return task


def interrupt(task):
    raise KeyboardInterrupt(f"interrupted at {task}")


def assert_no_orphans(deadline: float = 5.0) -> None:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if not multiprocessing.active_children():
            return
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


class TestKillPool:
    def test_kills_workers_mid_task(self):
        pool = make_pool(2)
        for task in range(2):
            pool.submit(sleep_forever, task)
        time.sleep(0.2)  # let the workers pick the tasks up
        kill_pool(pool)
        assert_no_orphans()

    def test_safe_on_already_shut_down_pool(self):
        pool = make_pool(1)
        pool.submit(square, 2).result()
        pool.shutdown()
        kill_pool(pool)
        assert_no_orphans()


class TestSupervisorTeardown:
    def test_crash_recovery_leaves_no_orphans(self):
        plan = FaultPlan(seed="teardown", worker_crash_rate=1.0)
        config = SupervisorConfig(plan=plan, max_task_retries=0)
        run = run_supervised("t", [2, 3], square, jobs=2, config=config)
        assert run.results == [4, 9]  # clean degradation, not silence
        assert run.summary_lines()
        assert_no_orphans()

    def test_hang_recovery_leaves_no_orphans(self, monkeypatch):
        monkeypatch.setenv(HANG_SECONDS_VAR, "60")
        plan = FaultPlan(seed="teardown", worker_hang_rate=1.0)
        config = SupervisorConfig(plan=plan, max_task_retries=0,
                                  task_timeout=0.3, poll_interval=0.05)
        run = run_supervised("t", [2], square, jobs=2, config=config)
        assert run.results == [4]
        assert_no_orphans()

    def test_keyboard_interrupt_propagates_and_leaves_no_orphans(self):
        with pytest.raises(KeyboardInterrupt):
            run_supervised("t", [1, 2, 3, 4], interrupt, jobs=2)
        assert_no_orphans()

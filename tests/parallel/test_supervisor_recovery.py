"""Chaos acceptance: every engine survives worker crashes and hangs.

The supervised dispatch layer's end-to-end contract, pinned per engine:
under a fault plan that crashes workers mid-task and hangs others, each
fan-out path (shard ingest, partition analysis, dataset generation,
batch scanning) produces output *byte-identical* to a fault-free serial
run — recovery changes wall-clock and incident counters, never a single
merged byte.  And a driver killed mid-ingest resumes from its run
journal, replaying completed shards instead of recomputing them.

Fault-plan seeds are chosen so the injector's deterministic draws
actually exercise the paths under test (≥2 first-attempt crashes for
the crash plans; a first-attempt hang for the watchdog plan).  Incident
*counts* beyond those floors are timing-dependent — when a crash breaks
the pool, an innocent task that had already started is charged too —
so the assertions here are floors plus byte identity, never exact
incident tallies.
"""

from __future__ import annotations

import pytest

from repro.campus.dataset import cached_campus_dataset, resolve_scale
from repro.core.categorization import ChainCategory
from repro.core.pipeline import ChainStructureAnalyzer
from repro.faults import FaultPlan
from repro.obs import instruments
from repro.parallel import (discover_shards, generate_dataset, ingest_shards,
                            split_zeek_log)
from repro.parallel.pool import NO_CPU_CLAMP_VAR
from repro.parallel.supervisor import HANG_SECONDS_VAR, SupervisorConfig
from repro.resilience.journal import JOURNAL_NAME, RunJournal
from repro.scan import ActiveScanner, ScanTarget
from repro.tls import TLSServer
from repro.x509 import CertificateFactory

#: Crashes ingest shards 0 and 3 on their first pool attempt and hangs
#: shard 1 — the ISSUE's "crash ≥2 workers, hang 1" composition — with
#: every task clearing inside a 2-retry budget.
INGEST_CHAOS = FaultPlan(seed="chaos-27", worker_crash_rate=0.5,
                         worker_hang_rate=0.25)

#: Hangs ingest shard 2 on its first attempt, nothing else: with no
#: crash rate the pool can never break, so recovery *must* come from
#: the heartbeat watchdog.
INGEST_HANG_ONLY = FaultPlan(seed="hang-12", worker_hang_rate=0.5)

#: First-attempt crashes on ≥2 tasks of the respective engine's id
#: space, clearing on the next draw.
ANALYSIS_CHAOS = FaultPlan(seed="an-19", worker_crash_rate=0.3)
GENERATE_CHAOS = FaultPlan(seed="gen-4", worker_crash_rate=0.2)
SCAN_CHAOS = FaultPlan(seed="scan-66", worker_crash_rate=0.5)

#: Generous per-task deadline: shard work takes ~a second, an injected
#: hang sleeps 60 (capped below), so 5s separates the two cleanly.
TASK_TIMEOUT = 5.0


@pytest.fixture(autouse=True)
def _chaos_env(monkeypatch):
    """Multi-worker pools on a 1-CPU box; injected hangs stay finite."""
    monkeypatch.setenv(NO_CPU_CLAMP_VAR, "1")
    monkeypatch.setenv(HANG_SECONDS_VAR, "60")


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    import shutil
    base = tmp_path_factory.mktemp("chaos-corpus")
    dataset = cached_campus_dataset(seed="par-eq", scale="small")
    ssl_path, x509_path = dataset.write_zeek_logs(str(base / "whole"))
    shard_dir = base / "shards"
    split_zeek_log(ssl_path, str(shard_dir), 4)
    shutil.copy(x509_path, shard_dir / "x509.log")
    return discover_shards(str(shard_dir))


def canon(chains):
    """Full observable state of a chain map, order included."""
    return [(key, tuple(c.fingerprint for c in chain.certificates),
             chain.usage.connections, chain.usage.established,
             sorted(chain.usage.client_ips), list(chain.usage.ports.items()),
             chain.usage.sni_present, sorted(chain.usage.snis),
             chain.usage.first_seen, chain.usage.last_seen,
             sorted(chain.usage.server_ips))
            for key, chain in chains.items()]


def tallies(ingest):
    return (ingest.ssl_rows, ingest.x509_rows, ingest.joined,
            ingest.missing_certs, ingest.aggregated, ingest.skipped_empty,
            ingest.cert_fingerprints)


@pytest.fixture(scope="module")
def reference(corpus):
    """The fault-free serial ingest every chaos run must reproduce."""
    ingest = ingest_shards(corpus, jobs=1)
    assert ingest.chains  # non-trivial corpus
    return {"canon": canon(ingest.chains), "tallies": tallies(ingest),
            "ingest": ingest}


def incident_count(kind, incident):
    return instruments.SUPERVISOR_INCIDENTS.value(kind=kind,
                                                  incident=incident)


class TestIngestChaos:
    def test_crash_and_hang_plan_is_byte_identical(self, corpus, reference):
        config = SupervisorConfig(plan=INGEST_CHAOS, max_task_retries=2,
                                  task_timeout=TASK_TIMEOUT)
        ingest = ingest_shards(corpus, jobs=4, supervise=config)
        run = ingest.supervisor
        crashes = [i for i in run.incidents if i.incident == "worker_crash"]
        assert len(crashes) >= 2  # the plan crashed at least two workers
        assert run.pool_rebuilds >= 1
        assert run.degraded and run.summary_lines()
        assert all(result is not None for result in run.results)
        assert canon(ingest.chains) == reference["canon"]
        assert tallies(ingest) == reference["tallies"]

    def test_hang_only_plan_recovered_by_watchdog(self, corpus, reference):
        config = SupervisorConfig(plan=INGEST_HANG_ONLY, max_task_retries=2,
                                  task_timeout=TASK_TIMEOUT)
        ingest = ingest_shards(corpus, jobs=2, supervise=config)
        run = ingest.supervisor
        hangs = [i for i in run.incidents if i.incident == "worker_hang"]
        # No crash rate → the pool never breaks → only the heartbeat
        # watchdog can have unstuck this run.
        assert len(hangs) >= 1
        assert run.pool_rebuilds >= 1
        assert canon(ingest.chains) == reference["canon"]
        assert tallies(ingest) == reference["tallies"]

    def test_incident_report_is_json_ready(self, corpus):
        config = SupervisorConfig(plan=INGEST_CHAOS, max_task_retries=2,
                                  task_timeout=TASK_TIMEOUT)
        ingest = ingest_shards(corpus, jobs=4, supervise=config)
        import json
        report = ingest.supervisor.report()
        assert report["kind"] == "ingest"
        assert report["incidents"]  # the chaos actually happened
        json.dumps(report)  # must serialize as-is for --run-report


class TestAnalysisChaos:
    def test_tables_identical_under_crash_plan(self, corpus, reference,
                                               registry):
        serial = ChainStructureAnalyzer(registry).analyze_ingest(
            reference["ingest"])
        serial_stats = serial.multicert_path_stats(
            ChainCategory.NON_PUBLIC_ONLY)
        config = SupervisorConfig(plan=ANALYSIS_CHAOS, max_task_retries=2)
        before = incident_count("analysis", "worker_crash")
        chaotic = ChainStructureAnalyzer(registry).analyze_ingest(
            reference["ingest"], jobs=4, supervise=config)
        assert incident_count("analysis", "worker_crash") - before >= 2
        assert chaotic.categorized.summary_rows() == \
            serial.categorized.summary_rows()
        assert chaotic.multicert_path_stats(ChainCategory.NON_PUBLIC_ONLY) \
            == serial_stats
        assert len(chaotic.chains) == len(serial.chains)


class TestGenerateChaos:
    def test_files_byte_identical_under_crash_plan(self, tmp_path_factory):
        import os
        scale = resolve_scale("small")
        clean_dir = str(tmp_path_factory.mktemp("gen-clean"))
        generate_dataset(clean_dir, seed="sup-gen", scale=scale, jobs=1)
        chaos_dir = str(tmp_path_factory.mktemp("gen-chaos"))
        config = SupervisorConfig(plan=GENERATE_CHAOS, max_task_retries=2)
        result = generate_dataset(chaos_dir, seed="sup-gen", scale=scale,
                                  jobs=4, supervise=config)
        run = result.supervisor
        crashes = [i for i in run.incidents if i.incident == "worker_crash"]
        assert len(crashes) >= 2
        names = sorted(os.listdir(clean_dir))
        assert sorted(os.listdir(chaos_dir)) == names
        for name in names:
            with open(os.path.join(clean_dir, name), "rb") as a, \
                    open(os.path.join(chaos_dir, name), "rb") as b:
                assert a.read() == b.read(), name


class TestScanChaos:
    @pytest.fixture(scope="class")
    def targets(self):
        factory = CertificateFactory(seed=41)
        built = []
        for i in range(12):
            if i % 5 == 3:  # known-dead servers interleaved with live ones
                built.append(ScanTarget(server_id=f"srv-{i:02d}",
                                        hostname=f"host{i}.example"))
                continue
            chain = tuple(factory.simple_chain(
                root_cn=f"R{i}", intermediate_cns=[f"I{i}"],
                leaf_cn=f"host{i}.example"))
            built.append(ScanTarget(
                server_id=f"srv-{i:02d}",
                server=TLSServer("203.0.113.10", 443, chain,
                                 hostnames=(f"host{i}.example",)),
                hostname=f"host{i}.example"))
        return built

    def test_results_identical_under_crash_plan(self, targets):
        serial = ActiveScanner(seed="sup-scan").scan_many(targets, jobs=1)
        assert any(not r.reachable for r in serial)
        config = SupervisorConfig(plan=SCAN_CHAOS, max_task_retries=2)
        before = incident_count("scan", "worker_crash")
        chaotic = ActiveScanner(seed="sup-scan").scan_many(
            targets, jobs=4, supervise=config)
        assert incident_count("scan", "worker_crash") - before >= 2
        assert chaotic == serial


class TestJournalResume:
    def test_driver_kill_mid_ingest_resumes_completed_shards(
            self, corpus, reference, tmp_path):
        journal_dir = tmp_path / "journal"
        with RunJournal(str(journal_dir)) as journal:
            first = ingest_shards(corpus, jobs=2,
                                  supervise=SupervisorConfig(journal=journal))
        assert first.supervisor.journal_replayed == 0
        assert canon(first.chains) == reference["canon"]

        # Simulate a driver killed after two shards: the first two
        # journal lines survive intact, the third is torn mid-append.
        journal_path = journal_dir / JOURNAL_NAME
        lines = journal_path.read_text().splitlines()
        assert len(lines) == 4  # one fsync'd line per completed shard
        journal_path.write_text("\n".join(lines[:2]) + "\n"
                                + lines[2][: len(lines[2]) // 2])

        with RunJournal(str(journal_dir)) as journal:
            resumed = ingest_shards(
                corpus, jobs=2,
                supervise=SupervisorConfig(journal=journal, resume=True))
        assert resumed.supervisor.journal_replayed == 2
        assert canon(resumed.chains) == reference["canon"]
        assert tallies(resumed) == reference["tallies"]

        # The recomputed shards were re-journaled: a further resume
        # replays the whole corpus without touching a pool.
        with RunJournal(str(journal_dir)) as journal:
            final = ingest_shards(
                corpus, jobs=2,
                supervise=SupervisorConfig(journal=journal, resume=True))
        assert final.supervisor.journal_replayed == 4
        assert canon(final.chains) == reference["canon"]

    def test_resume_under_chaos_still_byte_identical(self, corpus,
                                                     reference, tmp_path):
        """Journal replay and crash recovery compose: replayed shards
        skip the pool entirely, recomputed ones ride supervised retry."""
        journal_dir = tmp_path / "journal"
        with RunJournal(str(journal_dir)) as journal:
            ingest_shards(corpus, jobs=1,
                          supervise=SupervisorConfig(journal=journal))
        journal_path = journal_dir / JOURNAL_NAME
        lines = journal_path.read_text().splitlines()
        journal_path.write_text("\n".join(lines[:2]) + "\n")

        config = SupervisorConfig(plan=INGEST_CHAOS, max_task_retries=2,
                                  task_timeout=TASK_TIMEOUT,
                                  resume=True)
        with RunJournal(str(journal_dir)) as journal:
            config.journal = journal
            resumed = ingest_shards(corpus, jobs=2, supervise=config)
        assert resumed.supervisor.journal_replayed == 2
        assert canon(resumed.chains) == reference["canon"]
        assert tallies(resumed) == reference["tallies"]

"""Empty-input edge cases: zero shards, zero chains, zero scan targets.

A filtered corpus (or an over-aggressive quarantine) can hand any engine
an empty work list; every fan-out path must return its empty result
shape instead of tripping over pool bookkeeping.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import ChainStructureAnalyzer
from repro.parallel import ingest_shards
from repro.parallel.analysis import analyze_partitions
from repro.scan.scanner import ActiveScanner


class TestEmptyIngest:
    @pytest.mark.parametrize("jobs", [None, 1, 4])
    def test_zero_shards(self, jobs):
        result = ingest_shards([], jobs=jobs)
        assert result.chains == {}
        assert result.cert_fingerprints == []
        assert result.ssl_rows == 0
        assert result.shard_count == 0
        assert result.supervisor is not None
        assert result.supervisor.results == []


class TestEmptyAnalysis:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_zero_chains_through_partition_engine(self, registry,
                                                  disclosures, jobs):
        enriched = analyze_partitions({}, registry=registry,
                                      disclosures=disclosures,
                                      interception_keys=frozenset(),
                                      jobs=jobs)
        assert enriched.categories == {}
        assert enriched.hybrid_by_key == {}
        assert enriched.structures == {}

    @pytest.mark.parametrize("jobs", [None, 2])
    def test_zero_chains_through_pipeline(self, registry, jobs):
        result = ChainStructureAnalyzer(registry).analyze_chains(
            {}, jobs=jobs)
        assert result.chains == {}
        assert result.categorized.summary_rows() is not None
        assert result.hybrid.analyses == []
        assert result.dga_clusters == []


class TestEmptyScan:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_zero_targets(self, jobs):
        assert ActiveScanner().scan_many([], jobs=jobs) == []

"""Shard discovery and log splitting: pairing rules, split integrity."""

from __future__ import annotations

import os

import pytest

from repro.parallel import discover_shards, split_zeek_log
from repro.zeek.format import read_zeek_log

HEADER = (
    "#separator \\x09\n"
    "#set_separator\t,\n"
    "#empty_field\t(empty)\n"
    "#unset_field\t-\n"
    "#path\tssl\n"
    "#fields\tts\tuid\n"
    "#types\ttime\tstring\n"
)
FOOTER = "#close\t2021-02-15-00-00-01\n"


def _write_log(path, rows: int) -> str:
    lines = [f"{1000 + i}.000000\tC{i}\n" for i in range(rows)]
    path.write_text(HEADER + "".join(lines) + FOOTER)
    return str(path)


class TestSplitZeekLog:
    def test_pieces_carry_header_and_footer(self, tmp_path):
        source = _write_log(tmp_path / "ssl.log", 10)
        paths = split_zeek_log(source, str(tmp_path / "shards"), 3)
        assert [os.path.basename(p) for p in paths] == [
            "ssl.log.000", "ssl.log.001", "ssl.log.002"]
        for path in paths:
            text = open(path).read()
            assert text.startswith(HEADER)
            assert text.endswith(FOOTER)

    def test_chunks_are_balanced_and_contiguous(self, tmp_path):
        source = _write_log(tmp_path / "ssl.log", 10)
        paths = split_zeek_log(source, str(tmp_path / "shards"), 3)
        uids = []
        sizes = []
        for path in paths:
            _, rows = read_zeek_log(path)
            sizes.append(len(rows))
            uids.extend(row["uid"] for row in rows)
        assert sizes == [4, 3, 3]  # divmod remainder goes to early shards
        assert uids == [f"C{i}" for i in range(10)]  # original order

    def test_concatenated_data_reproduces_source(self, tmp_path):
        source = _write_log(tmp_path / "ssl.log", 7)
        paths = split_zeek_log(source, str(tmp_path / "shards"), 4)
        source_data = [line for line in open(source)
                       if not line.startswith("#")]
        shard_data = []
        for path in paths:
            shard_data.extend(line for line in open(path)
                              if not line.startswith("#"))
        assert shard_data == source_data

    def test_more_shards_than_rows_yields_empty_but_valid_pieces(
            self, tmp_path):
        source = _write_log(tmp_path / "ssl.log", 2)
        paths = split_zeek_log(source, str(tmp_path / "shards"), 4)
        assert len(paths) == 4
        counts = [len(read_zeek_log(path)[1]) for path in paths]
        assert counts == [1, 1, 0, 0]

    def test_rejects_non_positive_shard_count(self, tmp_path):
        source = _write_log(tmp_path / "ssl.log", 2)
        with pytest.raises(ValueError, match="positive"):
            split_zeek_log(source, str(tmp_path / "shards"), 0)


class TestDiscoverShards:
    def test_pairs_by_suffix_in_sorted_order(self, tmp_path):
        for name in ("ssl.log.001", "ssl.log.000", "x509.log.000",
                     "x509.log.001"):
            (tmp_path / name).write_text("#fields\tts\n#types\ttime\n")
        shards = discover_shards(str(tmp_path))
        assert [s.index for s in shards] == [0, 1]
        assert [os.path.basename(s.ssl_path) for s in shards] == [
            "ssl.log.000", "ssl.log.001"]
        assert [os.path.basename(s.x509_path) for s in shards] == [
            "x509.log.000", "x509.log.001"]

    def test_single_x509_is_broadcast_to_every_shard(self, tmp_path):
        # The corpus-wide layout: certificates are de-duplicated once,
        # connections rotate — every SSL shard joins against the same
        # x509.log.
        for name in ("ssl.log.000", "ssl.log.001", "ssl.log.002",
                     "x509.log"):
            (tmp_path / name).write_text("#fields\tts\n#types\ttime\n")
        shards = discover_shards(str(tmp_path))
        assert len(shards) == 3
        assert {os.path.basename(s.x509_path) for s in shards} == {
            "x509.log"}

    def test_no_ssl_files_raises(self, tmp_path):
        (tmp_path / "x509.log").write_text("#fields\tts\n#types\ttime\n")
        with pytest.raises(ValueError, match="no ssl"):
            discover_shards(str(tmp_path))

    def test_missing_companion_raises(self, tmp_path):
        for name in ("ssl.log.000", "ssl.log.001", "x509.log.000",
                     "x509.log.007"):
            (tmp_path / name).write_text("#fields\tts\n#types\ttime\n")
        with pytest.raises(ValueError, match="x509.log.001"):
            discover_shards(str(tmp_path))

    def test_ignores_directories_and_unrelated_files(self, tmp_path):
        (tmp_path / "ssl.log").write_text("#fields\tts\n#types\ttime\n")
        (tmp_path / "x509.log").write_text("#fields\tts\n#types\ttime\n")
        (tmp_path / "conn.log").write_text("unrelated\n")
        (tmp_path / "ssl-subdir").mkdir()
        shards = discover_shards(str(tmp_path))
        assert len(shards) == 1
        assert shards[0].index == 0

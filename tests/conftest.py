"""Shared fixtures: a deterministic public PKI and certificate factory."""

from __future__ import annotations

from datetime import datetime, timezone

import pytest

from repro.core.classification import CertificateClassifier
from repro.core.crosssign import CrossSignDisclosures
from repro.truststores import build_public_pki
from repro.x509 import CertificateFactory


@pytest.fixture(scope="session")
def pki():
    return build_public_pki(seed=42)


@pytest.fixture(scope="session")
def registry(pki):
    return pki.registry


@pytest.fixture(scope="session")
def disclosures(pki):
    return CrossSignDisclosures.from_pki(pki)


@pytest.fixture()
def classifier(registry):
    return CertificateClassifier(registry)


@pytest.fixture()
def factory():
    return CertificateFactory(seed=1234)


@pytest.fixture(scope="session")
def mid_study():
    """A timestamp inside the paper's measurement window."""
    return datetime(2021, 2, 15, tzinfo=timezone.utc)

"""Appendix D: both validators, the corpus, and the Table 5 comparison."""

from __future__ import annotations

import pytest

from repro.validation import (
    ISVerdict,
    KSVerdict,
    build_validation_corpus,
    compare_validators,
    validate_issuer_subject,
    validate_key_signature,
)
from repro.x509 import name
from repro.x509.pem import CryptoChainBuilder, FaultType


@pytest.fixture(scope="module")
def builder():
    return CryptoChainBuilder(key_pool_size=4)


def _names(*cns):
    return [name(cn, o="V") for cn in cns]


class TestIssuerSubjectValidator:
    def test_valid_chain(self, builder):
        chain = builder.build_chain(_names("l", "i", "r"))
        result = validate_issuer_subject([(c.subject, c.issuer)
                                          for c in chain])
        assert result.verdict is ISVerdict.VALID

    def test_single(self, builder):
        chain = builder.build_chain(_names("solo"))
        result = validate_issuer_subject([(chain[0].subject,
                                           chain[0].issuer)])
        assert result.verdict is ISVerdict.SINGLE

    def test_broken_with_positions(self, builder):
        a = builder.build_chain(_names("l", "i", "r"))
        b = builder.build_chain(_names("x"))
        spliced = [a[0], b[0], a[2]]
        result = validate_issuer_subject([(c.subject, c.issuer)
                                          for c in spliced])
        assert result.verdict is ISVerdict.BROKEN
        assert result.mismatch_positions == (0, 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            validate_issuer_subject([])

    def test_cross_sign_bridging(self, pki, disclosures):
        from repro.x509 import CertificateFactory
        factory = CertificateFactory(seed=71)
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("b.example"))
        dst = pki.ca("identrust").root.certificate
        names = [(leaf.subject, leaf.issuer), (dst.subject, dst.issuer)]
        naive = validate_issuer_subject(names)
        aware = validate_issuer_subject(names, disclosures=disclosures)
        assert naive.verdict is ISVerdict.BROKEN
        assert aware.verdict is ISVerdict.VALID


class TestKeySignatureValidator:
    def test_valid_chain(self, builder):
        chain = builder.build_chain(_names("l", "i", "r"))
        assert validate_key_signature([c.der for c in chain]).verdict is \
            KSVerdict.VALID

    def test_single(self, builder):
        chain = builder.build_chain(_names("solo2"))
        assert validate_key_signature([chain[0].der]).verdict is \
            KSVerdict.SINGLE

    def test_wrong_key_broken_with_position(self, builder):
        chain = builder.build_chain(_names("l", "i", "r"),
                                    fault=FaultType.WRONG_KEY,
                                    fault_position=1)
        result = validate_key_signature([c.der for c in chain])
        assert result.verdict is KSVerdict.BROKEN
        assert result.failure_positions == (1,)

    def test_truncated_der_broken(self, builder):
        chain = builder.build_chain(_names("l", "r"),
                                    fault=FaultType.TRUNCATED_DER,
                                    fault_position=1)
        result = validate_key_signature([c.der for c in chain])
        assert result.verdict is KSVerdict.BROKEN
        assert "ASN.1" in result.detail

    def test_unrecognized_key_separate_outcome(self, builder):
        chain = builder.build_chain(_names("l", "i", "r"),
                                    fault=FaultType.UNRECOGNIZED_KEY,
                                    fault_position=1)
        result = validate_key_signature([c.der for c in chain])
        assert result.verdict is KSVerdict.UNRECOGNIZED_KEY
        assert result.failure_positions == ()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            validate_key_signature([])


class TestCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_validation_corpus(total=120, seed=3)

    def test_composition(self, corpus):
        assert len(corpus) == 120
        assert corpus.count_truth("unrecognized") == 3
        assert corpus.count_truth("malformed") == 1
        assert corpus.count_truth("name-broken") >= 1
        singles = corpus.count_truth("single")
        assert abs(singles - round(120 * 2568 / 12676)) <= 1

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            build_validation_corpus(total=5)

    def test_structurally_deterministic(self):
        # Key material is freshly generated (the cryptography package has
        # no seeded mode), but the corpus *structure* — names, lengths,
        # truth labels, order — is seed-determined.
        a = build_validation_corpus(total=60, seed=9)
        b = build_validation_corpus(total=60, seed=9)
        assert [(c.truth, len(c.pems), c.fault_position,
                 c.pems[0].subject.rfc4514()) for c in a.chains] == \
            [(c.truth, len(c.pems), c.fault_position,
              c.pems[0].subject.rfc4514()) for c in b.chains]


class TestCompare:
    @pytest.fixture(scope="class")
    def result(self):
        corpus = build_validation_corpus(total=120, seed=3)
        return compare_validators(corpus)

    def test_paper_column_relationships(self, result):
        # IS valid = KS valid + unrecognized + malformed.
        assert result.is_valid == result.ks_valid + 3 + 1
        # KS broken = IS broken + the malformed chain.
        assert result.ks_broken == result.is_broken + 1
        assert result.ks_unrecognized == 3
        assert result.is_single == result.ks_single

    def test_positions_agree_everywhere(self, result):
        assert result.position_agreements == result.position_comparisons
        assert result.position_comparisons >= 1

    def test_rows_shape(self, result):
        rows = result.rows()
        assert len(rows) == 4
        assert rows[3]["issuer_subject"] is None

    def test_blind_spot_quantified(self):
        corpus = build_validation_corpus(total=60, seed=4, impersonated=6)
        result = compare_validators(corpus)
        # The issuer–subject method passes every impersonated chain.
        assert result.ks_broken - result.is_broken >= 6
        assert result.disagreements >= 6

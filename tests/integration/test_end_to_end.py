"""End-to-end integration: simulated campus → Zeek files → analyzer →
ground-truth agreement, at small scale."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.campus import build_vendor_directory, cached_campus_dataset
from repro.campus.profiles import PAPER
from repro.core import (
    ChainCategory,
    ChainStructureAnalyzer,
)
from repro.zeek import SSLRecord, X509Record, join_logs, read_zeek_log


@pytest.fixture(scope="module")
def dataset():
    return cached_campus_dataset(seed=5, scale="small")


@pytest.fixture(scope="module")
def analysis(dataset):
    return dataset.analyze()


TRUTH_TO_CATEGORY = {
    "public": ChainCategory.PUBLIC_ONLY,
    "nonpub": ChainCategory.NON_PUBLIC_ONLY,
    "hybrid": ChainCategory.HYBRID,
    "interception": ChainCategory.INTERCEPTION,
}


class TestGroundTruthAgreement:
    def test_hybrid_category_perfect(self, dataset, analysis):
        """Every hybrid chain is recovered as hybrid — no leakage into
        other categories and nothing else mislabeled hybrid."""
        truth = dataset.truth_by_chain_key()
        hybrid = analysis.categorized.chains(ChainCategory.HYBRID)
        assert len(hybrid) == PAPER.hybrid_chains
        for chain in hybrid:
            assert truth[chain.key].category_truth == "hybrid"

    def test_no_false_interception(self, dataset, analysis):
        """Chains flagged interception are truly intercepted (precision 1.0;
        recall is limited by CT coverage, as the paper acknowledges)."""
        truth = dataset.truth_by_chain_key()
        for chain in analysis.categorized.chains(ChainCategory.INTERCEPTION):
            assert truth[chain.key].category_truth == "interception"

    def test_public_chains_never_misclassified_nonpublic(self, dataset,
                                                         analysis):
        truth = dataset.truth_by_chain_key()
        for chain in analysis.categorized.chains(
                ChainCategory.NON_PUBLIC_ONLY):
            assert truth[chain.key].category_truth in ("nonpub",
                                                       "interception")

    def test_undetected_interception_is_ct_blind(self, dataset, analysis):
        """Interception chains classified non-public are exactly those CT
        cannot see (domain absent from the logs) — Appendix B's limitation."""
        truth = dataset.truth_by_chain_key()
        for chain in analysis.categorized.chains(
                ChainCategory.NON_PUBLIC_ONLY):
            spec = truth[chain.key]
            if spec.category_truth != "interception":
                continue
            domains = set(chain.usage.snis)
            san = chain.certificates[0].extensions.subject_alt_name
            if san:
                domains.update(san.dns_names)
            recorded = [d for d in domains
                        if dataset.ct_index.issuers_for_domain(
                            d, overlapping=chain.certificates[0].validity)]
            assert not recorded, (
                f"chain for {spec.hostname} was detectable but missed")

    def test_all_80_vendors_recovered(self, analysis):
        assert analysis.interception.vendor_count() == \
            PAPER.interception_issuers


class TestZeekFileRoundTrip:
    def test_analysis_identical_through_files(self, dataset, analysis,
                                              tmp_path):
        """Writing Zeek ASCII logs and re-parsing them must not change a
        single analysis statistic."""
        ssl_path, x509_path = dataset.write_zeek_logs(str(tmp_path))
        _, ssl_rows = read_zeek_log(ssl_path)
        _, x509_rows = read_zeek_log(x509_path)
        ssl_records = [SSLRecord.from_row(r) for r in ssl_rows]
        x509_records = [X509Record.from_row(r) for r in x509_rows]
        joined = join_logs(ssl_records, x509_records, strict=True)

        analyzer = ChainStructureAnalyzer(
            dataset.registry, ct_index=dataset.ct_index,
            vendor_directory=build_vendor_directory(),
            disclosures=dataset.disclosures)
        reparsed = analyzer.analyze_connections(joined)

        for category in ChainCategory:
            assert (reparsed.categorized.chain_count(category)
                    == analysis.categorized.chain_count(category)), category
            assert (reparsed.categorized.connection_count(category)
                    == analysis.categorized.connection_count(category))
        assert (reparsed.hybrid.table3_rows()
                == analysis.hybrid.table3_rows())
        assert (reparsed.hybrid.table7_rows()
                == analysis.hybrid.table7_rows())
        assert reparsed.interception.vendor_count() == \
            analysis.interception.vendor_count()


class TestCrossSeedStability:
    """The calibrated shapes must hold for any seed, not just the default."""

    @pytest.fixture(scope="class")
    def other(self):
        return cached_campus_dataset(seed=1234, scale="small")

    def test_hybrid_taxonomy_seed_independent(self, other):
        result = other.analyze()
        rows = {(r["category"], r["subcategory"]): r["chains"]
                for r in result.hybrid.table3_rows()}
        assert rows[("Total", "")] == PAPER.hybrid_chains
        assert rows[("(3) No complete matched path", "-")] == \
            PAPER.hybrid_no_path

    def test_establishment_ordering_seed_independent(self, other):
        from repro.core.hybrid import HybridCategory
        report = other.analyze().hybrid
        assert (report.establishment_rate(HybridCategory.COMPLETE_PATH_ONLY)
                > report.establishment_rate(
                    HybridCategory.CONTAINS_COMPLETE_PATH)
                > report.establishment_rate(HybridCategory.NO_COMPLETE_PATH))

    def test_interception_vendors_seed_independent(self, other):
        assert other.analyze().interception.vendor_count() == \
            PAPER.interception_issuers

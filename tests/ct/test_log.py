"""CT log submission policy, SCTs, and proofs."""

from __future__ import annotations

from datetime import datetime, timezone

import pytest

from repro.ct import CTLog, CrtShIndex
from repro.x509 import CertificateFactory, name


@pytest.fixture()
def setup():
    factory = CertificateFactory(seed=3)
    root = factory.root(name("Root", o="TestCA"))
    inter = factory.intermediate(root, name("Inter", o="TestCA"))
    leaf = factory.leaf(inter, name("site.example"), dns_names=["site.example"])
    log = CTLog("test-log", accepted_roots=[root.certificate])
    chain = [leaf, inter.certificate, root.certificate]
    return factory, root, inter, leaf, log, chain


class TestSubmission:
    def test_accepts_chain_to_accepted_root(self, setup):
        *_, leaf, log, chain = setup
        sct = log.add_chain(chain)
        assert sct.leaf_index == 0
        assert sct.covers(leaf)
        assert log.contains(leaf)

    def test_accepts_chain_ending_below_root(self, setup):
        factory, root, inter, leaf, log, _ = setup
        # Chain without the root itself; last cert names the accepted root.
        sct = log.add_chain([leaf, inter.certificate])
        assert sct.leaf_index == 0

    def test_rejects_unanchored_chain(self, setup):
        factory, *_ , log, _ = setup
        other = factory.self_signed(name("rogue"))
        with pytest.raises(ValueError):
            log.add_chain([other])

    def test_rejects_broken_chain(self, setup):
        factory, root, inter, leaf, log, _ = setup
        stranger = factory.leaf(factory.root(name("Other Root")), name("x"))
        with pytest.raises(ValueError):
            log.add_chain([stranger, inter.certificate, root.certificate])

    def test_rejects_empty_chain(self, setup):
        *_, log, _ = setup
        with pytest.raises(ValueError):
            log.add_chain([])

    def test_duplicate_submission_returns_same_index(self, setup):
        *_, log, chain = setup
        first = log.add_chain(chain)
        second = log.add_chain(chain)
        assert first.leaf_index == second.leaf_index
        assert len(log) == 1

    def test_sct_signature_binds_certificate(self, setup):
        factory, root, inter, leaf, log, chain = setup
        sct = log.add_chain(chain)
        other = factory.leaf(inter, name("other.example"))
        assert not sct.covers(other)


class TestProofs:
    def test_inclusion_proof_checks(self, setup):
        factory, root, inter, _, log, chain = setup
        log.add_chain(chain)
        for i in range(5):
            extra = factory.leaf(inter, name(f"s{i}.example"),
                                 dns_names=[f"s{i}.example"])
            log.add_chain([extra, inter.certificate, root.certificate])
        leaf = chain[0]
        proof = log.prove_inclusion(leaf)
        assert log.check_inclusion(leaf, proof)

    def test_proof_for_absent_certificate_raises(self, setup):
        factory, *_ , log, _ = setup
        stranger = factory.self_signed(name("absent"))
        with pytest.raises(KeyError):
            log.prove_inclusion(stranger)


class TestCrtShIndex:
    def test_issuers_for_domain(self, setup):
        factory, root, inter, leaf, log, chain = setup
        log.add_chain(chain)
        index = CrtShIndex([log])
        issuers = index.issuers_for_domain("site.example")
        assert len(issuers) == 1
        assert issuers[0].matches(inter.certificate.subject)

    def test_validity_overlap_filter(self, setup):
        factory, root, inter, leaf, log, chain = setup
        log.add_chain(chain)
        index = CrtShIndex([log])
        from repro.x509 import ValidityPeriod
        far_future = ValidityPeriod(
            datetime(2031, 1, 1, tzinfo=timezone.utc),
            datetime(2031, 6, 1, tzinfo=timezone.utc))
        assert index.issuers_for_domain("site.example",
                                        overlapping=far_future) == []

    def test_unknown_domain(self, setup):
        *_, log, chain = setup
        log.add_chain(chain)
        index = CrtShIndex([log])
        assert not index.knows_domain("nowhere.example")
        assert index.issuers_for_domain("nowhere.example") == []

    def test_wildcard_san_covers_subdomain(self, setup):
        factory, root, inter, _, log, _ = setup
        wild = factory.leaf(inter, name("*.corp.example"),
                            dns_names=["*.corp.example"])
        log.add_chain([wild, inter.certificate, root.certificate])
        index = CrtShIndex([log])
        assert index.knows_domain("mail.corp.example")

    def test_incremental_refresh(self, setup):
        factory, root, inter, leaf, log, chain = setup
        index = CrtShIndex([log])
        assert not index.knows_domain("site.example")
        log.add_chain(chain)
        added = index.refresh()
        assert added >= 1
        assert index.knows_domain("site.example")

    def test_contains_certificate(self, setup):
        *_, leaf, log, chain = setup
        log.add_chain(chain)
        index = CrtShIndex([log])
        assert index.contains_certificate(leaf)

"""CT log monitor: append-only auditing."""

from __future__ import annotations

import pytest

from repro.ct import CTLog, ConsistencyViolation, LogMonitor
from repro.ct.merkle import MerkleTree
from repro.x509 import CertificateFactory, name


@pytest.fixture()
def log_setup():
    factory = CertificateFactory(seed=44)
    root = factory.root(name("Mon Root"))
    inter = factory.intermediate(root, name("Mon Inter"))
    log = CTLog("monitored", accepted_roots=[root.certificate])

    def submit(i: int):
        leaf = factory.leaf(inter, name(f"m{i}.example"),
                            dns_names=[f"m{i}.example"])
        log.add_chain([leaf, inter.certificate, root.certificate])

    return log, submit


class TestMonitor:
    def test_observations_accumulate(self, log_setup):
        log, submit = log_setup
        monitor = LogMonitor(log)
        monitor.observe()
        submit(0)
        submit(1)
        monitor.observe()
        assert [o.tree_size for o in monitor.observations] == [0, 2]

    def test_growth_verified(self, log_setup):
        log, submit = log_setup
        monitor = LogMonitor(log)
        for batch in range(5):
            for i in range(batch + 1):
                submit(batch * 10 + i)
            monitor.observe()
        assert monitor.audit_full_history()

    def test_shrinking_log_detected(self, log_setup):
        log, submit = log_setup
        monitor = LogMonitor(log)
        submit(0)
        submit(1)
        monitor.observe()
        # Simulate history rewrite by swapping in a smaller tree.
        log._tree = MerkleTree([b"rewritten"])
        with pytest.raises(ConsistencyViolation):
            monitor.observe()

    def test_rewritten_history_detected(self, log_setup):
        log, submit = log_setup
        monitor = LogMonitor(log)
        submit(0)
        submit(1)
        monitor.observe()
        # Same size, different contents: the consistency proof must fail.
        log._tree = MerkleTree([b"evil-0", b"evil-1", b"evil-2"])
        with pytest.raises(ConsistencyViolation):
            monitor.observe()

    def test_first_observation_never_fails(self, log_setup):
        log, _ = log_setup
        observation = LogMonitor(log).observe()
        assert observation.tree_size == 0

"""RFC 6962 Merkle tree invariants, unit + property-based."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.ct.merkle import (
    MerkleTree,
    leaf_hash,
    node_hash,
    verify_consistency,
    verify_inclusion,
)


class TestHashing:
    def test_empty_tree_root_is_sha256_of_empty(self):
        assert MerkleTree().root() == hashlib.sha256(b"").digest()

    def test_single_leaf_root_is_leaf_hash(self):
        tree = MerkleTree([b"a"])
        assert tree.root() == leaf_hash(b"a")

    def test_two_leaves(self):
        tree = MerkleTree([b"a", b"b"])
        assert tree.root() == node_hash(leaf_hash(b"a"), leaf_hash(b"b"))

    def test_leaf_and_node_domains_are_separated(self):
        # 0x00/0x01 prefixes prevent second-preimage attacks.
        assert leaf_hash(b"xy") != node_hash(b"x", b"y")

    def test_rfc6962_known_structure_seven_leaves(self):
        # For 7 leaves the split is 4|3 per RFC 6962 §2.1.
        entries = [bytes([i]) for i in range(7)]
        tree = MerkleTree(entries)
        left = MerkleTree(entries[:4]).root()
        right = MerkleTree(entries[4:]).root()
        assert tree.root() == node_hash(left, right)


class TestAppend:
    def test_append_returns_index(self):
        tree = MerkleTree()
        assert tree.append(b"a") == 0
        assert tree.append(b"b") == 1
        assert tree.size == 2

    def test_append_changes_root(self):
        tree = MerkleTree([b"a"])
        before = tree.root()
        tree.append(b"b")
        assert tree.root() != before

    def test_historic_root_stable_after_append(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        old = tree.root(3)
        tree.append(b"d")
        assert tree.root(3) == old

    def test_root_out_of_range(self):
        with pytest.raises(ValueError):
            MerkleTree([b"a"]).root(5)


class TestInclusionProofs:
    def test_proof_verifies_every_leaf(self):
        entries = [f"entry-{i}".encode() for i in range(13)]
        tree = MerkleTree(entries)
        root = tree.root()
        for index, entry in enumerate(entries):
            proof = tree.inclusion_proof(index)
            assert verify_inclusion(entry, index, tree.size, proof, root)

    def test_proof_rejects_wrong_leaf(self):
        entries = [f"e{i}".encode() for i in range(8)]
        tree = MerkleTree(entries)
        proof = tree.inclusion_proof(3)
        assert not verify_inclusion(b"forged", 3, tree.size, proof,
                                    tree.root())

    def test_proof_rejects_wrong_index(self):
        entries = [f"e{i}".encode() for i in range(8)]
        tree = MerkleTree(entries)
        proof = tree.inclusion_proof(3)
        assert not verify_inclusion(entries[3], 4, tree.size, proof,
                                    tree.root())

    def test_proof_out_of_range(self):
        with pytest.raises(ValueError):
            MerkleTree([b"a"]).inclusion_proof(1)


class TestConsistencyProofs:
    def test_consistency_between_all_size_pairs(self):
        entries = [f"e{i}".encode() for i in range(10)]
        tree = MerkleTree(entries)
        for old in range(0, 11):
            for new in range(old, 11):
                proof = tree.consistency_proof(old, new)
                assert verify_consistency(old, new, tree.root(old),
                                          tree.root(new), proof), (old, new)

    def test_consistency_rejects_tampered_history(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d", b"e"])
        proof = tree.consistency_proof(3, 5)
        fake_old_root = MerkleTree([b"a", b"b", b"x"]).root()
        assert not verify_consistency(3, 5, fake_old_root, tree.root(), proof)

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            MerkleTree([b"a"]).consistency_proof(2, 1)


@st.composite
def _entry_lists(draw):
    n = draw(st.integers(min_value=1, max_value=64))
    return [f"leaf-{i}-{draw(st.integers(0, 1000))}".encode() for i in range(n)]


@settings(max_examples=40, deadline=None)
@given(entries=_entry_lists(), data=st.data())
def test_property_inclusion_proofs_verify(entries, data):
    tree = MerkleTree(entries)
    index = data.draw(st.integers(0, len(entries) - 1))
    proof = tree.inclusion_proof(index)
    assert verify_inclusion(entries[index], index, tree.size, proof,
                            tree.root())


@settings(max_examples=40, deadline=None)
@given(entries=_entry_lists(), data=st.data())
def test_property_consistency_proofs_verify(entries, data):
    tree = MerkleTree(entries)
    old = data.draw(st.integers(0, len(entries)))
    proof = tree.consistency_proof(old)
    assert verify_consistency(old, tree.size, tree.root(old), tree.root(),
                              proof)


@settings(max_examples=30, deadline=None)
@given(entries=_entry_lists())
def test_property_append_preserves_prefix_roots(entries):
    """Appending never changes any historic root (append-only invariant)."""
    tree = MerkleTree()
    roots = [tree.root()]
    for entry in entries:
        tree.append(entry)
        roots.append(tree.root())
    for size, root in enumerate(roots):
        assert tree.root(size) == root

"""CircuitBreaker: the closed → open → half-open → closed state machine."""

from __future__ import annotations

import pytest

from repro.obs import instruments
from repro.resilience import BreakerState, CircuitBreaker
from repro.resilience.errors import CircuitOpenError, TransientError


def _fail_times(breaker: CircuitBreaker, n: int) -> None:
    for _ in range(n):
        breaker.record_failure()


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        _fail_times(breaker, 2)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        _fail_times(breaker, 2)
        breaker.record_success()
        _fail_times(breaker, 2)
        # 2 + 2 failures, but never 3 *consecutive*: still closed.
        assert breaker.state is BreakerState.CLOSED

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_after=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)


class TestOpen:
    def test_threshold_consecutive_failures_trip_it(self):
        breaker = CircuitBreaker(failure_threshold=3)
        _fail_times(breaker, 3)
        assert breaker.state is BreakerState.OPEN

    def test_open_rejects_until_recovery_count(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_after=3)
        breaker.record_failure()
        # The first recovery_after - 1 calls are rejected outright...
        assert not breaker.allow()
        assert not breaker.allow()
        # ...then the breaker goes half-open and admits a probe.
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN

    def test_rejections_counted_on_metric(self):
        breaker = CircuitBreaker(name="unit-rej", failure_threshold=1,
                                 recovery_after=10)
        breaker.record_failure()
        before = instruments.BREAKER_REJECTIONS.value(breaker="unit-rej")
        breaker.allow()
        breaker.allow()
        assert (instruments.BREAKER_REJECTIONS.value(breaker="unit-rej")
                == before + 2)


class TestHalfOpen:
    def _half_open(self, **kwargs) -> CircuitBreaker:
        breaker = CircuitBreaker(failure_threshold=1, recovery_after=1,
                                 **kwargs)
        breaker.record_failure()
        assert breaker.allow()  # recovery_after=1: first allow() probes
        assert breaker.state is BreakerState.HALF_OPEN
        return breaker

    def test_probe_success_closes(self):
        breaker = self._half_open()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        breaker = self._half_open()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_probe_budget_is_bounded(self):
        breaker = self._half_open(half_open_probes=2)
        assert breaker.allow()  # second probe admitted
        assert not breaker.allow()  # third rejected

    def test_reopened_breaker_recovers_again(self):
        breaker = self._half_open()
        breaker.record_failure()  # reopen
        assert breaker.allow()  # recovery_after=1: straight back to probing
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED


class TestCall:
    def test_call_passes_value_through(self):
        assert CircuitBreaker().call(lambda: 42) == 42

    def test_transient_failures_trip_and_reject(self):
        breaker = CircuitBreaker(name="unit-call", failure_threshold=2,
                                 recovery_after=10)

        def down():
            raise TransientError("dependency down")

        for _ in range(2):
            with pytest.raises(TransientError):
                breaker.call(down)
        assert breaker.state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError, match="unit-call"):
            breaker.call(lambda: "never runs")

    def test_non_transient_error_does_not_count(self):
        breaker = CircuitBreaker(failure_threshold=1)
        with pytest.raises(ZeroDivisionError):
            breaker.call(lambda: 1 / 0)
        assert breaker.state is BreakerState.CLOSED

    def test_transitions_counted_on_metric(self):
        opened = instruments.BREAKER_TRANSITIONS.value(breaker="unit-tr",
                                                       state="open")
        breaker = CircuitBreaker(name="unit-tr", failure_threshold=1)
        breaker.record_failure()
        assert (instruments.BREAKER_TRANSITIONS.value(breaker="unit-tr",
                                                      state="open")
                == opened + 1)

    def test_end_to_end_recovery_via_call(self):
        breaker = CircuitBreaker(name="unit-e2e", failure_threshold=1,
                                 recovery_after=2)
        with pytest.raises(TransientError):
            breaker.call(lambda: (_ for _ in ()).throw(TransientError("x")))
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "rejected")
        # Second post-open call reaches half-open and probes successfully.
        assert breaker.call(lambda: "recovered") == "recovered"
        assert breaker.state is BreakerState.CLOSED

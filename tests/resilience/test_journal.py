"""RunJournal: crash-safe completion log + partial-artifact store."""

from __future__ import annotations

import json
import os

from repro.resilience import RunJournal
from repro.resilience.journal import JOURNAL_NAME


class TestRoundTrip:
    def test_record_then_completed(self, tmp_path):
        with RunJournal(str(tmp_path)) as journal:
            journal.record("ingest", "ingest:0000", "fp-a", {"rows": 10})
            journal.record("ingest", "ingest:0001", "fp-b", {"rows": 20})
        with RunJournal(str(tmp_path)) as journal:
            assert journal.completed() == {"ingest:0000": "fp-a",
                                           "ingest:0001": "fp-b"}

    def test_load_partial_returns_saved_payload(self, tmp_path):
        with RunJournal(str(tmp_path)) as journal:
            journal.record("ingest", "ingest:0000", "fp-a", {"rows": 10})
            hit, payload = journal.load_partial("ingest", "fp-a")
        assert hit
        assert payload == {"rows": 10}

    def test_missing_journal_is_empty(self, tmp_path):
        assert RunJournal(str(tmp_path)).completed() == {}

    def test_later_lines_win_on_repeated_task(self, tmp_path):
        with RunJournal(str(tmp_path)) as journal:
            journal.record("ingest", "ingest:0000", "fp-old", 1)
            journal.record("ingest", "ingest:0000", "fp-new", 2)
            assert journal.completed() == {"ingest:0000": "fp-new"}


class TestCrashSafety:
    def test_torn_trailing_line_is_dropped(self, tmp_path):
        with RunJournal(str(tmp_path)) as journal:
            journal.record("ingest", "ingest:0000", "fp-a", 1)
        # A driver killed mid-append tears the last line.
        path = os.path.join(str(tmp_path), JOURNAL_NAME)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"task": "ingest:0001", "finger')
        completed = RunJournal(str(tmp_path)).completed()
        assert completed == {"ingest:0000": "fp-a"}

    def test_garbage_line_between_entries_is_dropped(self, tmp_path):
        path = os.path.join(str(tmp_path), JOURNAL_NAME)
        lines = [
            json.dumps({"task": "t:0000", "fingerprint": "a"}),
            "not json at all",
            json.dumps(["a", "list", "not", "a", "record"]),
            json.dumps({"task": "t:0001", "fingerprint": "b"}),
        ]
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        assert RunJournal(str(tmp_path)).completed() == {"t:0000": "a",
                                                         "t:0001": "b"}

    def test_append_after_torn_tail_starts_on_a_fresh_line(self, tmp_path):
        # Resuming after a mid-append kill must not concatenate the new
        # record onto the torn fragment (losing both).
        with RunJournal(str(tmp_path)) as journal:
            journal.record("ingest", "ingest:0000", "fp-a", 1)
        path = os.path.join(str(tmp_path), JOURNAL_NAME)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"task": "ingest:0001", "finger')
        with RunJournal(str(tmp_path)) as journal:
            journal.record("ingest", "ingest:0002", "fp-c", 3)
        assert RunJournal(str(tmp_path)).completed() == {
            "ingest:0000": "fp-a", "ingest:0002": "fp-c"}

    def test_journal_line_lands_only_after_artifact(self, tmp_path):
        # Every intact line points at a partial that is really on disk.
        with RunJournal(str(tmp_path)) as journal:
            journal.record("gen", "gen:0000", "fp-x", {"shard": 0})
            for entry in journal.completed().items():
                hit, _ = journal.load_partial("gen", entry[1])
                assert hit

    def test_artifact_write_is_atomic_no_tmp_left(self, tmp_path):
        with RunJournal(str(tmp_path)) as journal:
            journal.record("gen", "gen:0000", "fp-x", {"shard": 0})
        partials = os.path.join(str(tmp_path), "partials")
        assert not [name for name in os.listdir(partials)
                    if name.endswith(".tmp")]

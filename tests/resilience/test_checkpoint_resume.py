"""Checkpoint/resume over the real pipeline: a resumed run must be
indistinguishable from a cold one.

The acceptance bar is byte-level: a canonical serialization of the
:class:`AnalysisResult` from (a) an uninterrupted run, (b) a checkpointed
run, and (c) a run killed after stage 2 and resumed, must be identical
bytes — same flagged chains, same category populations, same hybrid and
DGA output.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.campus.dataset import cached_campus_dataset
from repro.core.categorization import ChainCategory
from repro.core.hybrid import HybridReport
from repro.core.pipeline import AnalysisResult
from repro.obs import instruments
from repro.resilience import CheckpointStore

SEED = "ckpt-resume"


@pytest.fixture(scope="module")
def dataset():
    return cached_campus_dataset(seed=SEED, scale="small")


def canonical_bytes(result: AnalysisResult) -> bytes:
    """A deterministic byte serialization of everything the paper reads
    off an AnalysisResult — sorted, JSON-encoded, order-independent."""
    view = {
        "chains": sorted(list(key) for key in result.chains),
        "summary": result.categorized.summary_rows(),
        "categories": {
            category.value: sorted(
                list(c.key) for c in result.categorized.chains(category))
            for category in ChainCategory
        },
        "flagged": sorted(
            [list(key), issuer.vendor, issuer.category]
            for key, issuer in result.interception.flagged_chains.items()),
        "degraded": sorted(list(key)
                           for key in result.interception.degraded_chains),
        "hybrid": sorted(
            [list(a.chain.key), a.category.value,
             a.complete_kind.value if a.complete_kind else None,
             a.no_path_category.value if a.no_path_category else None,
             a.anchored_to_public_root]
            for a in result.hybrid.analyses),
        "dga": sorted(
            [cluster.template,
             sorted(list(c.key) for c in cluster.chains)]
            for cluster in result.dga_clusters),
    }
    return json.dumps(view, sort_keys=True).encode()


class TestResumeIdentity:
    def test_resumed_result_is_byte_identical_to_cold_run(self, dataset,
                                                          tmp_path):
        joined = dataset.joined()
        cold = dataset.analyzer().analyze_connections(joined)

        # Checkpointed run: identical output, plus one file per stage.
        store = CheckpointStore(str(tmp_path / "ckpt"))
        warm = dataset.analyzer().analyze_connections(joined,
                                                      checkpoint=store)
        assert canonical_bytes(warm) == canonical_bytes(cold)
        assert store.stages_present() == ["categorize", "dga", "hybrid",
                                          "interception"]

        # Simulate a run killed after stage 2: later stages never hit disk.
        for stage in ("hybrid", "dga"):
            os.remove(store.stage_path(stage))

        loaded_before = instruments.CHECKPOINT_STAGES.value(
            stage="interception", result="loaded")
        resumed = dataset.analyzer().analyze_connections(
            joined, checkpoint=store, resume=True)
        assert canonical_bytes(resumed) == canonical_bytes(cold)
        # The surviving stages were served from disk, not recomputed.
        assert instruments.CHECKPOINT_STAGES.value(
            stage="interception", result="loaded") == loaded_before + 1
        # And the killed stages were recomputed and re-saved.
        assert store.stages_present() == ["categorize", "dga", "hybrid",
                                          "interception"]

    def test_fully_checkpointed_resume_serves_every_stage(self, dataset,
                                                          tmp_path):
        joined = dataset.joined()
        store = CheckpointStore(str(tmp_path / "full"))
        first = dataset.analyzer().analyze_connections(joined,
                                                       checkpoint=store)
        resumed = dataset.analyzer().analyze_connections(
            joined, checkpoint=store, resume=True)
        assert canonical_bytes(resumed) == canonical_bytes(first)
        assert isinstance(resumed.hybrid, HybridReport)

    def test_different_input_invalidates_checkpoints(self, dataset,
                                                     tmp_path):
        joined = dataset.joined()
        store = CheckpointStore(str(tmp_path / "stale"))
        dataset.analyzer().analyze_connections(joined, checkpoint=store)

        stale_before = instruments.CHECKPOINT_STAGES.value(
            stage="interception", result="stale")
        # Dropping connections changes the usage counts, hence the
        # fingerprint: the resume must recompute, not serve stale state.
        subset = joined[: len(joined) // 2]
        resumed = dataset.analyzer().analyze_connections(
            subset, checkpoint=store, resume=True)
        assert instruments.CHECKPOINT_STAGES.value(
            stage="interception", result="stale") == stale_before + 1

        cold = dataset.analyzer().analyze_connections(subset)
        assert canonical_bytes(resumed) == canonical_bytes(cold)

    def test_resume_without_checkpoint_dir_contents_is_a_cold_run(
            self, dataset, tmp_path):
        joined = dataset.joined()
        store = CheckpointStore(str(tmp_path / "empty"))
        resumed = dataset.analyzer().analyze_connections(
            joined, checkpoint=store, resume=True)
        cold = dataset.analyzer().analyze_connections(joined)
        assert canonical_bytes(resumed) == canonical_bytes(cold)

"""RetryPolicy: deterministic backoff schedules and call semantics."""

from __future__ import annotations

import pytest

from repro.obs import instruments
from repro.resilience import RetryPolicy
from repro.resilience.errors import ScanTimeout, TransientError


class TestBackoffSchedule:
    def test_schedule_is_deterministic_under_fixed_seed(self):
        policy = RetryPolicy(max_attempts=6, seed="fixed")
        again = RetryPolicy(max_attempts=6, seed="fixed")
        assert policy.schedule("srv-1") == again.schedule("srv-1")

    def test_schedule_varies_by_seed_and_key(self):
        policy = RetryPolicy(max_attempts=6, seed="a")
        other_seed = RetryPolicy(max_attempts=6, seed="b")
        assert policy.schedule("k") != other_seed.schedule("k")
        assert policy.schedule("k1") != policy.schedule("k2")

    def test_no_jitter_is_pure_exponential_capped(self):
        policy = RetryPolicy(max_attempts=6, base_delay=1.0, multiplier=2.0,
                             max_delay=5.0, jitter=0.0)
        assert policy.schedule("any") == (1.0, 2.0, 4.0, 5.0, 5.0)

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.5, multiplier=2.0,
                             max_delay=100.0, jitter=0.2, seed=3)
        for attempt in range(1, policy.max_attempts):
            raw = min(0.5 * 2.0 ** (attempt - 1), 100.0)
            delay = policy.delay("key", attempt)
            assert raw * 0.8 <= delay <= raw * 1.2

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay("k", 0)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)


class TestCall:
    def test_first_try_success(self):
        result = RetryPolicy(max_attempts=3).call(lambda attempt: attempt * 10)
        assert result.value == 10
        assert result.attempts == 1
        assert result.delays == []
        assert result.total_delay == 0.0

    def test_transient_failures_then_success(self):
        policy = RetryPolicy(max_attempts=5, seed=1)

        def flaky(attempt: int) -> str:
            if attempt < 3:
                raise ScanTimeout(f"attempt {attempt} timed out")
            return "ok"

        result = policy.call(flaky, key="srv")
        assert result.value == "ok"
        assert result.attempts == 3
        # The recorded delays are exactly the schedule's first two entries.
        assert tuple(result.delays) == policy.schedule("srv")[:2]

    def test_exhaustion_raises_last_error(self):
        def always(attempt: int):
            raise ScanTimeout("down")

        with pytest.raises(ScanTimeout):
            RetryPolicy(max_attempts=3).call(always, key="srv")

    def test_non_transient_error_is_not_retried(self):
        calls = []

        def broken(attempt: int):
            calls.append(attempt)
            raise KeyError("bug, not weather")

        with pytest.raises(KeyError):
            RetryPolicy(max_attempts=5).call(broken)
        assert calls == [1]

    def test_custom_retry_on(self):
        def flaky(attempt: int) -> int:
            if attempt == 1:
                raise OSError("disk hiccup")
            return attempt

        result = RetryPolicy(max_attempts=2).call(flaky, retry_on=(OSError,))
        assert result.value == 2

    def test_sleep_callable_receives_backoffs(self):
        policy = RetryPolicy(max_attempts=4, seed=2)
        slept = []

        def flaky(attempt: int) -> str:
            if attempt < 4:
                raise TransientError("again")
            return "done"

        result = policy.call(flaky, key="k", sleep=slept.append)
        assert slept == result.delays
        assert len(slept) == 3

    def test_attempts_counted_on_metric(self):
        retried = instruments.RETRY_ATTEMPTS.value(operation="unit-test",
                                                   result="retried")
        success = instruments.RETRY_ATTEMPTS.value(operation="unit-test",
                                                   result="success")

        def flaky(attempt: int) -> bool:
            if attempt == 1:
                raise TransientError("once")
            return True

        RetryPolicy(max_attempts=2).call(flaky, operation="unit-test")
        assert (instruments.RETRY_ATTEMPTS.value(operation="unit-test",
                                                 result="retried")
                == retried + 1)
        assert (instruments.RETRY_ATTEMPTS.value(operation="unit-test",
                                                 result="success")
                == success + 1)

    def test_exhaustion_counted_on_metric(self):
        exhausted = instruments.RETRY_ATTEMPTS.value(operation="unit-ex",
                                                     result="exhausted")
        with pytest.raises(TransientError):
            RetryPolicy(max_attempts=2).call(
                lambda attempt: (_ for _ in ()).throw(TransientError("x")),
                operation="unit-ex")
        assert (instruments.RETRY_ATTEMPTS.value(operation="unit-ex",
                                                 result="exhausted")
                == exhausted + 1)

"""ArtifactStore: content-addressed AnalysisResult caching.

One pickle per fingerprint (not per stage name), a full-fingerprint
double-check behind the path prefix, and a whole-result warm path on the
analyzer — a repeated analysis over unchanged inputs must be served from
disk with identical tables.
"""

from __future__ import annotations

import os

import pytest

from repro.campus.dataset import cached_campus_dataset
from repro.core.categorization import ChainCategory
from repro.core.chain import aggregate_chains
from repro.obs import instruments
from repro.resilience import ArtifactStore


@pytest.fixture(scope="module")
def dataset():
    return cached_campus_dataset(seed="artifact", scale="small")


@pytest.fixture(scope="module")
def chains(dataset):
    return aggregate_chains(dataset.joined())


class TestStore:
    FP_A = "a" * 64
    #: Shares the 32-character path prefix with FP_A — a deliberate
    #: collision that must read as stale, never as a false hit.
    FP_PREFIX_TWIN = "a" * 32 + "b" * 32

    def test_save_then_load_hits(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "artifacts"))
        hits = instruments.ANALYSIS_ARTIFACTS.value(result="hit")
        store.save("analysis", self.FP_A, {"tables": [1, 2, 3]})
        hit, payload = store.load("analysis", self.FP_A)
        assert hit
        assert payload == {"tables": [1, 2, 3]}
        assert instruments.ANALYSIS_ARTIFACTS.value(result="hit") == hits + 1

    def test_absent_fingerprint_misses(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        misses = instruments.ANALYSIS_ARTIFACTS.value(result="miss")
        assert store.load("analysis", self.FP_A) == (False, None)
        assert instruments.ANALYSIS_ARTIFACTS.value(result="miss") == \
            misses + 1

    def test_path_prefix_collision_reads_as_stale(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.save("analysis", self.FP_A, "payload-a")
        assert store.path("analysis", self.FP_A) == \
            store.path("analysis", self.FP_PREFIX_TWIN)
        stale = instruments.ANALYSIS_ARTIFACTS.value(result="stale")
        assert store.load("analysis", self.FP_PREFIX_TWIN) == (False, None)
        assert instruments.ANALYSIS_ARTIFACTS.value(result="stale") == \
            stale + 1

    def test_corrupt_file_misses_instead_of_raising(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.save("analysis", self.FP_A, [1])
        with open(store.path("analysis", self.FP_A), "wb") as handle:
            handle.write(b"\x80\x04 not a pickle")
        assert store.load("analysis", self.FP_A) == (False, None)

    def test_distinct_fingerprints_coexist(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.save("analysis", "b" * 64, "first")
        store.save("analysis", "c" * 64, "second")
        assert store.load("analysis", "b" * 64) == (True, "first")
        assert store.load("analysis", "c" * 64) == (True, "second")
        assert len(store.artifacts_present()) == 2

    def test_kind_names_are_sanitized(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        path = store.path("../evil/kind", self.FP_A)
        assert os.path.dirname(path) == str(tmp_path)
        assert "/evil" not in os.path.basename(path)


class TestWarmAnalysis:
    def render(self, result):
        return {
            "table1": result.interception.category_table(result.chains),
            "table2": result.categorized.summary_rows(),
            "table3": result.hybrid.table3_rows(),
            "table8": {c.value: result.multicert_path_stats(c)
                       for c in ChainCategory},
            "figure6": result.hybrid.figure6_histogram(),
        }

    def test_second_run_served_from_disk_with_identical_tables(
            self, dataset, chains, tmp_path):
        store = ArtifactStore(str(tmp_path))
        cold = dataset.analyzer().analyze_chains(chains, jobs=1,
                                                 artifacts=store)
        assert store.artifacts_present()
        hits = instruments.ANALYSIS_ARTIFACTS.value(result="hit")
        warm = dataset.analyzer().analyze_chains(chains, jobs=1,
                                                 artifacts=store)
        assert instruments.ANALYSIS_ARTIFACTS.value(result="hit") == hits + 1
        assert self.render(warm) == self.render(cold)

    def test_serial_and_parallel_share_one_artifact(self, dataset, chains,
                                                    tmp_path):
        """jobs is deliberately absent from the fingerprint: the engines
        are byte-identical, so a warm artifact serves any worker count."""
        store = ArtifactStore(str(tmp_path))
        cold = dataset.analyzer().analyze_chains(chains, artifacts=store)
        assert len(store.artifacts_present()) == 1
        warm = dataset.analyzer().analyze_chains(chains, jobs=4,
                                                 artifacts=store)
        assert len(store.artifacts_present()) == 1
        assert self.render(warm) == self.render(cold)

    def test_different_chain_map_recomputes(self, dataset, chains,
                                            tmp_path):
        store = ArtifactStore(str(tmp_path))
        dataset.analyzer().analyze_chains(chains, jobs=1, artifacts=store)
        subset = dict(list(chains.items())[:10])
        dataset.analyzer().analyze_chains(subset, jobs=1, artifacts=store)
        # A different input is a different address — both artifacts coexist.
        assert len(store.artifacts_present()) == 2

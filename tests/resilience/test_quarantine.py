"""Quarantine sink: capture, summarize, and JSONL round-trip."""

from __future__ import annotations

import json

from repro.obs import instruments
from repro.resilience import Quarantine, QuarantinedRecord


class TestAccumulation:
    def test_add_records_and_counts(self):
        quarantine = Quarantine()
        quarantine.add(source="ssl.log", line=3, reason="column-count",
                       detail="row has 2 columns, expected 5", raw="a\tb")
        quarantine.add(source="ssl.log", line=9, reason="column-count",
                       detail="row has 1 columns, expected 5", raw="x")
        quarantine.add(source="x509.log", line=1, reason="field-parse",
                       detail="unparseable field value: bad int", raw="z")
        assert len(quarantine) == 3
        assert quarantine.counts_by_reason() == {"column-count": 2,
                                                 "field-parse": 1}
        assert quarantine.counts_by_source() == {"ssl.log": 2, "x509.log": 1}

    def test_detail_defaults_to_reason(self):
        record = Quarantine().add(source="s", line=1, reason="no-header")
        assert record.detail == "no-header"

    def test_records_counted_on_metric(self):
        before = instruments.QUARANTINE_RECORDS.value(source="unit.log",
                                                      reason="column-count")
        Quarantine().add(source="unit.log", line=1, reason="column-count")
        assert (instruments.QUARANTINE_RECORDS.value(source="unit.log",
                                                     reason="column-count")
                == before + 1)


class TestSummary:
    def test_empty_summary(self):
        assert Quarantine().summary_lines() == [
            "degraded: 0 records quarantined"]

    def test_summary_groups_by_source_and_reason(self):
        quarantine = Quarantine()
        for line in (3, 9):
            quarantine.add(source="ssl.log", line=line, reason="column-count")
        quarantine.add(source="x509.log", line=1, reason="field-parse")
        lines = quarantine.summary_lines()
        assert lines[0] == "degraded: 3 records quarantined"
        assert "  ssl.log: column-count ×2" in lines
        assert "  x509.log: field-parse ×1" in lines

    def test_singular_record(self):
        quarantine = Quarantine()
        quarantine.add(source="s", line=1, reason="no-header")
        assert quarantine.summary_lines()[0] == (
            "degraded: 1 record quarantined")


class TestRoundTrip:
    def test_write_then_load_restores_every_record(self, tmp_path):
        quarantine = Quarantine()
        # Raw bytes with the characters corruption actually produces:
        # tabs, NUL, non-ASCII — all must survive the JSONL trip.
        quarantine.add(source="ssl.log", line=7, reason="column-count",
                       detail="row has 6 columns, expected 5",
                       raw="1453939200.0\tC1\t10.0.0.1\t443\tx\t\x00garbled")
        quarantine.add(source="x509.log", line=40_000_000, reason="field-parse",
                       detail="unparseable field value: bad count",
                       raw="trüncated…")
        path = tmp_path / "quarantine.jsonl"
        assert quarantine.write(str(path)) == 2

        loaded = Quarantine.load(str(path))
        assert list(loaded) == list(quarantine)
        assert all(isinstance(r, QuarantinedRecord) for r in loaded)

    def test_file_is_one_json_object_per_line(self, tmp_path):
        quarantine = Quarantine()
        quarantine.add(source="ssl.log", line=2, reason="no-header", raw="r")
        path = tmp_path / "q.jsonl"
        quarantine.write(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record == {"source": "ssl.log", "line": 2,
                          "reason": "no-header", "detail": "no-header",
                          "raw": "r"}

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "q.jsonl"
        body = json.dumps({"source": "s", "line": 1, "reason": "r",
                           "detail": "d", "raw": ""})
        path.write_text(body + "\n\n")
        assert len(Quarantine.load(str(path))) == 1


class TestCrashSafety:
    def test_write_is_atomic_no_tmp_left(self, tmp_path):
        quarantine = Quarantine()
        quarantine.add(source="s", line=1, reason="r")
        quarantine.write(str(tmp_path / "q.jsonl"))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["q.jsonl"]

    def test_load_skips_torn_trailing_line(self, tmp_path):
        path = tmp_path / "q.jsonl"
        intact = json.dumps({"source": "s", "line": 1, "reason": "r",
                             "detail": "d", "raw": ""})
        # A writer killed mid-append tears the final line.
        path.write_text(intact + "\n" + intact[: len(intact) // 2])
        loaded = Quarantine.load(str(path))
        assert len(loaded) == 1
        assert loaded.records[0].line == 1

    def test_load_skips_wrong_shaped_json(self, tmp_path):
        path = tmp_path / "q.jsonl"
        intact = json.dumps({"source": "s", "line": 1, "reason": "r",
                             "detail": "d", "raw": ""})
        path.write_text(json.dumps(["a", "list"]) + "\n" + intact + "\n")
        assert len(Quarantine.load(str(path))) == 1

    def test_spill_appends_each_record_as_it_arrives(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        quarantine = Quarantine()
        quarantine.open_spill(str(path))
        quarantine.add(source="s", line=1, reason="r")
        # The record is on disk *before* close — a kill loses nothing.
        assert len(Quarantine.load(str(path))) == 1
        quarantine.add(source="s", line=2, reason="r")
        assert len(Quarantine.load(str(path))) == 2
        quarantine.close_spill()

    def test_spill_flushes_records_captured_before_opening(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        quarantine = Quarantine()
        quarantine.add(source="s", line=1, reason="r")
        quarantine.open_spill(str(path))
        quarantine.close_spill()
        assert len(Quarantine.load(str(path))) == 1

"""CheckpointStore: save/load, fingerprint guard, corruption handling."""

from __future__ import annotations

import os
import pickle

from repro.obs import instruments
from repro.resilience import CheckpointStore, input_fingerprint


class TestFingerprint:
    def test_deterministic_for_equal_parts(self):
        parts = ["analyzer-v1", ("chain", 3, True), 42]
        assert input_fingerprint(parts) == input_fingerprint(list(parts))

    def test_sensitive_to_any_part(self):
        base = input_fingerprint(["a", "b"])
        assert input_fingerprint(["a", "c"]) != base
        assert input_fingerprint(["a"]) != base

    def test_sensitive_to_order(self):
        assert input_fingerprint(["a", "b"]) != input_fingerprint(["b", "a"])

    def test_parts_are_not_concatenation_ambiguous(self):
        assert input_fingerprint(["ab"]) != input_fingerprint(["a", "b"])


class TestStore:
    def test_save_then_load(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"))
        store.save("interception", "fp-1", {"flagged": [1, 2, 3]})
        hit, payload = store.load("interception", "fp-1")
        assert hit
        assert payload == {"flagged": [1, 2, 3]}

    def test_missing_stage_misses(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        assert store.load("never-saved", "fp") == (False, None)

    def test_fingerprint_mismatch_is_stale(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        stale = instruments.CHECKPOINT_STAGES.value(stage="categorize",
                                                    result="stale")
        store.save("categorize", "fp-old", [1])
        hit, payload = store.load("categorize", "fp-new")
        assert (hit, payload) == (False, None)
        assert (instruments.CHECKPOINT_STAGES.value(stage="categorize",
                                                    result="stale")
                == stale + 1)

    def test_corrupt_file_misses_instead_of_raising(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("hybrid", "fp", [1])
        with open(store.stage_path("hybrid"), "wb") as handle:
            handle.write(b"\x80\x04 not a pickle")
        assert store.load("hybrid", "fp") == (False, None)

    def test_truncated_file_misses(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("dga", "fp", list(range(1000)))
        path = store.stage_path("dga")
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        assert store.load("dga", "fp") == (False, None)

    def test_version_mismatch_is_stale(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with open(store.stage_path("interception"), "wb") as handle:
            pickle.dump({"version": 999, "stage": "interception",
                         "fingerprint": "fp", "payload": 1}, handle)
        assert store.load("interception", "fp") == (False, None)

    def test_stage_names_are_sanitized(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        path = store.stage_path("../evil/stage")
        assert os.path.dirname(path) == str(tmp_path)
        assert "/evil" not in os.path.basename(path)

    def test_stages_present_and_clear(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("interception", "fp", 1)
        store.save("categorize", "fp", 2)
        assert store.stages_present() == ["categorize", "interception"]
        store.clear()
        assert store.stages_present() == []

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("interception", "fp", {"x": 1})
        assert not [entry for entry in os.listdir(str(tmp_path))
                    if entry.endswith(".tmp")]

    def test_torn_tmp_from_crashed_writer_does_not_break_load(self,
                                                              tmp_path):
        # A driver killed mid-save leaves a half-written .tmp next to the
        # intact checkpoint; the rename never happened, so the intact
        # file must still load (and a re-save must overwrite the tmp).
        store = CheckpointStore(str(tmp_path))
        store.save("join", "fp", {"a": 1})
        with open(store.stage_path("join") + ".tmp", "wb") as handle:
            handle.write(b"\x80\x05half a pick")
        assert store.load("join", "fp") == (True, {"a": 1})
        store.save("join", "fp", {"a": 2})
        assert store.load("join", "fp") == (True, {"a": 2})

"""Monthly activity and churn analysis."""

from __future__ import annotations

from datetime import datetime, timezone

import pytest

from repro.core.chain import ObservedChain
from repro.core.timeline import churn_summary, month_key, monthly_activity
from repro.x509 import CertificateFactory, name


def _ts(year, month, day=15):
    return datetime(year, month, day, tzinfo=timezone.utc).timestamp()


def _chain_active(factory, start_ts, end_ts):
    chain = ObservedChain((factory.self_signed(name(f"t{start_ts}.local")),))
    chain.usage.record(established=True, client_ip="1", server_ip="s",
                       port=443, sni=None, ts=start_ts)
    chain.usage.record(established=True, client_ip="1", server_ip="s",
                       port=443, sni=None, ts=end_ts)
    return chain


class TestMonthKey:
    def test_utc_boundaries(self):
        assert month_key(_ts(2020, 9, 1)) == (2020, 9)
        assert month_key(_ts(2021, 8, 31)) == (2021, 8)


class TestMonthlyActivity:
    def test_single_long_lived_chain(self, factory):
        buckets = monthly_activity(
            [_chain_active(factory, _ts(2020, 9), _ts(2021, 2))])
        assert [b.label for b in buckets] == [
            "2020-09", "2020-10", "2020-11", "2020-12", "2021-01", "2021-02"]
        assert all(b.active_chains == 1 for b in buckets)
        assert [b.new_chains for b in buckets] == [1, 0, 0, 0, 0, 0]

    def test_disjoint_chains(self, factory):
        buckets = monthly_activity([
            _chain_active(factory, _ts(2020, 9), _ts(2020, 9, 20)),
            _chain_active(factory, _ts(2020, 11), _ts(2020, 11, 20)),
        ])
        by_label = {b.label: b for b in buckets}
        assert by_label["2020-09"].active_chains == 1
        assert by_label["2020-10"].active_chains == 0
        assert by_label["2020-11"].active_chains == 1
        assert sum(b.new_chains for b in buckets) == 2

    def test_year_rollover(self, factory):
        buckets = monthly_activity(
            [_chain_active(factory, _ts(2020, 12), _ts(2021, 1))])
        assert [b.label for b in buckets] == ["2020-12", "2021-01"]

    def test_empty(self):
        assert monthly_activity([]) == []

    def test_new_chain_totals_equal_chain_count(self, factory):
        chains = [_chain_active(factory, _ts(2020, 9 + i % 4), _ts(2021, 1))
                  for i in range(10)]
        buckets = monthly_activity(chains)
        assert sum(b.new_chains for b in buckets) == 10


class TestChurn:
    def test_median_and_one_shot(self, factory):
        chains = [
            _chain_active(factory, _ts(2020, 9, 1), _ts(2020, 9, 1)),  # one day
            _chain_active(factory, _ts(2020, 9, 1), _ts(2020, 10, 1)),
            _chain_active(factory, _ts(2020, 9, 1), _ts(2021, 8, 1)),
        ]
        summary = churn_summary(chains)
        assert summary["chains"] == 3
        assert summary["median_active_days"] == pytest.approx(30, abs=1)
        assert summary["one_shot_share_pct"] == pytest.approx(100.0 / 3)

    def test_empty(self):
        assert churn_summary([])["chains"] == 0

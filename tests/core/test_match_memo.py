"""The pair-match memo and the fingerprint-keyed leaf-like index.

The memo (:func:`repro.core.matching.match_pair`) must be a transparent
cache: agreeing with the uncached :func:`_match_pair` for every pair and
every disclosure state, going cold when disclosures mutate, and never
leaking verdicts across disclosure instances — including instances
reconstituted from pickles (checkpoints, worker partials).
"""

from __future__ import annotations

import copy
import pickle

from hypothesis import given, settings, strategies as st

from repro.core.crosssign import CrossSignDisclosures
from repro.core.matching import (
    PairMatch,
    _match_pair,
    analyze_structure,
    is_leaf_like,
    match_pair,
)
from repro.truststores import build_public_pki
from repro.x509 import CertificateFactory, name

# The same diverse pool the structural property tests draw from: a proper
# hierarchy, self-signed oddballs, and cross-signed material.
_PKI = build_public_pki(seed=404)
_FACTORY = CertificateFactory(seed=404)
_ROOT = _FACTORY.root(name("Memo Root", o="Memo"))
_INTER_A = _FACTORY.intermediate(_ROOT, name("Memo Inter A", o="Memo"))
_INTER_B = _FACTORY.intermediate(_INTER_A, name("Memo Inter B", o="Memo"),
                                 path_len=None)
_POOL = [
    _FACTORY.leaf(_INTER_B, name("memo-leaf.example"),
                  dns_names=["memo-leaf.example"]),
    _INTER_B.certificate,
    _INTER_A.certificate,
    _ROOT.certificate,
    _FACTORY.self_signed(name("memo-ss.local")),
    _FACTORY.mismatched_pair_cert(name("memo-x"), name("memo-y")),
    _FACTORY.leaf(_PKI.ca("lets_encrypt").intermediates["R3"],
                  name("memo-le.example")),
    _PKI.ca("identrust").root.certificate,
    _PKI.cross_signed["R3-cross"].certificate,
]
#: Every disclosure that could possibly matter for the pool: the real
#: PKI's disclosures plus synthetic (child.issuer, parent.subject) links,
#: so random subsets actually flip verdicts between examples.
_DISCLOSURE_POOL = list(_PKI.cross_sign_disclosures()) + [
    (child.issuer, parent.subject)
    for child in _POOL for parent in _POOL
    if not child.issuer.matches(parent.subject)
][:24]

certs = st.integers(0, len(_POOL) - 1).map(lambda i: _POOL[i])
disclosure_sets = st.lists(
    st.integers(0, len(_DISCLOSURE_POOL) - 1),
    unique=True, max_size=8,
).map(lambda idx: CrossSignDisclosures(_DISCLOSURE_POOL[i] for i in idx))


@settings(max_examples=200, deadline=None)
@given(child=certs, parent=certs, disclosures=disclosure_sets)
def test_memo_agrees_with_uncached_match(child, parent, disclosures):
    """Fresh disclosure instances per example (fresh memo token), so the
    memo must never serve one subset's verdict for another."""
    expected = _match_pair(child, parent, disclosures)
    assert match_pair(child, parent, disclosures) is expected
    # Second lookup is served from the memo — still the same verdict.
    assert match_pair(child, parent, disclosures) is expected


@settings(max_examples=100, deadline=None)
@given(child=certs, parent=certs)
def test_memo_agrees_without_disclosures(child, parent):
    assert match_pair(child, parent) is _match_pair(child, parent, None)


def test_mutating_disclosures_invalidates_cached_verdicts():
    child, parent = _POOL[0], _ROOT.certificate  # names do not chain
    disclosures = CrossSignDisclosures()
    assert match_pair(child, parent, disclosures) is PairMatch.MISMATCH
    # The add bumps the epoch: the cached MISMATCH must not survive.
    disclosures.add(child.issuer, parent.subject)
    assert match_pair(child, parent, disclosures) is PairMatch.CROSS_SIGN
    assert _match_pair(child, parent, disclosures) is PairMatch.CROSS_SIGN


def test_unpickled_disclosures_never_alias_the_original():
    disclosures = CrossSignDisclosures(_PKI.cross_sign_disclosures())
    original_token = disclosures.memo_token
    clone = pickle.loads(pickle.dumps(disclosures))
    assert clone.memo_token != original_token
    assert clone.memo_token[1] == original_token[1]  # same epoch
    # Same contents, so verdicts agree even though cache lines differ.
    child, parent = _POOL[0], _POOL[1]
    assert match_pair(child, parent, clone) is \
        match_pair(child, parent, disclosures)


class TestLeafLikeFingerprintIdentity:
    """A chain rebuilt from logs may hold several distinct objects for one
    certificate; leaf verdicts must not depend on object identity."""

    def test_duplicate_objects_answer_like_duplicate_references(self):
        ss = _FACTORY.self_signed(name("dup-ss.local"))
        twin = copy.deepcopy(ss)
        assert twin is not ss and twin.fingerprint == ss.fingerprint
        assert is_leaf_like(ss, [ss, ss]) == is_leaf_like(ss, [ss, twin])
        assert is_leaf_like(ss, [ss, twin]) is True

    def test_structure_identical_for_object_and_reference_duplicates(self):
        ss = _FACTORY.self_signed(name("dup-ss2.local"))
        twin = copy.deepcopy(ss)
        by_reference = analyze_structure([ss, ss])
        by_object = analyze_structure([ss, twin])
        assert by_object.segments == by_reference.segments
        assert by_object.pair_matches == by_reference.pair_matches
        assert [s.has_leaf for s in by_object.segments] == \
            [s.has_leaf for s in by_reference.segments]

"""Property-based tests for issuer–subject matching invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.crosssign import CrossSignDisclosures
from repro.core.matching import PairMatch, analyze_structure
from repro.truststores import build_public_pki
from repro.x509 import CertificateFactory, name

# A fixed pool of diverse certificates: a proper hierarchy, self-signed
# oddballs, and cross-signed material.  Chains are arbitrary sequences
# drawn from the pool, so matched/mismatched pairs occur in all shapes.
_PKI = build_public_pki(seed=404)
_FACTORY = CertificateFactory(seed=404)
_ROOT = _FACTORY.root(name("Prop Root", o="Prop"))
_INTER_A = _FACTORY.intermediate(_ROOT, name("Prop Inter A", o="Prop"))
_INTER_B = _FACTORY.intermediate(_INTER_A, name("Prop Inter B", o="Prop"),
                                 path_len=None)
_POOL = [
    _FACTORY.leaf(_INTER_B, name("prop-leaf.example"),
                  dns_names=["prop-leaf.example"]),
    _INTER_B.certificate,
    _INTER_A.certificate,
    _ROOT.certificate,
    _FACTORY.self_signed(name("prop-ss.local")),
    _FACTORY.mismatched_pair_cert(name("prop-x"), name("prop-y")),
    _FACTORY.leaf(_PKI.ca("lets_encrypt").intermediates["R3"],
                  name("prop-le.example")),
    _PKI.ca("identrust").root.certificate,
    _PKI.cross_signed["R3-cross"].certificate,
]
_DISCLOSURES = CrossSignDisclosures.from_pki(_PKI)

chains = st.lists(st.integers(0, len(_POOL) - 1), min_size=1, max_size=8).map(
    lambda idx: tuple(_POOL[i] for i in idx))


@settings(max_examples=150, deadline=None)
@given(chain=chains)
def test_segments_partition_the_chain(chain):
    structure = analyze_structure(chain)
    covered = []
    for segment in structure.segments:
        covered.extend(segment.indices())
    assert covered == list(range(len(chain)))


@settings(max_examples=150, deadline=None)
@given(chain=chains)
def test_mismatch_ratio_definition(chain):
    structure = analyze_structure(chain)
    pairs = len(chain) - 1
    mismatches = sum(1 for m in structure.pair_matches
                     if m is PairMatch.MISMATCH)
    expected = mismatches / pairs if pairs else 0.0
    assert structure.mismatch_ratio == pytest.approx(expected)
    assert 0.0 <= structure.mismatch_ratio <= 1.0


@settings(max_examples=150, deadline=None)
@given(chain=chains)
def test_fully_matched_iff_single_segment(chain):
    structure = analyze_structure(chain)
    assert structure.is_fully_matched == (len(structure.segments) == 1)


@settings(max_examples=150, deadline=None)
@given(chain=chains)
def test_best_path_is_longest_complete_path(chain):
    structure = analyze_structure(chain)
    if structure.best_path is None:
        assert structure.complete_paths == ()
    else:
        assert structure.best_path in structure.complete_paths
        assert structure.best_path.length == max(
            s.length for s in structure.complete_paths)


@settings(max_examples=150, deadline=None)
@given(chain=chains)
def test_unnecessary_complements_best_path(chain):
    structure = analyze_structure(chain)
    if structure.best_path is None:
        assert structure.unnecessary_indices == ()
    else:
        combined = sorted(set(structure.best_path.indices())
                          | set(structure.unnecessary_indices))
        assert combined == list(range(len(chain)))


@settings(max_examples=150, deadline=None)
@given(chain=chains)
def test_analysis_deterministic(chain):
    first = analyze_structure(chain)
    second = analyze_structure(chain)
    assert first.pair_matches == second.pair_matches
    assert first.segments == second.segments


@settings(max_examples=150, deadline=None)
@given(chain=chains)
def test_disclosures_only_widen_matches(chain):
    """Cross-sign awareness can repair mismatches but never break matches."""
    naive = analyze_structure(chain)
    aware = analyze_structure(chain, disclosures=_DISCLOSURES)
    for before, after in zip(naive.pair_matches, aware.pair_matches):
        if before.matched:
            assert after.matched


@settings(max_examples=150, deadline=None)
@given(chain=chains)
def test_relaxed_leaf_requirement_is_monotone(chain):
    """Every complete path under require_leaf=True is complete without it."""
    strict = analyze_structure(chain, require_leaf=True)
    relaxed = analyze_structure(chain, require_leaf=False)
    strict_spans = {(s.start, s.end) for s in strict.complete_paths}
    relaxed_spans = {(s.start, s.end) for s in relaxed.complete_paths}
    assert strict_spans <= relaxed_spans

"""Hybrid chain taxonomy: Tables 3, 6, 7 and Figures 4, 6 semantics."""

from __future__ import annotations

import pytest

from repro.core.chain import ObservedChain
from repro.core.classification import CertificateClassifier
from repro.core.hybrid import (
    CellLabel,
    CompletePathKind,
    EntityKind,
    HybridAnalyzer,
    HybridCategory,
    NoPathCategory,
    classify_entity,
)
from repro.x509 import CertificateFactory, name
from repro.x509.dn import DistinguishedName


def _observed(certs, connections=10, established=9):
    chain = ObservedChain(tuple(certs))
    for i in range(connections):
        chain.usage.record(established=i < established,
                           client_ip=f"10.0.0.{i}", server_ip="203.0.113.1",
                           port=443, sni="svc.example", ts=1_600_000_000.0 + i)
    return chain


@pytest.fixture()
def analyzer(classifier, disclosures):
    return HybridAnalyzer(classifier, disclosures)


@pytest.fixture()
def va_chain(pki, factory):
    """The Veterans Affairs pattern: non-public leaf anchored to the
    (Microsoft-only) Federal PKI root via a CCADB intermediate."""
    verizon = pki.ca("federal_pki").intermediates["verizon_ssp"]
    va_ca = factory.intermediate(verizon, name("Veterans Affairs CA B3",
                                               o="U.S. Government"))
    leaf = factory.leaf(va_ca, name("www.va.gov"), dns_names=["www.va.gov"])
    return (leaf, va_ca.certificate, verizon.certificate)


@pytest.fixture()
def scalyr_chain(pki, factory):
    """The Scalyr pattern: public complete path followed by a private
    re-issue of the public root's subject (Appendix F.1)."""
    usertrust = pki.ca("usertrust")
    dv = usertrust.intermediates["sectigo_dv"]
    leaf = factory.leaf(dv, name("app.scalyr.com"), dns_names=["app.scalyr.com"])
    aaa = pki.ca("sectigo").root
    private_reissue = factory.mismatched_pair_cert(
        name("Scalyr Inc", o="Scalyr"), aaa.subject)
    # usertrust cert's issuer is its own subject (self-signed root) — build
    # delivered order: leaf, DV intermediate, USERTrust root, private cert
    # whose subject matches the preceding certificate's issuer.
    reissue_of_usertrust_issuer = factory.mismatched_pair_cert(
        name("Scalyr Inc", o="Scalyr"), usertrust.root.subject)
    return (leaf, dv.certificate, reissue_of_usertrust_issuer)


class TestCompletePathOnly:
    def test_va_chain_is_non_pub_chained_to_pub(self, analyzer, va_chain):
        analysis = analyzer.analyze_chain(_observed(va_chain))
        assert analysis.category is HybridCategory.COMPLETE_PATH_ONLY
        assert analysis.complete_kind is \
            CompletePathKind.NON_PUBLIC_CHAINED_TO_PUBLIC
        assert analysis.anchored_to_public_root
        assert analysis.entity is EntityKind.GOVERNMENT

    def test_scalyr_chain_is_pub_chained_to_private(self, analyzer,
                                                    scalyr_chain):
        analysis = analyzer.analyze_chain(_observed(scalyr_chain))
        assert analysis.category is HybridCategory.COMPLETE_PATH_ONLY
        assert analysis.complete_kind is \
            CompletePathKind.PUBLIC_CHAINED_TO_PRIVATE

    def test_corporate_entity(self, analyzer, pki, factory):
        symantec = pki.ca("symantec").intermediates["class3_g4"]
        private = factory.intermediate(
            symantec, name("Symantec Private SSL SHA1 CA",
                           o="Symantec Corporation"))
        leaf = factory.leaf(private, name("internal.acme.com"))
        analysis = analyzer.analyze_chain(
            _observed((leaf, private.certificate, symantec.certificate)))
        assert analysis.complete_kind is \
            CompletePathKind.NON_PUBLIC_CHAINED_TO_PUBLIC
        assert analysis.entity is EntityKind.CORPORATE


class TestContainsCompletePath:
    def test_fake_le_staging(self, analyzer, pki, factory):
        le = pki.ca("lets_encrypt")
        leaf = factory.leaf(le.intermediates["R3"], name("blog.example"))
        fake = factory.mismatched_pair_cert(
            name("Fake LE Root X1"), name("Fake LE Intermediate X1"))
        chain = (leaf, le.intermediates["R3"].certificate,
                 le.root.certificate, fake)
        analysis = analyzer.analyze_chain(_observed(chain))
        assert analysis.category is HybridCategory.CONTAINS_COMPLETE_PATH
        assert analysis.structure.unnecessary_indices == (3,)

    def test_athenz_appended(self, analyzer, pki, factory):
        dg = pki.ca("digicert")
        leaf = factory.leaf(dg.intermediates["tls2020"], name("api.example"))
        athenz = factory.self_signed(name("athenz.example", o="Athenz"))
        chain = (leaf, dg.intermediates["tls2020"].certificate,
                 dg.root.certificate, athenz)
        analysis = analyzer.analyze_chain(_observed(chain))
        assert analysis.category is HybridCategory.CONTAINS_COMPLETE_PATH


class TestNoPathTaxonomy:
    def test_self_signed_leaf_then_mismatches(self, analyzer, pki, factory):
        localhost_dn = DistinguishedName.parse(
            "emailAddress=webmaster@localhost,CN=localhost,OU=none,O=none,"
            "L=Sometown,ST=Someprovince,C=US")
        ss_leaf = factory.self_signed(localhost_dn)
        random_pub = pki.ca("godaddy").intermediates["g2"].certificate
        analysis = analyzer.analyze_chain(_observed((ss_leaf, random_pub)))
        assert analysis.category is HybridCategory.NO_COMPLETE_PATH
        assert analysis.no_path_category is \
            NoPathCategory.SELF_SIGNED_LEAF_THEN_MISMATCHES

    def test_self_signed_leaf_then_valid_subchain(self, analyzer, pki, factory):
        ss_leaf = factory.self_signed(name("replaced.example"))
        dg = pki.ca("digicert")
        chain = (ss_leaf, dg.intermediates["sha2"].certificate,
                 dg.root.certificate)
        analysis = analyzer.analyze_chain(_observed(chain))
        assert analysis.no_path_category is \
            NoPathCategory.SELF_SIGNED_LEAF_THEN_VALID_SUBCHAIN

    def test_all_mismatched(self, analyzer, pki, factory):
        dv_leaf = factory.leaf(
            pki.ca("usertrust").intermediates["sectigo_dv"], name("m.example"))
        unrelated_pub = pki.ca("globalsign").intermediates["ov2018"].certificate
        nonpub = factory.mismatched_pair_cert(name("weird issuer"),
                                              name("weird subject"))
        analysis = analyzer.analyze_chain(
            _observed((dv_leaf, unrelated_pub, nonpub)))
        assert analysis.no_path_category is NoPathCategory.ALL_MISMATCHED
        assert analysis.mismatch_ratio == 1.0

    def test_partial_mismatched(self, analyzer, pki, factory):
        # Public leaf missing its issuer, followed by a matched CA pair.
        dv_leaf = factory.leaf(
            pki.ca("usertrust").intermediates["sectigo_dv"], name("p.example"))
        ut_root = pki.ca("usertrust").root.certificate
        aaa_reissue = factory.mismatched_pair_cert(
            name("Private CA", o="Acme"), ut_root.issuer)
        analysis = analyzer.analyze_chain(
            _observed((dv_leaf, ut_root, aaa_reissue)))
        assert analysis.category is HybridCategory.NO_COMPLETE_PATH
        assert analysis.no_path_category is NoPathCategory.PARTIAL_MISMATCHED

    def test_root_appended_to_truncated_public_subchain(self, analyzer, pki,
                                                        factory):
        dg = pki.ca("digicert")
        truncated = (dg.intermediates["tls2020"].certificate,
                     dg.root.certificate)  # matched, but no leaf
        nonpub_root = factory.self_signed(name("Corp Root", o="Corp"),
                                          include_extensions=True)
        analysis = analyzer.analyze_chain(
            _observed((*truncated, nonpub_root)))
        assert analysis.no_path_category is \
            NoPathCategory.ROOT_APPENDED_TO_PUBLIC_SUBCHAIN

    def test_root_and_mismatched(self, analyzer, pki, factory):
        dg = pki.ca("digicert")
        gd = pki.ca("godaddy")
        nonpub_root = factory.self_signed(name("Corp Root 2", o="Corp"),
                                          include_extensions=True)
        # Head pairs do not match each other.
        analysis = analyzer.analyze_chain(_observed((
            dg.intermediates["tls2020"].certificate,
            gd.intermediates["g2"].certificate,
            nonpub_root)))
        assert analysis.no_path_category is NoPathCategory.ROOT_AND_MISMATCHED

    def test_missing_issuer_flag(self, analyzer, pki, factory):
        dv_leaf = factory.leaf(
            pki.ca("usertrust").intermediates["sectigo_dv"], name("q.example"))
        nonpub = factory.mismatched_pair_cert(name("x issuer"), name("x subject"))
        analysis = analyzer.analyze_chain(_observed((dv_leaf, nonpub)))
        assert analysis.leaf_missing_issuer


class TestReportTables:
    @pytest.fixture()
    def report(self, analyzer, va_chain, scalyr_chain, pki, factory):
        le = pki.ca("lets_encrypt")
        leaf = factory.leaf(le.intermediates["R3"], name("r.example"))
        fake = factory.mismatched_pair_cert(
            name("Fake LE Root X1"), name("Fake LE Intermediate X1"))
        contains = (leaf, le.intermediates["R3"].certificate,
                    le.root.certificate, fake)
        ss = factory.self_signed(name("busted.local"))
        nopath = (ss, pki.ca("godaddy").intermediates["g2"].certificate)
        return analyzer.analyze([
            _observed(va_chain, connections=100, established=98),
            _observed(scalyr_chain, connections=100, established=99),
            _observed(contains, connections=100, established=92),
            _observed(nopath, connections=100, established=57),
        ])

    def test_table3_counts(self, report):
        rows = {(r["category"], r["subcategory"]): r["chains"]
                for r in report.table3_rows()}
        assert rows[("(1) Chain is a complete matched path",
                     "Non-pub. chained to Pub.")] == 1
        assert rows[("(1) Chain is a complete matched path",
                     "Pub. chained to Prv.")] == 1
        assert rows[("(2) Chain contains a complete matched path", "-")] == 1
        assert rows[("(3) No complete matched path", "-")] == 1
        assert rows[("Total", "")] == 4

    def test_establishment_rates_ordered(self, report):
        complete = report.establishment_rate(HybridCategory.COMPLETE_PATH_ONLY)
        contains = report.establishment_rate(HybridCategory.CONTAINS_COMPLETE_PATH)
        nopath = report.establishment_rate(HybridCategory.NO_COMPLETE_PATH)
        assert complete > contains > nopath

    def test_table6(self, report):
        rows = {r["category"]: r["chains"] for r in report.table6_rows()}
        assert rows["Government"] == 1
        assert rows["Corporate"] == 0

    def test_table7(self, report):
        rows = {r["category"]: r["chains"] for r in report.table7_rows()}
        assert rows[NoPathCategory.SELF_SIGNED_LEAF_THEN_MISMATCHES.value] == 1
        assert sum(rows.values()) == 1

    def test_figure4_grid_labels(self, report):
        grid = report.figure4_grid()
        assert len(grid) == 1
        column = grid[0]
        assert column[:3] == [CellLabel.PUB_COMPLETE] * 3
        assert column[3] in (CellLabel.NON_PUB_SINGLE, CellLabel.SINGLE_LEAF)

    def test_figure6_histogram_totals(self, report):
        histogram = report.figure6_histogram()
        assert sum(count for _, count in histogram) == 1

    def test_high_mismatch_share(self, report):
        assert report.high_mismatch_share(0.5) == 100.0


class TestEntityClassifier:
    @pytest.mark.parametrize("dn_text,expected", [
        ("CN=Veterans Affairs CA B3,O=U.S. Government", EntityKind.GOVERNMENT),
        ("CN=GPKIRootCA1,O=Government of Korea", EntityKind.GOVERNMENT),
        ("CN=AC Raiz,O=ICP-Brasil", EntityKind.GOVERNMENT),
        ("CN=Symantec Private SSL,O=Symantec Corporation", EntityKind.CORPORATE),
        ("CN=SignKorea CA,O=SignKorea", EntityKind.CORPORATE),
        ("CN=Some CA,O=Acme Widgets", EntityKind.CORPORATE),
    ])
    def test_cases(self, dn_text, expected):
        assert classify_entity(DistinguishedName.parse(dn_text)) is expected

"""Degraded interception detection: CT outages, breaker, ct_unavailable."""

from __future__ import annotations

import pytest

from repro.core.chain import ObservedChain
from repro.core.interception import InterceptionDetector, VendorDirectory
from repro.ct import CTLog, CrtShIndex
from repro.faults import FaultInjector, FaultPlan
from repro.obs import instruments
from repro.resilience import BreakerState, CircuitBreaker
from repro.tls import build_middlebox
from repro.x509 import CertificateFactory, name


@pytest.fixture()
def ct_index(pki):
    factory = CertificateFactory(seed=71)
    r3 = pki.ca("lets_encrypt").intermediates["R3"]
    real_leaf = factory.leaf(r3, name("portal.example.com"),
                             dns_names=["portal.example.com"])
    log = CTLog("campus-log",
                accepted_roots=[ca.root.certificate
                                for ca in pki.cas.values()])
    log.add_chain([real_leaf, r3.certificate,
                   pki.ca("lets_encrypt").root.certificate])
    return CrtShIndex([log])


@pytest.fixture()
def intercepted_chain():
    mb = build_middlebox("Zscaler Inc", "Security & Network", seed=72)
    chain = ObservedChain(tuple(mb.substitute_chain("portal.example.com")))
    chain.usage.record(established=True, client_ip="10.0.1.1",
                       server_ip="203.0.113.80", port=443,
                       sni="portal.example.com", ts=1_600_000_000.0)
    return chain


@pytest.fixture()
def directory():
    return VendorDirectory([("zscaler", "Zscaler", "Security & Network")])


class TestCTOutage:
    def test_total_outage_degrades_instead_of_flagging(
            self, classifier, ct_index, directory, intercepted_chain):
        degraded_before = instruments.INTERCEPTION_CHAINS.value(
            verdict="ct_unavailable")
        detector = InterceptionDetector(
            classifier, ct_index, directory,
            faults=FaultInjector(FaultPlan(ct_outage_rate=1.0)))
        report = detector.detect([intercepted_chain])
        # No CT evidence: no interception claim either way, but the loss
        # of coverage is recorded, never silent.
        assert report.flagged_chains == {}
        assert report.degraded_chains == [intercepted_chain.key]
        assert report.degraded_count == 1
        assert instruments.INTERCEPTION_CHAINS.value(
            verdict="ct_unavailable") == degraded_before + 1

    def test_no_outage_still_flags(self, classifier, ct_index, directory,
                                   intercepted_chain):
        detector = InterceptionDetector(
            classifier, ct_index, directory,
            faults=FaultInjector(FaultPlan()))
        report = detector.detect([intercepted_chain])
        assert intercepted_chain.key in report.flagged_chains
        assert report.degraded_chains == []


class TestBreakerIntegration:
    def test_sustained_outage_opens_the_breaker(self, classifier, ct_index,
                                                directory,
                                                intercepted_chain):
        breaker = CircuitBreaker(name="ct-test", failure_threshold=2,
                                 recovery_after=1000)
        detector = InterceptionDetector(
            classifier, ct_index, directory, breaker=breaker,
            faults=FaultInjector(FaultPlan(ct_outage_rate=1.0)))
        report = detector.detect([intercepted_chain] * 5)
        assert breaker.state is BreakerState.OPEN
        # Every affected chain is degraded whether the lookup failed live
        # or was rejected by the open breaker.
        assert report.degraded_count == 5

    def test_healthy_ct_leaves_breaker_closed(self, classifier, ct_index,
                                              directory, intercepted_chain):
        breaker = CircuitBreaker(name="ct-test", failure_threshold=2)
        detector = InterceptionDetector(classifier, ct_index, directory,
                                        breaker=breaker)
        report = detector.detect([intercepted_chain])
        assert breaker.state is BreakerState.CLOSED
        assert intercepted_chain.key in report.flagged_chains

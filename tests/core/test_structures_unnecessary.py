"""PKI graphs (Figures 5/7/8) and unnecessary-certificate attribution."""

from __future__ import annotations

import pytest

from repro.core.chain import ObservedChain
from repro.core.matching import analyze_structure
from repro.core.structures import (
    build_cooccurrence_graph,
    build_issuance_graph,
    complex_intermediates,
    complex_subgraph,
    infer_role,
    summarize_graph,
)
from repro.core.unnecessary import (
    UnnecessaryPattern,
    attribute_unnecessary,
)
from repro.x509 import CertificateFactory, name


def _observed(certs):
    chain = ObservedChain(tuple(certs))
    chain.usage.record(established=True, client_ip="10.0.0.1", server_ip="x",
                       port=443, sni=None, ts=0.0)
    return chain


@pytest.fixture()
def mesh_chains(factory):
    """A private PKI where one intermediate issues four sub-intermediates
    used across different chains — the Appendix I 'complex structure'."""
    root = factory.root(name("Mesh Root", o="Mesh"))
    hub = factory.intermediate(root, name("Mesh Hub CA", o="Mesh"),
                               path_len=None)
    chains = []
    for i in range(4):
        sub = factory.intermediate(hub, name(f"Mesh Sub CA {i}", o="Mesh"))
        leaf = factory.leaf(sub, name(f"svc{i}.mesh.example"))
        chains.append(_observed((leaf, sub.certificate, hub.certificate,
                                 root.certificate)))
    return chains


class TestRoleInference:
    def test_roles_in_standard_chain(self, factory):
        root = factory.root(name("R"))
        inter = factory.intermediate(root, name("I"))
        leaf = factory.leaf(inter, name("l.example"))
        chains = [_observed((leaf, inter.certificate, root.certificate))]
        assert infer_role(leaf, chains) == "leaf"
        assert infer_role(inter.certificate, chains) == "intermediate"
        assert infer_role(root.certificate, chains) == "root"

    def test_bare_self_signed_alone_is_leaf(self, factory):
        bare = factory.self_signed(name("alone.local"))
        assert infer_role(bare, [_observed((bare,))]) == "leaf"

    def test_bare_cert_that_issues_is_intermediate(self, factory):
        # Extension-less CA: role must come from observed issuance.
        fake_ca = factory.mismatched_pair_cert(name("above"), name("mid"))
        child = factory.mismatched_pair_cert(name("mid"), name("below.example"))
        chains = [_observed((child, fake_ca))]
        assert infer_role(fake_ca, chains) == "intermediate"


class TestCooccurrenceGraph:
    def test_nodes_and_edges(self, classifier, pki, factory):
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("co.example"))
        private = factory.self_signed(name("priv.local"))
        chains = [_observed((leaf, r3.certificate, private))]
        graph = build_cooccurrence_graph(chains, classifier)
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3  # triangle: all co-occur
        classes = {d["issuer_class"] for _, d in graph.nodes(data=True)}
        assert classes == {"public-db", "non-public-db"}

    def test_shared_intermediate_links_chains(self, classifier, pki, factory):
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        a = factory.leaf(r3, name("a.example"))
        b = factory.leaf(r3, name("b.example"))
        chains = [_observed((a, r3.certificate)), _observed((b, r3.certificate))]
        graph = build_cooccurrence_graph(chains, classifier)
        assert graph.number_of_nodes() == 3
        assert graph.degree[r3.certificate.fingerprint] == 2


class TestIssuanceGraph:
    def test_edges_follow_issuance(self, factory):
        root = factory.root(name("R"))
        leaf = factory.leaf(root, name("x.example"))
        graph = build_issuance_graph([_observed((leaf, root.certificate))])
        assert graph.has_edge(root.certificate.fingerprint, leaf.fingerprint)

    def test_mismatched_pair_contributes_no_edge(self, factory):
        a = factory.self_signed(name("a.local"))
        b = factory.self_signed(name("b.local"))
        graph = build_issuance_graph([_observed((a, b))])
        assert graph.number_of_edges() == 0

    def test_complex_intermediates_found(self, mesh_chains):
        graph = build_issuance_graph(mesh_chains)
        complex_nodes = complex_intermediates(graph)
        labels = {graph.nodes[n]["label"] for n in complex_nodes}
        assert labels == {"Mesh Hub CA"}

    def test_simple_pki_has_no_complex_intermediates(self, factory):
        root = factory.root(name("Simple Root"))
        inter = factory.intermediate(root, name("Simple Inter"))
        leaf = factory.leaf(inter, name("s.example"))
        graph = build_issuance_graph(
            [_observed((leaf, inter.certificate, root.certificate))])
        assert complex_intermediates(graph) == []

    def test_complex_subgraph_includes_neighborhood(self, mesh_chains):
        graph = build_issuance_graph(mesh_chains)
        sub = complex_subgraph(graph)
        # hub + root + 4 sub-CAs (+ no leaves: they are the hub's
        # grandchildren, not neighbours).
        roles = [sub.nodes[n]["role"] for n in sub]
        assert roles.count("intermediate") == 5
        assert roles.count("root") == 1

    def test_summary(self, mesh_chains, classifier):
        graph = build_issuance_graph(mesh_chains)
        summary = summarize_graph(graph)
        assert summary.nodes == 10  # 4 leaves + 4 subs + hub + root
        assert summary.complex_intermediates == 1
        assert summary.components == 1


class TestUnnecessaryAttribution:
    def _structure(self, certs):
        return analyze_structure(certs, require_leaf=True)

    @pytest.fixture()
    def base_chain(self, pki, factory):
        le = pki.ca("lets_encrypt")
        leaf = factory.leaf(le.intermediates["R3"], name("u.example"))
        return (leaf, le.intermediates["R3"].certificate, le.root.certificate)

    def test_fake_le_pattern(self, base_chain, factory, registry):
        fake = factory.mismatched_pair_cert(name("Fake LE Root X1"),
                                            name("Fake LE Intermediate X1"))
        findings = attribute_unnecessary(
            self._structure((*base_chain, fake)), registry)
        assert len(findings) == 1
        assert findings[0].pattern is UnnecessaryPattern.FAKE_LE_STAGING

    def test_athenz_pattern(self, base_chain, factory, registry):
        athenz = factory.self_signed(name("service.athenz.cloud", o="Athenz"))
        findings = attribute_unnecessary(
            self._structure((*base_chain, athenz)), registry)
        assert findings[0].pattern is \
            UnnecessaryPattern.SOFTWARE_APPENDED_SELF_SIGNED

    def test_hp_tester_pattern(self, base_chain, factory, registry):
        tester = factory.self_signed(name("tester", o="HP Inc"))
        findings = attribute_unnecessary(
            self._structure((*base_chain, tester)), registry)
        assert findings[0].pattern is UnnecessaryPattern.ENTERPRISE_SELF_SIGNED

    def test_extra_public_root_pattern(self, base_chain, pki, registry):
        extra_root = pki.ca("godaddy").root.certificate
        findings = attribute_unnecessary(
            self._structure((*base_chain, extra_root)), registry)
        assert findings[0].pattern is UnnecessaryPattern.EXTRA_PUBLIC_ROOT

    def test_stray_leaf_before_path(self, base_chain, pki, factory, registry):
        other = factory.leaf(pki.ca("godaddy").intermediates["g2"],
                             name("old.example"))
        findings = attribute_unnecessary(
            self._structure((other, *base_chain)), registry)
        assert findings[0].pattern is UnnecessaryPattern.LEAF_BEFORE_PATH
        assert findings[0].index == 0

    def test_no_best_path_no_findings(self, factory, registry):
        a = factory.self_signed(name("x.local"))
        b = factory.self_signed(name("y.local"))
        assert attribute_unnecessary(self._structure((a, b)), registry) == []

    def test_clean_chain_no_findings(self, base_chain, registry):
        assert attribute_unnecessary(self._structure(base_chain), registry) == []

"""Chain length distributions (Figure 1) and DGA cluster detection (§4.3)."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.core.categorization import CategorizedChains, ChainCategory
from repro.core.chain import ObservedChain
from repro.core.dga import DGADetector, domain_template, looks_random
from repro.core.lengths import (
    LengthDistribution,
    exclude_outliers,
    length_distributions,
)
from repro.x509 import CertificateFactory, name


def _chain_of_length(factory, n, connections=5):
    certs = [factory.self_signed(name(f"c{i}.local")) for i in range(n)]
    chain = ObservedChain(tuple(certs))
    for i in range(connections):
        chain.usage.record(established=True, client_ip="10.0.0.1",
                           server_ip="x", port=443, sni=None, ts=float(i))
    return chain


class TestLengthDistribution:
    def test_cdf_monotone_and_terminates_at_one(self):
        dist = LengthDistribution(ChainCategory.PUBLIC_ONLY,
                                  Counter({1: 10, 2: 60, 3: 30}))
        cdf = dist.cdf()
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_cumulative_fraction(self):
        dist = LengthDistribution(ChainCategory.PUBLIC_ONLY,
                                  Counter({1: 10, 2: 60, 3: 30}))
        assert dist.cumulative_fraction_at(2) == pytest.approx(0.7)

    def test_dominant_length(self):
        dist = LengthDistribution(ChainCategory.INTERCEPTION,
                                  Counter({3: 80, 1: 20}))
        assert dist.dominant_length() == 3

    def test_empty(self):
        dist = LengthDistribution(ChainCategory.HYBRID, Counter())
        assert dist.cdf() == []
        assert dist.dominant_length() is None
        assert dist.fraction_at(2) == 0.0


class TestOutlierExclusion:
    def test_paper_rule(self, factory):
        normal = _chain_of_length(factory, 3)
        monster_once = _chain_of_length(factory, 3822, connections=1)
        long_but_frequent = _chain_of_length(factory, 50, connections=100)
        kept, excluded = exclude_outliers([normal, monster_once,
                                           long_but_frequent])
        assert monster_once in excluded
        assert normal in kept
        assert long_but_frequent in kept

    def test_distributions_apply_rule(self, factory):
        categorized = CategorizedChains()
        categorized.add(ChainCategory.NON_PUBLIC_ONLY,
                        _chain_of_length(factory, 1))
        categorized.add(ChainCategory.NON_PUBLIC_ONLY,
                        _chain_of_length(factory, 921, connections=1))
        dists = length_distributions(categorized)
        dist = dists[ChainCategory.NON_PUBLIC_ONLY]
        assert dist.total == 1
        assert dist.max_length() == 1


class TestLooksRandom:
    @pytest.mark.parametrize("label", [
        "qkzjtvwyxp", "x7f3k9q2m", "zzkqwjxv", "bq7xkpz3vw",
    ])
    def test_random_strings_detected(self, label):
        assert looks_random(label)

    @pytest.mark.parametrize("label", [
        "google", "facebook", "campusnet", "mailserver", "university",
        "sometown",
    ])
    def test_natural_words_not_detected(self, label):
        assert not looks_random(label)

    def test_too_short_rejected(self):
        assert not looks_random("ab3")


class TestDomainTemplate:
    def test_dga_domain(self):
        assert domain_template("www.qkzjtvwyxp.com") == "www.<rand>.com"

    def test_brand_domain(self):
        assert domain_template("www.facebook.com") is None

    def test_wrong_shape(self):
        assert domain_template("mail.qkzjtvwyxp.com") is None
        assert domain_template("qkzjtvwyxp.com") is None


class TestDGADetector:
    def _dga_chain(self, factory, rng_label_a, rng_label_b):
        cert = factory.mismatched_pair_cert(
            name(f"www.{rng_label_a}.com"), name(f"www.{rng_label_b}.com"),
            lifetime_days=180)
        chain = ObservedChain((cert,))
        chain.usage.record(established=True, client_ip="10.0.0.1",
                           server_ip="x", port=443, sni=None, ts=0.0)
        return chain

    def test_cluster_detected(self, factory):
        labels = ["qkzjtvwyxp", "bq7xkpz3vw", "zzkqwjxvtt", "x7f3k9q2mh",
                  "wjqkzvxpth", "kqzjwtxvbn"]
        chains = [self._dga_chain(factory, a, b)
                  for a, b in zip(labels, labels[1:])]
        clusters = DGADetector().detect(chains)
        assert len(clusters) == 1
        assert clusters[0].template == "www.<rand>.com"
        assert len(clusters[0].chains) == len(chains)

    def test_self_signed_not_candidate(self, factory):
        cert = factory.self_signed(name("www.qkzjtvwyxp.com"))
        chain = ObservedChain((cert,))
        assert DGADetector().candidate(chain) is None

    def test_multi_cert_chain_not_candidate(self, factory):
        root = factory.root(name("R"))
        leaf = factory.leaf(root, name("www.qkzjtvwyxp.com"))
        chain = ObservedChain((leaf, root.certificate))
        assert DGADetector().candidate(chain) is None

    def test_natural_domains_not_clustered(self, factory):
        chains = [self._dga_chain(factory, "campusmail", "campusweb")]
        assert DGADetector(min_cluster_size=1).detect(chains) == []

    def test_validity_range(self, factory):
        chains = [self._dga_chain(factory, a, b) for a, b in
                  [("qkzjtvwyxp", "bq7xkpz3vw"),
                   ("zzkqwjxvtt", "x7f3k9q2mh"),
                   ("wjqkzvxpth", "kqzjwtxvbn")]]
        clusters = DGADetector().detect(chains)
        low, high = clusters[0].validity_range_days()
        assert 1 <= low <= high <= 365


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=0,
               max_size=40))
def test_property_looks_random_never_crashes(label):
    looks_random(label)


@given(st.text(max_size=60))
def test_property_domain_template_never_crashes(domain):
    domain_template(domain)

"""Multi-chain server detection and change classification (§4.2's 19)."""

from __future__ import annotations

import pytest

from repro.core.chain import ObservedChain
from repro.core.serverchains import (
    ChainChangeKind,
    analyze_multi_chain_servers,
    classify_change,
    group_by_server,
)
from repro.x509 import CertificateFactory, name


def _observed(certs, server_ip="203.0.113.7", first_seen=0.0):
    chain = ObservedChain(tuple(certs))
    chain.usage.record(established=True, client_ip="10.0.0.1",
                       server_ip=server_ip, port=443, sni=None, ts=first_seen)
    return chain


@pytest.fixture()
def le_path(pki, factory):
    le = pki.ca("lets_encrypt")
    r3 = le.intermediates["R3"]
    leaf = factory.leaf(r3, name("sc.example"))
    return leaf, r3, le.root.certificate


class TestClassifyChange:
    def test_leaf_replacement(self, pki, factory, le_path):
        leaf_a, r3, root = le_path
        leaf_b = factory.leaf(r3, name("sc.example"))  # renewed serial
        kind = classify_change(_observed((leaf_a, r3.certificate)),
                               _observed((leaf_b, r3.certificate)))
        assert kind is ChainChangeKind.LEAF_REPLACEMENT

    def test_same_leaf_not_replacement(self, le_path):
        leaf, r3, _ = le_path
        a = _observed((leaf, r3.certificate))
        b = _observed((leaf, r3.certificate))
        # Identical chains: falls through to restructured (callers only
        # compare *distinct* chains, but the function must not crash).
        assert classify_change(a, b) is not ChainChangeKind.LEAF_REPLACEMENT

    def test_different_unnecessary(self, pki, factory, le_path):
        leaf, r3, root = le_path
        junk_a = factory.self_signed(name("junk-a", o="Corp"))
        junk_b = factory.self_signed(name("junk-b", o="Corp"))
        kind = classify_change(
            _observed((leaf, r3.certificate, root, junk_a)),
            _observed((leaf, r3.certificate, root, junk_b)))
        assert kind is ChainChangeKind.DIFFERENT_UNNECESSARY

    def test_migration_is_restructured(self, pki, factory, le_path):
        leaf, r3, _ = le_path
        dg = pki.ca("digicert")
        other_leaf = factory.leaf(dg.intermediates["tls2020"],
                                  name("sc.example"))
        kind = classify_change(
            _observed((leaf, r3.certificate)),
            _observed((other_leaf, dg.intermediates["tls2020"].certificate)))
        assert kind is ChainChangeKind.RESTRUCTURED

    def test_different_issuer_leaf_swap_is_restructured(self, pki, factory,
                                                        le_path):
        leaf, r3, _ = le_path
        impostor = factory.self_signed(name("sc.example"))
        kind = classify_change(_observed((leaf, r3.certificate)),
                               _observed((impostor, r3.certificate)))
        assert kind is ChainChangeKind.RESTRUCTURED


class TestGrouping:
    def test_groups_by_server_ip(self, factory):
        a = _observed((factory.self_signed(name("a.local")),), "198.51.100.1")
        b = _observed((factory.self_signed(name("b.local")),), "198.51.100.1")
        c = _observed((factory.self_signed(name("c.local")),), "198.51.100.2")
        groups = group_by_server([a, b, c])
        sizes = sorted(len(g.chains) for g in groups)
        assert sizes == [1, 2]

    def test_report_counts(self, pki, factory, le_path):
        leaf, r3, root = le_path
        renewed = factory.leaf(r3, name("sc.example"))
        report = analyze_multi_chain_servers([
            _observed((leaf, r3.certificate), "198.51.100.9", 1.0),
            _observed((renewed, r3.certificate), "198.51.100.9", 2.0),
            _observed((factory.self_signed(name("solo.local")),),
                      "198.51.100.10"),
        ])
        assert report.multi_chain_servers == 1
        assert report.change_counts() == {
            ChainChangeKind.LEAF_REPLACEMENT: 1}


class TestCampusRecovery:
    def test_nineteen_servers_and_both_factors(self):
        from repro.campus import cached_campus_dataset
        from repro.core import ChainCategory
        dataset = cached_campus_dataset(seed=5, scale="small")
        result = dataset.analyze()
        report = analyze_multi_chain_servers(
            result.categorized.chains(ChainCategory.HYBRID),
            disclosures=dataset.disclosures)
        assert report.multi_chain_servers == 19
        counts = report.change_counts()
        assert counts[ChainChangeKind.LEAF_REPLACEMENT] == 9
        assert counts[ChainChangeKind.DIFFERENT_UNNECESSARY] == 10
        assert ChainChangeKind.RESTRUCTURED not in counts

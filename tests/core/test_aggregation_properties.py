"""Property-based tests for chain aggregation invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chain import ChainUsage, ObservedChain, aggregate_chains
from repro.x509 import CertificateFactory, name
from repro.zeek.records import SSLRecord
from repro.zeek.tap import JoinedConnection

_FACTORY = CertificateFactory(seed=909)
_CERTS = [_FACTORY.self_signed(name(f"agg-{i}.local")) for i in range(6)]


@st.composite
def joined_connections(draw):
    n = draw(st.integers(1, 40))
    connections = []
    for i in range(n):
        chain_idx = draw(st.lists(st.integers(0, len(_CERTS) - 1),
                                  min_size=0, max_size=3))
        chain = tuple(_CERTS[j] for j in chain_idx)
        ssl = SSLRecord(
            ts=float(draw(st.integers(0, 10_000))),
            uid=f"C{i}",
            id_orig_h=f"10.0.0.{draw(st.integers(1, 6))}",
            id_orig_p=40000 + i,
            id_resp_h=f"203.0.113.{draw(st.integers(1, 4))}",
            id_resp_p=draw(st.sampled_from([443, 8443, 8013])),
            version="TLSv12",
            server_name=draw(st.sampled_from([None, "a.example",
                                              "b.example"])),
            established=draw(st.booleans()),
            cert_chain_fps=tuple(c.fingerprint for c in chain),
        )
        connections.append(JoinedConnection(ssl, chain))
    return connections


@settings(max_examples=80, deadline=None)
@given(connections=joined_connections())
def test_connection_counts_conserved(connections):
    chains = aggregate_chains(connections)
    non_empty = [c for c in connections if c.chain]
    assert sum(chain.usage.connections for chain in chains.values()) == \
        len(non_empty)


@settings(max_examples=80, deadline=None)
@given(connections=joined_connections())
def test_established_counts_conserved(connections):
    chains = aggregate_chains(connections)
    expected = sum(1 for c in connections if c.chain and c.ssl.established)
    assert sum(chain.usage.established for chain in chains.values()) == \
        expected


@settings(max_examples=80, deadline=None)
@given(connections=joined_connections())
def test_keys_are_exact_fingerprint_tuples(connections):
    chains = aggregate_chains(connections)
    for key, chain in chains.items():
        assert key == tuple(c.fingerprint for c in chain.certificates)
        assert chain.usage.connections >= 1


@settings(max_examples=80, deadline=None)
@given(connections=joined_connections())
def test_port_totals_conserved(connections):
    chains = aggregate_chains(connections)
    expected = {}
    for connection in connections:
        if connection.chain:
            port = connection.ssl.id_resp_p
            expected[port] = expected.get(port, 0) + 1
    measured = {}
    for chain in chains.values():
        for port, count in chain.usage.ports.items():
            measured[port] = measured.get(port, 0) + count
    assert measured == expected


@settings(max_examples=80, deadline=None)
@given(connections=joined_connections())
def test_first_last_seen_bounds(connections):
    chains = aggregate_chains(connections)
    for chain in chains.values():
        assert chain.usage.first_seen is not None
        assert chain.usage.first_seen <= chain.usage.last_seen


@settings(max_examples=60, deadline=None)
@given(connections=joined_connections())
def test_aggregation_order_invariant(connections):
    """Aggregating a permutation yields identical usage statistics."""
    forward = aggregate_chains(connections)
    backward = aggregate_chains(list(reversed(connections)))
    assert set(forward) == set(backward)
    for key in forward:
        a, b = forward[key].usage, backward[key].usage
        assert (a.connections, a.established, a.client_ips, a.ports,
                a.first_seen, a.last_seen) == \
            (b.connections, b.established, b.client_ips, b.ports,
             b.first_seen, b.last_seen)


@settings(max_examples=60, deadline=None)
@given(connections=joined_connections(),
       cuts=st.lists(st.integers(0, 40), max_size=4))
def test_merge_over_any_partition_equals_single_pass(connections, cuts):
    """Any partition of the stream, aggregated piecewise then merged in
    order, reproduces the single-pass result field-for-field — including
    dict insertion order and Counter key order, the invariant the
    parallel engine's byte-identity guarantee rests on."""
    bounds = sorted(min(cut, len(connections)) for cut in cuts)
    pieces, previous = [], 0
    for bound in bounds + [len(connections)]:
        pieces.append(connections[previous:bound])
        previous = bound
    merged = {}
    for piece in pieces:
        for key, chain in aggregate_chains(piece).items():
            if key in merged:
                merged[key].usage.merge(chain.usage)
            else:
                merged[key] = chain
    joint = aggregate_chains(connections)
    assert list(merged) == list(joint)  # key order, not just membership
    for key in joint:
        a, b = merged[key].usage, joint[key].usage
        assert (a.connections, a.established, a.client_ips, a.server_ips,
                a.sni_present, a.snis, a.first_seen, a.last_seen) == \
            (b.connections, b.established, b.client_ips, b.server_ips,
             b.sni_present, b.snis, b.first_seen, b.last_seen)
        assert list(a.ports.items()) == list(b.ports.items())


@settings(max_examples=60, deadline=None)
@given(connections=joined_connections())
def test_observe_timestamp_matches_min_max(connections):
    """record() and merge() share one first/last-seen fold."""
    usage = ChainUsage()
    for connection in connections:
        usage.observe_timestamp(connection.ssl.ts)
    timestamps = [c.ssl.ts for c in connections]
    assert usage.first_seen == min(timestamps)
    assert usage.last_seen == max(timestamps)


@settings(max_examples=60, deadline=None)
@given(connections=joined_connections(), split=st.integers(0, 40))
def test_merge_equals_joint_aggregation(connections, split):
    """Aggregating two halves and merging equals aggregating everything."""
    split = min(split, len(connections))
    first = aggregate_chains(connections[:split])
    second = aggregate_chains(connections[split:])
    for key, chain in second.items():
        if key in first:
            first[key].usage.merge(chain.usage)
        else:
            first[key] = chain
    joint = aggregate_chains(connections)
    assert set(first) == set(joint)
    for key in joint:
        assert first[key].usage.connections == joint[key].usage.connections
        assert first[key].usage.client_ips == joint[key].usage.client_ips

"""Certificate classification and chain categorisation (§3.2)."""

from __future__ import annotations

import pytest

from repro.core.categorization import ChainCategorizer, ChainCategory
from repro.core.chain import ObservedChain
from repro.core.classification import CertificateClassifier, IssuerClass
from repro.x509 import CertificateFactory, name


def _observed(certs):
    chain = ObservedChain(tuple(certs))
    chain.usage.record(established=True, client_ip="10.0.0.1",
                       server_ip="203.0.113.5", port=443, sni=None,
                       ts=1_600_000_000.0)
    return chain


class TestClassifier:
    def test_public_leaf(self, classifier, pki, factory):
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("a.example"))
        assert classifier.classify(leaf) is IssuerClass.PUBLIC_DB

    def test_private_leaf(self, classifier, factory):
        private = factory.root(name("Private Root"))
        leaf = factory.leaf(private, name("b.example"))
        assert classifier.classify(leaf) is IssuerClass.NON_PUBLIC_DB

    def test_cache_hit(self, classifier, factory):
        cert = factory.self_signed(name("c.local"))
        classifier.classify(cert)
        before = classifier.cache_size()
        classifier.classify(cert)
        assert classifier.cache_size() == before

    def test_chain_profile(self, classifier, pki, factory):
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("d.example"))
        private = factory.self_signed(name("e.local"))
        profile = classifier.classify_chain([leaf, private])
        assert profile.mixed
        assert profile.count(IssuerClass.PUBLIC_DB) == 1

    def test_anchored_check_via_final_issuer(self, classifier, pki, factory):
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("f.example"))
        # Chain ends at R3 whose issuer (ISRG Root X1) is a store anchor.
        assert classifier.chain_anchored_to_public_root([leaf, r3.certificate])

    def test_not_anchored(self, classifier, factory):
        private = factory.root(name("P Root"))
        leaf = factory.leaf(private, name("g.example"))
        assert not classifier.chain_anchored_to_public_root(
            [leaf, private.certificate])

    def test_empty_chain_not_anchored(self, classifier):
        assert not classifier.chain_anchored_to_public_root([])


class TestCategorizer:
    @pytest.fixture()
    def parts(self, pki, factory):
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        pub_leaf = factory.leaf(r3, name("pub.example"))
        private = factory.root(name("NP Root"))
        np_leaf = factory.leaf(private, name("np.example"))
        return r3, pub_leaf, private, np_leaf

    def test_public_only(self, classifier, parts):
        r3, pub_leaf, *_ = parts
        categorizer = ChainCategorizer(classifier)
        chain = _observed((pub_leaf, r3.certificate))
        assert categorizer.category(chain) is ChainCategory.PUBLIC_ONLY

    def test_non_public_only(self, classifier, parts):
        *_, private, np_leaf = parts
        categorizer = ChainCategorizer(classifier)
        chain = _observed((np_leaf, private.certificate))
        assert categorizer.category(chain) is ChainCategory.NON_PUBLIC_ONLY

    def test_hybrid(self, classifier, parts):
        r3, pub_leaf, private, np_leaf = parts
        categorizer = ChainCategorizer(classifier)
        chain = _observed((np_leaf, pub_leaf))
        assert categorizer.category(chain) is ChainCategory.HYBRID

    def test_interception_takes_precedence(self, classifier, parts, factory):
        *_, private, np_leaf = parts
        key = tuple(sorted(np_leaf.issuer.normalized()))
        categorizer = ChainCategorizer(classifier,
                                       interception_name_keys={key})
        chain = _observed((np_leaf, private.certificate))
        assert categorizer.category(chain) is ChainCategory.INTERCEPTION

    def test_categorize_buckets_and_summary(self, classifier, parts):
        r3, pub_leaf, private, np_leaf = parts
        categorizer = ChainCategorizer(classifier)
        result = categorizer.categorize([
            _observed((pub_leaf, r3.certificate)),
            _observed((np_leaf, private.certificate)),
            _observed((np_leaf, pub_leaf)),
        ])
        assert result.total_chains == 3
        assert result.chain_count(ChainCategory.PUBLIC_ONLY) == 1
        assert result.chain_count(ChainCategory.HYBRID) == 1
        rows = result.summary_rows()
        assert sum(r["chains"] for r in rows) == 3
        assert all(r["connections"] == 1 for r in rows if r["chains"])

    def test_port_distribution(self, classifier, parts):
        r3, pub_leaf, *_ = parts
        categorizer = ChainCategorizer(classifier)
        chain = ObservedChain((pub_leaf, r3.certificate))
        chain.usage.record(established=True, client_ip="10.0.0.1",
                           server_ip="x", port=8443, sni=None, ts=0.0)
        chain.usage.record(established=True, client_ip="10.0.0.1",
                           server_ip="x", port=443, sni=None, ts=0.0)
        result = categorizer.categorize([chain])
        ports = result.port_distribution(ChainCategory.PUBLIC_ONLY)
        assert ports[8443] == 1 and ports[443] == 1

"""Chain aggregation, the analysis pipeline facade, cross-sign candidate
detection, and report rendering."""

from __future__ import annotations

import pytest

from repro.core.chain import ChainUsage, ObservedChain, aggregate_chains
from repro.core.crosssign import detect_cross_sign_candidates
from repro.core.pipeline import ChainStructureAnalyzer
from repro.core.report import format_count, format_pct, render_table, side_by_side
from repro.tls import HandshakeSimulator, PermissivePolicy, TLSClient, TLSServer
from repro.x509 import CertificateFactory, name
from repro.zeek import MonitoringTap, join_logs


@pytest.fixture()
def joined(pki):
    factory = CertificateFactory(seed=81)
    r3 = pki.ca("lets_encrypt").intermediates["R3"]
    leaf_a = factory.leaf(r3, name("agg-a.example"))
    leaf_b = factory.leaf(r3, name("agg-b.example"))
    sim = HandshakeSimulator(seed=4)
    tap = MonitoringTap()
    from datetime import datetime, timezone
    when = datetime(2021, 4, 1, tzinfo=timezone.utc)
    server_a = TLSServer("203.0.113.1", 443, (leaf_a, r3.certificate))
    server_b = TLSServer("203.0.113.2", 8443, (leaf_b, r3.certificate))
    for i in range(4):
        client = TLSClient(f"10.0.0.{i % 2}", policy=PermissivePolicy())
        tap.observe(sim.connect(client, server_a, sni="agg-a.example",
                                when=when).record)
    tap.observe(sim.connect(TLSClient("10.0.0.9",
                                      policy=PermissivePolicy()),
                            server_b, when=when).record)
    return join_logs(tap.ssl_records, tap.x509_records)


class TestAggregation:
    def test_distinct_chains(self, joined):
        chains = aggregate_chains(joined)
        assert len(chains) == 2

    def test_usage_accumulation(self, joined):
        chains = aggregate_chains(joined)
        big = max(chains.values(), key=lambda c: c.usage.connections)
        assert big.usage.connections == 4
        assert len(big.usage.client_ips) == 2
        assert big.usage.ports[443] == 4
        assert big.usage.sni_rate == 1.0
        assert big.usage.first_seen is not None

    def test_empty_chains_skipped(self, joined):
        from dataclasses import replace
        stripped = [type(j)(ssl=replace(j.ssl, cert_chain_fps=()), chain=())
                    for j in joined[:1]] + joined[1:]
        chains = aggregate_chains(stripped)
        total = sum(c.usage.connections for c in chains.values())
        assert total == len(joined) - 1

    def test_usage_merge(self):
        a, b = ChainUsage(), ChainUsage()
        a.record(established=True, client_ip="1", server_ip="s", port=443,
                 sni="x", ts=10.0)
        b.record(established=False, client_ip="2", server_ip="s", port=80,
                 sni=None, ts=5.0)
        a.merge(b)
        assert a.connections == 2
        assert a.established == 1
        assert a.client_ips == {"1", "2"}
        assert a.first_seen == 5.0
        assert a.last_seen == 10.0

    def test_establishment_rate_empty(self):
        assert ChainUsage().establishment_rate == 0.0


class TestPipelineFacade:
    def test_analyze_without_ct(self, registry, joined):
        analyzer = ChainStructureAnalyzer(registry)
        result = analyzer.analyze_connections(joined)
        assert result.interception.issuer_count == 0
        assert result.categorized.total_chains == 2

    def test_structure_cache(self, registry, joined):
        analyzer = ChainStructureAnalyzer(registry)
        result = analyzer.analyze_connections(joined)
        chain = next(iter(result.chains.values()))
        first = result.structure_of(chain)
        second = result.structure_of(chain)
        assert first is second
        relaxed = result.structure_of(chain, require_leaf=True)
        assert relaxed is not first

    def test_establishment_pct(self, registry, joined):
        analyzer = ChainStructureAnalyzer(registry)
        result = analyzer.analyze_connections(joined)
        from repro.core import ChainCategory
        assert result.establishment_pct(ChainCategory.PUBLIC_ONLY) == 100.0


class TestCrossSignCandidates:
    def test_detects_validating_mismatches(self, factory):
        chain = [factory.self_signed(name("a")), factory.self_signed(name("b"))]
        candidates = detect_cross_sign_candidates(
            [chain], [True], [[0]])
        assert len(candidates) == 1
        assert candidates[0].mismatch_positions == (0,)

    def test_ignores_failing_chains(self, factory):
        chain = [factory.self_signed(name("a"))]
        assert detect_cross_sign_candidates([chain], [False], [[0]]) == []

    def test_length_mismatch_rejected(self, factory):
        chain = [factory.self_signed(name("a"))]
        with pytest.raises(ValueError):
            detect_cross_sign_candidates([chain], [True, False], [[0]])


class TestReport:
    def test_render_alignment(self):
        table = render_table(["a", "bbb"], [["x", 1], ["yyyy", 22]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header/rule/rows aligned

    def test_render_arity_check(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "extra"]])

    def test_format_helpers(self):
        assert format_pct(12.3456) == "12.35%"
        assert format_count(1234567) == "1,234,567"
        assert side_by_side("m", 1, 2, "n") == ["m", 1, 2, "n"]

"""CT-mismatch interception detection (§3.2.1, Table 1)."""

from __future__ import annotations

import pytest

from repro.core.chain import ObservedChain
from repro.core.interception import (
    InterceptionDetector,
    VendorDirectory,
)
from repro.ct import CTLog, CrtShIndex
from repro.tls import build_middlebox
from repro.x509 import CertificateFactory, name


@pytest.fixture()
def ct_setup(pki):
    """CT logs know the legitimate issuer for portal.example.com."""
    factory = CertificateFactory(seed=61)
    r3 = pki.ca("lets_encrypt").intermediates["R3"]
    real_leaf = factory.leaf(r3, name("portal.example.com"),
                             dns_names=["portal.example.com"])
    log = CTLog("campus-log",
                accepted_roots=[ca.root.certificate for ca in pki.cas.values()])
    log.add_chain([real_leaf, r3.certificate,
                   pki.ca("lets_encrypt").root.certificate])
    return CrtShIndex([log]), real_leaf, r3


@pytest.fixture()
def directory():
    return VendorDirectory([
        ("zscaler", "Zscaler", "Security & Network"),
        ("fortinet", "Fortinet", "Security & Network"),
        ("freddie mac", "Freddie Mac", "Business & Corporate"),
    ])


def _observed_with_sni(certs, sni, connections=5):
    chain = ObservedChain(tuple(certs))
    for i in range(connections):
        chain.usage.record(established=True, client_ip=f"10.0.1.{i}",
                           server_ip="203.0.113.80", port=443, sni=sni,
                           ts=1_600_000_000.0 + i)
    return chain


class TestDetection:
    def test_intercepted_chain_flagged(self, classifier, ct_setup, directory):
        ct_index, *_ = ct_setup
        mb = build_middlebox("Zscaler Inc", "Security & Network", seed=62)
        chain = _observed_with_sni(mb.substitute_chain("portal.example.com"),
                                   "portal.example.com")
        detector = InterceptionDetector(classifier, ct_index, directory)
        report = detector.detect([chain])
        assert report.issuer_count == 1
        assert report.issuers[0].vendor == "Zscaler"
        assert report.issuers[0].category == "Security & Network"
        assert chain.key in report.flagged_chains

    def test_appliance_ca_names_collected(self, classifier, ct_setup,
                                          directory):
        ct_index, *_ = ct_setup
        mb = build_middlebox("Fortinet", "Security & Network", seed=63)
        chain = _observed_with_sni(mb.substitute_chain("portal.example.com"),
                                   "portal.example.com")
        report = InterceptionDetector(classifier, ct_index,
                                      directory).detect([chain])
        root_key = tuple(sorted(mb.root.subject.normalized()))
        assert root_key in report.issuer_name_keys

    def test_legitimate_chain_not_flagged(self, classifier, ct_setup,
                                          directory, pki):
        ct_index, real_leaf, r3 = ct_setup
        chain = _observed_with_sni((real_leaf, r3.certificate),
                                   "portal.example.com")
        report = InterceptionDetector(classifier, ct_index,
                                      directory).detect([chain])
        assert report.issuer_count == 0

    def test_non_public_issuer_absent_from_ct_not_flagged(self, classifier,
                                                          ct_setup, directory,
                                                          factory):
        """Appendix B: original cert from a non-public issuer is not in CT,
        so its interception is undetectable."""
        ct_index, *_ = ct_setup
        private = factory.root(name("Internal Root", o="Campus"))
        leaf = factory.leaf(private, name("intranet.campus.edu"),
                            dns_names=["intranet.campus.edu"])
        chain = _observed_with_sni((leaf, private.certificate),
                                   "intranet.campus.edu")
        report = InterceptionDetector(classifier, ct_index,
                                      directory).detect([chain])
        assert report.issuer_count == 0

    def test_no_sni_chain_not_flagged(self, classifier, ct_setup, directory):
        ct_index, *_ = ct_setup
        mb = build_middlebox("Zscaler Inc", "Security & Network", seed=64)
        chain = ObservedChain(mb.substitute_chain("x.example"))
        chain.usage.record(established=True, client_ip="10.0.0.1",
                           server_ip="h", port=443, sni=None, ts=0.0)
        # SAN on the minted leaf can still expose the host; use a host CT
        # does not know.
        report = InterceptionDetector(classifier, ct_index,
                                      directory).detect([chain])
        assert report.issuer_count == 0

    def test_unknown_vendor_categorized_other(self, classifier, ct_setup):
        ct_index, *_ = ct_setup
        mb = build_middlebox("Obscure Appliance", "Other", seed=65)
        chain = _observed_with_sni(mb.substitute_chain("portal.example.com"),
                                   "portal.example.com")
        report = InterceptionDetector(classifier, ct_index,
                                      VendorDirectory()).detect([chain])
        assert report.issuer_count == 1
        assert report.issuers[0].category == "Other"


class TestTable1:
    def test_category_table_aggregation(self, classifier, ct_setup, directory):
        ct_index, *_ = ct_setup
        zscaler = build_middlebox("Zscaler Inc", "Security & Network", seed=66)
        freddie = build_middlebox("Freddie Mac", "Business & Corporate", seed=67)
        chains = {}
        c1 = _observed_with_sni(zscaler.substitute_chain("portal.example.com"),
                                "portal.example.com", connections=90)
        c2 = _observed_with_sni(freddie.substitute_chain("portal.example.com"),
                                "portal.example.com", connections=10)
        chains[c1.key] = c1
        chains[c2.key] = c2
        report = InterceptionDetector(classifier, ct_index,
                                      directory).detect(chains.values())
        rows = {r["category"]: r for r in report.category_table(chains)}
        assert rows["Security & Network"]["issuers"] == 1
        assert rows["Security & Network"]["pct_connections"] == pytest.approx(90.0)
        assert rows["Business & Corporate"]["pct_connections"] == pytest.approx(10.0)
        assert rows["Bank & Finance"]["issuers"] == 0


class TestVendorDirectory:
    def test_lookup_by_organization(self, directory):
        vendor, category = directory.lookup(name("proxy", o="Zscaler Inc"))
        assert (vendor, category) == ("Zscaler", "Security & Network")

    def test_lookup_falls_back_to_other(self, directory):
        vendor, category = directory.lookup(name("mystery", o="Unknown Corp"))
        assert category == "Other"
        assert vendor == "Unknown Corp"

    def test_bad_category_rejected(self):
        with pytest.raises(ValueError):
            VendorDirectory([("x", "X", "Nonsense")])

"""§6.1 overhead estimation and issuer statistics."""

from __future__ import annotations

import pytest

from repro.core.chain import ObservedChain
from repro.core.classification import CertificateClassifier
from repro.core.issuers import concentration_index, issuer_statistics
from repro.core.overhead import (
    INITCWND_BYTES,
    chain_wire_size,
    estimate_overhead,
    estimated_der_size,
)
from repro.x509 import CertificateFactory, KeyAlgorithm, name


def _observed(certs, connections=10):
    chain = ObservedChain(tuple(certs))
    for i in range(connections):
        chain.usage.record(established=True, client_ip=f"10.0.0.{i}",
                           server_ip="s", port=443, sni=None, ts=float(i))
    return chain


class TestDerSizeModel:
    def test_exact_size_matches_encoder(self, factory):
        from repro.x509.der import encode_certificate_der
        cert = factory.self_signed(name("exact.example"))
        assert estimated_der_size(cert) == len(encode_certificate_der(cert))

    def test_heuristic_tracks_reality(self, pki, factory):
        """The closed-form model stays within 40 % of the real encoding."""
        from repro.core.overhead import _heuristic_der_size
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        for cert in (factory.leaf(r3, name("h.example"),
                                  dns_names=["h.example"]),
                     r3.certificate,
                     pki.ca("lets_encrypt").root.certificate,
                     factory.self_signed(name("h.local"))):
            exact = estimated_der_size(cert)
            heuristic = _heuristic_der_size(cert)
            assert abs(heuristic - exact) / exact < 0.40, cert

    def test_rsa_leaf_in_realistic_band(self, pki, factory):
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("size.example"),
                            dns_names=["size.example"])
        size = estimated_der_size(leaf)
        assert 700 < size < 1500

    def test_rsa_4096_root_larger_than_2048_leaf(self, pki, factory):
        root = pki.ca("lets_encrypt").root.certificate  # 4096-bit
        leaf = factory.leaf(pki.ca("lets_encrypt").intermediates["R3"],
                            name("x.example"))
        assert estimated_der_size(root) > estimated_der_size(leaf)

    def test_ec_smaller_than_rsa(self, factory):
        from dataclasses import replace
        cert = factory.self_signed(name("algo.example"))
        rsa_size = estimated_der_size(cert)
        ec_cert = replace(cert, key_algorithm=KeyAlgorithm.ECDSA,
                          key_bits=256)
        assert estimated_der_size(ec_cert) < rsa_size

    def test_wire_size_adds_length_prefixes(self, factory):
        a = factory.self_signed(name("a.example"))
        b = factory.self_signed(name("b.example"))
        assert chain_wire_size([a, b]) == (estimated_der_size(a)
                                           + estimated_der_size(b) + 6)


class TestOverheadEstimation:
    @pytest.fixture()
    def clean_and_junk(self, pki, factory):
        le = pki.ca("lets_encrypt")
        leaf = factory.leaf(le.intermediates["R3"], name("o.example"))
        clean = (leaf, le.intermediates["R3"].certificate)
        junk = factory.self_signed(name("tester", o="HP Inc"))
        dirty = (*clean, le.root.certificate, junk)
        return clean, dirty, junk

    def test_clean_chains_cost_nothing(self, clean_and_junk):
        clean, *_ = clean_and_junk
        report = estimate_overhead([_observed(clean)])
        assert report.chains_with_unnecessary == 0
        assert report.total_wasted_bytes == 0

    def test_junk_cost_counted_per_connection(self, clean_and_junk):
        _, dirty, junk = clean_and_junk
        report = estimate_overhead([_observed(dirty, connections=10)])
        assert report.chains_with_unnecessary == 1
        assert report.connections_affected == 10
        per = estimated_der_size(junk) + 3
        assert report.total_wasted_bytes == per * 10
        assert report.wasted_bytes_per_affected_handshake == pytest.approx(per)

    def test_initcwnd_crossing_counted(self, pki, factory):
        le = pki.ca("lets_encrypt")
        leaf = factory.leaf(le.intermediates["R3"], name("fat.example"))
        base = [leaf, le.intermediates["R3"].certificate,
                le.root.certificate]
        junk = [factory.root(name(f"Fat Root {i}", o="Fat Corp"),
                             key_bits=4096).certificate for i in range(9)]
        chain = tuple(base + junk)
        assert chain_wire_size(base) <= INITCWND_BYTES < chain_wire_size(chain)
        report = estimate_overhead([_observed(chain, connections=5)])
        assert report.extra_round_trips == 5

    def test_no_path_chain_not_counted(self, factory):
        a = factory.self_signed(name("na.example"))
        b = factory.self_signed(name("nb.example"))
        report = estimate_overhead([_observed((a, b))])
        assert report.chains_with_unnecessary == 0


class TestIssuerStats:
    @pytest.fixture()
    def chains(self, pki, factory):
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        chains = []
        for i in range(3):
            leaf = factory.leaf(r3, name(f"i{i}.example"))
            chains.append(_observed((leaf, r3.certificate), connections=5))
        private = factory.root(name("Private Root", o="P"))
        chains.append(_observed(
            (factory.leaf(private, name("p.example")), private.certificate),
            connections=50))
        return chains

    def test_leaf_issuer_pivot(self, chains, classifier):
        stats = issuer_statistics(chains, classifier, leaf_only=True)
        by_name = {s.display_name: s for s in stats}
        assert by_name["R3"].chains == 3
        assert by_name["R3"].issuer_class.value == "public-db"
        assert by_name["Private Root"].connections == 50
        assert by_name["Private Root"].issuer_class.value == "non-public-db"

    def test_all_cert_pivot_includes_ca_issuers(self, chains, classifier):
        stats = issuer_statistics(chains, classifier, leaf_only=False)
        names = {s.display_name for s in stats}
        assert "ISRG Root X1" in names  # issuer of the R3 certificate

    def test_sorted_by_chain_count(self, chains, classifier):
        stats = issuer_statistics(chains, classifier, leaf_only=True)
        counts = [s.chains for s in stats]
        assert counts == sorted(counts, reverse=True)

    def test_concentration_bounds(self, chains, classifier):
        stats = issuer_statistics(chains, classifier, leaf_only=True)
        hhi = concentration_index(stats)
        assert 0.0 < hhi <= 1.0
        solo = concentration_index(stats[:1])
        assert solo == 1.0

    def test_concentration_empty(self):
        assert concentration_index([]) == 0.0

"""Packed shard payloads: codec roundtrip and fold-vs-legacy equivalence."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.campus.dataset import cached_campus_dataset
from repro.core.chain import ChainUsage, aggregate_chains
from repro.core.packed import (
    ChainFold,
    fold_ssl_segment,
    materialize_chains,
    pack_shard_payload,
    unpack_shard_payload,
)
from repro.parallel.worker import ShardTask, process_shard, \
    process_shard_columnar
from repro.zeek.format import read_zeek_log
from repro.zeek.records import SSLRecord, X509Record
from repro.zeek.tap import certificate_map, iter_joined


def _usage(**overrides) -> ChainUsage:
    usage = ChainUsage(
        connections=3, established=2,
        client_ips={"10.0.0.1", "10.0.0.2"},
        ports=Counter({443: 2, 8443: 1}),
        sni_present=2, snis={"example.com", "münchen.example"},
        first_seen=1453939200.0, last_seen=1453939300.5,
        server_ips={"192.0.2.1"})
    for name, value in overrides.items():
        setattr(usage, name, value)
    return usage


def _x509_columns(n: int) -> dict:
    return {
        "ts": [1453939200.0 + i for i in range(n)],
        "fingerprint": [f"fp{i:02d}" for i in range(n)],
        "certificate.version": [3] * n,
        "certificate.serial": [f"{i:04X}" for i in range(n)],
        "certificate.subject": [f"CN=leaf{i},O=Täst" for i in range(n)],
        "certificate.issuer": ["CN=issuer"] * n,
        "certificate.not_valid_before": [1400000000.0] * n,
        "certificate.not_valid_after": [None] * n,
        "certificate.key_alg": ["rsa"] * n,
        "certificate.sig_alg": [None] * n,
        "certificate.key_length": [2048 if i % 2 else None
                                   for i in range(n)],
        "san.dns": [(f"a{i}.example", "b.example") if i % 2 else None
                    for i in range(n)],
        "basic_constraints.ca": [True, False, None][:1] * n,
        "basic_constraints.path_len": [None] * n,
    }


class TestPayloadCodec:
    def test_roundtrip_preserves_every_field_and_order(self):
        keys = [("fp00", "fp01"), ("fp01",)]
        usages = [_usage(),
                  _usage(connections=1, established=0, client_ips=set(),
                         ports=Counter({443: 1}), sni_present=0,
                         snis=set(), server_ips=set(),
                         first_seen=None, last_seen=None)]
        payload = pack_shard_payload(
            chain_keys=keys, usages=usages,
            cert_fingerprints=["fp00", "fp01", "fp02"],
            x509_columns=_x509_columns(3))
        assert isinstance(payload, bytes) and payload.startswith(b"RPK1")
        columns = unpack_shard_payload(payload)
        assert columns.chain_keys == keys
        assert columns.usages == usages
        # Counter *insertion order* survives: the reduce's merged output
        # ordering depends on it.
        assert list(columns.usages[0].ports.items()) == [(443, 2), (8443, 1)]
        assert columns.cert_fingerprints == ["fp00", "fp01", "fp02"]
        assert columns.x509_columns == _x509_columns(3)

    def test_empty_shard_roundtrips(self):
        payload = pack_shard_payload(chain_keys=[], usages=[],
                                     cert_fingerprints=[],
                                     x509_columns=_x509_columns(0))
        columns = unpack_shard_payload(payload)
        assert columns.chain_keys == []
        assert columns.usages == []
        assert columns.cert_fingerprints == []
        assert all(col == [] for col in columns.x509_columns.values())

    def test_bad_magic_rejected(self):
        payload = pack_shard_payload(chain_keys=[], usages=[],
                                     cert_fingerprints=[],
                                     x509_columns=_x509_columns(0))
        with pytest.raises(ValueError):
            unpack_shard_payload(b"XXXX" + payload[4:])

    def test_truncated_payload_rejected(self):
        payload = pack_shard_payload(
            chain_keys=[("fp00",)], usages=[_usage()],
            cert_fingerprints=["fp00"], x509_columns=_x509_columns(1))
        with pytest.raises(ValueError):
            unpack_shard_payload(payload[:len(payload) // 2])

    def test_materialize_preserves_chain_insertion_order(self):
        keys = [("fp01",), ("fp00", "fp01")]
        usages = [_usage(), _usage(connections=9)]
        certificates = {"fp00": object(), "fp01": object()}
        chains = materialize_chains(keys, usages, certificates)
        assert list(chains) == keys
        assert chains[("fp00", "fp01")].certificates == (
            certificates["fp00"], certificates["fp01"])
        assert chains[("fp01",)].usage is usages[0]


@pytest.fixture(scope="module")
def shard(tmp_path_factory):
    dataset = cached_campus_dataset(seed="packed-equivalence",
                                    scale="small")
    base = tmp_path_factory.mktemp("packed")
    ssl_path, x509_path = dataset.write_zeek_logs(str(base))
    return ssl_path, x509_path


class TestFoldEquivalence:
    def test_columnar_shard_matches_legacy_aggregation(self, shard):
        ssl_path, x509_path = shard
        _, ssl_rows = read_zeek_log(ssl_path, compiled=False)
        _, x509_rows = read_zeek_log(x509_path, compiled=False)
        legacy = aggregate_chains(iter_joined(
            (SSLRecord.from_row(r) for r in ssl_rows),
            certificate_map(X509Record.from_row(r) for r in x509_rows)))

        aggregate = process_shard_columnar(ShardTask(
            index=0, ssl_path=ssl_path, x509_path=x509_path,
            columnar=True))
        columns = unpack_shard_payload(aggregate.payload)

        assert columns.chain_keys == list(legacy)
        assert columns.usages == [c.usage for c in legacy.values()]
        assert aggregate.aggregated == sum(
            c.usage.connections for c in legacy.values())

    def test_columnar_aggregate_counters_match_compiled_worker(self, shard):
        ssl_path, x509_path = shard
        task = ShardTask(index=0, ssl_path=ssl_path, x509_path=x509_path)
        compiled = process_shard(task)
        columnar = process_shard_columnar(ShardTask(
            index=0, ssl_path=ssl_path, x509_path=x509_path,
            columnar=True))
        for field_name in ("ssl_rows", "x509_rows", "joined",
                           "missing_certs", "aggregated", "skipped_empty",
                           "ssl_log_label", "x509_log_label"):
            assert getattr(columnar, field_name) \
                == getattr(compiled, field_name), field_name
        assert unpack_shard_payload(columnar.payload).chain_keys \
            == list(compiled.chains)

    def test_fold_resolves_keys_and_missing_against_known_fps(self):
        fold = ChainFold()
        fold_ssl_segment(
            fold, known_fps=frozenset({"fp-a", "fp-b"}),
            ts=[1.0, 2.0, 3.0],
            client_ip=["10.0.0.1", "10.0.0.2", None],
            server_ip=["192.0.2.1"] * 3,
            port=[443, 443, 8443],
            established=[True, False, True],
            sni_ids=[0, 0, 1], sni_values=["example.com", None],
            chain_ids=[0, 1, 0],
            chain_values=[("fp-a", "fp-ghost"), None])
        # Row 2 has no chain (None → empty key) and is skipped; the
        # ghost fingerprint counts as missing on each occurrence.
        assert fold.joined == 3
        assert fold.missing_certs == 2
        assert fold.aggregated == 2
        usage = fold.chains[("fp-a",)]
        assert usage.connections == 2
        assert usage.ports == Counter({443: 1, 8443: 1})
        # record() keeps None clients — exact legacy set semantics.
        assert usage.client_ips == {"10.0.0.1", None}

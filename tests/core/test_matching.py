"""Issuer–subject matching, segments, complete matched paths, mismatch ratio."""

from __future__ import annotations

import pytest

from repro.core.crosssign import CrossSignDisclosures
from repro.core.matching import PairMatch, analyze_structure, is_leaf_like
from repro.x509 import CertificateFactory, name


@pytest.fixture()
def chain_parts(factory):
    root = factory.root(name("Root", o="CA"))
    inter = factory.intermediate(root, name("Inter", o="CA"))
    leaf = factory.leaf(inter, name("site.example"), dns_names=["site.example"])
    return leaf, inter.certificate, root.certificate


class TestPairMatching:
    def test_fully_matched_chain(self, chain_parts):
        structure = analyze_structure(chain_parts)
        assert structure.pair_matches == (PairMatch.DIRECT, PairMatch.DIRECT)
        assert structure.is_fully_matched
        assert structure.mismatch_ratio == 0.0

    def test_mismatch_detected_with_position(self, chain_parts, factory):
        leaf, inter, root = chain_parts
        stranger = factory.self_signed(name("stray"))
        structure = analyze_structure((leaf, inter, stranger))
        assert structure.pair_matches[1] is PairMatch.MISMATCH
        assert structure.mismatch_positions == (1,)
        assert structure.mismatch_ratio == pytest.approx(0.5)

    def test_single_certificate_has_no_pairs(self, factory):
        structure = analyze_structure([factory.self_signed(name("solo"))])
        assert structure.pair_matches == ()
        assert structure.mismatch_ratio == 0.0
        assert structure.is_fully_matched  # vacuously

    def test_empty_chain(self):
        structure = analyze_structure([])
        assert structure.segments == ()
        assert not structure.contains_complete_matched_path


class TestSegments:
    def test_one_segment_for_matched_chain(self, chain_parts):
        structure = analyze_structure(chain_parts)
        assert len(structure.segments) == 1
        assert structure.segments[0].indices() == range(0, 3)

    def test_segment_boundaries(self, chain_parts, factory):
        leaf, inter, root = chain_parts
        stray = factory.self_signed(name("tester", o="HP Inc"))
        structure = analyze_structure((leaf, inter, root, stray))
        assert [(s.start, s.end) for s in structure.segments] == [(0, 2), (3, 3)]

    def test_all_mismatched_gives_singletons(self, factory):
        certs = [factory.self_signed(name(f"s{i}")) for i in range(3)]
        structure = analyze_structure(certs)
        assert all(s.is_singleton for s in structure.segments)
        assert len(structure.segments) == 3


class TestCompletePath:
    def test_whole_chain_is_complete_path(self, chain_parts):
        structure = analyze_structure(chain_parts)
        assert structure.is_complete_matched_path
        assert not structure.has_unnecessary

    def test_unnecessary_cert_detected(self, chain_parts, factory):
        leaf, inter, root = chain_parts
        stray = factory.self_signed(name("tester", o="HP Inc"))
        structure = analyze_structure((leaf, inter, root, stray))
        assert not structure.is_complete_matched_path
        assert structure.contains_complete_matched_path
        assert structure.unnecessary_indices == (3,)
        assert structure.unnecessary_certificates()[0].short_name() == "tester"

    def test_stray_leaf_before_path(self, chain_parts, factory):
        leaf, inter, root = chain_parts
        other_root = factory.root(name("Other Root"))
        stray_leaf = factory.leaf(other_root, name("old.example"))
        structure = analyze_structure((stray_leaf, leaf, inter, root))
        assert structure.contains_complete_matched_path
        assert structure.unnecessary_indices == (0,)

    def test_segment_without_leaf_is_not_complete(self, chain_parts):
        # Intermediate + root only: a matched run, but no valid leaf.
        _, inter, root = chain_parts
        structure = analyze_structure((inter, root))
        assert structure.segments[0].length == 2
        assert not structure.contains_complete_matched_path

    def test_require_leaf_false_relaxes(self, chain_parts):
        _, inter, root = chain_parts
        structure = analyze_structure((inter, root), require_leaf=False)
        assert structure.is_complete_matched_path

    def test_best_path_is_longest(self, factory):
        # Two complete paths of different lengths in one chain.
        a_root = factory.root(name("A Root"))
        a_inter = factory.intermediate(a_root, name("A Inter"))
        a_leaf = factory.leaf(a_inter, name("a.example"), dns_names=["a.example"])
        b_root = factory.root(name("B Root"))
        b_leaf = factory.leaf(b_root, name("b.example"), dns_names=["b.example"])
        chain = (b_leaf, b_root.certificate,
                 a_leaf, a_inter.certificate, a_root.certificate)
        structure = analyze_structure(chain)
        assert len(structure.complete_paths) == 2
        assert structure.best_path.indices() == range(2, 5)
        assert structure.unnecessary_indices == (0, 1)


class TestCrossSignBridging:
    def test_signer_bridge(self, pki, disclosures):
        """Leaf names issuer R3; server delivers the cross-signer's root
        (DST Root CA X3) instead of the R3 certificate."""
        factory = CertificateFactory(seed=55)
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("bridge.example"))
        dst_root = pki.ca("identrust").root.certificate
        chain = (leaf, dst_root)
        plain = analyze_structure(chain)
        aware = analyze_structure(chain, disclosures=disclosures)
        assert plain.pair_matches[0] is PairMatch.MISMATCH
        assert aware.pair_matches[0] is PairMatch.CROSS_SIGN
        assert aware.is_fully_matched

    def test_twin_bridge(self, pki, disclosures):
        """Both variants of the cross-signed R3 delivered back-to-back."""
        factory = CertificateFactory(seed=56)
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        twin = pki.cross_signed["R3-cross"]
        leaf = factory.leaf(r3, name("twin.example"))
        chain = (leaf, r3.certificate, twin.certificate)
        aware = analyze_structure(chain, disclosures=disclosures)
        assert aware.pair_matches[1] is PairMatch.CROSS_SIGN
        assert aware.is_fully_matched

    def test_bridge_does_not_apply_to_direct_match(self, pki, disclosures):
        factory = CertificateFactory(seed=57)
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("ok.example"))
        aware = analyze_structure((leaf, r3.certificate),
                                  disclosures=disclosures)
        assert aware.pair_matches[0] is PairMatch.DIRECT

    def test_undisclosed_mismatch_stays_mismatch(self, pki, disclosures):
        factory = CertificateFactory(seed=58)
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("bad.example"))
        unrelated = pki.ca("godaddy").root.certificate
        aware = analyze_structure((leaf, unrelated), disclosures=disclosures)
        assert aware.pair_matches[0] is PairMatch.MISMATCH


class TestLeafLike:
    def test_declared_leaf(self, chain_parts):
        leaf, *_ = chain_parts
        assert is_leaf_like(leaf, chain_parts)

    def test_declared_ca_is_not_leaf(self, chain_parts):
        _, inter, _ = chain_parts
        assert not is_leaf_like(inter, chain_parts)

    def test_bare_cert_first_in_chain_is_leaf_like(self, factory):
        bare = factory.self_signed(name("dev.local"))
        assert is_leaf_like(bare, (bare,))

    def test_bare_cert_that_issues_is_not_leaf(self, factory):
        issuer = factory.root(name("Bare CA"))
        # Strip extensions by rebuilding as a bare self-signed with same name.
        bare_ca = factory.self_signed(name("Bare CA"))
        child = factory.leaf(issuer, name("child.example"))
        assert not is_leaf_like(bare_ca, (child, bare_ca))

"""Handshake simulation and interception middleboxes."""

from __future__ import annotations

from datetime import datetime, timezone

import pytest

from repro.tls import (
    BrowserPolicy,
    HandshakeSimulator,
    PermissivePolicy,
    StrictPresentedChainPolicy,
    TLSClient,
    TLSServer,
    TLSVersion,
    ValidationStatus,
    build_middlebox,
)
from repro.x509 import CertificateFactory, name


@pytest.fixture()
def when():
    return datetime(2021, 3, 1, tzinfo=timezone.utc)


@pytest.fixture()
def public_server(pki):
    factory = CertificateFactory(seed=21)
    r3 = pki.ca("lets_encrypt").intermediates["R3"]
    leaf = factory.leaf(r3, name("www.campus.edu"), dns_names=["www.campus.edu"])
    return TLSServer("198.51.100.7", 443, (leaf, r3.certificate),
                     hostnames=("www.campus.edu",))


class TestHandshake:
    def test_established_with_browser_client(self, registry, public_server, when):
        sim = HandshakeSimulator(seed=1)
        client = TLSClient("10.1.2.3", policy=BrowserPolicy(registry))
        outcome = sim.connect(client, public_server, sni="www.campus.edu",
                              when=when)
        assert outcome.record.established
        assert outcome.alert is None
        assert outcome.record.sni == "www.campus.edu"
        assert len(outcome.record.chain) == 2

    def test_failed_validation_produces_alert(self, registry, when):
        factory = CertificateFactory(seed=22)
        server = TLSServer("203.0.113.9", 443,
                           (factory.self_signed(name("printer.local")),))
        sim = HandshakeSimulator(seed=1)
        client = TLSClient("10.0.0.1", policy=BrowserPolicy(registry))
        outcome = sim.connect(client, server, when=when)
        assert not outcome.record.established
        assert outcome.alert is not None and outcome.alert.fatal

    def test_tls13_hides_chain_from_monitor(self, registry, public_server, when):
        public_server.max_version = TLSVersion.TLS13
        sim = HandshakeSimulator(seed=1)
        client = TLSClient("10.0.0.1", policy=BrowserPolicy(registry),
                           version=TLSVersion.TLS13)
        outcome = sim.connect(client, public_server, sni="www.campus.edu",
                              when=when)
        assert outcome.record.established
        assert outcome.record.chain == ()  # §6.3 limitation reproduced

    def test_version_negotiation_downgrades(self, registry, public_server, when):
        sim = HandshakeSimulator(seed=1)
        client = TLSClient("10.0.0.1", policy=PermissivePolicy(),
                           version=TLSVersion.TLS13)
        outcome = sim.connect(client, public_server, when=when)
        assert outcome.record.version is TLSVersion.TLS12

    def test_client_without_sni(self, registry, public_server, when):
        sim = HandshakeSimulator(seed=1)
        client = TLSClient("10.0.0.1", policy=PermissivePolicy(),
                           sends_sni=False)
        outcome = sim.connect(client, public_server, sni="www.campus.edu",
                              when=when)
        assert outcome.record.sni is None

    def test_uids_unique(self, registry, public_server, when):
        sim = HandshakeSimulator(seed=1)
        client = TLSClient("10.0.0.1", policy=PermissivePolicy())
        uids = {sim.connect(client, public_server, when=when).record.uid
                for _ in range(50)}
        assert len(uids) == 50


class TestMiddlebox:
    def test_substitute_chain_shape(self):
        mb = build_middlebox("Fortinet", "Security & Network", seed=9)
        chain = mb.substitute_chain("mail.example.com")
        assert len(chain) == 3
        leaf, inter, root = chain
        assert leaf.subject.common_name == "mail.example.com"
        assert inter.issued(leaf)
        assert root.issued(inter)
        assert root.is_self_signed

    def test_chain_cached_per_host(self):
        mb = build_middlebox("Zscaler", "Security & Network", seed=9)
        a = mb.substitute_chain("a.example")
        b = mb.substitute_chain("a.example")
        assert a is b

    def test_single_self_signed_variant(self):
        mb = build_middlebox("TinyProxy", "Other", seed=9,
                             single_self_signed=True)
        chain = mb.substitute_chain("x.example")
        assert len(chain) == 1
        assert chain[0].is_self_signed

    def test_client_with_appliance_root_validates(self, registry, when):
        mb = build_middlebox("McAfee", "Security & Network", seed=9)
        chain = mb.substitute_chain("portal.example.com")
        trusted = BrowserPolicy(registry,
                                extra_anchors=[mb.root.certificate])
        untrusted = StrictPresentedChainPolicy(registry)
        assert trusted.validate(chain, at=when).ok
        assert not untrusted.validate(chain, at=when).ok

    def test_chain_depth_two(self):
        mb = build_middlebox("Bluecoat", "Security & Network", seed=9,
                             chain_depth=2)
        chain = mb.substitute_chain("y.example")
        assert len(chain) == 2
        assert chain[1].is_self_signed

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            build_middlebox("X", "Not A Category", seed=1)

    def test_intercept_discards_original(self, public_server):
        mb = build_middlebox("FireEye", "Security & Network", seed=9)
        presented = mb.intercept(public_server.chain, "www.campus.edu")
        original_fps = {c.fingerprint for c in public_server.chain}
        assert all(c.fingerprint not in original_fps for c in presented)

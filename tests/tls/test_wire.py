"""TLS wire encoding: ClientHello/Certificate round trips and DPD interop."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.tls.messages import ClientHello, TLSVersion
from repro.tls.wire import (
    WireError,
    extract_sni,
    parse_certificate_message,
    parse_client_hello,
    serialize_certificate_message,
    serialize_client_hello,
)
from repro.zeek.dpd import looks_like_tls, sniff_version


class TestClientHello:
    def test_round_trip_with_sni(self):
        hello = ClientHello(version=TLSVersion.TLS12, sni="mail.example.com")
        parsed = parse_client_hello(serialize_client_hello(hello))
        assert parsed.sni == "mail.example.com"
        assert parsed.version is TLSVersion.TLS12

    def test_round_trip_without_sni(self):
        hello = ClientHello(version=TLSVersion.TLS11, sni=None)
        parsed = parse_client_hello(serialize_client_hello(hello))
        assert parsed.sni is None
        assert parsed.version is TLSVersion.TLS11

    def test_dpd_accepts_serialized_hello(self):
        data = serialize_client_hello(ClientHello(sni="x.example"))
        assert looks_like_tls(data)
        assert sniff_version(data) is TLSVersion.TLS12

    def test_extract_sni_helper(self):
        data = serialize_client_hello(ClientHello(sni="portal.campus.edu"))
        assert extract_sni(data) == "portal.campus.edu"
        assert extract_sni(b"GET / HTTP/1.1") is None

    def test_truncated_record_rejected(self):
        data = serialize_client_hello(ClientHello(sni="t.example"))
        with pytest.raises(WireError):
            parse_client_hello(data[:10])

    def test_wrong_handshake_type_rejected(self):
        data = bytearray(serialize_client_hello(ClientHello()))
        data[5] = 0x02  # ServerHello
        with pytest.raises(WireError):
            parse_client_hello(bytes(data))

    def test_bad_random_length_rejected(self):
        with pytest.raises(WireError):
            serialize_client_hello(ClientHello(), random_bytes=b"short")


class TestCertificateMessage:
    def test_round_trip(self):
        blobs = [b"leaf-der-bytes", b"intermediate", b"root" * 100]
        data = serialize_certificate_message(blobs)
        assert parse_certificate_message(data) == blobs

    def test_empty_list(self):
        assert parse_certificate_message(
            serialize_certificate_message([])) == []

    def test_dpd_does_not_mistake_certificate_for_hello(self):
        # DPD looks for ClientHello/ServerHello types (0x01/0x02); a
        # Certificate record (0x0B) is TLS but not a session start.
        data = serialize_certificate_message([b"x"])
        assert not looks_like_tls(data)

    def test_oversized_record_rejected(self):
        with pytest.raises(WireError):
            serialize_certificate_message([b"x" * (2 ** 15)])

    def test_corrupted_entry_length_rejected(self):
        data = bytearray(serialize_certificate_message([b"abcdef"]))
        data[-7] = 0xFF  # inflate the entry length past the record
        with pytest.raises(WireError):
            parse_certificate_message(bytes(data))


_HOST = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,20}[a-z0-9])?(\.[a-z]{2,6}){1,3}",
                      fullmatch=True)


@settings(max_examples=80, deadline=None)
@given(sni=st.one_of(st.none(), _HOST),
       version=st.sampled_from([TLSVersion.TLS10, TLSVersion.TLS11,
                                TLSVersion.TLS12]))
def test_property_client_hello_round_trip(sni, version):
    hello = ClientHello(version=version, sni=sni)
    parsed = parse_client_hello(serialize_client_hello(hello))
    assert parsed.sni == sni
    assert parsed.version is version


@settings(max_examples=80, deadline=None)
@given(blobs=st.lists(st.binary(min_size=0, max_size=200), max_size=8))
def test_property_certificate_round_trip(blobs):
    data = serialize_certificate_message(blobs)
    assert parse_certificate_message(data) == blobs

"""Validation-policy edge cases: cycles, duplicates, depth limits."""

from __future__ import annotations

from dataclasses import replace
from datetime import datetime, timezone

import pytest

from repro.tls.policy import (
    BrowserPolicy,
    StrictPresentedChainPolicy,
    ValidationStatus,
)
from repro.x509 import CertificateFactory, name
from repro.x509.certificate import Certificate


@pytest.fixture()
def when():
    return datetime(2021, 3, 1, tzinfo=timezone.utc)


class TestBrowserEdgeCases:
    def test_name_cycle_terminates(self, registry, factory, when):
        """A → B → A issuer loops must not hang the path builder."""
        a = factory.mismatched_pair_cert(name("cycle-B"), name("cycle-A"))
        b = factory.mismatched_pair_cert(name("cycle-A"), name("cycle-B"))
        # Give them mutual name chaining: a.issuer = B, b.issuer = A.
        result = BrowserPolicy(registry).validate((a, b), at=when)
        assert not result.ok  # and, crucially, it returned at all

    def test_duplicate_certificates_in_chain(self, registry, pki, factory,
                                             when):
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("dup.example"))
        chain = (leaf, r3.certificate, r3.certificate, r3.certificate)
        assert BrowserPolicy(registry).validate(chain, at=when).ok

    def test_depth_limit_enforced(self, registry, factory, when):
        """A 40-certificate private ladder exceeds the path-length cap."""
        parent = factory.root(name("Deep Root"))
        chain = []
        authority = parent
        for level in range(40):
            authority = factory.intermediate(
                authority, name(f"Deep L{level}"), path_len=None)
            chain.append(authority.certificate)
        leaf = factory.leaf(authority, name("deep.example"))
        result = BrowserPolicy(registry).validate(
            (leaf, *reversed(chain), parent.certificate), at=when)
        assert result.status in (ValidationStatus.BROKEN_CHAIN,
                                 ValidationStatus.SELF_SIGNED,
                                 ValidationStatus.UNKNOWN_CA)

    def test_leaf_is_anchor_itself(self, pki, registry, when):
        root_cert = pki.ca("godaddy").root.certificate
        result = BrowserPolicy(registry).validate((root_cert,), at=when)
        assert result.ok  # trusting a presented anchor directly

    def test_validity_check_disabled(self, registry, pki, factory, when):
        from datetime import timedelta
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        stale = factory.leaf(r3, name("stale.example"),
                             not_before=when - timedelta(days=500),
                             lifetime_days=90)
        lenient = BrowserPolicy(registry, check_validity_period=False)
        assert lenient.validate((stale, r3.certificate), at=when).ok


class TestStrictEdgeCases:
    def test_single_public_root_accepted(self, pki, registry, when):
        root_cert = pki.ca("godaddy").root.certificate
        result = StrictPresentedChainPolicy(registry).validate(
            (root_cert,), at=when)
        assert result.ok

    def test_duplicate_pair_still_chains(self, registry, pki, factory, when):
        # R3 follows R3: subject==issuer? No — R3.issuer is ISRG, so the
        # duplicated pair breaks the strict sequence.
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("dd.example"))
        result = StrictPresentedChainPolicy(registry).validate(
            (leaf, r3.certificate, r3.certificate), at=when)
        assert result.status is ValidationStatus.BROKEN_CHAIN

    def test_order_matters(self, registry, pki, factory, when):
        le = pki.ca("lets_encrypt")
        leaf = factory.leaf(le.intermediates["R3"], name("oo.example"))
        shuffled = (le.intermediates["R3"].certificate, leaf,
                    le.root.certificate)
        result = StrictPresentedChainPolicy(registry).validate(shuffled,
                                                               at=when)
        assert not result.ok

"""Validation policy divergence: browser vs strict vs permissive (§5, §6.1)."""

from __future__ import annotations

from datetime import datetime, timezone

import pytest

from repro.tls.policy import (
    BrowserPolicy,
    PermissivePolicy,
    StrictPresentedChainPolicy,
    ValidationStatus,
    signature_verifies,
)
from repro.x509 import CertificateFactory, name


@pytest.fixture()
def when():
    return datetime(2021, 2, 1, tzinfo=timezone.utc)


@pytest.fixture()
def le_chain(pki):
    factory = CertificateFactory(seed=11)
    r3 = pki.ca("lets_encrypt").intermediates["R3"]
    leaf = factory.leaf(r3, name("shop.example"), dns_names=["shop.example"])
    return (leaf, r3.certificate)


@pytest.fixture()
def stray_cert():
    return CertificateFactory(seed=12).self_signed(name("tester", o="HP Inc"))


class TestPermissive:
    def test_accepts_anything(self, stray_cert, when):
        result = PermissivePolicy().validate([stray_cert], at=when)
        assert result.ok

    def test_rejects_empty(self, when):
        assert PermissivePolicy().validate([], at=when).status is \
            ValidationStatus.EMPTY_CHAIN


class TestBrowserPolicy:
    def test_valid_public_chain(self, registry, le_chain, when):
        result = BrowserPolicy(registry).validate(le_chain, at=when)
        assert result.ok
        # Path completed with the locally-known anchor.
        assert len(result.path) == 3

    def test_unnecessary_cert_is_ignored(self, registry, le_chain,
                                         stray_cert, when):
        chain = (*le_chain, stray_cert)
        result = BrowserPolicy(registry).validate(chain, at=when)
        assert result.ok  # Chrome's behaviour in §5

    def test_unknown_ca_fails(self, registry, when):
        factory = CertificateFactory(seed=13)
        private = factory.root(name("Private Root"))
        leaf = factory.leaf(private, name("internal.example"))
        result = BrowserPolicy(registry).validate(
            [leaf, private.certificate], at=when)
        # The walk ends at the untrusted self-signed private root.
        assert not result.ok
        assert result.status in (ValidationStatus.UNKNOWN_CA,
                                 ValidationStatus.SELF_SIGNED)

    def test_extra_anchor_trusts_private_chain(self, registry, when):
        factory = CertificateFactory(seed=13)
        private = factory.root(name("Private Root"))
        leaf = factory.leaf(private, name("internal.example"))
        policy = BrowserPolicy(registry, extra_anchors=[private.certificate])
        assert policy.validate([leaf, private.certificate], at=when).ok

    def test_self_signed_rejected(self, registry, stray_cert, when):
        result = BrowserPolicy(registry).validate([stray_cert], at=when)
        assert result.status is ValidationStatus.SELF_SIGNED

    def test_expired_leaf_rejected(self, registry, pki, when):
        factory = CertificateFactory(seed=14)
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        from datetime import timedelta
        old_leaf = factory.leaf(r3, name("old.example"),
                                not_before=when - timedelta(days=400),
                                lifetime_days=90)
        result = BrowserPolicy(registry).validate(
            [old_leaf, r3.certificate], at=when)
        assert result.status is ValidationStatus.EXPIRED

    def test_missing_intermediate_fails(self, registry, le_chain, when):
        # Leaf alone: R3 is not an anchor, so the browser cannot complete.
        result = BrowserPolicy(registry).validate(le_chain[:1], at=when)
        assert result.status is ValidationStatus.UNKNOWN_CA

    def test_empty_chain(self, registry, when):
        assert BrowserPolicy(registry).validate([], at=when).status is \
            ValidationStatus.EMPTY_CHAIN


class TestStrictPolicy:
    def test_valid_public_chain(self, registry, le_chain, when):
        assert StrictPresentedChainPolicy(registry).validate(
            le_chain, at=when).ok

    def test_unnecessary_cert_breaks_chain(self, registry, le_chain,
                                           stray_cert, when):
        """The §5 divergence: same chain, Chrome OK, strict validation fails."""
        chain = (*le_chain, stray_cert)
        browser = BrowserPolicy(registry).validate(chain, at=when)
        strict = StrictPresentedChainPolicy(registry).validate(chain, at=when)
        assert browser.ok
        assert strict.status is ValidationStatus.BROKEN_CHAIN

    def test_unanchored_tail_fails(self, registry, when):
        factory = CertificateFactory(seed=15)
        private = factory.root(name("P Root"))
        inter = factory.intermediate(private, name("P Inter"))
        leaf = factory.leaf(inter, name("x"))
        result = StrictPresentedChainPolicy(registry).validate(
            [leaf, inter.certificate, private.certificate], at=when)
        assert result.status is ValidationStatus.UNKNOWN_CA

    def test_single_self_signed(self, registry, stray_cert, when):
        result = StrictPresentedChainPolicy(registry).validate(
            [stray_cert], at=when)
        assert result.status is ValidationStatus.SELF_SIGNED

    def test_any_expired_member_fails(self, registry, pki, when):
        factory = CertificateFactory(seed=16)
        from datetime import timedelta
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("y.example"), not_before=when)
        expired_extra = factory.self_signed(
            name("stale"), not_before=when - timedelta(days=4000),
            lifetime_days=30)
        result = StrictPresentedChainPolicy(registry).validate(
            [leaf, r3.certificate, expired_extra], at=when)
        assert result.status is ValidationStatus.EXPIRED


class TestSignatureVerifies:
    def test_true_for_real_parent(self, pki):
        factory = CertificateFactory(seed=17)
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("z.example"))
        assert signature_verifies(leaf, r3.certificate)

    def test_false_for_name_collision_with_wrong_key(self, pki):
        """An impostor CA with the same DN but a different key must fail."""
        factory = CertificateFactory(seed=18)
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("w.example"))
        impostor_root = factory.root(name("ISRG Root X1",
                                          o="Internet Security Research Group",
                                          c="US"))
        impostor_r3 = factory.intermediate(impostor_root,
                                           name("R3", o="Let's Encrypt", c="US"))
        assert impostor_r3.certificate.issued(leaf)  # names chain...
        assert not signature_verifies(leaf, impostor_r3.certificate)  # ...keys don't

    def test_cross_signed_twin_verifies(self, pki):
        """Cross-signed twins carry the same subject key: a leaf signed by
        the original verifies under the twin too."""
        factory = CertificateFactory(seed=19)
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        twin = pki.cross_signed["R3-cross"]
        leaf = factory.leaf(r3, name("v.example"))
        assert signature_verifies(leaf, twin.certificate)

    def test_name_fallback_without_key_ids(self):
        factory = CertificateFactory(seed=20)
        a = factory.self_signed(name("bare-a"))
        b = factory.self_signed(name("bare-b"))
        assert not signature_verifies(a, b)
        assert signature_verifies(a, a)

"""Bulk populations: non-public, public, interception."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.campus.population import (
    PUBLIC_DOMAINS,
    build_interception_population,
    build_nonpublic_population,
    build_public_population,
)
from repro.campus.profiles import PAPER, SMALL_SCALE
from repro.core.classification import CertificateClassifier, IssuerClass


@pytest.fixture(scope="module")
def nonpub(pki):
    return build_nonpublic_population(pki, seed=4, scale=SMALL_SCALE)


@pytest.fixture(scope="module")
def public(pki):
    return build_public_population(pki, seed=4, scale=SMALL_SCALE)


@pytest.fixture(scope="module")
def interception(pki):
    return build_interception_population(pki, seed=4, scale=SMALL_SCALE)


class TestNonPublic:
    def test_every_cert_non_public(self, nonpub, registry):
        classifier = CertificateClassifier(registry)
        for spec in nonpub:
            for cert in spec.chain:
                assert classifier.classify(cert) is IssuerClass.NON_PUBLIC_DB

    def test_single_share_near_paper(self, nonpub):
        regular = [s for s in nonpub if not s.labels.get("outlier")]
        singles = sum(1 for s in regular if s.length == 1)
        share = 100.0 * singles / len(regular)
        assert abs(share - PAPER.nonpub_len1_share_pct) < 6.0

    def test_self_signed_share_of_singles(self, nonpub):
        singles = [s for s in nonpub if s.length == 1]
        ss = sum(1 for s in singles if s.chain[0].is_self_signed)
        assert 85.0 < 100.0 * ss / len(singles) < 99.0

    def test_outliers_present_with_paper_lengths(self, nonpub):
        outliers = sorted(s.length for s in nonpub
                          if s.labels.get("outlier"))
        assert outliers == sorted(PAPER.outlier_lengths)

    def test_outlier_mix_rejects_everything(self, nonpub):
        for spec in nonpub:
            if spec.labels.get("outlier"):
                weights = dict(spec.mix.weights())
                assert weights == {"strict": 1.0}

    def test_dga_chains_have_template_names(self, nonpub):
        from repro.core.dga import domain_template
        dga = [s for s in nonpub if s.labels.get("dga")]
        assert len(dga) >= 3
        for spec in dga:
            cert = spec.chain[0]
            assert domain_template(cert.subject.common_name or "")
            assert not cert.is_self_signed

    def test_mesh_orgs_exist(self, nonpub):
        meshes = {s.labels.get("mesh") for s in nonpub
                  if s.labels.get("population") == "nonpub-mesh"}
        assert len(meshes) == 2

    def test_broken_multi_tails_exist(self, nonpub):
        populations = Counter(s.labels["population"] for s in nonpub)
        assert populations["nonpub-multi-contains"] >= 1
        assert populations["nonpub-multi-none"] >= 1


class TestPublic:
    def test_every_cert_public(self, public, registry):
        classifier = CertificateClassifier(registry)
        for spec in public:
            for cert in spec.chain:
                assert classifier.classify(cert) is IssuerClass.PUBLIC_DB

    def test_length_two_dominates(self, public):
        lengths = Counter(s.length for s in public)
        assert lengths[2] / len(public) > 0.5

    def test_known_domains_first(self, public):
        hosts = {s.hostname for s in public}
        assert set(PUBLIC_DOMAINS) <= hosts

    def test_ct_logged_when_log_given(self, pki):
        from repro.ct import CTLog
        log = CTLog("p", accepted_roots=[ca.root.certificate
                                         for ca in pki.cas.values()])
        specs = build_public_population(pki, seed=4, scale=SMALL_SCALE,
                                        ct_log=log)
        assert len(log) == len(specs)


class TestInterception:
    def test_one_middlebox_per_vendor(self, interception):
        _, middleboxes = interception
        assert len(middleboxes) == PAPER.interception_issuers

    def test_every_vendor_has_a_chain(self, interception):
        specs, _ = interception
        vendors = {s.labels["vendor"] for s in specs}
        assert len(vendors) == PAPER.interception_issuers

    def test_chains_target_public_domains(self, interception):
        specs, _ = interception
        ct_known = sum(1 for s in specs if s.hostname in PUBLIC_DOMAINS)
        assert ct_known / len(specs) > 0.5

    def test_trusting_clients_carry_appliance_root(self, interception):
        specs, middleboxes = interception
        roots = {mb.vendor: mb.root.certificate.fingerprint
                 for mb in middleboxes}
        for spec in specs:
            if spec.labels["population"] == "interception":
                assert spec.extra_anchors
                assert spec.extra_anchors[0].fingerprint == \
                    roots[spec.labels["vendor"]]

    def test_three_cert_chains_dominate(self, interception):
        specs, _ = interception
        lengths = Counter(s.length for s in specs)
        assert lengths[3] / len(specs) > 0.6

    def test_broken_tail_exists(self, interception):
        specs, _ = interception
        broken = [s for s in specs
                  if s.labels["population"] == "interception-broken"]
        assert len(broken) >= 2

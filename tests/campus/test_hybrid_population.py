"""The 321-chain hybrid population: taxonomy fidelity against ground truth
and against the analyzer."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.campus.hybrid_population import build_hybrid_population
from repro.campus.profiles import PAPER
from repro.core.chain import ObservedChain
from repro.core.classification import CertificateClassifier
from repro.core.crosssign import CrossSignDisclosures
from repro.core.hybrid import HybridAnalyzer, HybridCategory, NoPathCategory
from repro.ct import CTLog


@pytest.fixture(scope="module")
def specs(pki):
    log = CTLog("t", accepted_roots=[ca.root.certificate
                                     for ca in pki.cas.values()])
    built = build_hybrid_population(pki, seed=3, mean_connections=10,
                                    ct_log=log)
    return built, log


@pytest.fixture(scope="module")
def analyzed(specs, pki):
    built, _ = specs
    analyzer = HybridAnalyzer(CertificateClassifier(pki.registry),
                              CrossSignDisclosures.from_pki(pki))
    chains = []
    for spec in built:
        chain = ObservedChain(spec.chain)
        chain.usage.record(established=True, client_ip="1", server_ip="2",
                           port=443, sni=spec.hostname, ts=0.0)
        chains.append(chain)
    return analyzer.analyze(chains)


class TestGroundTruth:
    def test_exactly_321_chains(self, specs):
        assert len(specs[0]) == PAPER.hybrid_chains

    def test_chain_keys_distinct(self, specs):
        keys = [s.key for s in specs[0]]
        assert len(keys) == len(set(keys))

    def test_19_dual_chain_servers(self, specs):
        servers = Counter(s.server_id for s in specs[0])
        assert sum(1 for c in servers.values() if c == 2) == \
            PAPER.multi_chain_servers
        assert all(c <= 2 for c in servers.values())

    def test_truth_labels_match_paper_counts(self, specs):
        truth = Counter(s.labels["hybrid_category"] for s in specs[0])
        assert truth["is-complete-matched-path"] == PAPER.hybrid_complete_only
        assert truth["contains-complete-matched-path"] == \
            PAPER.hybrid_contains_complete
        assert truth["no-complete-matched-path"] == PAPER.hybrid_no_path

    def test_ct_holds_all_26_anchored_leaves(self, specs):
        _, log = specs
        assert len(log) == PAPER.hybrid_nonpub_to_pub

    def test_fake_le_chains(self, specs):
        fake = [s for s in specs[0] if s.labels.get("pattern") == "fake-le"]
        assert len(fake) == PAPER.fake_le_chains
        for spec in fake:
            assert spec.chain[-1].subject.common_name == \
                "Fake LE Intermediate X1"


class TestAnalyzerRecovery:
    def test_table3_exact(self, analyzed):
        rows = {(r["category"], r["subcategory"]): r["chains"]
                for r in analyzed.table3_rows()}
        assert rows[("(1) Chain is a complete matched path",
                     "Non-pub. chained to Pub.")] == PAPER.hybrid_nonpub_to_pub
        assert rows[("(1) Chain is a complete matched path",
                     "Pub. chained to Prv.")] == PAPER.hybrid_pub_to_private
        assert rows[("(2) Chain contains a complete matched path", "-")] == \
            PAPER.hybrid_contains_complete
        assert rows[("(3) No complete matched path", "-")] == \
            PAPER.hybrid_no_path

    def test_table6_exact(self, analyzed):
        rows = {r["category"]: r["chains"] for r in analyzed.table6_rows()}
        assert rows["Corporate"] == PAPER.anchored_corporate
        assert rows["Government"] == PAPER.anchored_government

    def test_table7_exact(self, analyzed):
        rows = {r["category"]: r["chains"] for r in analyzed.table7_rows()}
        for category, count in PAPER.no_path_taxonomy:
            assert rows[category] == count, category

    def test_missing_issuer_exact(self, analyzed):
        assert analyzed.missing_issuer_stats()["chains"] == \
            PAPER.no_path_public_leaf_missing_issuer

    def test_per_chain_truth_agreement(self, specs, analyzed):
        """Every single chain's analyzer verdict matches its generator
        ground-truth label (not just the marginals)."""
        truth_by_key = {s.key: s.labels for s in specs[0]}
        mapping = {
            HybridCategory.COMPLETE_PATH_ONLY: "is-complete-matched-path",
            HybridCategory.CONTAINS_COMPLETE_PATH:
                "contains-complete-matched-path",
            HybridCategory.NO_COMPLETE_PATH: "no-complete-matched-path",
        }
        for analysis in analyzed.analyses:
            labels = truth_by_key[analysis.chain.key]
            assert mapping[analysis.category] == labels["hybrid_category"], \
                analysis.chain
            if analysis.no_path_category is not None:
                assert analysis.no_path_category.value == \
                    labels["no_path_category"], analysis.chain

    def test_high_mismatch_share_matches_paper(self, analyzed):
        assert analyzed.high_mismatch_share(0.5) == pytest.approx(
            PAPER.no_path_high_mismatch_share_pct, abs=0.5)

    def test_mismatch_ratios_span_paper_range(self, analyzed):
        ratios = [a.mismatch_ratio for a in
                  analyzed.by_category(HybridCategory.NO_COMPLETE_PATH)]
        assert min(ratios) <= 0.15
        assert max(ratios) == 1.0


class TestDeterminism:
    def test_same_seed_same_chains(self, pki):
        a = build_hybrid_population(pki, seed=9, mean_connections=10)
        b = build_hybrid_population(pki, seed=9, mean_connections=10)
        assert [s.key for s in a] == [s.key for s in b]

    def test_different_seed_different_chains(self, pki):
        a = build_hybrid_population(pki, seed=9, mean_connections=10)
        b = build_hybrid_population(pki, seed=10, mean_connections=10)
        assert [s.key for s in a] != [s.key for s in b]

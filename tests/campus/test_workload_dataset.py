"""Workload generation and dataset assembly."""

from __future__ import annotations

from collections import Counter
from datetime import timezone

import pytest

from repro.campus import (
    SMALL_SCALE,
    ChainSpec,
    ClientMix,
    ClientPools,
    STUDY_DAYS,
    STUDY_START,
    WorkloadGenerator,
    build_campus_dataset,
    cached_campus_dataset,
    resolve_scale,
)
from repro.campus.spec import MIX_PRESETS
from repro.x509 import CertificateFactory, name


@pytest.fixture(scope="module")
def dataset():
    return cached_campus_dataset(seed=5, scale="small")


class TestClientMix:
    def test_weights_normalized(self):
        mix = ClientMix(browser=2.0, permissive=2.0)
        weights = dict(mix.weights())
        assert weights == {"browser": 0.5, "permissive": 0.5}

    def test_zero_mix_rejected(self):
        with pytest.raises(ValueError):
            ClientMix().weights()

    def test_presets_valid(self):
        for preset in MIX_PRESETS.values():
            total = sum(w for _, w in preset.weights())
            assert total == pytest.approx(1.0)


class TestClientPools:
    def test_pool_sizes_scale_with_paper_ratios(self):
        pools = ClientPools(seed=1, scale=SMALL_SCALE)
        sizes = pools.sizes()
        assert sizes["nonpub"] > sizes["intercept:Security & Network"] > \
            sizes["intercept:Health & Education"]
        assert sizes["hybrid"] > 0

    def test_unknown_pool_falls_back_to_general(self):
        pools = ClientPools(seed=1, scale=SMALL_SCALE)
        assert pools.pool("nope") == pools.pool("general")

    def test_ips_are_rfc1918(self):
        pools = ClientPools(seed=1, scale=SMALL_SCALE)
        for ip in pools.pool("hybrid")[:20]:
            assert ip.startswith("10.")


class TestWorkloadGenerator:
    @pytest.fixture()
    def spec(self, registry):
        factory = CertificateFactory(seed=8)
        cert = factory.self_signed(name("w.example"))
        return ChainSpec(
            chain=(cert,), hostname="w.example", category_truth="nonpub",
            mix=ClientMix(permissive=1.0), port_model="nonpub_single",
            mean_connections=30, sni_rate=0.5, server_id="srv-w",
            client_pool="nonpub",
        )

    def test_timestamps_inside_study_window(self, registry, spec):
        generator = WorkloadGenerator(registry, seed=2, scale=SMALL_SCALE)
        for record in generator.generate_for_spec(spec):
            dt = record.timestamp.astimezone(timezone.utc)
            assert STUDY_START <= dt
            assert (dt - STUDY_START).days <= STUDY_DAYS

    def test_sni_rate_respected(self, registry, spec):
        generator = WorkloadGenerator(registry, seed=2, scale=SMALL_SCALE)
        records = list(generator.generate_for_spec(spec))
        with_sni = sum(1 for r in records if r.sni)
        assert 0 < with_sni < len(records)

    def test_server_ip_stable_per_server(self, registry, spec):
        generator = WorkloadGenerator(registry, seed=2, scale=SMALL_SCALE)
        ips = {r.server.ip for r in generator.generate_for_spec(spec)}
        assert len(ips) == 1

    def test_outlier_spec_observed_once(self, registry, spec):
        spec.labels["outlier"] = True
        spec.mean_connections = 1
        generator = WorkloadGenerator(registry, seed=2, scale=SMALL_SCALE)
        assert len(list(generator.generate_for_spec(spec))) == 1

    def test_determinism(self, registry, spec):
        a = WorkloadGenerator(registry, seed=2, scale=SMALL_SCALE)
        b = WorkloadGenerator(registry, seed=2, scale=SMALL_SCALE)
        rows_a = [(r.uid, r.client.ip, r.timestamp, r.established)
                  for r in a.generate_for_spec(spec)]
        rows_b = [(r.uid, r.client.ip, r.timestamp, r.established)
                  for r in b.generate_for_spec(spec)]
        assert rows_a == rows_b


class TestDataset:
    def test_resolve_scale(self):
        assert resolve_scale("small") is SMALL_SCALE
        assert resolve_scale(SMALL_SCALE) is SMALL_SCALE
        with pytest.raises(ValueError):
            resolve_scale("gigantic")

    def test_cached_returns_same_object(self):
        a = cached_campus_dataset(seed=5, scale="small")
        b = cached_campus_dataset(seed=5, scale="small")
        assert a is b

    def test_build_deterministic(self):
        a = build_campus_dataset(seed=6, scale="small")
        b = build_campus_dataset(seed=6, scale="small")
        assert [r.uid for r in a.ssl_records] == [r.uid for r in b.ssl_records]
        assert [r.fingerprint for r in a.x509_records] == \
            [r.fingerprint for r in b.x509_records]

    def test_spec_keys_unique(self, dataset):
        keys = [s.key for s in dataset.specs]
        assert len(keys) == len(set(keys))

    def test_joined_references_resolve(self, dataset):
        from repro.zeek.tap import join_logs
        joined = join_logs(dataset.ssl_records, dataset.x509_records,
                           strict=True)
        assert len(joined) == len(dataset.ssl_records)

    def test_tls13_connections_have_no_chain(self, dataset):
        tls13 = [r for r in dataset.ssl_records if r.version == "TLSv13"]
        assert tls13, "workload should include TLS 1.3 connections"
        assert all(not r.cert_chain_fps for r in tls13)

    def test_write_zeek_logs_round_trip(self, dataset, tmp_path):
        ssl_path, x509_path = dataset.write_zeek_logs(str(tmp_path))
        from repro.zeek import read_zeek_log
        ssl_reader, ssl_rows = read_zeek_log(ssl_path)
        x509_reader, x509_rows = read_zeek_log(x509_path)
        assert ssl_reader.path == "ssl"
        assert x509_reader.path == "x509"
        assert len(ssl_rows) == len(dataset.ssl_records)
        assert len(x509_rows) == len(dataset.x509_records)

    def test_ground_truth_covers_observed_chains(self, dataset):
        truth = dataset.truth_by_chain_key()
        observed = dataset.analyze().chains
        covered = sum(1 for key in observed if key in truth)
        assert covered == len(observed)


class TestNoiseRouting:
    """The DPD border sensor must make non-TLS noise invisible to the logs."""

    def test_noisy_build_logs_identical(self):
        clean = build_campus_dataset(seed=9, scale="small")
        noisy = build_campus_dataset(seed=9, scale="small", noise_ratio=0.25)
        assert [r.uid for r in clean.ssl_records] == \
            [r.uid for r in noisy.ssl_records]
        assert [r.fingerprint for r in clean.x509_records] == \
            [r.fingerprint for r in noisy.x509_records]

    def test_sensor_statistics_exposed(self):
        noisy = build_campus_dataset(seed=9, scale="small", noise_ratio=0.25)
        assert noisy.sensor is not None
        assert noisy.sensor.skipped_flows > 0
        assert noisy.sensor.tls_flows == len(noisy.ssl_records)
        assert noisy.sensor.sni_mismatches == 0
        assert 0.5 < noisy.sensor.tls_share < 1.0

    def test_clean_build_has_no_sensor(self):
        clean = build_campus_dataset(seed=9, scale="small")
        assert clean.sensor is None

"""Statistical validation of the workload generator: port models and
establishment-by-policy behaviour over many connections."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.campus import SMALL_SCALE, WorkloadGenerator
from repro.campus.profiles import PORT_MODELS
from repro.campus.spec import ChainSpec, ClientMix
from repro.x509 import CertificateFactory, name


def _spec(chain, mix, *, port_model="nonpub_single", mean=40,
          server_id="stat-srv", pool="nonpub"):
    return ChainSpec(chain=tuple(chain), hostname="stat.example",
                     category_truth="nonpub", mix=mix, port_model=port_model,
                     mean_connections=mean, sni_rate=0.5,
                     server_id=server_id, client_pool=pool)


@pytest.fixture()
def self_signed_chain(factory):
    return (factory.self_signed(name("stat.example")),)


@pytest.fixture()
def public_chain(pki):
    own = CertificateFactory(seed=808)
    r3 = pki.ca("lets_encrypt").intermediates["R3"]
    leaf = own.leaf(r3, name("stat.example"), dns_names=["stat.example"])
    return (leaf, r3.certificate)


class TestEstablishmentByPolicy:
    def test_permissive_always_establishes(self, registry, self_signed_chain):
        generator = WorkloadGenerator(registry, seed=10, scale=SMALL_SCALE)
        records = list(generator.generate_for_spec(
            _spec(self_signed_chain, ClientMix(permissive=1.0))))
        assert records
        assert all(r.established for r in records)

    def test_strict_rejects_untrusted_self_signed(self, registry,
                                                  self_signed_chain):
        generator = WorkloadGenerator(registry, seed=10, scale=SMALL_SCALE)
        records = list(generator.generate_for_spec(
            _spec(self_signed_chain, ClientMix(strict=1.0))))
        assert all(not r.established for r in records)

    def test_browser_accepts_public_chain(self, registry, public_chain):
        generator = WorkloadGenerator(registry, seed=10, scale=SMALL_SCALE)
        records = list(generator.generate_for_spec(
            _spec(public_chain, ClientMix(browser=1.0))))
        assert all(r.established for r in records)

    def test_mixed_policy_rate_matches_weights(self, registry,
                                               self_signed_chain):
        """permissive=0.6 / strict=0.4 against an untrusted chain should
        establish ~60 % of connections."""
        generator = WorkloadGenerator(registry, seed=10, scale=SMALL_SCALE)
        spec = _spec(self_signed_chain,
                     ClientMix(permissive=0.6, strict=0.4), mean=500)
        records = list(generator.generate_for_spec(spec))
        rate = sum(r.established for r in records) / len(records)
        assert abs(rate - 0.6) < 0.08

    def test_trusting_mix_requires_extra_anchor(self, registry, factory):
        from datetime import datetime, timezone
        private = factory.root(name("Trusting Root"))
        # Mint before the study window so every connection sees it valid.
        leaf = factory.leaf(private, name("stat.example"),
                            not_before=datetime(2020, 6, 1,
                                                tzinfo=timezone.utc),
                            lifetime_days=600)
        spec = _spec((leaf, private.certificate), ClientMix(trusting=1.0))
        spec.extra_anchors = (private.certificate,)
        generator = WorkloadGenerator(registry, seed=10, scale=SMALL_SCALE)
        records = list(generator.generate_for_spec(spec))
        assert all(r.established for r in records)


class TestPortModelStatistics:
    @pytest.mark.parametrize("model", ["nonpub_single", "interception",
                                       "hybrid"])
    def test_port_draw_respects_model_support(self, registry,
                                              self_signed_chain, model):
        """Ports drawn per spec always come from the configured model."""
        allowed = {port for port, _ in PORT_MODELS[model]}
        generator = WorkloadGenerator(registry, seed=11, scale=SMALL_SCALE)
        seen = set()
        for i in range(60):
            spec = _spec(self_signed_chain, ClientMix(permissive=1.0),
                         port_model=model, mean=3, server_id=f"ps-{model}-{i}")
            for record in generator.generate_for_spec(spec):
                seen.add(record.server.port)
        assert seen <= allowed
        assert len(seen) >= 2  # the distribution actually varies

    def test_top_port_dominates_over_many_specs(self, registry,
                                                self_signed_chain):
        """Over many servers, the weighted top port of the model wins."""
        generator = WorkloadGenerator(registry, seed=12, scale=SMALL_SCALE)
        counts: Counter = Counter()
        for i in range(200):
            spec = _spec(self_signed_chain, ClientMix(permissive=1.0),
                         port_model="hybrid", mean=2,
                         server_id=f"dom-{i}")
            record = next(iter(generator.generate_for_spec(spec)))
            counts[record.server.port] += 1
        top_port, top_count = counts.most_common(1)[0]
        assert top_port == 443
        assert top_count / sum(counts.values()) > 0.85  # model says 97 %

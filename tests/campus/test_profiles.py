"""Calibration profiles: fleet composition, paper targets, scale presets."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.campus.profiles import (
    DEFAULT_SCALE,
    INTERCEPTION_FLEET,
    PAPER,
    PORT_MODELS,
    SMALL_SCALE,
    build_vendor_directory,
)


class TestPaperTargets:
    def test_interception_issuers_sum_to_80(self):
        total = sum(count for _, count, _, _
                    in PAPER.interception_issuer_categories)
        assert total == PAPER.interception_issuers == 80

    def test_no_path_taxonomy_sums_to_215(self):
        assert sum(c for _, c in PAPER.no_path_taxonomy) == PAPER.hybrid_no_path

    def test_hybrid_taxonomy_sums(self):
        assert (PAPER.hybrid_complete_only + PAPER.hybrid_contains_complete
                + PAPER.hybrid_no_path) == PAPER.hybrid_chains
        assert (PAPER.hybrid_nonpub_to_pub + PAPER.hybrid_pub_to_private
                == PAPER.hybrid_complete_only)

    def test_table6_sums_to_26(self):
        assert (PAPER.anchored_corporate + PAPER.anchored_government
                == PAPER.hybrid_nonpub_to_pub)

    def test_derived_chain_counts_consistent(self):
        assert (PAPER.nonpub_chains + PAPER.interception_chains
                + PAPER.hybrid_chains + PAPER.public_chains
                == PAPER.total_chains)

    def test_table5_columns_balance(self):
        # IS column: single + valid + broken = total.
        assert (PAPER.validation_single + PAPER.validation_is_valid
                + PAPER.validation_is_broken
                == PAPER.validation_total_chains)
        # KS column: single + valid + broken + unrecognized = total.
        assert (PAPER.validation_single + PAPER.validation_ks_valid
                + PAPER.validation_ks_broken + PAPER.validation_unrecognized
                == PAPER.validation_total_chains)


class TestFleet:
    def test_category_counts_match_table1(self):
        counts = Counter(v.category for v in INTERCEPTION_FLEET)
        for category, issuers, _, _ in PAPER.interception_issuer_categories:
            assert counts[category] == issuers, category

    def test_vendor_names_unique(self):
        names = [v.vendor for v in INTERCEPTION_FLEET]
        assert len(names) == len(set(names))

    def test_security_category_dominates_weight(self):
        by_category = Counter()
        for vendor in INTERCEPTION_FLEET:
            by_category[vendor.category] += vendor.weight
        total = sum(by_category.values())
        assert by_category["Security & Network"] / total > 0.80

    def test_single_chain_vendor_weight_share(self):
        # Single-presenting vendors carry roughly the 13.24 % share of §4.3.
        single_weight = sum(v.weight for v in INTERCEPTION_FLEET
                            if v.single_self_signed or v.single_leaf_only)
        total = sum(v.weight for v in INTERCEPTION_FLEET)
        assert 0.08 < single_weight / total < 0.22

    def test_directory_covers_fleet(self):
        directory = build_vendor_directory()
        for vendor in INTERCEPTION_FLEET:
            from repro.x509 import name
            resolved, category = directory.lookup(
                name("proxy", o=vendor.vendor))
            assert resolved == vendor.vendor
            assert category == vendor.category


class TestPortModels:
    @pytest.mark.parametrize("model", sorted(PORT_MODELS))
    def test_weights_normalize(self, model):
        total = sum(w for _, w in PORT_MODELS[model])
        assert 0.95 < total <= 1.001

    def test_table4_top_ports(self):
        assert PORT_MODELS["hybrid"][0] == (443, 0.9721)
        assert PORT_MODELS["interception"][0] == (8013, 0.3540)
        assert PORT_MODELS["nonpub_single"][0][0] == 443


class TestScales:
    def test_small_smaller_than_default(self):
        assert (SMALL_SCALE.scaled_nonpub_chains()
                < DEFAULT_SCALE.scaled_nonpub_chains())
        assert (SMALL_SCALE.conns_per_hybrid_chain
                < DEFAULT_SCALE.conns_per_hybrid_chain)

    def test_interception_scale_keeps_all_vendors(self):
        assert SMALL_SCALE.scaled_interception_chains() >= len(
            INTERCEPTION_FLEET)

"""The instrumented pipeline actually feeds the registry and tracer."""

from __future__ import annotations

import pytest

from repro.campus.dataset import cached_campus_dataset
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer


def _value(snapshot: dict, name: str, **labels: str) -> float:
    total = 0.0
    for sample in snapshot.get(name, {"samples": []})["samples"]:
        if all(sample["labels"].get(k) == v for k, v in labels.items()):
            total += sample.get("value", 0.0)
    return total


@pytest.fixture(scope="module")
def pipeline_delta():
    """Metric deltas and spans from one fresh full-pipeline run."""
    dataset = cached_campus_dataset(seed="obs-test", scale="small")
    before = get_registry().snapshot()
    tracer = get_tracer()
    span_start = len(tracer.finished)
    analyzer = dataset.analyzer()
    result = analyzer.analyze_connections(dataset.joined())
    # Force structure-cache traffic: one miss pass, one hit pass.
    for chain in result.categorized.chains(
            list(result.categorized.by_category)[0]):
        result.structure_of(chain)
        result.structure_of(chain)
    after = get_registry().snapshot()
    spans = [r.name for r in tracer.finished[span_start:]]
    return before, after, spans, dataset, result


class TestPipelineCounters:
    def test_chains_counted(self, pipeline_delta):
        before, after, _, dataset, result = pipeline_delta
        delta = (_value(after, "repro_pipeline_chains_total")
                 - _value(before, "repro_pipeline_chains_total"))
        assert delta == len(result.chains)

    def test_category_counters_match_result(self, pipeline_delta):
        before, after, _, _, result = pipeline_delta
        for category, chains in result.categorized.by_category.items():
            delta = (_value(after, "repro_pipeline_category_chains_total",
                            category=category.value)
                     - _value(before, "repro_pipeline_category_chains_total",
                              category=category.value))
            assert delta == len(chains)

    def test_aggregation_counters(self, pipeline_delta):
        before, after, _, dataset, result = pipeline_delta
        aggregated = (_value(after, "repro_chain_connections_total",
                             result="aggregated")
                      - _value(before, "repro_chain_connections_total",
                               result="aggregated"))
        assert aggregated == sum(c.usage.connections
                                 for c in result.chains.values())

    def test_structure_cache_hits_and_misses(self, pipeline_delta):
        before, after, _, _, _ = pipeline_delta
        hits = (_value(after, "repro_structure_cache_lookups_total",
                       result="hit")
                - _value(before, "repro_structure_cache_lookups_total",
                         result="hit"))
        misses = (_value(after, "repro_structure_cache_lookups_total",
                         result="miss")
                  - _value(before, "repro_structure_cache_lookups_total",
                           result="miss"))
        assert hits > 0 and misses > 0

    def test_interception_verdicts_cover_all_chains(self, pipeline_delta):
        before, after, _, _, result = pipeline_delta
        total = sum(
            _value(after, "repro_interception_chains_total", verdict=v)
            - _value(before, "repro_interception_chains_total", verdict=v)
            for v in ("flagged", "not_flagged", "public_issuer",
                      "empty_chain"))
        assert total == len(result.chains)

    def test_ct_lookups_recorded(self, pipeline_delta):
        before, after, _, _, _ = pipeline_delta
        lookups = (_value(after, "repro_ct_lookups_total")
                   - _value(before, "repro_ct_lookups_total"))
        assert lookups > 0


class TestPipelineSpans:
    def test_stage_spans_emitted_in_order(self, pipeline_delta):
        _, _, spans, _, _ = pipeline_delta
        for name in ("enrich_interception", "categorize", "hybrid_analysis",
                     "special_populations", "analyze_chains"):
            assert name in spans
        # Stages close before the enclosing pipeline span does.
        assert spans.index("categorize") < spans.index("analyze_chains")


class TestDeterminism:
    def test_two_runs_produce_identical_counter_deltas(self):
        dataset = cached_campus_dataset(seed="obs-test", scale="small")

        def run() -> dict:
            before = get_registry().snapshot()
            dataset.analyzer().analyze_connections(dataset.joined())
            after = get_registry().snapshot()
            return {
                name: _value(after, name, **labels) - _value(before, name,
                                                             **labels)
                for name, labels in [
                    ("repro_pipeline_chains_total", {}),
                    ("repro_chain_connections_total", {}),
                    ("repro_ct_lookups_total", {"result": "hit"}),
                    ("repro_ct_lookups_total", {"result": "miss"}),
                    ("repro_interception_chains_total",
                     {"verdict": "flagged"}),
                ]
            }

        assert run() == run()

"""Chrome-trace export: structure, validation, pid/tid assignment."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import TelemetrySink, capture_telemetry
from repro.obs.traceexport import (
    build_trace,
    distinct_pids,
    validate_trace,
    write_trace,
)
from repro.obs.tracing import Tracer


def _sink_with_worker_spans(tracer: Tracer, units=(0, 1)) -> TelemetrySink:
    sink = TelemetrySink()
    reg = MetricsRegistry()
    for unit in units:
        with capture_telemetry("ingest", unit, registry=reg,
                               tracer=tracer) as telemetry:
            with tracer.span("ingest_shard", shard=unit):
                with tracer.span("zeek_read"):
                    pass
        sink.attach(telemetry, record_metrics=False, registry=reg)
    return sink


class TestBuildTrace:
    def test_driver_spans_become_complete_events(self):
        tracer = Tracer()
        with tracer.span("parallel_ingest", shards=2):
            pass
        trace = build_trace(tracer=tracer, sink=TelemetrySink())
        validate_trace(trace)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        [event] = spans
        assert event["name"] == "parallel_ingest"
        assert event["cat"] == "driver"
        assert event["pid"] == os.getpid()
        assert event["tid"] == 0
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert event["args"]["shards"] == 2

    def test_worker_spans_get_named_tracks(self):
        tracer = Tracer()
        sink = _sink_with_worker_spans(tracer)
        trace = build_trace(tracer=tracer, sink=sink)
        validate_trace(trace)
        metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        thread_names = {e["args"]["name"] for e in metas
                        if e["name"] == "thread_name"}
        assert {"ingest-00", "ingest-01"} <= thread_names
        worker_events = [e for e in trace["traceEvents"]
                        if e["ph"] == "X" and e["cat"] == "ingest"]
        # Two units x two spans each; inline capture means same pid but
        # each (pid, kind, unit) still gets its own tid >= 1.
        assert len(worker_events) == 4
        assert {e["tid"] for e in worker_events} == {1, 2}
        assert all(e["args"]["unit"] in (0, 1) for e in worker_events)

    def test_distinct_pids_filters_by_category(self):
        tracer = Tracer()
        with tracer.span("driver_only"):
            pass
        sink = _sink_with_worker_spans(tracer)
        trace = build_trace(tracer=tracer, sink=sink)
        assert distinct_pids(trace) == {os.getpid()}
        assert distinct_pids(trace, category="ingest") == {os.getpid()}
        assert distinct_pids(trace, category="nope") == set()


class TestValidateTrace:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_trace([])

    def test_rejects_missing_event_list(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_trace({"traceEvents": "nope"})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="phase"):
            validate_trace({"traceEvents": [
                {"name": "x", "ph": "B", "pid": 1, "tid": 0}]})

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="negative duration"):
            validate_trace({"traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 0,
                 "ts": 0, "dur": -1}]})

    def test_rejects_non_integer_pid(self):
        with pytest.raises(ValueError, match="pid"):
            validate_trace({"traceEvents": [
                {"name": "x", "ph": "X", "pid": "1", "tid": 0,
                 "ts": 0, "dur": 1}]})

    def test_rejects_metadata_without_name_arg(self):
        with pytest.raises(ValueError, match="args.name"):
            validate_trace({"traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                 "args": {}}]})


class TestWriteTrace:
    def test_writes_loadable_json_and_sets_gauge(self, tmp_path):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        path = tmp_path / "trace.json"
        trace = write_trace(str(path), tracer=tracer, sink=TelemetrySink())
        on_disk = json.loads(path.read_text())
        assert on_disk == trace
        assert on_disk["displayTimeUnit"] == "ms"
        from repro.obs import instruments
        assert (instruments.TRACE_EXPORT_EVENTS.value()
                == len(trace["traceEvents"]))

"""BoundedLRU: eviction order, recency refresh, metric wiring."""

from __future__ import annotations

import pytest

from repro.obs.cache import BoundedLRU


class _Tally:
    def __init__(self):
        self.count = 0

    def inc(self, amount: float = 1.0) -> None:
        self.count += amount


class TestBoundedLRU:
    def test_get_put_round_trip(self):
        cache: BoundedLRU[str, int] = BoundedLRU(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_evicts_least_recently_used(self):
        cache: BoundedLRU[str, int] = BoundedLRU(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_get_refreshes_recency(self):
        cache: BoundedLRU[str, int] = BoundedLRU(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")     # "b" is now least recent
        cache.put("c", 3)  # evicts "b"
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_put_refreshes_existing_key(self):
        cache: BoundedLRU[str, int] = BoundedLRU(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: nothing evicted
        cache.put("c", 3)   # evicts "b"
        assert cache.get("a") == 10
        assert cache.get("b") is None
        assert len(cache) == 2

    def test_clear(self):
        cache: BoundedLRU[str, int] = BoundedLRU(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_rejects_non_positive_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            BoundedLRU(0)

    def test_hit_miss_metrics(self):
        hits, misses = _Tally(), _Tally()
        cache: BoundedLRU[str, int] = BoundedLRU(2, hits=hits, misses=misses)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        assert hits.count == 2
        assert misses.count == 1

"""Structured logging wrapper: key=value format, env override, idempotency."""

from __future__ import annotations

import io
import logging

from repro.obs.logging import (
    REPRO_LOG_LEVEL_VAR,
    configure_logging,
    get_logger,
    kv,
)


def _capture(level="debug"):
    stream = io.StringIO()
    configure_logging(level=level, stream=stream, force=True)
    return stream


class TestFormat:
    def test_key_value_line(self):
        stream = _capture()
        log = get_logger("unit.test")
        log.info("stage done", extra=kv(stage="categorize", chains=12))
        line = stream.getvalue().strip()
        assert "level=info" in line
        assert "logger=repro.unit.test" in line
        assert 'msg="stage done"' in line
        assert "stage=categorize" in line
        assert "chains=12" in line

    def test_values_with_spaces_quoted(self):
        stream = _capture()
        get_logger("unit.test").warning("x", extra=kv(note="two words"))
        assert 'note="two words"' in stream.getvalue()


class TestConfiguration:
    def test_get_logger_namespaces_under_repro(self):
        assert get_logger("core.pipeline").name == "repro.core.pipeline"
        assert get_logger("repro.zeek.tap").name == "repro.zeek.tap"

    def test_default_level_is_warning(self, monkeypatch):
        monkeypatch.delenv(REPRO_LOG_LEVEL_VAR, raising=False)
        stream = io.StringIO()
        root = configure_logging(stream=stream, force=True)
        assert root.level == logging.WARNING
        get_logger("unit").info("hidden")
        assert stream.getvalue() == ""

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(REPRO_LOG_LEVEL_VAR, "debug")
        root = configure_logging(force=True, stream=io.StringIO())
        assert root.level == logging.DEBUG

    def test_explicit_level_beats_env(self, monkeypatch):
        monkeypatch.setenv(REPRO_LOG_LEVEL_VAR, "debug")
        root = configure_logging(level="error", force=True,
                                 stream=io.StringIO())
        assert root.level == logging.ERROR

    def test_reconfigure_without_force_only_adjusts_level(self):
        stream = _capture(level="warning")
        root = configure_logging(level="debug")
        assert root.level == logging.DEBUG
        assert len(root.handlers) == 1  # no handler duplication
        get_logger("unit").debug("now visible")
        assert "now visible" in stream.getvalue()

    def test_does_not_propagate_to_stdlib_root(self):
        _capture()
        assert logging.getLogger("repro").propagate is False

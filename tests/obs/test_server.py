"""MetricsServer: live /metrics, /healthz, /runreport over HTTP."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import instruments
from repro.obs.server import MetricsServer


@pytest.fixture()
def server():
    with MetricsServer(port=0, version="test-1.0") as srv:
        yield srv


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


class TestEndpoints:
    def test_metrics_serves_prometheus_text(self, server):
        instruments.PIPELINE_CHAINS.inc(0)  # ensure at least one family
        status, content_type, body = _get(server.url + "/metrics")
        assert status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        # Parseable exposition: every non-comment line is "name{...} value".
        for line in body.splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, _, value = line.rpartition(" ")
            assert name_part
            float(value)
        assert "repro_metrics_server_requests_total" in body

    def test_healthz(self, server):
        status, content_type, body = _get(server.url + "/healthz")
        assert status == 200
        assert content_type == "application/json"
        assert json.loads(body) == {"status": "ok"}

    def test_runreport_is_live_run_report(self, server):
        status, _, body = _get(server.url + "/runreport")
        assert status == 200
        report = json.loads(body)
        assert report["version"] == "test-1.0"
        assert "stages" in report
        assert "throughput" in report

    def test_unknown_path_404_lists_endpoints(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert "/metrics" in payload["endpoints"]

    def test_requests_counted_per_endpoint(self, server):
        before = instruments.METRICS_SERVER_REQUESTS.labels(
            endpoint="healthz").value
        _get(server.url + "/healthz")
        _get(server.url + "/healthz")
        assert instruments.METRICS_SERVER_REQUESTS.labels(
            endpoint="healthz").value == before + 2


class TestLifecycle:
    def test_ephemeral_port_reported(self, server):
        assert server.port > 0
        assert str(server.port) in server.url

    def test_stop_is_idempotent_and_frees_port(self):
        server = MetricsServer(port=0)
        server.start()
        port = server.port
        server.stop()
        server.stop()  # second stop is a no-op
        # Port is free again: a new server can bind it immediately.
        rebind = MetricsServer(port=port)
        try:
            assert rebind.start() == port
        finally:
            rebind.stop()

    def test_start_is_idempotent(self):
        server = MetricsServer(port=0)
        try:
            assert server.start() == server.start()
        finally:
            server.stop()

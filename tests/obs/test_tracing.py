"""Span tracing: nesting, timing aggregation, determinism of structure."""

from __future__ import annotations

from repro.obs.metrics import get_registry
from repro.obs.tracing import Tracer, get_tracer, trace_span


class TestTracer:
    def test_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        [record] = tracer.finished
        assert record.name == "stage"
        assert record.duration_s >= 0.0
        assert record.depth == 0

    def test_nested_spans_build_paths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.finished  # inner finishes first
        assert inner.path == "outer.inner"
        assert inner.depth == 1
        assert outer.path == "outer"

    def test_attrs_preserved(self):
        tracer = Tracer()
        with tracer.span("categorize", chains=42):
            pass
        assert tracer.finished[0].attrs == {"chains": 42}

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert [r.name for r in tracer.finished] == ["boom"]
        # The stack unwound: a new span is root-level again.
        with tracer.span("after"):
            pass
        assert tracer.finished[-1].depth == 0

    def test_stage_timings_aggregates_calls(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("stage"):
                pass
        timings = tracer.stage_timings()
        assert timings["stage"]["calls"] == 3
        assert timings["stage"]["seconds"] >= 0.0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        tracer.enabled = False
        with tracer.span("stage"):
            pass
        assert tracer.finished == []

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        tracer.reset()
        assert tracer.finished == []

    def test_reset_refreshes_timeline_anchors(self):
        tracer = Tracer()
        perf_before, epoch_before = tracer.anchor_perf, tracer.anchor_epoch
        tracer.reset()
        assert tracer.anchor_perf >= perf_before
        assert tracer.anchor_epoch >= epoch_before

    def test_mark_and_drain_divert_spans(self):
        tracer = Tracer()
        with tracer.span("before"):
            pass
        mark = tracer.mark()
        with tracer.span("captured"):
            with tracer.span("nested"):
                pass
        drained = tracer.drain(mark)
        assert [r.name for r in drained] == ["nested", "captured"]
        # The pre-mark span stays; the drained ones are gone for good.
        assert [r.name for r in tracer.finished] == ["before"]
        assert tracer.drain(tracer.mark()) == []


class TestSpanTree:
    def test_exception_in_nested_span_still_closes_parent(self):
        tracer = Tracer()
        try:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        tree = tracer.span_tree()
        assert [(n["path"], n["depth"]) for n in tree] == [
            ("outer.inner", 1), ("outer", 0)]
        # The stack fully unwound: the next root span is depth 0 with a
        # single-segment path, not parented under the failed spans.
        with tracer.span("recovered"):
            pass
        assert tracer.span_tree()[-1] == {
            "name": "recovered", "path": "recovered", "depth": 0,
            "duration_s": tracer.finished[-1].duration_s, "attrs": {}}

    def test_attrs_survive_span_tree_export(self):
        tracer = Tracer()
        attrs = {"chains": 7, "label": "ssl", "nested_ok": True}
        with tracer.span("categorize", **attrs):
            pass
        [node] = tracer.span_tree()
        assert node["attrs"] == attrs
        # The export is a copy: mutating it cannot corrupt the record.
        node["attrs"]["chains"] = -1
        assert tracer.finished[0].attrs["chains"] == 7

    def test_start_offsets_are_monotonic_in_completion_order(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.finished
        assert first.start_s >= tracer.anchor_perf
        assert second.start_s >= first.start_s


class TestDefaultTracer:
    def test_trace_span_feeds_registry_histogram(self):
        get_tracer().reset()
        hist = get_registry().histogram(
            "repro_span_duration_seconds", labelnames=("span",))
        before = hist.labels(span="test_only_stage").count
        with trace_span("test_only_stage"):
            pass
        assert hist.labels(span="test_only_stage").count == before + 1
        assert get_tracer().finished[-1].name == "test_only_stage"

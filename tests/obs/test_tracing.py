"""Span tracing: nesting, timing aggregation, determinism of structure."""

from __future__ import annotations

from repro.obs.metrics import get_registry
from repro.obs.tracing import Tracer, get_tracer, trace_span


class TestTracer:
    def test_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        [record] = tracer.finished
        assert record.name == "stage"
        assert record.duration_s >= 0.0
        assert record.depth == 0

    def test_nested_spans_build_paths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.finished  # inner finishes first
        assert inner.path == "outer.inner"
        assert inner.depth == 1
        assert outer.path == "outer"

    def test_attrs_preserved(self):
        tracer = Tracer()
        with tracer.span("categorize", chains=42):
            pass
        assert tracer.finished[0].attrs == {"chains": 42}

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert [r.name for r in tracer.finished] == ["boom"]
        # The stack unwound: a new span is root-level again.
        with tracer.span("after"):
            pass
        assert tracer.finished[-1].depth == 0

    def test_stage_timings_aggregates_calls(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("stage"):
                pass
        timings = tracer.stage_timings()
        assert timings["stage"]["calls"] == 3
        assert timings["stage"]["seconds"] >= 0.0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        tracer.enabled = False
        with tracer.span("stage"):
            pass
        assert tracer.finished == []

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        tracer.reset()
        assert tracer.finished == []


class TestDefaultTracer:
    def test_trace_span_feeds_registry_histogram(self):
        get_tracer().reset()
        hist = get_registry().histogram(
            "repro_span_duration_seconds", labelnames=("span",))
        before = hist.labels(span="test_only_stage").count
        with trace_span("test_only_stage"):
            pass
        assert hist.labels(span="test_only_stage").count == before + 1
        assert get_tracer().finished[-1].name == "test_only_stage"

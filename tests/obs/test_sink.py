"""Cross-process telemetry: capture/restore invariants and sink merging."""

from __future__ import annotations

import os

from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import TelemetrySink, capture_telemetry, get_sink
from repro.obs.tracing import Tracer


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("pre_total", "pre-existing", labelnames=("k",)).inc(5, k="a")
    reg.histogram("lat_seconds", "latency", labelnames=("op",),
                  buckets=(0.1, 1.0)).observe(0.05, op="x")
    reg.gauge("level", "a gauge").set(3)
    return reg


class TestCaptureTelemetry:
    def test_counter_deltas_shipped_and_restored(self):
        reg = _registry()
        tracer = Tracer()
        with capture_telemetry("ingest", 2, registry=reg,
                               tracer=tracer) as telemetry:
            reg.counter("pre_total", labelnames=("k",)).inc(7, k="a")
        assert ("pre_total", ("a",), 7.0) in telemetry.counters
        # Restored: the driver-visible value is back at baseline.
        assert reg.counter("pre_total",
                           labelnames=("k",)).labels(k="a").value == 5
        assert telemetry.kind == "ingest"
        assert telemetry.unit == 2
        assert telemetry.pid == os.getpid()
        assert telemetry.duration_s >= 0.0

    def test_body_born_child_ships_zero_delta_and_stays_zeroed(self):
        reg = _registry()
        with capture_telemetry("ingest", 0, registry=reg,
                               tracer=Tracer()) as telemetry:
            family = reg.counter("pre_total", labelnames=("k",))
            family.labels(k="new")  # created, never incremented
            family.inc(3, k="other")
        deltas = dict(((n, l), d) for n, l, d in telemetry.counters)
        assert deltas[("pre_total", ("new",))] == 0.0
        assert deltas[("pre_total", ("other",))] == 3.0
        # Both children remain registered at zero: the driver child set
        # after an inline run matches a pooled run.
        samples = dict(reg.counter("pre_total",
                                   labelnames=("k",)).samples())
        assert samples[("new",)].value == 0
        assert samples[("other",)].value == 0
        assert samples[("a",)].value == 5

    def test_histogram_deltas_shipped_and_restored(self):
        reg = _registry()
        hist = reg.histogram("lat_seconds", labelnames=("op",),
                             buckets=(0.1, 1.0))
        with capture_telemetry("analysis", 1, registry=reg,
                               tracer=Tracer()) as telemetry:
            hist.observe(0.5, op="x")
            hist.observe(2.0, op="x")
        [(name, labels, counts, total, count)] = telemetry.histograms
        assert (name, labels) == ("lat_seconds", ("x",))
        assert count == 2
        assert total == 2.5
        assert sum(counts) >= 1  # 0.5 lands in a finite bucket
        child = hist.labels(op="x")
        assert child.count == 1  # back to the single baseline observation
        assert child.sum == 0.05

    def test_gauges_restored_never_shipped(self):
        reg = _registry()
        gauge = reg.gauge("level")
        with capture_telemetry("generate", 0, registry=reg,
                               tracer=Tracer()) as telemetry:
            gauge.set(99)
        assert gauge.value() == 3
        assert all(name != "level" for name, _, _ in telemetry.counters)

    def test_spans_drained_into_telemetry_not_tracer(self):
        tracer = Tracer()
        with tracer.span("driver_stage"):
            pass
        with capture_telemetry("ingest", 4, registry=MetricsRegistry(),
                               tracer=tracer) as telemetry:
            with tracer.span("worker_stage", shard=4):
                pass
        assert [r.name for r in tracer.finished] == ["driver_stage"]
        [span] = telemetry.spans
        assert span.name == "worker_stage"
        assert span.attrs == {"shard": 4}
        assert span.offset_s >= 0.0
        assert telemetry.span_count == 1

    def test_enabled_flags_restored_after_capture(self):
        reg = MetricsRegistry()
        tracer = Tracer()
        reg.enabled = False
        tracer.enabled = False
        with capture_telemetry("scan", 0, registry=reg, tracer=tracer):
            assert reg.enabled and tracer.enabled
        assert not reg.enabled
        assert not tracer.enabled

    def test_restore_happens_on_body_exception(self):
        reg = _registry()
        try:
            with capture_telemetry("ingest", 0, registry=reg,
                                   tracer=Tracer()):
                reg.counter("pre_total", labelnames=("k",)).inc(10, k="a")
                raise RuntimeError("worker died")
        except RuntimeError:
            pass
        assert reg.counter("pre_total",
                           labelnames=("k",)).labels(k="a").value == 5


class TestTelemetrySink:
    def _capture(self, reg, *, kind="ingest", unit=0, body=None):
        with capture_telemetry(kind, unit, registry=reg,
                               tracer=Tracer()) as telemetry:
            if body:
                body()
        return telemetry

    def test_replay_families_increment_value_for_value(self):
        worker_reg = _registry()
        telemetry = self._capture(
            worker_reg,
            body=lambda: worker_reg.counter(
                "pre_total", labelnames=("k",)).inc(7, k="a"))
        driver_reg = _registry()
        sink = TelemetrySink()
        sink.attach(telemetry, replay=("pre_total",),
                    record_metrics=False, registry=driver_reg)
        assert driver_reg.counter("pre_total",
                                  labelnames=("k",)).labels(k="a").value == 12

    def test_non_replay_families_created_but_not_incremented(self):
        worker_reg = _registry()
        telemetry = self._capture(
            worker_reg,
            body=lambda: worker_reg.counter(
                "pre_total", labelnames=("k",)).inc(7, k="fresh"))
        driver_reg = _registry()
        sink = TelemetrySink()
        sink.attach(telemetry, record_metrics=False, registry=driver_reg)
        samples = dict(driver_reg.counter("pre_total",
                                          labelnames=("k",)).samples())
        assert ("fresh",) in samples  # child exists for export parity...
        assert samples[("fresh",)].value == 0  # ...but value is canonical

    def test_histogram_deltas_merge_into_driver(self):
        worker_reg = _registry()
        telemetry = self._capture(
            worker_reg,
            body=lambda: worker_reg.histogram(
                "lat_seconds", labelnames=("op",),
                buckets=(0.1, 1.0)).observe(0.5, op="x"))
        driver_reg = _registry()
        sink = TelemetrySink()
        sink.attach(telemetry, record_metrics=False, registry=driver_reg)
        child = driver_reg.histogram("lat_seconds", labelnames=("op",),
                                     buckets=(0.1, 1.0)).labels(op="x")
        assert child.count == 2  # baseline 0.05 + merged 0.5
        assert abs(child.sum - 0.55) < 1e-9

    def test_histogram_merge_skipped_when_registry_disabled(self):
        worker_reg = _registry()
        telemetry = self._capture(
            worker_reg,
            body=lambda: worker_reg.histogram(
                "lat_seconds", labelnames=("op",),
                buckets=(0.1, 1.0)).observe(0.5, op="x"))
        driver_reg = _registry()
        driver_reg.enabled = False
        TelemetrySink().attach(telemetry, record_metrics=False,
                               registry=driver_reg)
        child = driver_reg.histogram("lat_seconds", labelnames=("op",),
                                     buckets=(0.1, 1.0)).labels(op="x")
        assert child.count == 1

    def test_none_telemetry_is_ignored(self):
        sink = TelemetrySink()
        sink.attach(None)
        assert sink.records == []

    def test_spans_summary_and_reset(self):
        reg = MetricsRegistry()
        tracer = Tracer()
        sink = TelemetrySink()
        for unit in (0, 1):
            with capture_telemetry("ingest", unit, registry=reg,
                                   tracer=tracer) as telemetry:
                with tracer.span("work", shard=unit):
                    pass
            sink.attach(telemetry, record_metrics=False, registry=reg)
        pairs = sink.spans()
        assert [(t.unit, s.name) for t, s in pairs] == [(0, "work"),
                                                        (1, "work")]
        assert sink.summary() == {"ingest": {"records": 2, "spans": 2}}
        sink.reset()
        assert sink.spans() == []
        assert sink.summary() == {}

    def test_record_metrics_increments_bookkeeping_counters(self):
        reg = MetricsRegistry()
        tracer = Tracer()
        with capture_telemetry("ingest", 0, registry=reg,
                               tracer=tracer) as telemetry:
            with tracer.span("work"):
                pass
        from repro.obs import instruments
        records_before = instruments.WORKER_TELEMETRY_RECORDS.labels(
            kind="ingest").value
        spans_before = instruments.WORKER_SPANS.labels(kind="ingest").value
        TelemetrySink().attach(telemetry, registry=reg)
        assert instruments.WORKER_TELEMETRY_RECORDS.labels(
            kind="ingest").value == records_before + 1
        assert instruments.WORKER_SPANS.labels(
            kind="ingest").value == spans_before + 1


def test_get_sink_is_process_singleton():
    assert get_sink() is get_sink()

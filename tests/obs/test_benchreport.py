"""bench-report: history loading, trajectory rows, gate verdicts."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.benchreport import (
    DEFAULT_GATES,
    Gate,
    build_rows,
    flatten_numbers,
    host_metadata,
    load_history,
    main,
)

# A BENCH_ingest payload comfortably above every ingest floor.
GOOD_INGEST = {
    "cpu_count": 4,
    "read": {"compiled_rows_per_second": 120_000.0,
             "compiled_over_legacy": 2.0,
             "columnar_rows_per_second": 650_000.0,
             "columnar_over_compiled": 5.0},
    "engine": {"1": {"speedup_vs_serial": 1.5,
                     "rows_per_second": 90_000.0}},
    "serial_legacy": {"rows_per_second": 60_000.0},
}

# A BENCH_e2e payload comfortably inside the wall-clock ceiling.
GOOD_E2E = {
    "pipeline": {"1": {"total_seconds": 2.0, "generate_seconds": 1.0,
                       "ingest_seconds": 0.7, "analyze_seconds": 0.3}},
}


def _write(path, data, mtime=None):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data))
    if mtime is not None:
        os.utime(path, (mtime, mtime))


class TestHostMetadata:
    def test_base_keys_always_present(self):
        meta = host_metadata()
        assert set(meta) == {"cpu_count", "python_version", "platform"}
        assert meta["cpu_count"] == os.cpu_count()

    def test_jobs_keys_only_when_given(self):
        meta = host_metadata(requested_jobs=4, effective_jobs=2)
        assert meta["requested_jobs"] == 4
        assert meta["effective_jobs"] == 2


class TestFlattenNumbers:
    def test_nested_paths_and_bool_exclusion(self):
        flat = flatten_numbers({"a": {"b": 1, "ok": True}, "c": 2.5,
                                "name": "x"})
        assert flat == {"a.b": 1.0, "c": 2.5}


class TestLoadHistory:
    def test_orders_by_mtime_and_skips_junk(self, tmp_path, capsys):
        _write(tmp_path / "old" / "BENCH_ingest.json",
               {"read": {"compiled_rows_per_second": 50_000}}, mtime=1000)
        _write(tmp_path / "BENCH_ingest.json", GOOD_INGEST, mtime=2000)
        (tmp_path / "BENCH_analyze.json").write_text("{not json")
        (tmp_path / "BENCH_unknown_kind.txt").write_text("ignored")
        runs = load_history([str(tmp_path)])
        history = runs["BENCH_ingest"]
        assert [run.numbers["read.compiled_rows_per_second"]
                for run in history] == [50_000.0, 120_000.0]
        assert "BENCH_analyze" not in runs
        assert "skipping" in capsys.readouterr().err

    def test_overlapping_directories_deduplicated(self, tmp_path):
        _write(tmp_path / "sub" / "BENCH_ingest.json", GOOD_INGEST)
        runs = load_history([str(tmp_path), str(tmp_path / "sub")])
        assert len(runs["BENCH_ingest"]) == 1


class TestGateVerdicts:
    def test_default_gates_pass_on_healthy_numbers(self, tmp_path):
        _write(tmp_path / "BENCH_ingest.json", GOOD_INGEST)
        rows = build_rows(load_history([str(tmp_path)]))
        gated = [row for row in rows if row.floor is not None]
        assert len(gated) == 5  # the five ingest floors
        assert all(row.status == "ok" for row in gated)
        assert all(row.margin_pct > 0 for row in gated)

    def test_floor_violation_reproduces_bench_verdict(self, tmp_path):
        bad = json.loads(json.dumps(GOOD_INGEST))
        bad["read"]["compiled_over_legacy"] = 1.1  # bench asserts >= 1.2
        _write(tmp_path / "BENCH_ingest.json", bad)
        rows = build_rows(load_history([str(tmp_path)]))
        by_metric = {row.metric: row for row in rows}
        row = by_metric["read.compiled_over_legacy"]
        assert row.status == "FLOOR"
        assert row.failed

    def test_regression_past_tolerance_flagged(self, tmp_path):
        _write(tmp_path / "old" / "BENCH_ingest.json", GOOD_INGEST,
               mtime=1000)
        slower = json.loads(json.dumps(GOOD_INGEST))
        slower["read"]["compiled_rows_per_second"] = 90_000.0  # -25%
        _write(tmp_path / "BENCH_ingest.json", slower, mtime=2000)
        rows = build_rows(load_history([str(tmp_path)]), tolerance=10.0)
        row = {r.metric: r for r in rows}["read.compiled_rows_per_second"]
        assert row.status == "REGRESSED"  # above floor but dropping fast

    def test_regression_within_tolerance_is_ok(self, tmp_path):
        _write(tmp_path / "old" / "BENCH_ingest.json", GOOD_INGEST,
               mtime=1000)
        slower = json.loads(json.dumps(GOOD_INGEST))
        slower["read"]["compiled_rows_per_second"] = 115_000.0  # ~-4%
        _write(tmp_path / "BENCH_ingest.json", slower, mtime=2000)
        rows = build_rows(load_history([str(tmp_path)]), tolerance=10.0)
        row = {r.metric: r for r in rows}["read.compiled_rows_per_second"]
        assert row.status == "ok"

    def test_ungated_metrics_never_fail(self, tmp_path):
        _write(tmp_path / "old" / "BENCH_ingest.json", GOOD_INGEST,
               mtime=1000)
        slower = json.loads(json.dumps(GOOD_INGEST))
        slower["serial_legacy"]["rows_per_second"] = 10_000.0  # -83%
        _write(tmp_path / "BENCH_ingest.json", slower, mtime=2000)
        rows = build_rows(load_history([str(tmp_path)]))
        row = {r.metric: r for r in rows}["serial_legacy.rows_per_second"]
        assert row.floor is None
        assert row.status == "ok"

    def test_every_default_gate_metric_exists_in_some_kind(self):
        kinds = {gate.bench for gate in DEFAULT_GATES}
        assert kinds <= {"BENCH_ingest", "BENCH_analyze", "BENCH_generate",
                         "BENCH_resilience", "BENCH_e2e"}
        assert all(isinstance(gate, Gate) for gate in DEFAULT_GATES)

    def test_gate_requires_exactly_one_bound(self):
        with pytest.raises(ValueError):
            Gate("BENCH_ingest", "read.x")
        with pytest.raises(ValueError):
            Gate("BENCH_ingest", "read.x", floor=1.0, ceiling=2.0)


class TestCeilingGates:
    def test_healthy_e2e_passes_under_ceiling(self, tmp_path):
        _write(tmp_path / "BENCH_e2e.json", GOOD_E2E)
        rows = build_rows(load_history([str(tmp_path)]))
        gated = [row for row in rows if row.ceiling is not None]
        assert len(gated) == 1
        row = gated[0]
        assert row.metric == "pipeline.1.total_seconds"
        assert row.status == "ok"
        assert row.margin_pct > 0
        assert not row.failed

    def test_ceiling_violation_fails(self, tmp_path):
        slow = json.loads(json.dumps(GOOD_E2E))
        slow["pipeline"]["1"]["total_seconds"] = 12.0  # ceiling is 10.0
        _write(tmp_path / "BENCH_e2e.json", slow)
        rows = build_rows(load_history([str(tmp_path)]))
        row = {r.metric: r for r in rows}["pipeline.1.total_seconds"]
        assert row.status == "CEILING"
        assert row.failed

    def test_ceiling_metric_growing_past_tolerance_regresses(self,
                                                             tmp_path):
        _write(tmp_path / "old" / "BENCH_e2e.json", GOOD_E2E, mtime=1000)
        slower = json.loads(json.dumps(GOOD_E2E))
        slower["pipeline"]["1"]["total_seconds"] = 3.0  # +50%, under cap
        _write(tmp_path / "BENCH_e2e.json", slower, mtime=2000)
        rows = build_rows(load_history([str(tmp_path)]), tolerance=10.0)
        row = {r.metric: r for r in rows}["pipeline.1.total_seconds"]
        assert row.status == "REGRESSED"  # latency grows toward the cap

    def test_check_exits_1_on_ceiling_violation(self, tmp_path, capsys):
        slow = json.loads(json.dumps(GOOD_E2E))
        slow["pipeline"]["1"]["total_seconds"] = 12.0
        _write(tmp_path / "BENCH_e2e.json", slow)
        assert main(["--dir", str(tmp_path), "--check"]) == 1
        out = capsys.readouterr().out
        assert "FAIL BENCH_e2e pipeline.1.total_seconds" in out
        assert "ceiling" in out


class TestMain:
    def test_no_files_exits_2(self, tmp_path, capsys):
        assert main(["--dir", str(tmp_path)]) == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_healthy_history_exits_0_and_prints_table(self, tmp_path,
                                                      capsys):
        _write(tmp_path / "BENCH_ingest.json", GOOD_INGEST)
        assert main(["--dir", str(tmp_path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "Benchmark trajectory" in out
        assert "read.compiled_rows_per_second" in out
        assert "BENCH_ingest: 1 run" in out

    def test_check_exits_1_on_floor_violation(self, tmp_path, capsys):
        bad = json.loads(json.dumps(GOOD_INGEST))
        bad["engine"]["1"]["speedup_vs_serial"] = 1.0  # floor is 1.1
        _write(tmp_path / "BENCH_ingest.json", bad)
        assert main(["--dir", str(tmp_path), "--check"]) == 1
        assert "FAIL BENCH_ingest engine.1.speedup_vs_serial" \
            in capsys.readouterr().out

    def test_without_check_failures_still_exit_0(self, tmp_path):
        bad = json.loads(json.dumps(GOOD_INGEST))
        bad["engine"]["1"]["speedup_vs_serial"] = 1.0
        _write(tmp_path / "BENCH_ingest.json", bad)
        assert main(["--dir", str(tmp_path)]) == 0

    def test_json_output_written(self, tmp_path):
        _write(tmp_path / "BENCH_ingest.json", GOOD_INGEST)
        out = tmp_path / "report.json"
        assert main(["--dir", str(tmp_path), "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        metrics = {row["metric"] for row in payload}
        assert "read.compiled_rows_per_second" in metrics
        assert all(row["status"] == "ok" for row in payload)

"""Metrics registry: counters, gauges, histograms, labels, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    disabled,
    get_registry,
)


@pytest.fixture()
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, reg):
        c = reg.counter("test_events_total", "events")
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labels_create_independent_series(self, reg):
        c = reg.counter("test_hits_total", labelnames=("result",))
        c.inc(result="hit")
        c.inc(3, result="miss")
        assert c.value(result="hit") == 1
        assert c.value(result="miss") == 3

    def test_labels_child_handle_is_cached(self, reg):
        c = reg.counter("test_total", labelnames=("k",))
        assert c.labels(k="a") is c.labels(k="a")

    def test_negative_increment_rejected(self, reg):
        c = reg.counter("test_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_wrong_labelset_rejected(self, reg):
        c = reg.counter("test_total", labelnames=("a",))
        with pytest.raises(ValueError):
            c.inc(b="x")

    def test_missing_series_reads_zero(self, reg):
        c = reg.counter("test_total", labelnames=("a",))
        assert c.value(a="never-touched") == 0.0


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("test_depth")
        g.set(10)
        g.inc(2)
        g.labels().dec(5)
        assert g.value() == 7


class TestHistogram:
    def test_cumulative_buckets(self, reg):
        h = reg.histogram("test_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        child = h.labels()
        assert child.bucket_counts() == [1, 2, 3]
        assert child.count == 4
        assert child.sum == pytest.approx(55.55)

    def test_buckets_are_sorted(self, reg):
        h = reg.histogram("test_seconds", buckets=(10.0, 0.1, 1.0))
        assert h.buckets == (0.1, 1.0, 10.0)

    def test_default_buckets_fixed(self):
        # Deterministic fixed buckets are part of the export contract.
        assert DEFAULT_BUCKETS == tuple(sorted(DEFAULT_BUCKETS))


class TestRegistry:
    def test_get_or_create_returns_same_family(self, reg):
        assert reg.counter("x_total") is reg.counter("x_total")

    def test_kind_conflict_rejected(self, reg):
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_label_conflict_rejected(self, reg):
        reg.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("x_total", labelnames=("b",))

    def test_invalid_names_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok_total", labelnames=("bad-label",))

    def test_reset_zeroes_but_keeps_child_handles_live(self, reg):
        c = reg.counter("x_total", labelnames=("k",))
        child = c.labels(k="a")
        child.inc(5)
        reg.reset()
        assert c.value(k="a") == 0
        child.inc()  # the pre-reset handle must still be wired in
        assert c.value(k="a") == 1

    def test_snapshot_sorted_and_complete(self, reg):
        reg.counter("b_total").inc()
        reg.counter("a_total").inc(2)
        h = reg.histogram("h_seconds", buckets=(1.0,))
        h.observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["a_total", "b_total", "h_seconds"]
        assert snap["a_total"]["samples"][0]["value"] == 2
        assert snap["h_seconds"]["samples"][0]["count"] == 1

    def test_disabled_context(self, reg):
        c = reg.counter("x_total")
        with disabled(reg):
            c.inc(100)
        c.inc()
        assert c.value() == 1

    def test_default_registry_is_singleton(self):
        assert get_registry() is get_registry()


class TestThreadSafety:
    def test_concurrent_increments_are_lossless(self, reg):
        c = reg.counter("x_total", labelnames=("t",))
        h = reg.histogram("h_seconds", buckets=(0.5, 1.0))
        per_thread, threads = 2000, 8

        def work():
            for _ in range(per_thread):
                c.inc(t="shared")
                h.observe(0.25)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert c.value(t="shared") == per_thread * threads
        assert h.labels().count == per_thread * threads

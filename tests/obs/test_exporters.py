"""Exporters: Prometheus text exposition, JSON snapshots, RunReport."""

from __future__ import annotations

import json

from repro.obs.exporters import (
    RunReport,
    render_json,
    render_prometheus,
    write_metrics_file,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("repro_zeek_rows_total", "rows",
                    labelnames=("direction", "path"))
    c.inc(100, direction="read", path="ssl")
    c.inc(40, direction="read", path="x509")
    reg.counter("repro_pipeline_chains_total", "chains").inc(7)
    cache = reg.counter("repro_structure_cache_lookups_total",
                        labelnames=("result",))
    cache.inc(3, result="hit")
    cache.inc(1, result="miss")
    h = reg.histogram("repro_span_duration_seconds", "spans",
                      labelnames=("span",), buckets=(0.1, 1.0))
    h.observe(0.05, span="categorize")
    return reg


class TestPrometheus:
    def test_exposition_structure(self):
        text = render_prometheus(_populated_registry())
        assert "# TYPE repro_zeek_rows_total counter" in text
        assert ('repro_zeek_rows_total{direction="read",path="ssl"} 100'
                in text)
        assert "# TYPE repro_span_duration_seconds histogram" in text
        assert ('repro_span_duration_seconds_bucket{span="categorize",'
                'le="0.1"} 1') in text
        assert ('repro_span_duration_seconds_bucket{span="categorize",'
                'le="+Inf"} 1') in text
        assert 'repro_span_duration_seconds_count{span="categorize"} 1' in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("p",)).inc(p='a"b\\c')
        text = render_prometheus(reg)
        assert 'p="a\\"b\\\\c"' in text

    def test_label_newline_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("p",)).inc(p="line1\nline2")
        text = render_prometheus(reg)
        assert 'p="line1\\nline2"' in text
        # Exactly one sample line for the family: the raw newline must
        # not have split the exposition line in two.
        sample_lines = [line for line in text.splitlines()
                        if line.startswith("x_total{")]
        assert len(sample_lines) == 1

    def test_label_escaping_all_specials_combined(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("p",)).inc(p='a\\b"c\nd')
        text = render_prometheus(reg)
        assert 'p="a\\\\b\\"c\\nd"' in text

    def test_deterministic_ordering(self):
        assert (render_prometheus(_populated_registry())
                == render_prometheus(_populated_registry()))


class TestJson:
    def test_round_trips_through_json(self):
        data = json.loads(render_json(_populated_registry()))
        assert data["repro_pipeline_chains_total"]["samples"][0]["value"] == 7

    def test_write_metrics_file_picks_format(self, tmp_path):
        reg = _populated_registry()
        prom = tmp_path / "m.prom"
        js = tmp_path / "m.json"
        write_metrics_file(str(prom), reg)
        write_metrics_file(str(js), reg)
        assert prom.read_text().startswith("# ")
        assert json.loads(js.read_text())


class TestRunReport:
    def test_collect_derives_throughput_and_cache(self):
        reg = _populated_registry()
        tracer = Tracer()
        with tracer.span("zeek_read"):
            pass
        with tracer.span("analyze_chains"):
            pass
        report = RunReport.collect(registry=reg, tracer=tracer,
                                   version="1.2.3", argv=["-e", "table2"])
        assert report.version == "1.2.3"
        assert report.throughput["zeek_rows_read"] == 140
        assert report.throughput["chains_analyzed"] == 7
        assert report.cache["structure_cache_hit_rate"] == 0.75
        assert "zeek_read" in report.stages
        data = json.loads(report.to_json())
        assert data["argv"] == ["-e", "table2"]
        assert data["metrics"]["repro_pipeline_chains_total"]

    def test_empty_registry_yields_zeroes_not_errors(self):
        report = RunReport.collect(registry=MetricsRegistry(),
                                   tracer=Tracer())
        assert report.throughput["zeek_rows_read"] == 0
        assert report.cache["structure_cache_hit_rate"] == 0.0

    def test_write_and_summary_lines(self, tmp_path):
        reg = _populated_registry()
        tracer = Tracer()
        with tracer.span("categorize"):
            pass
        report = RunReport.collect(registry=reg, tracer=tracer)
        path = tmp_path / "report.json"
        report.write(str(path))
        assert json.loads(path.read_text())["cache"]
        lines = report.summary_lines()
        assert any(line.startswith("stage categorize:") for line in lines)
        assert any("structure cache hit rate: 75.0%" == line
                   for line in lines)

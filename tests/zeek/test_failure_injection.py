"""Failure injection: malformed logs, hostile rows, round-trip properties."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.zeek.format import ZeekLogReader
from repro.zeek.records import SSLRecord, X509Record


class TestReaderFailures:
    def _read(self, text):
        return list(ZeekLogReader(io.StringIO(text)))

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError, match="before #fields"):
            self._read("1.0\tCabc\n")

    def test_column_count_mismatch_rejected(self):
        text = ("#fields\ta\tb\n#types\tstring\tstring\n"
                "only-one-column\n")
        with pytest.raises(ValueError, match="columns"):
            self._read(text)

    def test_blank_lines_tolerated(self):
        text = ("#fields\ta\n#types\tcount\n\n1\n\n2\n")
        rows = self._read(text)
        assert [r["a"] for r in rows] == [1, 2]

    def test_close_footer_ignored(self):
        text = ("#fields\ta\n#types\tcount\n1\n#close\t2021-01-01\n")
        assert len(self._read(text)) == 1

    def test_non_numeric_count_raises(self):
        text = "#fields\ta\n#types\tcount\nnot-a-number\n"
        with pytest.raises(ValueError):
            self._read(text)


class TestRecordRowRoundTrip:
    def test_ssl_record(self):
        record = SSLRecord(
            ts=1_600_000_000.5, uid="Cxyz", id_orig_h="10.0.0.1",
            id_orig_p=51234, id_resp_h="203.0.113.5", id_resp_p=8443,
            version="TLSv12", server_name="x.example", established=True,
            cert_chain_fps=("aa", "bb"), resumed=False,
            validation_status="ok")
        row = dict(zip(SSLRecord.FIELDS, record.to_row()))
        assert SSLRecord.from_row(row) == record

    def test_ssl_record_without_sni(self):
        record = SSLRecord(
            ts=1.0, uid="C", id_orig_h="h", id_orig_p=1, id_resp_h="h2",
            id_resp_p=2, version="TLSv12", server_name=None,
            established=False, cert_chain_fps=())
        row = dict(zip(SSLRecord.FIELDS, record.to_row()))
        rebuilt = SSLRecord.from_row(row)
        assert rebuilt.server_name is None
        assert rebuilt.cert_chain_fps == ()

    def test_x509_record(self):
        record = X509Record(
            ts=2.0, fingerprint="ff", certificate_version=3,
            certificate_serial="01ab", certificate_subject="CN=s",
            certificate_issuer="CN=i", certificate_not_valid_before=1.0,
            certificate_not_valid_after=9.0, certificate_key_alg="rsa",
            certificate_sig_alg="sha256WithRSAEncryption",
            certificate_key_length=2048, san_dns=("a.example",),
            basic_constraints_ca=None, basic_constraints_path_len=None)
        row = dict(zip(X509Record.FIELDS, record.to_row()))
        rebuilt = X509Record.from_row(row)
        assert rebuilt == record
        assert rebuilt.basic_constraints_ca is None  # tri-state survives


_FP = st.text(alphabet="0123456789abcdef", min_size=4, max_size=16)


@settings(max_examples=60, deadline=None)
@given(
    ts=st.floats(min_value=0, max_value=2e9, allow_nan=False),
    port=st.integers(0, 65535),
    established=st.booleans(),
    fps=st.lists(_FP, max_size=5),
    sni=st.one_of(st.none(), st.from_regex(r"[a-z]{1,12}\.example",
                                           fullmatch=True)),
)
def test_property_ssl_record_round_trip(ts, port, established, fps, sni):
    record = SSLRecord(
        ts=ts, uid="Cprop", id_orig_h="10.0.0.1", id_orig_p=port,
        id_resp_h="203.0.113.9", id_resp_p=port, version="TLSv12",
        server_name=sni, established=established,
        cert_chain_fps=tuple(fps))
    row = dict(zip(SSLRecord.FIELDS, record.to_row()))
    rebuilt = SSLRecord.from_row(row)
    assert rebuilt.cert_chain_fps == tuple(fps)
    assert rebuilt.established is established
    assert rebuilt.server_name == sni


class TestHostileDNStrings:
    """DN strings as they might appear in real, messy X509 logs."""

    @pytest.mark.parametrize("text", [
        "CN=*.example.com,O=Acme\\, Inc.,C=US",
        "emailAddress=webmaster@localhost,CN=localhost,OU=none,O=none,"
        "L=Sometown,ST=Someprovince,C=US",
        "CN=has=equals,O=Org",
        "serialNumber=1234,CN=device",
        "DC=com,DC=example,CN=ldap-style",
    ])
    def test_parse_and_round_trip(self, text):
        from repro.x509.dn import DistinguishedName
        dn = DistinguishedName.parse(text)
        assert DistinguishedName.parse(dn.rfc4514()) == dn

    def test_equals_in_value(self):
        from repro.x509.dn import DistinguishedName
        dn = DistinguishedName.parse("CN=has=equals,O=Org")
        assert dn.common_name == "has=equals"

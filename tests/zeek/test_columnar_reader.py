"""Columnar reader equivalence: byte-for-byte parity with the row readers.

The struct-of-arrays reader promises *identical observable behavior* to
the legacy and compiled per-line readers — same row dicts, same
quarantine ``file:line`` records under fault plans, same strict-mode
errors.  These tests drive all three readers over the same generated
files (hand-built corners plus Hypothesis-generated tables) and compare
everything.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultInjector, FaultPlan
from repro.resilience import Quarantine
from repro.zeek import ZeekFormatError
from repro.zeek.columnar import InternTable, read_zeek_log_columnar
from repro.zeek.format import read_zeek_log

HEADER = (
    "#separator \\x09\n"
    "#set_separator\t,\n"
    "#empty_field\t(empty)\n"
    "#unset_field\t-\n"
    "#path\tssl\n"
    "#fields\tts\tuid\tid.resp_p\tserver_name\testablished"
    "\tcert_chain_fps\n"
    "#types\ttime\tstring\tport\tstring\tbool\tvector[string]\n"
)


def _row(ts="1453939200.000000", uid="C1", port="443",
         name="example.com", est="T", fps="aa,bb"):
    return f"{ts}\t{uid}\t{port}\t{name}\t{est}\t{fps}\n"


def _write(tmp_path, text, name="ssl.log"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def _read_all_three(path, **kwargs):
    columnar = read_zeek_log_columnar(
        path, quarantine=kwargs.get("quarantine"),
        faults=kwargs.get("faults")).to_rows()
    compiled = read_zeek_log(path, compiled=True, **kwargs)[1]
    legacy = read_zeek_log(path, compiled=False, **kwargs)[1]
    return columnar, compiled, legacy


def _assert_parity(tmp_path, text):
    path = _write(tmp_path, text)
    columnar, compiled, legacy = _read_all_three(path)
    assert columnar == compiled == legacy
    return columnar


class TestRowParity:
    def test_typed_values_match_row_readers(self, tmp_path):
        rows = _assert_parity(tmp_path, HEADER + _row() + _row(
            ts="1453939201.500000", uid="C2", port="8443",
            name="example.org", est="F", fps="cc"))
        assert rows[0]["ts"] == 1453939200.0
        assert rows[0]["id.resp_p"] == 443
        assert rows[0]["established"] is True
        assert rows[0]["cert_chain_fps"] == ["aa", "bb"]
        assert rows[1]["established"] is False

    def test_unset_and_empty_sentinels(self, tmp_path):
        rows = _assert_parity(
            tmp_path,
            HEADER + _row(ts="-", uid="-", port="-", name="-", est="-",
                          fps="-") + _row(name="(empty)", fps="(empty)"))
        assert rows[0] == {"ts": None, "uid": None, "id.resp_p": None,
                           "server_name": None, "established": None,
                           "cert_chain_fps": None}
        assert rows[1]["server_name"] == ""
        assert rows[1]["cert_chain_fps"] == []

    def test_escaped_separators_in_cells(self, tmp_path):
        rows = _assert_parity(
            tmp_path, HEADER + _row(name="tab\\x09here", fps="nl\\x0athere"))
        assert rows[0]["server_name"] == "tab\there"
        assert rows[0]["cert_chain_fps"] == ["nl\nthere"]

    def test_mid_file_header_relabel(self, tmp_path):
        # A second #path/#fields block mid-file: segments must break and
        # the final table.path must report the last seen label.
        text = (HEADER + _row()
                + "#path\tssl-renamed\n"
                + "#fields\tts\tuid\n#types\ttime\tstring\n"
                + "1453939300.000000\tC9\n")
        path = _write(tmp_path, text)
        table = read_zeek_log_columnar(path)
        assert table.path == "ssl-renamed"
        assert table.to_rows() == read_zeek_log(path)[1]
        assert [s.fields for s in table.segments] == [
            ("ts", "uid", "id.resp_p", "server_name", "established",
             "cert_chain_fps"),
            ("ts", "uid")]

    def test_blank_lines_and_footer(self, tmp_path):
        _assert_parity(tmp_path, HEADER + _row() + "\n" + _row(uid="C2")
                       + "#close\t2016-01-28-00-00-01\n")

    def test_no_trailing_newline(self, tmp_path):
        _assert_parity(tmp_path, HEADER + _row() + _row(uid="C2").rstrip("\n"))

    def test_carriage_returns_fall_back_to_text_scan(self, tmp_path):
        text = HEADER.replace("\n", "\r\n") + _row().replace("\n", "\r\n")
        path = _write(tmp_path, text)
        table = read_zeek_log_columnar(path)
        assert table.to_rows() == read_zeek_log(path)[1]
        assert table.stats.vector_rows == 0  # \r forces the line path

    def test_non_ascii_cells(self, tmp_path):
        _assert_parity(tmp_path, HEADER + _row(name="münchen.example"))

    def test_empty_file(self, tmp_path):
        path = _write(tmp_path, "")
        table = read_zeek_log_columnar(path)
        assert table.rows == 0 and table.to_rows() == []

    def test_wide_and_negative_numerics(self, tmp_path):
        # Wider than the gather path handles, plus int("-5") parity.
        header = ("#path\tx\n#fields\ta\tb\n#types\tcount\tint\n")
        text = header + f"{10**30}\t-5\n" + "7\t8\n"
        rows = _assert_parity(tmp_path, text)
        assert rows[0] == {"a": 10 ** 30, "b": -5}


class TestQuarantineParity:
    def _quarantines(self, path, faults_plan=None):
        results = []
        for read in (
                lambda q, f: read_zeek_log_columnar(
                    path, quarantine=q, faults=f).to_rows(),
                lambda q, f: read_zeek_log(path, quarantine=q, faults=f,
                                           compiled=True)[1],
                lambda q, f: read_zeek_log(path, quarantine=q, faults=f,
                                           compiled=False)[1]):
            quarantine = Quarantine()
            faults = (FaultInjector(FaultPlan(**faults_plan))
                      if faults_plan else None)
            rows = read(quarantine, faults)
            results.append((rows, [(r.source, r.line, r.reason, r.raw)
                                   for r in quarantine.records]))
        return results

    def test_bad_rows_quarantine_identical_file_lines(self, tmp_path):
        text = (HEADER + _row() + "too\tfew\n"
                + _row(ts="not-a-time") + _row(uid="C4"))
        path = _write(tmp_path, text)
        columnar, compiled, legacy = self._quarantines(path)
        assert columnar == compiled == legacy
        rows, records = columnar
        assert [r["uid"] for r in rows] == ["C1", "C4"]
        assert [(line, reason) for _, line, reason, _ in records] == [
            (9, "column-count"), (10, "field-parse")]
        assert all(source == path for source, *_ in records)

    def test_corruption_fault_plan_parity(self, tmp_path):
        path = _write(tmp_path, HEADER + _row(uid=f"C{'x' * 40}") * 50)
        plan = {"seed": "columnar-chaos", "zeek_corrupt_rate": 0.3}
        columnar, compiled, legacy = self._quarantines(path, plan)
        assert columnar == compiled == legacy
        rows, records = columnar
        assert rows and records  # both outcomes occur at 30%

    def test_strict_mode_error_parity(self, tmp_path):
        path = _write(tmp_path, HEADER + _row() + "short\trow\n")
        errors = []
        for read in (lambda: read_zeek_log_columnar(path),
                     lambda: read_zeek_log(path, compiled=True),
                     lambda: read_zeek_log(path, compiled=False)):
            with pytest.raises(ZeekFormatError) as excinfo:
                read()
            errors.append((excinfo.value.source, excinfo.value.line,
                           excinfo.value.reason))
        assert errors[0] == errors[1] == errors[2]
        assert errors[0][1] == 9


class TestInternAndProjection:
    def test_interned_column_materializes_identically(self, tmp_path):
        path = _write(tmp_path, HEADER + _row() + _row(uid="C2")
                      + _row(uid="C3", name="other.example"))
        plain = read_zeek_log_columnar(path).to_rows()
        interned = read_zeek_log_columnar(
            path, intern=("server_name", "cert_chain_fps"))
        assert interned.to_rows() == plain
        column = interned.segments[0].columns["server_name"]
        assert isinstance(column.table, InternTable)
        assert len(column.ids) == 3
        assert len(column.table.values) == 2  # two distinct names
        assert interned.stats.interns["server_name"] == (3, 2)

    def test_projection_keeps_quarantine_parity(self, tmp_path):
        # ts stays failable even when projected away: the bad row must
        # quarantine exactly as if every column were materialised.
        text = HEADER + _row() + _row(ts="bogus") + _row(uid="C3")
        path = _write(tmp_path, text)
        quarantine = Quarantine()
        table = read_zeek_log_columnar(path, quarantine=quarantine,
                                       project=("uid",))
        assert table.to_rows() == [{"uid": "C1"}, {"uid": "C3"}]
        assert [(r.line, r.reason) for r in quarantine.records] == [
            (9, "field-parse")]


# -- Hypothesis: generated tables of every column type ---------------------

_names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz.-", min_size=1,
                 max_size=20).filter(
    lambda s: s not in ("-", "(empty)") and not s.startswith("#"))
_counts = st.integers(min_value=0, max_value=10 ** 20)
_times = st.integers(min_value=0, max_value=2 ** 54).map(
    lambda n: f"{n // 10 ** 6}.{n % 10 ** 6:06d}")
_bools = st.sampled_from(["T", "F", "-"])
_vectors = st.lists(_names, min_size=1, max_size=3).map(",".join)


@st.composite
def _tables(draw):
    rows = draw(st.lists(
        st.tuples(_times, _names, _counts, _bools, _vectors),
        min_size=1, max_size=30))
    unset = draw(st.sets(st.integers(0, 4)))
    lines = []
    for ts, name, count, flag, vec in rows:
        cells = [ts, name, str(count), flag, vec]
        for index in unset:
            cells[index] = "-"
        lines.append("\t".join(cells) + "\n")
    header = ("#path\tgen\n"
              "#fields\tts\tname\tseen\tok\ttags\n"
              "#types\ttime\tstring\tcount\tbool\tvector[string]\n")
    return header + "".join(lines)


class TestGeneratedParity:
    @settings(max_examples=40, deadline=None)
    @given(text=_tables())
    def test_generated_tables_read_identically(self, text, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("columnar-prop")
        path = _write(tmp_path, text)
        columnar, compiled, legacy = _read_all_three(path)
        assert columnar == compiled == legacy

"""Zeek ASCII log format: render/parse round trips."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, strategies as st

from repro.zeek.format import ZeekLogReader, ZeekLogWriter, read_zeek_log, write_zeek_log

FIELDS = ("ts", "uid", "id.orig_h", "id.resp_p", "established", "tags", "note")
TYPES = ("time", "string", "addr", "port", "bool", "vector[string]", "string")


def _round_trip(rows):
    buffer = io.StringIO()
    with ZeekLogWriter(buffer, "test", FIELDS, TYPES) as writer:
        for row in rows:
            writer.write_row(row)
    buffer.seek(0)
    reader = ZeekLogReader(buffer)
    return reader, list(reader)


class TestWriter:
    def test_header_contains_fields_and_types(self):
        buffer = io.StringIO()
        ZeekLogWriter(buffer, "ssl", FIELDS, TYPES)
        text = buffer.getvalue()
        assert "#separator \\x09" in text
        assert "#path\tssl" in text
        assert "#fields\t" + "\t".join(FIELDS) in text
        assert "#types\t" + "\t".join(TYPES) in text

    def test_close_appends_footer(self):
        buffer = io.StringIO()
        with ZeekLogWriter(buffer, "ssl", FIELDS, TYPES):
            pass
        assert buffer.getvalue().rstrip().splitlines()[-1].startswith("#close")

    def test_write_after_close_rejected(self):
        buffer = io.StringIO()
        writer = ZeekLogWriter(buffer, "ssl", FIELDS, TYPES)
        writer.close()
        with pytest.raises(ValueError):
            writer.write_row([0.0, "u", "1.2.3.4", 443, True, [], ""])

    def test_wrong_arity_rejected(self):
        buffer = io.StringIO()
        writer = ZeekLogWriter(buffer, "ssl", FIELDS, TYPES)
        with pytest.raises(ValueError):
            writer.write_row([1, 2])

    def test_mismatched_header_lengths_rejected(self):
        with pytest.raises(ValueError):
            ZeekLogWriter(io.StringIO(), "x", ("a",), ("string", "bool"))


class TestRoundTrip:
    def test_basic_row(self):
        reader, rows = _round_trip([
            [1600000000.25, "Cabc", "10.0.0.1", 443, True, ["a", "b"], "hi"],
        ])
        assert reader.path == "test"
        row = rows[0]
        assert row["ts"] == pytest.approx(1600000000.25)
        assert row["uid"] == "Cabc"
        assert row["id.resp_p"] == 443
        assert row["established"] is True
        assert row["tags"] == ["a", "b"]

    def test_unset_fields(self):
        _, rows = _round_trip([[1.0, None, "10.0.0.1", 443, False, None, None]])
        assert rows[0]["uid"] is None
        assert rows[0]["tags"] is None

    def test_empty_string_and_empty_vector(self):
        _, rows = _round_trip([[1.0, "u", "10.0.0.1", 1, True, [], ""]])
        assert rows[0]["tags"] == []
        assert rows[0]["note"] == ""

    def test_tab_in_string_escaped(self):
        _, rows = _round_trip([[1.0, "u", "h", 1, True, [], "a\tb"]])
        assert rows[0]["note"] == "a\tb"

    def test_bool_false(self):
        _, rows = _round_trip([[1.0, "u", "h", 1, False, [], "x"]])
        assert rows[0]["established"] is False

    def test_multiple_rows_order_preserved(self):
        _, rows = _round_trip([
            [float(i), f"u{i}", "h", i, True, [], ""] for i in range(5)
        ])
        assert [r["uid"] for r in rows] == [f"u{i}" for i in range(5)]


class TestFileHelpers:
    def test_write_and_read_file(self, tmp_path):
        path = str(tmp_path / "ssl.log")
        count = write_zeek_log(path, "ssl", FIELDS, TYPES, [
            [1.0, "u1", "10.0.0.1", 443, True, ["t"], "n"],
            [2.0, "u2", "10.0.0.2", 8443, False, [], ""],
        ])
        assert count == 2
        reader, rows = read_zeek_log(path)
        assert reader.path == "ssl"
        assert len(rows) == 2
        assert rows[1]["id.resp_p"] == 8443


_PRINTABLE = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
    max_size=40,
)


@given(
    ts=st.floats(min_value=0, max_value=2e9, allow_nan=False),
    uid=_PRINTABLE.filter(lambda s: s not in ("-", "(empty)")),
    port=st.integers(0, 65535),
    flag=st.booleans(),
    tags=st.lists(_PRINTABLE.filter(
        lambda s: s and "," not in s and s not in ("-", "(empty)")), max_size=4),
    note=_PRINTABLE.filter(lambda s: s != "-"),
)
def test_property_round_trip(ts, uid, port, flag, tags, note):
    _, rows = _round_trip([[ts, uid or None, "10.0.0.1", port, flag,
                            tags, note if note != "(empty)" else "x"]])
    row = rows[0]
    assert row["ts"] == pytest.approx(ts, abs=1e-6)
    assert row["uid"] == (uid or None)
    assert row["id.resp_p"] == port
    assert row["established"] is flag
    assert row["tags"] == tags

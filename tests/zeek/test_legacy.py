"""Legacy Zeek (ssl → files → x509) conversion and three-way join."""

from __future__ import annotations

import pytest

from repro.campus import cached_campus_dataset
from repro.core.chain import aggregate_chains
from repro.zeek.legacy import (
    FilesRecord,
    fuid_for,
    join_legacy_logs,
    to_legacy_logs,
)
from repro.zeek.tap import join_logs


@pytest.fixture(scope="module")
def dataset():
    return cached_campus_dataset(seed=5, scale="small")


@pytest.fixture(scope="module")
def legacy(dataset):
    return to_legacy_logs(dataset.ssl_records, dataset.x509_records)


class TestConversion:
    def test_fuid_deterministic_and_distinct(self):
        a = fuid_for("Cuid", "ff00", 0)
        assert a == fuid_for("Cuid", "ff00", 0)
        assert a != fuid_for("Cuid", "ff00", 1)
        assert a != fuid_for("Cother", "ff00", 0)
        assert a.startswith("F")

    def test_one_files_row_per_transfer(self, dataset, legacy):
        _, files, _ = legacy
        transfers = sum(len(r.cert_chain_fps) for r in dataset.ssl_records)
        assert len(files) == transfers

    def test_legacy_x509_keyed_by_fuid(self, legacy):
        legacy_ssl, files, legacy_x509 = legacy
        fuids = {f.fuid for f in files}
        assert all(record.fingerprint in fuids for record in legacy_x509)

    def test_mime_types(self, legacy):
        legacy_ssl, files, _ = legacy
        by_fuid = {f.fuid: f for f in files}
        for ssl in legacy_ssl:
            if not ssl.cert_chain_fps:
                continue
            assert by_fuid[ssl.cert_chain_fps[0]].mime_type == \
                "application/x-x509-user-cert"
            for fuid in ssl.cert_chain_fps[1:]:
                assert by_fuid[fuid].mime_type == \
                    "application/x-x509-ca-cert"

    def test_files_row_round_trip(self, legacy):
        _, files, _ = legacy
        record = files[0]
        row = dict(zip(FilesRecord.FIELDS, record.to_row()))
        assert FilesRecord.from_row(row) == record


class TestThreeWayJoin:
    def test_join_equals_modern_join(self, dataset, legacy):
        """Legacy conversion and re-join must reproduce the modern join's
        chains exactly — the analyzer is generation-agnostic."""
        modern = aggregate_chains(
            join_logs(dataset.ssl_records, dataset.x509_records))
        rejoined = aggregate_chains(
            join_legacy_logs(*legacy))
        assert set(modern) == set(rejoined)
        for key, chain in modern.items():
            other = rejoined[key]
            assert other.usage.connections == chain.usage.connections
            assert other.usage.client_ips == chain.usage.client_ips

    def test_lost_files_rows_fall_back_to_fuid(self, legacy):
        legacy_ssl, files, legacy_x509 = legacy
        joined = join_legacy_logs(legacy_ssl, [], legacy_x509)
        with_chain = [j for j in joined if j.chain]
        assert with_chain  # the x509 fallback path still resolves chains

    def test_strict_mode_raises_on_dangling_fuid(self, legacy):
        legacy_ssl, files, legacy_x509 = legacy
        with pytest.raises(KeyError):
            join_legacy_logs(legacy_ssl, [], [], strict=True)

    def test_zeek_file_round_trip(self, legacy, tmp_path):
        """Legacy triple written to Zeek ASCII files and parsed back."""
        from repro.zeek.format import read_zeek_log, write_zeek_log
        from repro.zeek.records import SSLRecord, X509Record
        legacy_ssl, files, legacy_x509 = legacy
        paths = {
            "ssl": str(tmp_path / "ssl.log"),
            "files": str(tmp_path / "files.log"),
            "x509": str(tmp_path / "x509.log"),
        }
        write_zeek_log(paths["ssl"], "ssl", SSLRecord.FIELDS,
                       SSLRecord.TYPES, (r.to_row() for r in legacy_ssl))
        write_zeek_log(paths["files"], "files", FilesRecord.FIELDS,
                       FilesRecord.TYPES, (r.to_row() for r in files))
        write_zeek_log(paths["x509"], "x509", X509Record.FIELDS,
                       X509Record.TYPES, (r.to_row() for r in legacy_x509))
        _, ssl_rows = read_zeek_log(paths["ssl"])
        _, files_rows = read_zeek_log(paths["files"])
        _, x509_rows = read_zeek_log(paths["x509"])
        joined = join_legacy_logs(
            [SSLRecord.from_row(r) for r in ssl_rows],
            [FilesRecord.from_row(r) for r in files_rows],
            [X509Record.from_row(r) for r in x509_rows],
        )
        original = aggregate_chains(join_legacy_logs(*legacy))
        reparsed = aggregate_chains(joined)
        assert set(original) == set(reparsed)

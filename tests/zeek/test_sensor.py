"""Border sensor: DPD gating of mixed raw traffic."""

from __future__ import annotations

import random

import pytest

from repro.campus import SMALL_SCALE, WorkloadGenerator
from repro.campus.spec import ChainSpec, ClientMix
from repro.zeek.sensor import (
    BorderSensor,
    RawFlow,
    dns_query_bytes,
    http_request_bytes,
    ssh_banner_bytes,
)
from repro.x509 import CertificateFactory, name


@pytest.fixture()
def tls_flows(registry):
    factory = CertificateFactory(seed=91)
    cert = factory.self_signed(name("sensor.example"))
    spec = ChainSpec(
        chain=(cert,), hostname="sensor.example", category_truth="nonpub",
        mix=ClientMix(permissive=1.0), port_model="nonpub_single",
        mean_connections=20, sni_rate=0.5, server_id="srv-sensor",
        client_pool="nonpub")
    generator = WorkloadGenerator(registry, seed=6, scale=SMALL_SCALE)
    return [RawFlow.from_connection(record)
            for record in generator.generate_for_spec(spec)]


class TestBorderSensor:
    def test_tls_flows_logged(self, tls_flows):
        sensor = BorderSensor()
        logged = sensor.process_all(tls_flows)
        assert logged == len(tls_flows)
        assert len(sensor.tap.ssl_records) == len(tls_flows)
        assert sensor.tls_share == 1.0

    def test_noise_skipped_regardless_of_port(self, tls_flows):
        noise = [RawFlow(http_request_bytes()),
                 RawFlow(ssh_banner_bytes()),
                 RawFlow(dns_query_bytes())]
        rng = random.Random(1)
        mixed = list(tls_flows) + noise * 5
        rng.shuffle(mixed)
        sensor = BorderSensor()
        sensor.process_all(mixed)
        assert sensor.tls_flows == len(tls_flows)
        assert sensor.skipped_flows == 15
        assert len(sensor.tap.ssl_records) == len(tls_flows)

    def test_tls_bytes_without_connection_skipped(self):
        # DPD fires on the bytes but there is no handshake to log (e.g. the
        # capture started mid-flow): the sensor counts it as skipped.
        from repro.zeek.dpd import client_hello_bytes
        sensor = BorderSensor()
        assert not sensor.process(RawFlow(client_hello_bytes()))
        assert sensor.skipped_flows == 1

    def test_share_empty(self):
        assert BorderSensor().tls_share == 0.0

    def test_wire_sni_agrees_with_records(self, tls_flows):
        """SNI parsed from flow bytes matches the handshake record on
        every flow — the wire encoding self-check."""
        sensor = BorderSensor()
        sensor.process_all(tls_flows)
        assert sensor.sni_mismatches == 0

    def test_sni_recoverable_from_bytes(self, tls_flows):
        from repro.tls.wire import extract_sni
        with_sni = [f for f in tls_flows if f.connection.sni]
        assert with_sni
        for flow in with_sni:
            assert extract_sni(flow.payload) == flow.connection.sni

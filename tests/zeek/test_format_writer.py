"""Compiled row renderers vs the legacy writer: identical bytes.

The compiled write path (exec-generated per-header renderer + buffered
block writes) must be observationally indistinguishable from the
original per-value ``_render`` loop: same bytes for every type and edge
value, same arity errors with the same message, same row metrics —
only faster.
"""

from __future__ import annotations

import io
from datetime import datetime, timezone

import pytest

from repro.obs import instruments
from repro.obs.metrics import get_registry
from repro.zeek import format as zformat
from repro.zeek.format import ZeekLogWriter, write_zeek_log

FIELDS = ["ts", "uid", "port", "ratio", "ok", "name", "sans"]
TYPES = ["time", "string", "port", "double", "bool", "string",
         "vector[string]"]
OPEN_TIME = datetime(2021, 2, 15, tzinfo=timezone.utc)

EDGE_ROWS = [
    [1453939200.0, "C1", 443, 0.5, True, "example.com", ["a.com", "b.com"]],
    [1453939201.5, "C2", 8443, None, False, None, []],
    [1453939202.25, "C3", 443, 1.25, None, "", ["", None]],
    [1453939203.125, "C4", 443, 0.0, True, "(empty)", ["(empty)"]],
    [1453939204.0, "C5", 443, 1e-9, True, "tab\there\nline", ["x\ty", "-"]],
    [1453939205.0, "C6", 443, 123456.789, True, "-", ["a,b"]],
]


def _written(compiled: bool, rows=EDGE_ROWS) -> str:
    stream = io.StringIO()
    with ZeekLogWriter(stream, "ssl", FIELDS, TYPES, open_time=OPEN_TIME,
                       compiled=compiled) as writer:
        for row in rows:
            writer.write_row(row)
    return stream.getvalue()


class TestRendererParity:
    def test_edge_values_render_identically(self):
        assert _written(True) == _written(False)

    def test_single_row_no_buffer_boundary_artifacts(self):
        for row in EDGE_ROWS:
            assert _written(True, [row]) == _written(False, [row])

    def test_empty_log_identical(self):
        assert _written(True, []) == _written(False, [])

    def test_buffer_flush_boundary_exact(self, monkeypatch):
        """Rows crossing the flush threshold land in order, once."""
        monkeypatch.setattr(zformat, "_WRITE_BUFFER_LINES", 3)
        rows = [[float(i), f"C{i}", 443, 0.5, True, "h", []]
                for i in range(10)]
        assert _written(True, rows) == _written(False, rows)

    def test_wrong_arity_same_error_message(self):
        for compiled in (False, True):
            stream = io.StringIO()
            writer = ZeekLogWriter(stream, "ssl", FIELDS, TYPES,
                                   open_time=OPEN_TIME, compiled=compiled)
            with pytest.raises(ValueError) as excinfo:
                writer.write_row([1.0, "C1"])
            assert "row has 2 values; log has 7 fields" in str(excinfo.value)

    def test_write_zeek_log_both_modes_identical(self, tmp_path):
        paths = {}
        for compiled in (False, True):
            path = tmp_path / f"out-{compiled}.log"
            write_zeek_log(str(path), "ssl", FIELDS, TYPES, EDGE_ROWS,
                           open_time=OPEN_TIME, compiled=compiled)
            paths[compiled] = path.read_text()
        assert paths[True] == paths[False]

    def test_renderer_cache_reused_per_header(self):
        zformat._RENDERER_CACHE.clear()
        _written(True)
        assert len(zformat._RENDERER_CACHE) == 1
        _written(True)
        assert len(zformat._RENDERER_CACHE) == 1


class TestWriteMetrics:
    def test_row_counter_identical_both_modes(self):
        counts = {}
        for compiled in (False, True):
            get_registry().reset()
            _written(compiled)
            counts[compiled] = instruments.ZEEK_ROWS.value(
                direction="written", path="ssl")
        assert counts[True] == counts[False] == len(EDGE_ROWS)

    def test_buffered_rows_counted_on_close(self, monkeypatch):
        """The compiled path defers the metric to flush time; nothing may
        be lost when close() drains a partial buffer."""
        monkeypatch.setattr(zformat, "_WRITE_BUFFER_LINES", 4)
        get_registry().reset()
        _written(True)  # 6 rows: one full flush + a partial at close
        assert instruments.ZEEK_ROWS.value(
            direction="written", path="ssl") == len(EDGE_ROWS)

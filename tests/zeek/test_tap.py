"""Monitoring tap, record reconstruction, and SSL↔X509 joining."""

from __future__ import annotations

from datetime import datetime, timezone

import pytest

from repro.tls import (
    HandshakeSimulator,
    PermissivePolicy,
    TLSClient,
    TLSServer,
)
from repro.x509 import CertificateFactory, name
from repro.zeek import (
    MonitoringTap,
    join_logs,
    reconstruct_certificate,
    x509_record_from_certificate,
)
from repro.zeek.dpd import client_hello_bytes, looks_like_tls, sniff_version
from repro.tls.messages import TLSVersion


@pytest.fixture()
def observed(pki):
    factory = CertificateFactory(seed=31)
    r3 = pki.ca("lets_encrypt").intermediates["R3"]
    leaf = factory.leaf(r3, name("lib.campus.edu"), dns_names=["lib.campus.edu"])
    server = TLSServer("198.51.100.9", 443, (leaf, r3.certificate))
    sim = HandshakeSimulator(seed=2)
    client = TLSClient("10.9.8.7", policy=PermissivePolicy())
    when = datetime(2021, 1, 5, tzinfo=timezone.utc)
    tap = MonitoringTap()
    for _ in range(3):
        tap.observe(sim.connect(client, server, sni="lib.campus.edu",
                                when=when).record)
    return tap, leaf, r3.certificate


class TestTap:
    def test_ssl_rows_per_connection(self, observed):
        tap, *_ = observed
        assert len(tap.ssl_records) == 3

    def test_x509_deduplicated(self, observed):
        tap, *_ = observed
        assert len(tap.x509_records) == 2

    def test_chain_fingerprints_reference_x509(self, observed):
        tap, leaf, inter = observed
        fps = {r.fingerprint for r in tap.x509_records}
        for ssl in tap.ssl_records:
            assert set(ssl.cert_chain_fps) <= fps


class TestReconstruction:
    def test_round_trip_preserves_identity(self, observed):
        _, leaf, _ = observed
        record = x509_record_from_certificate(
            leaf, datetime(2021, 1, 5, tzinfo=timezone.utc))
        rebuilt = reconstruct_certificate(record)
        assert rebuilt.fingerprint == leaf.fingerprint
        assert rebuilt.subject.matches(leaf.subject)
        assert rebuilt.issuer.matches(leaf.issuer)
        assert rebuilt.serial == leaf.serial

    def test_round_trip_preserves_basic_constraints_tri_state(self, factory):
        bare = factory.self_signed(name("no-ext.local"))
        ts = datetime(2021, 1, 1, tzinfo=timezone.utc)
        rebuilt = reconstruct_certificate(x509_record_from_certificate(bare, ts))
        assert not rebuilt.extensions.has_basic_constraints()

        root = factory.root(name("CA Root")).certificate
        rebuilt_root = reconstruct_certificate(
            x509_record_from_certificate(root, ts))
        assert rebuilt_root.extensions.declares_ca()

    def test_reconstructed_has_no_ground_truth(self, observed):
        _, leaf, _ = observed
        ts = datetime(2021, 1, 5, tzinfo=timezone.utc)
        rebuilt = reconstruct_certificate(x509_record_from_certificate(leaf, ts))
        assert rebuilt.true_role is None
        assert rebuilt.signing_key_id is None

    def test_san_preserved(self, observed):
        _, leaf, _ = observed
        ts = datetime(2021, 1, 5, tzinfo=timezone.utc)
        rebuilt = reconstruct_certificate(x509_record_from_certificate(leaf, ts))
        assert rebuilt.extensions.subject_alt_name.matches_host("lib.campus.edu")


class TestJoin:
    def test_join_restores_chain_order(self, observed):
        tap, leaf, inter = observed
        joined = join_logs(tap.ssl_records, tap.x509_records)
        assert len(joined) == 3
        for j in joined:
            assert [c.fingerprint for c in j.chain] == [
                leaf.fingerprint, inter.fingerprint]

    def test_join_missing_certificate_lenient(self, observed):
        tap, leaf, _ = observed
        # Drop the intermediate's X509 row, as a log-rotation race would.
        records = [r for r in tap.x509_records if r.fingerprint == leaf.fingerprint]
        joined = join_logs(tap.ssl_records, records)
        assert all(len(j.chain) == 1 for j in joined)

    def test_join_missing_certificate_strict(self, observed):
        tap, leaf, _ = observed
        records = [r for r in tap.x509_records if r.fingerprint == leaf.fingerprint]
        with pytest.raises(KeyError):
            join_logs(tap.ssl_records, records, strict=True)


class TestDPD:
    def test_client_hello_detected(self):
        assert looks_like_tls(client_hello_bytes())

    def test_version_sniffed(self):
        payload = client_hello_bytes(TLSVersion.TLS12)
        assert sniff_version(payload) is TLSVersion.TLS12

    def test_http_not_detected(self):
        assert not looks_like_tls(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")

    def test_short_payload_not_detected(self):
        assert not looks_like_tls(b"\x16\x03")

    def test_garbage_with_tls_byte_not_detected(self):
        assert not looks_like_tls(b"\x16\x07\x00\x00\x10\x01")

    def test_oversized_record_rejected(self):
        payload = bytearray(client_hello_bytes())
        payload[3], payload[4] = 0xFF, 0xFF
        assert not looks_like_tls(bytes(payload))

"""Compiled row codecs vs the legacy interpreter: identical semantics.

The compiled reader (exec-generated per-header codec + chunked block
parsing) must be observationally indistinguishable from the original
per-line interpreter: same rows, same quarantine records, same strict
errors with the same ``file:line``, same metric labelling.
"""

from __future__ import annotations

import io

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.obs import instruments
from repro.obs.metrics import get_registry
from repro.resilience import Quarantine
from repro.zeek import format as zformat
from repro.zeek.format import (ZeekFormatError, ZeekLogReader, iter_zeek_log,
                               read_zeek_log, write_zeek_log)

HEADER = (
    "#separator \\x09\n"
    "#set_separator\t,\n"
    "#empty_field\t(empty)\n"
    "#unset_field\t-\n"
    "#path\tssl\n"
    "#open\t2021-02-15-00-00-00\n"
    "#fields\tts\tuid\tport\tratio\tok\tname\tsans\n"
    "#types\ttime\tstring\tport\tdouble\tbool\tstring\tvector[string]\n"
)
ROWS = (
    "1453939200.000000\tC1\t443\t0.5\tT\texample.com\ta.com,b.com\n"
    "1453939201.000000\tC2\t8443\t-\tF\t-\t(empty)\n"
    "1453939202.000000\tC3\t443\t1.25\tT\t(empty)\t-\n"
    "1453939203.000000\tC4\t443\t0.0\tT\ttab\\x09here\\x0aline\tx\\x09y,-\n"
)
FOOTER = "#close\t2021-02-15-00-00-01\n"


def _both(text: str, *, quarantine=False, faults=None):
    """Run both reader variants over ``text``; return (rows, quarantine)s."""
    results = []
    for compiled in (False, True):
        q = Quarantine() if quarantine else None
        reader = ZeekLogReader(io.StringIO(text), source="ssl.log",
                               quarantine=q, faults=faults,
                               compiled=compiled)
        results.append((list(reader), q))
    return results


def assert_parity(text: str, *, faults=None):
    (legacy_rows, legacy_q), (fast_rows, fast_q) = _both(
        text, quarantine=True, faults=faults)
    assert fast_rows == legacy_rows
    assert fast_q.records == legacy_q.records


class TestCodecParity:
    def test_clean_log(self):
        assert_parity(HEADER + ROWS + FOOTER)

    def test_unset_empty_and_escape_values(self):
        (rows, _), _ = _both(HEADER + ROWS)
        assert rows[1]["ratio"] is None
        assert rows[1]["name"] is None
        assert rows[1]["sans"] == []
        assert rows[2]["name"] == ""
        assert rows[2]["sans"] is None
        assert rows[3]["name"] == "tab\there\nline"
        assert rows[3]["sans"] == ["x\ty", None]

    def test_bad_rows_same_reason_detail_and_line(self):
        text = (HEADER + ROWS
                + "bad\tcolumns\n"                               # column-count
                + "not-a-time\tC9\t443\t0.1\tT\tx\t-\n"          # field-parse
                + ROWS + FOOTER)
        assert_parity(text)
        _, (_, q) = _both(text, quarantine=True)
        assert [(r.reason, r.line) for r in q.records] == [
            ("column-count", 13), ("field-parse", 14)]
        assert "expected 7" in q.records[0].detail
        assert "unparseable" in q.records[1].detail

    def test_data_before_header(self):
        assert_parity("early\trow\n" + HEADER + ROWS)

    def test_blank_lines_and_missing_trailing_newline(self):
        assert_parity(HEADER + "\n" + ROWS + "\n\n"
                      + ROWS[:-1])  # last line has no newline

    def test_header_mid_file_rebuilds_codec(self):
        narrow = ("#fields\tts\tuid\n"
                  "#types\ttime\tstring\n"
                  "1453939300.000000\tN1\n")
        assert_parity(HEADER + ROWS + narrow)
        (rows, _), _ = _both(HEADER + ROWS + narrow)
        assert rows[-1] == {"ts": 1453939300.0, "uid": "N1"}

    def test_strict_error_location_identical(self):
        text = HEADER + ROWS + "short\trow\n"
        errors = []
        for compiled in (False, True):
            reader = ZeekLogReader(io.StringIO(text), source="ssl.log",
                                   compiled=compiled)
            with pytest.raises(ZeekFormatError) as excinfo:
                list(reader)
            errors.append((excinfo.value.source, excinfo.value.line,
                           str(excinfo.value)))
        assert errors[0] == errors[1]
        assert errors[0][1] == 13

    def test_injected_corruption_parity(self):
        faults_a = FaultInjector(FaultPlan(seed="codec", zeek_corrupt_rate=0.3,
                                           zeek_truncate_rate=0.2))
        faults_b = FaultInjector(FaultPlan(seed="codec", zeek_corrupt_rate=0.3,
                                           zeek_truncate_rate=0.2))
        text = HEADER + ROWS * 25 + FOOTER
        (legacy_rows, legacy_q), _ = _both(text, quarantine=True,
                                           faults=faults_a)
        fast_q = Quarantine()
        fast_rows = list(ZeekLogReader(io.StringIO(text), source="ssl.log",
                                       quarantine=fast_q, faults=faults_b,
                                       compiled=True))
        assert fast_rows == legacy_rows
        assert fast_q.records == legacy_q.records
        assert legacy_q.records  # the plan actually corrupted something

    @pytest.mark.parametrize("chunk", [7, 64, 1024])
    def test_chunk_boundaries_do_not_change_output(self, chunk, monkeypatch):
        text = HEADER + ROWS * 10 + "bad\trow\n" + ROWS + FOOTER
        (reference, ref_q), _ = _both(text, quarantine=True)
        monkeypatch.setattr(zformat, "_CHUNK_CHARS", chunk)
        q = Quarantine()
        rows = list(ZeekLogReader(io.StringIO(text), source="ssl.log",
                                  quarantine=q, compiled=True))
        assert rows == reference
        assert q.records == ref_q.records

    def test_read_all_matches_iteration(self):
        text = HEADER + ROWS + FOOTER
        via_iter = list(ZeekLogReader(io.StringIO(text)))
        via_read_all = ZeekLogReader(io.StringIO(text)).read_all()
        assert via_read_all == via_iter

    def test_write_read_round_trip_both_modes(self, tmp_path):
        fields = ("ts", "uid", "names")
        types = ("time", "string", "vector[string]")
        rows = [[1.5, "C1", ["a", "b"]], [2.0, None, []],
                [3.0, "tab\there", None]]
        path = tmp_path / "rt.log"
        write_zeek_log(str(path), "rt", fields, types, rows)
        for compiled in (False, True):
            _, parsed = read_zeek_log(str(path), compiled=compiled)
            assert [[r["ts"], r["uid"], r["names"]] for r in parsed] == rows


class TestIterZeekLog:
    def test_streams_rows_and_exposes_reader(self, tmp_path):
        path = tmp_path / "ssl.log"
        path.write_text(HEADER + ROWS + FOOTER)
        refs: list[ZeekLogReader] = []
        rows = list(iter_zeek_log(str(path), reader_ref=refs))
        assert len(rows) == 4
        assert refs[0].path == "ssl"
        assert refs[0].fields[0] == "ts"


class TestRowMetricLabelling:
    """ZEEK_ROWS must be flushed once, under the final ``#path`` label."""

    @pytest.mark.parametrize("compiled", [False, True])
    def test_rows_before_path_header_use_final_path(self, compiled):
        # #path arrives only *after* data rows have been read: the flush
        # at exhaustion still attributes every row to the declared path,
        # never to "unknown".
        text = (
            "#fields\tts\tuid\n"
            "#types\ttime\tstring\n"
            "1.0\tC1\n"
            "2.0\tC2\n"
            "#path\tlate-ssl\n"
            "3.0\tC3\n"
        )
        get_registry().reset()
        list(ZeekLogReader(io.StringIO(text), compiled=compiled))
        assert instruments.ZEEK_ROWS.value(direction="read",
                                           path="late-ssl") == 3
        assert instruments.ZEEK_ROWS.value(direction="read",
                                           path="unknown") == 0

    @pytest.mark.parametrize("compiled", [False, True])
    def test_pathless_log_counts_as_unknown(self, compiled):
        text = ("#fields\tts\tuid\n"
                "#types\ttime\tstring\n"
                "1.0\tC1\n")
        get_registry().reset()
        list(ZeekLogReader(io.StringIO(text), compiled=compiled))
        assert instruments.ZEEK_ROWS.value(direction="read",
                                           path="unknown") == 1

    @pytest.mark.parametrize("compiled", [False, True])
    def test_empty_log_flushes_nothing(self, compiled):
        get_registry().reset()
        list(ZeekLogReader(io.StringIO(HEADER + FOOTER), compiled=compiled))
        samples = get_registry().snapshot()["repro_zeek_rows_total"]["samples"]
        assert all(sample["value"] == 0 for sample in samples)

"""Zeek reader degradation: ZeekFormatError locations and quarantine mode."""

from __future__ import annotations

import io

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.resilience import Quarantine
from repro.zeek import ZeekFormatError
from repro.zeek.format import ZeekLogReader, read_zeek_log

HEADER = (
    "#separator \\x09\n"
    "#path\tssl\n"
    "#fields\tts\tuid\tserver_name\n"
    "#types\ttime\tstring\tstring\n"
)
GOOD_1 = "1453939200.000000\tC1\texample.com\n"
GOOD_2 = "1453939201.000000\tC2\texample.org\n"


def _reader(text: str, **kwargs) -> ZeekLogReader:
    return ZeekLogReader(io.StringIO(text), **kwargs)


class TestZeekFormatError:
    def test_error_carries_source_and_line(self):
        reader = _reader(HEADER + GOOD_1 + "short\trow\n",
                         source="ssl.log")
        with pytest.raises(ZeekFormatError) as excinfo:
            list(reader)
        error = excinfo.value
        assert error.source == "ssl.log"
        assert error.line == 6
        assert str(error).startswith("ssl.log:6: ")
        assert "columns" in error.reason

    def test_error_is_a_value_error(self):
        # Pre-existing except ValueError handlers must keep catching it.
        with pytest.raises(ValueError, match="columns"):
            list(_reader(HEADER + "one-column\n"))

    def test_stream_without_source_says_stream(self):
        with pytest.raises(ZeekFormatError, match=r"<stream>:1: "):
            list(_reader("data-before-header\n"))

    def test_file_read_names_the_file(self, tmp_path):
        path = tmp_path / "ssl.log"
        path.write_text(HEADER + GOOD_1 + "bad\n")
        with pytest.raises(ZeekFormatError) as excinfo:
            read_zeek_log(str(path))
        assert excinfo.value.source == str(path)
        assert f"{path}:6:" in str(excinfo.value)


class TestQuarantineMode:
    def test_bad_rows_quarantined_good_rows_kept(self):
        quarantine = Quarantine()
        text = HEADER + GOOD_1 + "only-one-column\n" + GOOD_2
        rows = list(_reader(text, source="ssl.log", quarantine=quarantine))
        assert [row["uid"] for row in rows] == ["C1", "C2"]
        assert len(quarantine) == 1
        record = quarantine.records[0]
        assert record.source == "ssl.log"
        assert record.line == 6
        assert record.reason == "column-count"
        assert record.raw == "only-one-column"

    def test_unparseable_field_reason(self):
        quarantine = Quarantine()
        bad_time = "not-a-time\tC9\texample.net\n"
        rows = list(_reader(HEADER + bad_time + GOOD_1,
                            quarantine=quarantine))
        assert len(rows) == 1
        assert quarantine.records[0].reason == "field-parse"
        assert "unparseable" in quarantine.records[0].detail

    def test_data_before_header_reason(self):
        quarantine = Quarantine()
        rows = list(_reader("early-row\n" + HEADER + GOOD_1,
                            quarantine=quarantine))
        assert len(rows) == 1
        assert quarantine.records[0].reason == "no-header"
        assert "before #fields" in quarantine.records[0].detail

    def test_quarantine_round_trips_corrupt_rows(self, tmp_path):
        quarantine = Quarantine()
        text = HEADER + "a\tb\n" + GOOD_1 + "not-a-time\tC9\tx\n"
        list(_reader(text, source="ssl.log", quarantine=quarantine))
        path = tmp_path / "q.jsonl"
        quarantine.write(str(path))
        assert list(Quarantine.load(str(path))) == list(quarantine)


class TestInjectedCorruption:
    def test_certain_corruption_quarantines_every_data_row(self):
        quarantine = Quarantine()
        injector = FaultInjector(FaultPlan(zeek_corrupt_rate=1.0))
        rows = list(_reader(HEADER + GOOD_1 + GOOD_2, source="ssl.log",
                            quarantine=quarantine, faults=injector))
        assert rows == []
        assert len(quarantine) == 2
        assert {r.reason for r in quarantine} == {"column-count"}
        # Headers are never corrupted: fields were still parsed.
        assert quarantine.records[0].line == 5

    def test_partial_corruption_is_deterministic(self):
        plan = FaultPlan(seed="zeek-det", zeek_corrupt_rate=0.5)
        text = HEADER + GOOD_1 * 40

        def run() -> tuple[int, tuple[int, ...]]:
            quarantine = Quarantine()
            rows = list(_reader(text, quarantine=quarantine,
                                faults=FaultInjector(plan)))
            return len(rows), tuple(r.line for r in quarantine)

        first, second = run(), run()
        assert first == second
        kept, dropped = first
        assert kept and dropped  # both outcomes occur at 50%
        assert kept + len(dropped) == 40

    def test_strict_mode_with_faults_raises_located_error(self):
        injector = FaultInjector(FaultPlan(zeek_truncate_rate=1.0))
        with pytest.raises(ZeekFormatError) as excinfo:
            list(_reader(HEADER + GOOD_1, source="ssl.log",
                         faults=injector))
        assert excinfo.value.line == 5

"""Zeek format round-trips: escaping, (empty)/- distinction, byte stability."""

from __future__ import annotations

import io
from datetime import datetime, timezone

from repro.zeek.format import (
    ZeekLogReader,
    ZeekLogWriter,
    read_zeek_log,
    write_zeek_log,
)

FIELDS = ("ts", "uid", "note", "tags")
TYPES = ("time", "string", "string", "set[string]")

#: Pinned header timestamp so whole files are byte-comparable.
T0 = datetime(2021, 2, 15, 12, 0, 0, tzinfo=timezone.utc)


def _write(rows, *, open_time=T0) -> str:
    buffer = io.StringIO()
    with ZeekLogWriter(buffer, "test", FIELDS, TYPES,
                       open_time=open_time) as writer:
        for row in rows:
            writer.write_row(row)
    return buffer.getvalue()


def _read(text: str):
    reader = ZeekLogReader(io.StringIO(text))
    return reader, list(reader)


class TestEscaping:
    def test_tab_escaped_as_x09(self):
        text = _write([[1.0, "u", "a\tb", []]])
        data_line = [l for l in text.splitlines() if not l.startswith("#")][0]
        assert "a\\x09b" in data_line
        # Column structure intact: escaping kept the tab out of the row.
        assert len(data_line.split("\t")) == len(FIELDS)
        _, rows = _read(text)
        assert rows[0]["note"] == "a\tb"

    def test_newline_escaped_as_x0a(self):
        text = _write([[1.0, "u", "line1\nline2", []]])
        data_lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert len(data_lines) == 1  # the newline never splits the row
        assert "line1\\x0aline2" in data_lines[0]
        _, rows = _read(text)
        assert rows[0]["note"] == "line1\nline2"

    def test_tab_and_newline_inside_set_items(self):
        text = _write([[1.0, "u", "n", ["a\tb", "c\nd"]]])
        _, rows = _read(text)
        assert rows[0]["tags"] == ["a\tb", "c\nd"]


class TestEmptyVersusUnset:
    def test_empty_set_renders_empty_marker(self):
        text = _write([[1.0, "u", "n", []]])
        data_line = [l for l in text.splitlines() if not l.startswith("#")][0]
        assert data_line.split("\t")[3] == "(empty)"

    def test_unset_set_renders_dash(self):
        text = _write([[1.0, "u", "n", None]])
        data_line = [l for l in text.splitlines() if not l.startswith("#")][0]
        assert data_line.split("\t")[3] == "-"

    def test_round_trip_distinguishes_empty_from_unset(self):
        _, rows = _read(_write([
            [1.0, "u1", "n", []],
            [2.0, "u2", "n", None],
            [3.0, "u3", "", None],
            [4.0, None, "n", ["x"]],
        ]))
        assert rows[0]["tags"] == []
        assert rows[1]["tags"] is None
        assert rows[2]["note"] == ""
        assert rows[3]["uid"] is None
        assert rows[3]["tags"] == ["x"]


class TestByteStability:
    ROWS = [
        [1600000000.25, "Cabc", "plain", ["a", "b"]],
        [1600000001.5, None, "with\ttab", []],
        [1600000002.75, "Cdef", "with\nnewline", None],
        [1600000003.0, "Cghi", "", ["x\ty"]],
    ]

    def test_read_write_is_byte_stable_in_memory(self):
        first = _write(self.ROWS)
        _, rows = _read(first)
        second = _write([[r[f] for f in FIELDS] for r in rows])
        assert second == first

    def test_read_write_is_byte_stable_on_disk(self, tmp_path):
        """read_zeek_log → write_zeek_log reproduces a simulated log
        byte-for-byte when the header timestamp is pinned."""
        original = tmp_path / "orig.log"
        rewritten = tmp_path / "rewritten.log"
        count = write_zeek_log(str(original), "test", FIELDS, TYPES,
                               self.ROWS, open_time=T0)
        assert count == len(self.ROWS)
        reader, rows = read_zeek_log(str(original))
        assert reader.path == "test"
        write_zeek_log(str(rewritten), reader.path, reader.fields,
                       reader.types,
                       [[row[f] for f in reader.fields] for row in rows],
                       open_time=T0)
        assert rewritten.read_bytes() == original.read_bytes()

    def test_simulated_campus_log_round_trips(self, tmp_path):
        """A real tap-produced x509/ssl log survives parse → re-render."""
        from repro.campus.dataset import cached_campus_dataset
        from repro.zeek.records import SSLRecord

        dataset = cached_campus_dataset(seed=0, scale="small")
        original = tmp_path / "ssl.log"
        rewritten = tmp_path / "ssl2.log"
        write_zeek_log(str(original), "ssl", SSLRecord.FIELDS,
                       SSLRecord.TYPES, dataset.tap.ssl_rows(), open_time=T0)
        reader, rows = read_zeek_log(str(original))
        write_zeek_log(str(rewritten), reader.path, reader.fields,
                       reader.types,
                       [[row[f] for f in reader.fields] for row in rows],
                       open_time=T0)
        assert rewritten.read_bytes() == original.read_bytes()

"""Scanner resilience: injected faults, retries, and emergent unreachability."""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector, FaultPlan, clear_plan, install_plan
from repro.resilience import RetryPolicy
from repro.scan import ActiveScanner
from repro.scan.scanner import REASON_NO_ANSWER
from repro.tls import TLSServer
from repro.x509 import CertificateFactory


@pytest.fixture(autouse=True)
def _no_ambient_leak():
    clear_plan()
    yield
    clear_plan()


@pytest.fixture(scope="module")
def server():
    factory = CertificateFactory(seed=60)
    chain = tuple(factory.simple_chain(root_cn="R", intermediate_cns=["I"],
                                       leaf_cn="resil.example"))
    return TLSServer("203.0.113.9", 443, chain,
                     hostnames=("resil.example",))


def _scanner(plan=None, **kwargs) -> ActiveScanner:
    faults = FaultInjector(plan) if plan is not None else None
    return ActiveScanner(seed=1, faults=faults, **kwargs)


class TestInjectedFaults:
    def test_certain_timeouts_exhaust_retries(self, server):
        scanner = _scanner(FaultPlan(scan_timeout_rate=1.0))
        result = scanner.scan(server, server_id="s1")
        assert not result.reachable
        assert result.failure_reason == "timeout"
        assert result.attempts == scanner.retry.max_attempts
        assert result.chain == ()

    def test_certain_resets_report_reset(self, server):
        result = _scanner(FaultPlan(scan_reset_rate=1.0)).scan(
            server, server_id="s1")
        assert not result.reachable
        assert result.failure_reason == "reset"

    def test_truncated_chain_fault_drops_last_certificate(self, server):
        result = _scanner(FaultPlan(scan_truncated_chain_rate=1.0)).scan(
            server, server_id="s1")
        assert result.reachable
        assert result.chain_length == len(server.chain) - 1
        assert result.failure_reason is None

    def test_slow_handshake_still_answers(self, server):
        result = _scanner(FaultPlan(scan_slow_handshake_rate=1.0)).scan(
            server, server_id="s1")
        assert result.reachable
        assert result.chain_length == len(server.chain)

    def test_transient_faults_are_retried_to_success(self, server):
        # 40% per-attempt timeout with a deep retry budget: over many
        # servers, some succeed only after retrying — visible as
        # attempts > 1 on a reachable result.
        plan = FaultPlan(seed="retry-mix", scan_timeout_rate=0.4)
        scanner = _scanner(plan, retry=RetryPolicy(max_attempts=8, seed=1))
        results = [scanner.scan(server, server_id=f"s{i}")
                   for i in range(40)]
        assert all(r.reachable for r in results)
        assert any(r.attempts > 1 for r in results)
        assert any(r.attempts == 1 for r in results)

    def test_outcomes_deterministic_across_scanners(self, server):
        plan = FaultPlan(seed="det", scan_timeout_rate=0.5)
        outcomes = [
            [(r.reachable, r.attempts, r.failure_reason)
             for r in (scanner.scan(server, server_id=f"s{i}")
                       for i in range(30))]
            for scanner in (_scanner(plan, retry=RetryPolicy(seed=9)),
                            _scanner(plan, retry=RetryPolicy(seed=9)))
        ]
        assert outcomes[0] == outcomes[1]


class TestNoFaults:
    def test_clean_scan_unchanged(self, server):
        result = _scanner().scan(server, server_id="s1")
        assert result.reachable
        assert result.attempts == 1
        assert result.failure_reason is None
        assert result.chain_length == len(server.chain)

    def test_unreachable_is_zero_attempts(self):
        result = ActiveScanner(seed=1).unreachable("gone", "gone.example")
        assert result.attempts == 0
        assert result.failure_reason == REASON_NO_ANSWER


class TestSNIRecording:
    def test_sni_sent_records_the_fallback_hostname(self, server):
        # No explicit hostname: the scanner targets the server's first
        # known name and the wire record must agree.
        result = ActiveScanner(seed=1).scan(server, server_id="s1")
        assert result.hostname == "resil.example"
        assert result.sni_sent == "resil.example"

    def test_sni_sent_records_the_explicit_hostname(self, server):
        result = ActiveScanner(seed=1).scan(server, server_id="s1",
                                            hostname="alias.example")
        assert result.hostname == "alias.example"
        assert result.sni_sent == "alias.example"

    def test_no_known_name_sends_no_sni(self):
        factory = CertificateFactory(seed=61)
        chain = tuple(factory.simple_chain(root_cn="R", intermediate_cns=[],
                                           leaf_cn="bare.example"))
        server = TLSServer("203.0.113.10", 443, chain, hostnames=())
        result = ActiveScanner(seed=1).scan(server, server_id="bare")
        assert result.hostname is None
        assert result.sni_sent is None


class TestAmbientPlanPickup:
    def test_scanner_defaults_to_installed_plan(self, server):
        install_plan(FaultPlan(scan_timeout_rate=1.0))
        result = ActiveScanner(seed=1).scan(server, server_id="s1")
        assert not result.reachable
        assert result.failure_reason == "timeout"

    def test_no_plan_means_no_injector(self, server):
        scanner = ActiveScanner(seed=1)
        assert scanner._faults is None

"""Active scanner, fleet evolution, and the §5 revisit analysis."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.campus import cached_campus_dataset
from repro.campus.profiles import PAPER
from repro.scan import (
    ActiveScanner,
    DISPOSITION_STILL_COMPLETE_CLEAN,
    DISPOSITION_STILL_COMPLETE_UNNECESSARY,
    DISPOSITION_TO_NONPUB,
    DISPOSITION_TO_PUBLIC_LE,
    DISPOSITION_UNREACHABLE,
    evolve_fleet,
    render_showcerts,
    run_revisit,
)
from repro.tls import TLSServer
from repro.x509 import CertificateFactory, name


@pytest.fixture(scope="module")
def dataset():
    return cached_campus_dataset(seed=5, scale="small")


@pytest.fixture(scope="module")
def fleet(dataset):
    return evolve_fleet(dataset, seed=5)


@pytest.fixture(scope="module")
def report(dataset, fleet):
    return run_revisit(dataset, seed=5, fleet=fleet)


class TestScanner:
    def test_scan_returns_presented_chain(self):
        factory = CertificateFactory(seed=30)
        chain = tuple(factory.simple_chain(root_cn="R", intermediate_cns=["I"],
                                           leaf_cn="scan.example"))
        server = TLSServer("203.0.113.1", 443, chain,
                           hostnames=("scan.example",))
        result = ActiveScanner(seed=1).scan(server, server_id="s1")
        assert result.reachable
        assert result.chain_length == 3
        assert result.hostname == "scan.example"

    def test_unreachable(self):
        result = ActiveScanner(seed=1).unreachable("gone", "gone.example")
        assert not result.reachable
        assert result.chain == ()

    def test_showcerts_rendering(self):
        factory = CertificateFactory(seed=31)
        chain = factory.simple_chain(root_cn="R", intermediate_cns=[],
                                     leaf_cn="x.example")
        text = render_showcerts(chain, sni="x.example")
        assert "Certificate chain" in text
        assert " 0 s:CN=x.example" in text
        assert " 1 s:CN=R" in text


class TestEvolution:
    def test_every_hybrid_server_dispositioned(self, dataset, fleet):
        hybrid_servers = {s.server_id
                          for s in dataset.specs_in_category("hybrid")}
        assert {s.server_id for s in fleet.hybrid} == hybrid_servers

    def test_reachability_near_paper(self, fleet):
        reachable = sum(1 for s in fleet.hybrid if s.reachable)
        pct = 100.0 * reachable / len(fleet.hybrid)
        assert abs(pct - PAPER.revisit_hybrid_reachable_pct) < 3.0

    def test_exact_small_cells(self, fleet):
        dispositions = Counter(s.disposition for s in fleet.hybrid)
        assert dispositions[DISPOSITION_TO_NONPUB] == \
            PAPER.revisit_hybrid_to_nonpub
        assert dispositions[DISPOSITION_STILL_COMPLETE_CLEAN] == \
            PAPER.revisit_still_hybrid_complete_clean
        assert dispositions[DISPOSITION_STILL_COMPLETE_UNNECESSARY] == \
            PAPER.revisit_still_hybrid_complete_unnecessary

    def test_le_migration_dominates(self, fleet):
        dispositions = Counter(s.disposition for s in fleet.hybrid)
        assert dispositions[DISPOSITION_TO_PUBLIC_LE] > \
            sum(v for k, v in dispositions.items()
                if k not in (DISPOSITION_TO_PUBLIC_LE,
                             DISPOSITION_UNREACHABLE))

    def test_unreachable_servers_have_no_new_chain(self, fleet):
        for server in fleet.hybrid:
            if not server.reachable:
                assert server.new_chain == ()
            else:
                assert server.new_chain

    def test_nonpub_fleet_excludes_unscannable(self, dataset, fleet):
        scanned_ids = {s.server_id for s in fleet.nonpub}
        for spec in dataset.specs_in_category("nonpub"):
            if spec.labels.get("dga") or spec.labels.get("outlier"):
                assert spec.server_id not in scanned_ids

    def test_determinism(self, dataset):
        a = evolve_fleet(dataset, seed=77)
        b = evolve_fleet(dataset, seed=77)
        assert [(s.server_id, s.disposition) for s in a.hybrid] == \
            [(s.server_id, s.disposition) for s in b.hybrid]


class TestRevisit:
    def test_migration_counts_consistent(self, report):
        assert (report.hybrid_to_public + report.hybrid_to_nonpub
                + report.hybrid_still_hybrid) == report.hybrid_reachable

    def test_lets_encrypt_majority(self, report):
        assert report.hybrid_to_public_lets_encrypt > \
            report.hybrid_to_public * 0.5

    def test_still_hybrid_breakdown(self, report):
        assert (report.still_complete_clean
                + report.still_complete_unnecessary
                + report.still_no_path) == report.hybrid_still_hybrid
        assert report.still_complete_clean == \
            PAPER.revisit_still_hybrid_complete_clean

    def test_divergence_reproduced(self, report):
        assert report.divergent_chains == \
            PAPER.revisit_still_hybrid_complete_unnecessary
        assert report.divergent_browser_ok == report.divergent_chains
        assert report.divergent_strict_ok == 0

    def test_all_nonpub_servers_stay_nonpub(self, report):
        assert report.nonpub_still_nonpub == report.nonpub_scanned

    def test_multi_adoption_trend(self, report):
        assert report.nonpub_now_multi_pct > 60.0
        assert report.nonpub_multi_complete_pct > 90.0

    def test_prev_state_shares_sum_to_100(self, report):
        shares = report.prev_state_shares()
        assert sum(shares.values()) == pytest.approx(100.0)

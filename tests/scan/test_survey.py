"""§6.3 future-work survey: full-fleet scan joined with usage."""

from __future__ import annotations

import pytest

from repro.campus import cached_campus_dataset
from repro.scan import run_survey


@pytest.fixture(scope="module")
def dataset():
    return cached_campus_dataset(seed=5, scale="small")


@pytest.fixture(scope="module")
def report(dataset):
    return run_survey(dataset, seed=5)


class TestSurvey:
    def test_scans_entire_fleet(self, dataset, report):
        assert report.endpoints == len(dataset.specs)

    def test_mix_shares_sum_to_100(self, report):
        for weighted in (False, True):
            shares = report.share_by_mix(weighted=weighted)
            assert sum(shares.values()) == pytest.approx(100.0)

    def test_usage_weighting_changes_the_picture(self, report):
        """The survey's point: endpoint counts and connection volumes tell
        different stories (the paper's 'actual usage' motivation)."""
        flat = report.share_by_mix(weighted=False)
        weighted = report.share_by_mix(weighted=True)
        drift = sum(abs(flat.get(m, 0) - weighted.get(m, 0))
                    for m in set(flat) | set(weighted))
        assert drift > 5.0

    def test_broken_share_nonzero_but_minor(self, report):
        assert 0.0 < report.broken_share() < 60.0

    def test_unnecessary_share_present(self, report):
        assert report.unnecessary_share() > 0.0

    def test_every_finding_has_verdicts(self, report):
        for finding in report.findings[:200]:
            assert finding.issuer_mix in ("public", "non-public", "hybrid")
            assert finding.chain_length >= 1
            assert finding.observed_connections >= 0

"""``scan_many``: parallel revisit scans == serial scans, metrics included.

The scanner's fan-out contract: results come back in target order,
every per-target outcome (fault draws, retry schedules, emergent
unreachability) is a pure function of ``(seed, server_id, attempt)``,
and the driver-replayed ``repro_scan_*`` / retry / fault counters match
a serial scan exactly — at any ``jobs``.
"""

from __future__ import annotations

import os

import pytest

from repro.campus import cached_campus_dataset
from repro.faults import FaultInjector, FaultPlan
from repro.obs import instruments
from repro.obs.metrics import get_registry
from repro.scan import ActiveScanner, ScanTarget, evolve_fleet, run_revisit
from repro.tls import TLSServer
from repro.x509 import CertificateFactory

JOBS_MATRIX = [1, 2, 4]

#: A plan hot enough that timeouts, resets, degraded handshakes and
#: emergent unreachability all occur across a 40-target fleet.
HOT_PLAN = FaultPlan(seed=17, scan_timeout_rate=0.25, scan_reset_rate=0.15,
                     scan_slow_handshake_rate=0.2,
                     scan_truncated_chain_rate=0.2)


@pytest.fixture(scope="module")
def targets():
    factory = CertificateFactory(seed=31)
    built = []
    for i in range(40):
        if i % 7 == 3:  # known-dead servers interleaved with live ones
            built.append(ScanTarget(server_id=f"srv-{i:02d}",
                                    hostname=f"host{i}.example"))
            continue
        chain = tuple(factory.simple_chain(
            root_cn=f"R{i}", intermediate_cns=[f"I{i}"],
            leaf_cn=f"host{i}.example"))
        built.append(ScanTarget(
            server_id=f"srv-{i:02d}",
            server=TLSServer("203.0.113.10", 443, chain,
                             hostnames=(f"host{i}.example",)),
            hostname=f"host{i}.example"))
    return built


def _counters():
    out = {}
    for family in (instruments.SCAN_ATTEMPTS, instruments.RETRY_ATTEMPTS,
                   instruments.FAULTS_INJECTED):
        for labels, child in family.samples():
            if child.value:
                out[(family.name,) + labels] = child.value
    return out


def _scan(targets, jobs, faults=None):
    get_registry().reset()
    scanner = ActiveScanner(seed="par-scan", faults=faults)
    results = scanner.scan_many(targets, jobs=jobs)
    return results, _counters()


class TestScanManyEquivalence:
    def test_results_and_counters_identical_across_jobs(self, targets,
                                                        monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        serial_results, serial_counters = _scan(targets, 1)
        assert [r.server_id for r in serial_results] == \
            [t.server_id for t in targets]
        assert any(not r.reachable for r in serial_results)
        for jobs in JOBS_MATRIX[1:]:
            results, counters = _scan(targets, jobs)
            assert results == serial_results, f"jobs={jobs}"
            assert counters == serial_counters, f"jobs={jobs}"

    def test_faulted_scans_identical_across_jobs(self, targets, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        injector = FaultInjector(HOT_PLAN)
        serial_results, serial_counters = _scan(targets, 1, faults=injector)
        outcomes = {r.failure_reason for r in serial_results}
        assert {"timeout", "reset", "no_answer"} <= outcomes  # plan is hot
        assert any(("repro_faults_injected_total" in key)
                   for key in serial_counters)
        for jobs in JOBS_MATRIX[1:]:
            results, counters = _scan(targets, jobs, faults=injector)
            assert results == serial_results, f"jobs={jobs}"
            assert counters == serial_counters, f"jobs={jobs}"

    def test_jobs_clamped_to_target_count(self, targets, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        few = targets[:3]
        results, _ = _scan(few, 16)  # pool of 3, never 16
        serial, _ = _scan(few, 1)
        assert results == serial

    def test_scan_many_matches_individual_scans(self, targets):
        scanner = ActiveScanner(seed="par-scan")
        individually = [scanner.scan_target(t) for t in targets]
        assert scanner.scan_many(targets, jobs=1) == individually


class TestRevisitJobs:
    def test_revisit_report_identical_at_any_jobs(self, monkeypatch):
        dataset = cached_campus_dataset(seed=5, scale="small")
        fleet = evolve_fleet(dataset, seed=5)
        serial = run_revisit(dataset, seed=5, fleet=fleet, jobs=1)
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        fanned = run_revisit(dataset, seed=5, fleet=fleet, jobs=4)
        assert fanned == serial

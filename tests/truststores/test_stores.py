"""Root stores, CCADB, registry classification, and the builtin public PKI."""

from __future__ import annotations

import pytest

from repro.truststores import (
    CCADB,
    PublicDBRegistry,
    RootStore,
    build_public_pki,
)
from repro.x509 import CertificateFactory, name


@pytest.fixture()
def own_factory():
    return CertificateFactory(seed=77)


class TestRootStore:
    def test_contains_by_subject(self, own_factory):
        root = own_factory.root(name("My Root", o="MyCA"))
        store = RootStore("test")
        store.add_certificate(root.certificate)
        assert store.contains_subject(root.certificate.subject)
        assert root.certificate in store

    def test_subject_lookup_case_insensitive(self, own_factory):
        root = own_factory.root(name("My Root", o="MyCA"))
        store = RootStore("test")
        store.add_certificate(root.certificate)
        assert store.contains_subject(name("MY ROOT", o="myca"))

    def test_absent_subject(self, own_factory):
        store = RootStore("test")
        assert not store.contains_subject(name("ghost"))

    def test_remove(self, own_factory):
        root = own_factory.root(name("R"))
        store = RootStore("test")
        store.add_certificate(root.certificate)
        store.remove(root.certificate.fingerprint)
        assert not store.contains_subject(root.certificate.subject)

    def test_distrusted_anchor_excluded_from_tls(self, own_factory):
        root = own_factory.root(name("Distrusted"))
        store = RootStore("test")
        store.add_certificate(root.certificate, trust_tls=False)
        assert not store.contains_subject(root.certificate.subject)
        assert store.contains_subject(root.certificate.subject, tls_only=False)


class TestCCADB:
    def test_eligible_intermediate(self, own_factory):
        root = own_factory.root(name("R"))
        inter = own_factory.intermediate(root, name("I"))
        ccadb = CCADB()
        ccadb.add_intermediate(inter.certificate, audited=True)
        assert ccadb.contains_subject(inter.certificate.subject)

    def test_unaudited_unconstrained_not_eligible(self, own_factory):
        root = own_factory.root(name("R"))
        inter = own_factory.intermediate(root, name("I"))
        ccadb = CCADB()
        ccadb.add_intermediate(inter.certificate, audited=False,
                               technically_constrained=False)
        assert not ccadb.contains_subject(inter.certificate.subject)

    def test_technically_constrained_is_eligible(self, own_factory):
        root = own_factory.root(name("R"))
        inter = own_factory.intermediate(root, name("I"))
        ccadb = CCADB()
        ccadb.add_intermediate(inter.certificate, audited=False,
                               technically_constrained=True)
        assert ccadb.contains_subject(inter.certificate.subject)

    def test_bad_record_type_rejected(self, own_factory):
        from repro.truststores.ccadb import CCADBRecord
        root = own_factory.root(name("R"))
        with pytest.raises(ValueError):
            CCADB([CCADBRecord(root.certificate, "banana")])


class TestRegistryClassification:
    def test_leaf_issued_by_public_intermediate(self, pki, registry):
        factory = CertificateFactory(seed=5)
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        leaf = factory.leaf(r3, name("a.example"))
        assert registry.issued_by_public_db(leaf)

    def test_leaf_issued_by_private_ca(self, registry):
        factory = CertificateFactory(seed=5)
        private_root = factory.root(name("Corp Internal Root", o="Corp"))
        leaf = factory.leaf(private_root, name("intranet.corp"))
        assert not registry.issued_by_public_db(leaf)

    def test_self_signed_random_is_non_public(self, registry):
        factory = CertificateFactory(seed=5)
        cert = factory.self_signed(name("device.local"))
        assert not registry.issued_by_public_db(cert)

    def test_public_root_itself_is_public(self, pki, registry):
        root_cert = pki.ca("lets_encrypt").root.certificate
        assert registry.issued_by_public_db(root_cert)
        assert registry.is_trust_anchor_name(root_cert.subject)

    def test_intermediate_in_ccadb_is_public_issuer_name(self, pki, registry):
        r3 = pki.ca("lets_encrypt").intermediates["R3"]
        assert registry.is_public_issuer_name(r3.certificate.subject)
        # ...but it is not a trust anchor.
        assert not registry.is_trust_anchor_name(r3.certificate.subject)

    def test_restricted_to_mozilla_drops_microsoft_only_roots(self, pki, registry):
        federal = pki.ca("federal_pki").root.certificate
        assert registry.is_trust_anchor_name(federal.subject)
        nss_only = registry.restricted_to(["Mozilla"], include_ccadb=False)
        assert not nss_only.is_trust_anchor_name(federal.subject)

    def test_store_accessor(self, registry):
        assert registry.store("Mozilla").name == "Mozilla"
        with pytest.raises(KeyError):
            registry.store("Netscape")


class TestBuiltinPKI:
    def test_deterministic(self):
        a = build_public_pki(seed=7)
        b = build_public_pki(seed=7)
        fp_a = sorted(c.fingerprint for c in a.all_public_certificates())
        fp_b = sorted(c.fingerprint for c in b.all_public_certificates())
        assert fp_a == fp_b

    def test_expected_cast_present(self, pki):
        for ca_name in ("lets_encrypt", "digicert", "sectigo", "godaddy",
                        "symantec", "federal_pki", "kisa", "icp_brasil"):
            assert ca_name in pki.cas

    def test_cross_sign_disclosures(self, pki):
        disclosures = pki.cross_sign_disclosures()
        assert len(disclosures) == 2
        subjects = {s.common_name for s, _ in disclosures}
        assert "R3" in subjects

    def test_cross_signed_twin_in_ccadb(self, pki, registry):
        twin = pki.cross_signed["R3-cross"]
        assert registry.ccadb.contains_subject(twin.certificate.subject)

    def test_store_membership_asymmetry(self, pki, registry):
        kisa = pki.ca("kisa").root.certificate
        assert registry.store("Microsoft").contains_subject(kisa.subject)
        assert registry.store("Apple").contains_subject(kisa.subject)
        assert not registry.store("Mozilla").contains_subject(kisa.subject)

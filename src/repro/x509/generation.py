"""Synthetic certificate-hierarchy generation.

The campus simulator needs thousands of certificates spanning public CAs,
private enterprise CAs, interception appliances, and badly managed servers.
This module provides a deterministic factory for building those hierarchies
at the *structured-field* level (no key material — see
:mod:`repro.x509.pem` for crypto-backed generation).

Everything is driven by a ``random.Random`` seeded by the caller, so a given
seed always yields byte-identical certificates and therefore byte-identical
Zeek logs downstream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone
from typing import Iterable, Optional, Sequence

from .certificate import Certificate, CertificateRole, KeyAlgorithm, ValidityPeriod
from .dn import DistinguishedName
from .extensions import ExtensionSet

__all__ = [
    "CertificateFactory",
    "IssuingAuthority",
    "name",
    "DEFAULT_EPOCH",
]

#: Start of the paper's measurement window (2020-09-01).
DEFAULT_EPOCH = datetime(2020, 9, 1, tzinfo=timezone.utc)


def name(cn: str, o: Optional[str] = None, ou: Optional[str] = None,
         c: Optional[str] = None, **extra: str) -> DistinguishedName:
    """Convenience constructor: ``name("R3", o="Let's Encrypt", c="US")``."""
    pairs: list[tuple[str, str]] = [("CN", cn)]
    if ou is not None:
        pairs.append(("OU", ou))
    if o is not None:
        pairs.append(("O", o))
    for attr, value in extra.items():
        pairs.append((attr, value))
    if c is not None:
        pairs.append(("C", c))
    return DistinguishedName.from_pairs(pairs)


@dataclass
class IssuingAuthority:
    """A CA certificate plus the state needed to issue below it."""

    certificate: Certificate
    key_id: str

    @property
    def subject(self) -> DistinguishedName:
        return self.certificate.subject


class CertificateFactory:
    """Deterministic builder for roots, intermediates, leaves, and oddities.

    All validity periods default to realistic envelopes: roots 20 years,
    intermediates 5 years, leaves 90 days – 2 years, with seeded jitter.
    """

    def __init__(self, seed: int | str = 0, epoch: datetime = DEFAULT_EPOCH):
        self._rng = random.Random(f"certfactory:{seed}")
        self.epoch = epoch

    # -- low-level id generation -------------------------------------------

    def serial(self) -> str:
        return format(self._rng.getrandbits(64), "016x")

    def key_id(self) -> str:
        return format(self._rng.getrandbits(160), "040x")

    def _jitter_days(self, spread: int) -> timedelta:
        return timedelta(days=self._rng.randint(0, max(spread, 0)))

    # -- hierarchy building --------------------------------------------------

    def root(self, subject: DistinguishedName, *, lifetime_years: int = 20,
             key_algorithm: KeyAlgorithm = KeyAlgorithm.RSA,
             key_bits: int = 4096,
             not_before: Optional[datetime] = None) -> IssuingAuthority:
        """A self-signed trust anchor."""
        kid = self.key_id()
        if not_before is None:
            not_before = (self.epoch - timedelta(days=365 * 5)
                          - self._jitter_days(180))
        start = not_before
        cert = Certificate(
            subject=subject,
            issuer=subject,
            serial=self.serial(),
            validity=ValidityPeriod(start, start + timedelta(days=365 * lifetime_years)),
            key_algorithm=key_algorithm,
            key_bits=key_bits,
            extensions=ExtensionSet.for_root(kid),
            true_role=CertificateRole.ROOT,
            signing_key_id=kid,
        )
        return IssuingAuthority(cert, kid)

    def intermediate(self, issuer: IssuingAuthority, subject: DistinguishedName, *,
                     lifetime_years: int = 5,
                     path_len: Optional[int] = 0,
                     key_algorithm: KeyAlgorithm = KeyAlgorithm.RSA,
                     key_bits: int = 2048,
                     not_before: Optional[datetime] = None) -> IssuingAuthority:
        kid = self.key_id()
        if not_before is None:
            not_before = (self.epoch - timedelta(days=365)
                          - self._jitter_days(90))
        start = not_before
        cert = Certificate(
            subject=subject,
            issuer=issuer.subject,
            serial=self.serial(),
            validity=ValidityPeriod(start, start + timedelta(days=365 * lifetime_years)),
            key_algorithm=key_algorithm,
            key_bits=key_bits,
            extensions=ExtensionSet.for_intermediate(kid, issuer.key_id,
                                                     path_len=path_len),
            true_role=CertificateRole.INTERMEDIATE,
            signing_key_id=issuer.key_id,
        )
        return IssuingAuthority(cert, kid)

    def cross_sign(self, new_issuer: IssuingAuthority,
                   existing: IssuingAuthority) -> IssuingAuthority:
        """Re-issue ``existing``'s subject/key under a different issuer.

        Cross-signed twins share the subject name and subject key id but have
        distinct serials and issuer names — the situation Appendix D.1 warns
        can surface as a *false* issuer–subject mismatch.
        """
        base = existing.certificate
        cert = Certificate(
            subject=base.subject,
            issuer=new_issuer.subject,
            serial=self.serial(),
            validity=base.validity,
            key_algorithm=base.key_algorithm,
            key_bits=base.key_bits,
            extensions=base.extensions,
            true_role=CertificateRole.INTERMEDIATE,
            signing_key_id=new_issuer.key_id,
        )
        return IssuingAuthority(cert, existing.key_id)

    def leaf(self, issuer: IssuingAuthority, subject: DistinguishedName, *,
             dns_names: Iterable[str] = (),
             lifetime_days: int = 398,
             key_algorithm: KeyAlgorithm = KeyAlgorithm.RSA,
             key_bits: int = 2048,
             not_before: Optional[datetime] = None,
             omit_basic_constraints: bool = False) -> Certificate:
        """An end-entity certificate.

        ``omit_basic_constraints`` reproduces the widespread non-public-DB
        practice (§4.3: 55–78 % omit the extension) that defeats leaf
        identification.
        """
        kid = self.key_id()
        if not_before is None:
            not_before = self.epoch + self._jitter_days(30)
        start = not_before
        ext = ExtensionSet.for_leaf(kid, issuer.key_id, dns_names=dns_names)
        if omit_basic_constraints:
            ext = ExtensionSet(
                subject_alt_name=ext.subject_alt_name,
                subject_key_id=ext.subject_key_id,
            )
        return Certificate(
            subject=subject,
            issuer=issuer.subject,
            serial=self.serial(),
            validity=ValidityPeriod(start, start + timedelta(days=lifetime_days)),
            key_algorithm=key_algorithm,
            key_bits=key_bits,
            extensions=ext,
            true_role=CertificateRole.LEAF,
            signing_key_id=issuer.key_id,
        )

    def self_signed(self, subject: DistinguishedName, *,
                    lifetime_days: int = 3650,
                    include_extensions: bool = False,
                    not_before: Optional[datetime] = None) -> Certificate:
        """A standalone self-signed certificate (issuer == subject).

        These dominate single-certificate non-public-DB chains (94.19 %
        self-signed in §4.3); most carry no extensions at all.
        """
        kid = self.key_id()
        if not_before is None:
            not_before = self.epoch - self._jitter_days(365)
        start = not_before
        ext = ExtensionSet.for_root(kid) if include_extensions else ExtensionSet.bare()
        return Certificate(
            subject=subject,
            issuer=subject,
            serial=self.serial(),
            validity=ValidityPeriod(start, start + timedelta(days=lifetime_days)),
            extensions=ext,
            true_role=CertificateRole.LEAF,
            signing_key_id=kid,
        )

    def mismatched_pair_cert(self, issuer_dn: DistinguishedName,
                             subject_dn: DistinguishedName, *,
                             lifetime_days: int = 365,
                             not_before: Optional[datetime] = None) -> Certificate:
        """A certificate whose issuer name matches nothing in particular —
        used to synthesise broken chains and DGA-style certificates."""
        kid = self.key_id()
        if not_before is None:
            not_before = self.epoch + self._jitter_days(60)
        start = not_before
        return Certificate(
            subject=subject_dn,
            issuer=issuer_dn,
            serial=self.serial(),
            validity=ValidityPeriod(start, start + timedelta(days=lifetime_days)),
            extensions=ExtensionSet.bare(),
            true_role=CertificateRole.LEAF,
            signing_key_id=kid,
        )

    # -- whole-chain helpers --------------------------------------------------

    def simple_chain(self, *, root_cn: str, intermediate_cns: Sequence[str],
                     leaf_cn: str, org: Optional[str] = None,
                     dns_names: Iterable[str] = ()) -> list[Certificate]:
        """Build leaf → intermediates → root, returned leaf-first (wire order)."""
        authority = self.root(name(root_cn, o=org))
        chain_tail: list[Certificate] = [authority.certificate]
        for cn in intermediate_cns:
            authority = self.intermediate(authority, name(cn, o=org))
            chain_tail.insert(0, authority.certificate)
        leaf = self.leaf(authority, name(leaf_cn, o=org), dns_names=dns_names)
        return [leaf, *chain_tail]

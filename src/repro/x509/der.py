"""From-scratch DER encoding of structured certificates (X.690 / RFC 5280).

Renders a :class:`~repro.x509.certificate.Certificate` record as real
X.509 v3 DER: a full TBSCertificate with name, validity, a synthetic
SubjectPublicKeyInfo of the right algorithm and size, and the record's
extensions — wrapped with an AlgorithmIdentifier and a placeholder
signature BIT STRING.  The output parses with any X.509 library (the tests
load it with ``cryptography``); the signature is deterministic filler, so
it does not verify — the simulator's structured pipeline never needed it
to, and real signing lives in :mod:`repro.x509.pem`.

Uses: byte-exact wire sizes for the §6.1 overhead analysis, real
Certificate-message payloads for :mod:`repro.tls.wire`, and PEM export of
any simulated chain for external tooling.
"""

from __future__ import annotations

import base64
import hashlib
from datetime import datetime, timezone
from typing import Iterable, List, Sequence

from ..obs.cache import BoundedLRU
from ..obs.instruments import (
    DER_CACHE_HIT,
    DER_CACHE_MISS,
    DER_EXT_CACHE_HIT,
    DER_EXT_CACHE_MISS,
    DER_NAME_CACHE_HIT,
    DER_NAME_CACHE_MISS,
)
from .certificate import Certificate, KeyAlgorithm
from .dn import DistinguishedName
from .extensions import ExtensionSet

__all__ = [
    "encode_certificate_der",
    "certificate_to_pem",
    "chain_to_pem",
    # low-level encoders, exported for reuse and tests
    "der_sequence",
    "der_integer",
    "der_oid",
    "der_bit_string",
    "der_octet_string",
    "der_utf8",
    "der_printable",
    "der_boolean",
    "der_time",
]

# -- X.690 primitives ----------------------------------------------------------


def _length(payload_len: int) -> bytes:
    if payload_len < 0x80:
        return bytes([payload_len])
    encoded = payload_len.to_bytes((payload_len.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(encoded)]) + encoded


def _tlv(tag: int, payload: bytes) -> bytes:
    return bytes([tag]) + _length(len(payload)) + payload


def der_sequence(*members: bytes) -> bytes:
    return _tlv(0x30, b"".join(members))


def der_set(*members: bytes) -> bytes:
    # DER requires SET OF members in sorted order; our RDN sets are
    # single-member, but sort anyway for correctness.
    return _tlv(0x31, b"".join(sorted(members)))


def der_integer(value: int) -> bytes:
    if value == 0:
        return _tlv(0x02, b"\x00")
    negative = value < 0
    magnitude = abs(value)
    raw = magnitude.to_bytes((magnitude.bit_length() + 8) // 8, "big")
    if negative:  # pragma: no cover - certificates never need negatives
        raise ValueError("negative INTEGER not supported")
    raw = raw.lstrip(b"\x00") or b"\x00"
    if raw[0] & 0x80:
        raw = b"\x00" + raw
    return _tlv(0x02, raw)


def der_oid(dotted: str) -> bytes:
    arcs = [int(part) for part in dotted.split(".")]
    if len(arcs) < 2:
        raise ValueError(f"OID needs at least two arcs: {dotted!r}")
    body = bytearray([arcs[0] * 40 + arcs[1]])
    for arc in arcs[2:]:
        chunk = bytearray([arc & 0x7F])
        arc >>= 7
        while arc:
            chunk.insert(0, 0x80 | (arc & 0x7F))
            arc >>= 7
        body.extend(chunk)
    return _tlv(0x06, bytes(body))


def der_bit_string(data: bytes, unused_bits: int = 0) -> bytes:
    return _tlv(0x03, bytes([unused_bits]) + data)


def der_octet_string(data: bytes) -> bytes:
    return _tlv(0x04, data)


def der_utf8(text: str) -> bytes:
    return _tlv(0x0C, text.encode("utf-8"))


def der_printable(text: str) -> bytes:
    return _tlv(0x13, text.encode("ascii"))


def der_ia5(text: str) -> bytes:
    return _tlv(0x16, text.encode("ascii"))


def der_boolean(value: bool) -> bytes:
    return _tlv(0x01, b"\xff" if value else b"\x00")


def der_null() -> bytes:
    return _tlv(0x05, b"")


def der_time(moment: datetime) -> bytes:
    """UTCTime for 1950–2049, GeneralizedTime outside (RFC 5280 §4.1.2.5)."""
    moment = moment.astimezone(timezone.utc)
    if 1950 <= moment.year < 2050:
        return _tlv(0x17, moment.strftime("%y%m%d%H%M%SZ").encode("ascii"))
    return _tlv(0x18, moment.strftime("%Y%m%d%H%M%SZ").encode("ascii"))


def _context(tag: int, payload: bytes, *, constructed: bool = True) -> bytes:
    return _tlv((0xA0 if constructed else 0x80) | tag, payload)


# -- Name encoding ----------------------------------------------------------------

_ATTR_OIDS = {
    "CN": "2.5.4.3",
    "C": "2.5.4.6",
    "L": "2.5.4.7",
    "ST": "2.5.4.8",
    "STREET": "2.5.4.9",
    "O": "2.5.4.10",
    "OU": "2.5.4.11",
    "serialNumber": "2.5.4.5",
    "DC": "0.9.2342.19200300.100.1.25",
    "UID": "0.9.2342.19200300.100.1.1",
    "emailAddress": "1.2.840.113549.1.9.1",
}


# Issuer names repeat across every certificate a CA signs, and the whole-
# certificate memo above this layer only dedupes *identical records* — two
# certificates sharing an issuer still each encode that name.  Memoizing
# the component keeps the win when the outer memo misses.
_NAME_MEMO: BoundedLRU = BoundedLRU(
    65536, hits=DER_NAME_CACHE_HIT, misses=DER_NAME_CACHE_MISS)


def _encode_name(dn: DistinguishedName) -> bytes:
    encoded = _NAME_MEMO.get(dn)
    if encoded is None:
        encoded = _encode_name_uncached(dn)
        _NAME_MEMO.put(dn, encoded)
    return encoded


def _encode_name_uncached(dn: DistinguishedName) -> bytes:
    rdns = []
    for atv in dn:
        oid = _ATTR_OIDS.get(atv.attr_type, atv.attr_type)
        if not oid[0].isdigit():
            # Unknown symbolic type: park it under a private-enterprise arc
            # so the certificate still encodes.
            oid = "2.5.4.3"
        if atv.attr_type == "C" and len(atv.value) == 2 \
                and atv.value.isascii():
            value = der_printable(atv.value)
        elif atv.attr_type == "emailAddress" and atv.value.isascii():
            value = der_ia5(atv.value)
        else:
            value = der_utf8(atv.value)
        rdns.append(der_set(der_sequence(der_oid(oid), value)))
    return der_sequence(*rdns)


# -- SubjectPublicKeyInfo ------------------------------------------------------------

_RSA_OID = "1.2.840.113549.1.1.1"
_EC_OID = "1.2.840.10045.2.1"
_P256_OID = "1.2.840.10045.3.1.7"
_ED25519_OID = "1.3.101.112"
_SHA256_RSA_OID = "1.2.840.113549.1.1.11"
_ECDSA_SHA256_OID = "1.2.840.10045.4.3.2"


def _synthetic_bytes(seed: str, count: int) -> bytes:
    """Deterministic filler derived from the certificate identity."""
    out = bytearray()
    counter = 0
    while len(out) < count:
        out.extend(hashlib.sha256(f"{seed}:{counter}".encode()).digest())
        counter += 1
    return bytes(out[:count])


def _encode_spki(certificate: Certificate) -> bytes:
    seed = f"spki:{certificate.serial}:{certificate.subject.rfc4514()}"
    if certificate.key_algorithm is KeyAlgorithm.ECDSA:
        algorithm = der_sequence(der_oid(_EC_OID), der_oid(_P256_OID))
        # A point must satisfy the curve equation to load, so every
        # synthetic EC key carries the P-256 generator point (parse-only
        # substrate; real keys live in repro.x509.pem).
        point = b"\x04" + bytes.fromhex(
            "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"
            "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5")
        return der_sequence(algorithm, der_bit_string(point))
    if certificate.key_algorithm is KeyAlgorithm.ED25519:
        algorithm = der_sequence(der_oid(_ED25519_OID))
        return der_sequence(algorithm, der_bit_string(
            _synthetic_bytes(seed, 32)))
    # RSA (and the fallback for unknown algorithms).
    bits = certificate.key_bits or 2048
    modulus = int.from_bytes(_synthetic_bytes(seed, bits // 8), "big")
    modulus |= 1 << (bits - 1)   # full bit length
    modulus |= 1                 # odd
    rsa_key = der_sequence(der_integer(modulus), der_integer(65537))
    algorithm = der_sequence(der_oid(_RSA_OID), der_null())
    return der_sequence(algorithm, der_bit_string(rsa_key))


def _signature_algorithm(certificate: Certificate) -> bytes:
    if certificate.key_algorithm is KeyAlgorithm.ECDSA:
        return der_sequence(der_oid(_ECDSA_SHA256_OID))
    return der_sequence(der_oid(_SHA256_RSA_OID), der_null())


# -- extensions -------------------------------------------------------------------

_BC_OID = "2.5.29.19"
_KU_OID = "2.5.29.15"
_EKU_OID = "2.5.29.37"
_SAN_OID = "2.5.29.17"
_SKI_OID = "2.5.29.14"
_AKI_OID = "2.5.29.35"

_EKU_OIDS = {
    "serverAuth": "1.3.6.1.5.5.7.3.1",
    "clientAuth": "1.3.6.1.5.5.7.3.2",
    "codeSigning": "1.3.6.1.5.5.7.3.3",
    "emailProtection": "1.3.6.1.5.5.7.3.4",
    "OCSPSigning": "1.3.6.1.5.5.7.3.9",
    "anyExtendedKeyUsage": "2.5.29.37.0",
}


def _extension(oid: str, critical: bool, inner: bytes) -> bytes:
    members = [der_oid(oid)]
    if critical:
        members.append(der_boolean(True))
    members.append(der_octet_string(inner))
    return der_sequence(*members)


# Extension profiles are templates: every leaf minted from the same CA
# policy shares one ExtensionSet (frozen, hashable) even though the
# certificates differ in serial/name/validity.  Encoded blocks are reused
# via the memo; the tuple is never mutated by callers.
_EXT_MEMO: BoundedLRU = BoundedLRU(
    65536, hits=DER_EXT_CACHE_HIT, misses=DER_EXT_CACHE_MISS)


def _encode_extensions(ext: ExtensionSet) -> Sequence[bytes]:
    encoded = _EXT_MEMO.get(ext)
    if encoded is None:
        encoded = tuple(_encode_extensions_uncached(ext))
        _EXT_MEMO.put(ext, encoded)
    return encoded


def _encode_extensions_uncached(ext: ExtensionSet) -> List[bytes]:
    encoded: List[bytes] = []
    if ext.basic_constraints is not None:
        bc = ext.basic_constraints
        members = []
        if bc.ca:
            members.append(der_boolean(True))
            if bc.path_len is not None:
                members.append(der_integer(bc.path_len))
        encoded.append(_extension(_BC_OID, bc.critical,
                                  der_sequence(*members)))
    if ext.key_usage is not None:
        ku = ext.key_usage
        bits = 0
        if ku.digital_signature:
            bits |= 0x80
        if ku.key_encipherment:
            bits |= 0x20
        if ku.key_cert_sign:
            bits |= 0x04
        if ku.crl_sign:
            bits |= 0x02
        if bits:
            raw = bytes([bits])
            unused = (raw[0] & -raw[0]).bit_length() - 1
        else:
            raw, unused = b"", 0
        encoded.append(_extension(_KU_OID, ku.critical,
                                  der_bit_string(raw, unused)))
    if ext.extended_key_usage is not None:
        purposes = [der_oid(_EKU_OIDS[p.value])
                    for p in ext.extended_key_usage.purposes]
        encoded.append(_extension(_EKU_OID, ext.extended_key_usage.critical,
                                  der_sequence(*purposes)))
    if ext.subject_alt_name is not None:
        names = [_context(2, name.encode("ascii"), constructed=False)
                 for name in ext.subject_alt_name.dns_names]
        names += [_context(7, bytes(int(p) for p in ip.split(".")),
                           constructed=False)
                  for ip in ext.subject_alt_name.ip_addresses
                  if ip.count(".") == 3]
        encoded.append(_extension(_SAN_OID, ext.subject_alt_name.critical,
                                  der_sequence(*names)))
    if ext.subject_key_id is not None:
        encoded.append(_extension(
            _SKI_OID, ext.subject_key_id.critical,
            der_octet_string(bytes.fromhex(ext.subject_key_id.key_id))))
    if ext.authority_key_id is not None:
        encoded.append(_extension(
            _AKI_OID, ext.authority_key_id.critical,
            der_sequence(_context(
                0, bytes.fromhex(ext.authority_key_id.key_id),
                constructed=False))))
    return encoded


# -- certificate assembly ---------------------------------------------------------------


# Keyed by the Certificate record itself (frozen dataclass, hashable),
# NOT the fingerprint: the fingerprint canonical excludes extensions, so
# an original and a log-reconstructed certificate can share a fingerprint
# while differing in ExtensionSet — and therefore in DER.
_DER_MEMO: BoundedLRU = BoundedLRU(
    65536, hits=DER_CACHE_HIT, misses=DER_CACHE_MISS)


def encode_certificate_der(certificate: Certificate) -> bytes:
    """Render the structured record as parseable X.509 v3 DER, memoized.

    The signature BIT STRING is deterministic filler (it will not verify);
    every name, date, serial, key parameter, and extension is real.
    Certificates are immutable, so each distinct record is encoded once
    per process — the §6.1 overhead pass and PEM export walk the same
    handful of certificates once per chain appearance.
    """
    der = _DER_MEMO.get(certificate)
    if der is None:
        der = _encode_certificate_der_uncached(certificate)
        _DER_MEMO.put(certificate, der)
    return der


def _encode_certificate_der_uncached(certificate: Certificate) -> bytes:
    tbs_members: List[bytes] = []
    tbs_members.append(_context(0, der_integer(certificate.version - 1)))
    tbs_members.append(der_integer(int(certificate.serial, 16)
                                   if certificate.serial else 0))
    tbs_members.append(_signature_algorithm(certificate))
    tbs_members.append(_encode_name(certificate.issuer))
    tbs_members.append(der_sequence(
        der_time(certificate.validity.not_before),
        der_time(certificate.validity.not_after)))
    tbs_members.append(_encode_name(certificate.subject))
    tbs_members.append(_encode_spki(certificate))
    extensions = _encode_extensions(certificate.extensions)
    if extensions:
        tbs_members.append(_context(3, der_sequence(*extensions)))
    tbs = der_sequence(*tbs_members)

    signature_len = (certificate.key_bits // 8
                     if certificate.key_algorithm is KeyAlgorithm.RSA
                     else 72)
    signature = _synthetic_bytes(
        f"sig:{certificate.serial}:{certificate.issuer.rfc4514()}",
        max(signature_len, 64))
    return der_sequence(tbs, _signature_algorithm(certificate),
                        der_bit_string(signature))


def certificate_to_pem(certificate: Certificate) -> str:
    der = encode_certificate_der(certificate)
    body = base64.encodebytes(der).decode("ascii")
    return f"-----BEGIN CERTIFICATE-----\n{body}-----END CERTIFICATE-----\n"


def chain_to_pem(chain: Sequence[Certificate]) -> str:
    """PEM bundle for a whole simulated chain, wire order preserved."""
    return "".join(certificate_to_pem(cert) for cert in chain)

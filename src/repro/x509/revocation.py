"""Revocation substrate: CRLs and an OCSP-style responder.

Chain validation "involves checking issuer–subject name matches, verifying
digital signatures …, and ensuring revocation status and validity periods"
(§2).  The measurement pipeline itself never checked revocation (the logs
carried no status), but the validation-policy substrate supports it so the
library models the full §2 procedure: a :class:`RevocationChecker` backed
by per-issuer CRLs and/or an OCSP responder can be attached to the client
policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from enum import Enum
from typing import Dict, Iterable, Optional, Set, Tuple

from .certificate import Certificate
from .dn import DistinguishedName

__all__ = [
    "RevocationStatus",
    "CertificateRevocationList",
    "OCSPResponder",
    "RevocationChecker",
]


class RevocationStatus(str, Enum):
    GOOD = "good"
    REVOKED = "revoked"
    UNKNOWN = "unknown"


def _dn_key(dn: DistinguishedName) -> tuple:
    return tuple(sorted(dn.normalized()))


@dataclass
class CertificateRevocationList:
    """A CRL: the issuer's signed list of revoked serial numbers."""

    issuer: DistinguishedName
    this_update: datetime
    next_update: datetime
    revoked_serials: Set[str] = field(default_factory=set)

    def revoke(self, certificate: Certificate,
               *, check_issuer: bool = True) -> None:
        if check_issuer and not certificate.issuer.matches(self.issuer):
            raise ValueError(
                f"{certificate.short_name()!r} was not issued by this CRL's "
                f"issuer")
        self.revoked_serials.add(certificate.serial)

    def is_current(self, at: datetime) -> bool:
        return self.this_update <= at <= self.next_update

    def status_of(self, certificate: Certificate, *,
                  at: datetime) -> RevocationStatus:
        if not certificate.issuer.matches(self.issuer):
            return RevocationStatus.UNKNOWN
        if not self.is_current(at):
            return RevocationStatus.UNKNOWN  # stale CRL proves nothing
        if certificate.serial in self.revoked_serials:
            return RevocationStatus.REVOKED
        return RevocationStatus.GOOD


class OCSPResponder:
    """An OCSP-style responder: per-certificate status with freshness."""

    def __init__(self, *, validity: timedelta = timedelta(days=7)):
        self._status: Dict[tuple, Tuple[RevocationStatus, datetime]] = {}
        self.validity = validity

    @staticmethod
    def _key(certificate: Certificate) -> tuple:
        return (_dn_key(certificate.issuer), certificate.serial)

    def set_status(self, certificate: Certificate,
                   status: RevocationStatus, *,
                   produced_at: datetime) -> None:
        self._status[self._key(certificate)] = (status, produced_at)

    def query(self, certificate: Certificate, *,
              at: datetime) -> RevocationStatus:
        entry = self._status.get(self._key(certificate))
        if entry is None:
            return RevocationStatus.UNKNOWN
        status, produced_at = entry
        if at > produced_at + self.validity or at < produced_at:
            return RevocationStatus.UNKNOWN
        return status


class RevocationChecker:
    """Aggregates CRLs and OCSP into the check policies consult.

    OCSP wins when it has a fresh answer (it is more current); CRLs answer
    otherwise; with neither, the status is UNKNOWN and the policy decides
    whether to soft-fail (browsers) or hard-fail.
    """

    def __init__(self, crls: Iterable[CertificateRevocationList] = (),
                 ocsp: Optional[OCSPResponder] = None):
        self._crls: Dict[tuple, CertificateRevocationList] = {}
        for crl in crls:
            self.add_crl(crl)
        self.ocsp = ocsp

    def add_crl(self, crl: CertificateRevocationList) -> None:
        self._crls[_dn_key(crl.issuer)] = crl

    def status_of(self, certificate: Certificate, *,
                  at: datetime) -> RevocationStatus:
        if self.ocsp is not None:
            status = self.ocsp.query(certificate, at=at)
            if status is not RevocationStatus.UNKNOWN:
                return status
        crl = self._crls.get(_dn_key(certificate.issuer))
        if crl is not None:
            return crl.status_of(certificate, at=at)
        return RevocationStatus.UNKNOWN

    def any_revoked(self, chain: Iterable[Certificate], *,
                    at: datetime) -> Optional[Certificate]:
        """First revoked certificate in the chain, or None."""
        for certificate in chain:
            if self.status_of(certificate, at=at) is RevocationStatus.REVOKED:
                return certificate
        return None

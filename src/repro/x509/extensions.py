"""X.509 v3 extension models used by the chain analyzer.

The paper repeatedly leans on extension *presence* semantics — e.g. §4.3
observes that 55.31 % of non-public-DB certificates first presented in a
chain omit ``basicConstraints`` entirely, rather than setting it to a
boolean, which is why the analyzer cannot reliably identify leaves in
non-public chains.  We therefore model extensions with an explicit
"absent" state rather than defaulting missing extensions to ``False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

__all__ = [
    "BasicConstraints",
    "KeyUsage",
    "ExtendedKeyUsage",
    "SubjectAltName",
    "AuthorityKeyIdentifier",
    "SubjectKeyIdentifier",
    "ExtensionSet",
    "EKU",
]


class EKU(str, Enum):
    """Extended key usage purposes relevant to TLS chain analysis."""

    SERVER_AUTH = "serverAuth"
    CLIENT_AUTH = "clientAuth"
    CODE_SIGNING = "codeSigning"
    EMAIL_PROTECTION = "emailProtection"
    OCSP_SIGNING = "OCSPSigning"
    ANY = "anyExtendedKeyUsage"


@dataclass(frozen=True, slots=True)
class BasicConstraints:
    """``basicConstraints`` — marks a certificate as a CA and bounds its path.

    ``ca`` is a real boolean here; absence of the whole extension is
    modelled at the :class:`ExtensionSet` level (``basic_constraints is
    None``), mirroring RFC 5280 §4.2.1.9 and the paper's §4.3 discussion.
    """

    ca: bool
    path_len: Optional[int] = None
    critical: bool = True

    def permits_depth(self, below: int) -> bool:
        """Whether this CA may have ``below`` further CA certificates under it."""
        if not self.ca:
            return False
        if self.path_len is None:
            return True
        return below <= self.path_len


@dataclass(frozen=True, slots=True)
class KeyUsage:
    """``keyUsage`` bit flags (only the bits the analyzer consults)."""

    digital_signature: bool = False
    key_encipherment: bool = False
    key_cert_sign: bool = False
    crl_sign: bool = False
    critical: bool = True

    def can_sign_certificates(self) -> bool:
        return self.key_cert_sign


@dataclass(frozen=True, slots=True)
class ExtendedKeyUsage:
    purposes: tuple[EKU, ...] = ()
    critical: bool = False

    def allows(self, purpose: EKU) -> bool:
        return purpose in self.purposes or EKU.ANY in self.purposes


@dataclass(frozen=True, slots=True)
class SubjectAltName:
    """``subjectAltName`` DNS/IP entries; drives SNI ↔ certificate matching."""

    dns_names: tuple[str, ...] = ()
    ip_addresses: tuple[str, ...] = ()
    critical: bool = False

    def matches_host(self, host: str) -> bool:
        """RFC 6125-style host matching including single-label wildcards."""
        host = host.lower().rstrip(".")
        for name in self.dns_names:
            if _dns_name_matches(name.lower().rstrip("."), host):
                return True
        return host in self.ip_addresses


def _dns_name_matches(pattern: str, host: str) -> bool:
    if pattern == host:
        return True
    if pattern.startswith("*."):
        suffix = pattern[2:]
        if not suffix:
            return False
        head, _, tail = host.partition(".")
        return bool(head) and tail == suffix
    return False


@dataclass(frozen=True, slots=True)
class AuthorityKeyIdentifier:
    key_id: str
    critical: bool = False


@dataclass(frozen=True, slots=True)
class SubjectKeyIdentifier:
    key_id: str
    critical: bool = False


@dataclass(frozen=True, slots=True)
class ExtensionSet:
    """The extensions attached to one certificate.

    Every field is ``None`` when the extension is absent — distinct from an
    extension that is present with default/false contents.
    """

    basic_constraints: Optional[BasicConstraints] = None
    key_usage: Optional[KeyUsage] = None
    extended_key_usage: Optional[ExtendedKeyUsage] = None
    subject_alt_name: Optional[SubjectAltName] = None
    authority_key_id: Optional[AuthorityKeyIdentifier] = None
    subject_key_id: Optional[SubjectKeyIdentifier] = None
    extra: tuple[str, ...] = field(default=())

    def has_basic_constraints(self) -> bool:
        return self.basic_constraints is not None

    def declares_ca(self) -> bool:
        """True only when basicConstraints is present *and* asserts CA=TRUE."""
        return self.basic_constraints is not None and self.basic_constraints.ca

    def declares_leaf(self) -> bool:
        """True only when basicConstraints is present and asserts CA=FALSE."""
        return self.basic_constraints is not None and not self.basic_constraints.ca

    @classmethod
    def for_root(cls, key_id: str) -> "ExtensionSet":
        return cls(
            basic_constraints=BasicConstraints(ca=True, path_len=None),
            key_usage=KeyUsage(key_cert_sign=True, crl_sign=True),
            subject_key_id=SubjectKeyIdentifier(key_id),
        )

    @classmethod
    def for_intermediate(cls, key_id: str, issuer_key_id: str,
                         path_len: Optional[int] = 0) -> "ExtensionSet":
        return cls(
            basic_constraints=BasicConstraints(ca=True, path_len=path_len),
            key_usage=KeyUsage(key_cert_sign=True, crl_sign=True,
                               digital_signature=True),
            subject_key_id=SubjectKeyIdentifier(key_id),
            authority_key_id=AuthorityKeyIdentifier(issuer_key_id),
        )

    @classmethod
    def for_leaf(cls, key_id: str, issuer_key_id: str,
                 dns_names: Iterable[str] = ()) -> "ExtensionSet":
        return cls(
            basic_constraints=BasicConstraints(ca=False, critical=False),
            key_usage=KeyUsage(digital_signature=True, key_encipherment=True),
            extended_key_usage=ExtendedKeyUsage((EKU.SERVER_AUTH, EKU.CLIENT_AUTH)),
            subject_alt_name=SubjectAltName(tuple(dns_names)),
            subject_key_id=SubjectKeyIdentifier(key_id),
            authority_key_id=AuthorityKeyIdentifier(issuer_key_id),
        )

    @classmethod
    def bare(cls) -> "ExtensionSet":
        """No extensions at all — the common non-public-DB issuer style (§4.3)."""
        return cls()

"""Crypto-backed certificates for the Appendix D validation comparison.

The paper validates its issuer–subject methodology against real
key–signature validation using the Python ``cryptography`` package on
12,676 PEM chains retrieved by active scanning (Appendix D.2, Table 5).
This module generates such chains *with real keys and signatures* and can
inject the three fault classes that produce Table 5's disagreement cells:

* ``WRONG_KEY`` — the child's signature does not verify under the parent's
  key (a genuinely broken pair even though the names chain);
* ``TRUNCATED_DER`` — the PEM decodes but the DER is malformed, raising an
  ASN.1 parse error (the paper's single issuer–subject/key–signature
  discrepancy);
* ``UNRECOGNIZED_KEY`` — the parent's SubjectPublicKeyInfo carries an
  algorithm OID the ``cryptography`` package does not recognise
  (the paper's 3 "unrecognized key" chains).

ECDSA P-256 keys are used throughout for speed; the validation logic is
algorithm-agnostic.
"""

from __future__ import annotations

import base64
import datetime as _dt
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

from cryptography import x509 as cx509
from cryptography.hazmat.primitives import hashes, serialization
from cryptography.hazmat.primitives.asymmetric import ec
from cryptography.x509.oid import NameOID

from .certificate import Certificate, CertificateRole, KeyAlgorithm, ValidityPeriod
from .dn import DistinguishedName

__all__ = [
    "FaultType",
    "PemCertificate",
    "CryptoChainBuilder",
    "encode_pem_bundle",
    "decode_pem_bundle",
    "crypto_cert_to_record",
]

#: DER encoding of the id-ecPublicKey OID (1.2.840.10045.2.1).
_EC_PUBKEY_OID = bytes.fromhex("06072a8648ce3d0201")
#: Same-length bogus OID (1.2.840.10045.2.99) — parses, but is unknown.
_BOGUS_PUBKEY_OID = bytes.fromhex("06072a8648ce3d0263")
#: rsaEncryption OID (1.2.840.113549.1.1.1) and a bogus same-length twin.
_RSA_PUBKEY_OID = bytes.fromhex("06092a864886f70d010101")
_BOGUS_RSA_OID = bytes.fromhex("06092a864886f70d010163")

_NAME_OID_MAP = {
    "CN": NameOID.COMMON_NAME,
    "O": NameOID.ORGANIZATION_NAME,
    "OU": NameOID.ORGANIZATIONAL_UNIT_NAME,
    "C": NameOID.COUNTRY_NAME,
    "L": NameOID.LOCALITY_NAME,
    "ST": NameOID.STATE_OR_PROVINCE_NAME,
    "emailAddress": NameOID.EMAIL_ADDRESS,
    "serialNumber": NameOID.SERIAL_NUMBER,
    "DC": NameOID.DOMAIN_COMPONENT,
}
_OID_NAME_MAP = {oid: short for short, oid in _NAME_OID_MAP.items()}


class FaultType(str, Enum):
    NONE = "none"
    WRONG_KEY = "wrong_key"
    TRUNCATED_DER = "truncated_der"
    UNRECOGNIZED_KEY = "unrecognized_key"


@dataclass
class PemCertificate:
    """One certificate's wire form plus bookkeeping for the comparison."""

    der: bytes
    subject: DistinguishedName
    issuer: DistinguishedName
    fault: FaultType = FaultType.NONE

    def pem(self) -> str:
        body = base64.encodebytes(self.der).decode("ascii")
        return f"-----BEGIN CERTIFICATE-----\n{body}-----END CERTIFICATE-----\n"


def _dn_to_x509_name(dn: DistinguishedName) -> cx509.Name:
    attrs = []
    for atv in dn:
        oid = _NAME_OID_MAP.get(atv.attr_type)
        if oid is None:
            raise ValueError(f"unsupported attribute type for crypto cert: {atv.attr_type}")
        attrs.append(cx509.NameAttribute(oid, atv.value))
    return cx509.Name(attrs)


def x509_name_to_dn(x509name: cx509.Name) -> DistinguishedName:
    """Convert a ``cryptography`` Name back into our structured DN."""
    pairs = []
    for attr in x509name:
        short = _OID_NAME_MAP.get(attr.oid, attr.oid.dotted_string)
        pairs.append((short, str(attr.value)))
    return DistinguishedName.from_pairs(pairs)


def crypto_cert_to_record(cert: cx509.Certificate) -> Certificate:
    """Project a real certificate onto the structured record the Zeek-style
    pipeline sees — exactly what the paper's X509.log contained."""
    try:
        pub = cert.public_key()
        if isinstance(pub, ec.EllipticCurvePublicKey):
            algorithm, bits = KeyAlgorithm.ECDSA, pub.curve.key_size
        else:
            from cryptography.hazmat.primitives.asymmetric import rsa
            if isinstance(pub, rsa.RSAPublicKey):
                algorithm, bits = KeyAlgorithm.RSA, pub.key_size
            else:  # pragma: no cover - only EC/RSA generated here
                algorithm, bits = KeyAlgorithm.UNKNOWN, 0
    except Exception:
        algorithm, bits = KeyAlgorithm.UNKNOWN, 0
    return Certificate(
        subject=x509_name_to_dn(cert.subject),
        issuer=x509_name_to_dn(cert.issuer),
        serial=format(cert.serial_number, "x"),
        validity=ValidityPeriod(
            cert.not_valid_before_utc, cert.not_valid_after_utc
        ),
        key_algorithm=algorithm,
        key_bits=bits,
    )


class CryptoChainBuilder:
    """Builds real signed chains (leaf-first) with optional fault injection.

    Key generation dominates runtime, so a small pool of keys is reused
    across certificates; uniqueness of certificates comes from names and
    serials, which is all the validators inspect.

    ``algorithm`` selects the key type: ``"ec"`` (default, fast),
    ``"rsa"``, or ``"mixed"`` (alternating pool) — the validators must be
    algorithm-agnostic, and the mixed mode proves it.
    """

    def __init__(self, *, key_pool_size: int = 8,
                 not_before: Optional[_dt.datetime] = None,
                 not_after: Optional[_dt.datetime] = None,
                 algorithm: str = "ec"):
        if algorithm not in ("ec", "rsa", "mixed"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        pool = max(2, key_pool_size)
        self._keys = []
        for index in range(pool):
            use_rsa = (algorithm == "rsa"
                       or (algorithm == "mixed" and index % 2 == 1))
            if use_rsa:
                from cryptography.hazmat.primitives.asymmetric import rsa
                self._keys.append(rsa.generate_private_key(
                    public_exponent=65537, key_size=2048))
            else:
                self._keys.append(ec.generate_private_key(ec.SECP256R1()))
        self._next_key = 0
        self._serial = 1
        self.not_before = not_before or _dt.datetime(2024, 1, 1, tzinfo=_dt.timezone.utc)
        self.not_after = not_after or _dt.datetime(2026, 1, 1, tzinfo=_dt.timezone.utc)

    def _take_key(self) -> ec.EllipticCurvePrivateKey:
        key = self._keys[self._next_key % len(self._keys)]
        self._next_key += 1
        return key

    def _take_serial(self) -> int:
        self._serial += 1
        return self._serial

    def _build(self, subject: DistinguishedName, issuer: DistinguishedName,
               subject_key: ec.EllipticCurvePrivateKey,
               signing_key: ec.EllipticCurvePrivateKey,
               is_ca: bool) -> bytes:
        builder = (
            cx509.CertificateBuilder()
            .subject_name(_dn_to_x509_name(subject))
            .issuer_name(_dn_to_x509_name(issuer))
            .public_key(subject_key.public_key())
            .serial_number(self._take_serial())
            .not_valid_before(self.not_before)
            .not_valid_after(self.not_after)
            .add_extension(cx509.BasicConstraints(ca=is_ca, path_length=None),
                           critical=True)
        )
        cert = builder.sign(signing_key, hashes.SHA256())
        return cert.public_bytes(serialization.Encoding.DER)

    def build_chain(self, names: Sequence[DistinguishedName], *,
                    fault: FaultType = FaultType.NONE,
                    fault_position: int = 0) -> list[PemCertificate]:
        """Build a leaf-first chain through ``names``.

        ``names[0]`` is the leaf subject; ``names[-1]`` is the (self-signed)
        root subject.  ``fault_position`` indexes the adjacent pair
        (child ``i``, parent ``i+1``) the fault should break; for
        ``TRUNCATED_DER`` it indexes the certificate to damage.
        """
        if not names:
            raise ValueError("chain needs at least one name")
        keys = [self._take_key() for _ in names]
        certs: list[PemCertificate] = []
        for i, subject in enumerate(names):
            parent = i + 1
            if parent < len(names):
                issuer_name, signing_key = names[parent], keys[parent]
            else:
                issuer_name, signing_key = subject, keys[i]
            if fault is FaultType.WRONG_KEY and i == fault_position and parent < len(names):
                # Sign with a key unrelated to the parent certificate's key.
                signing_key = self._rogue_key(exclude=keys)
            der = self._build(subject, issuer_name, keys[i], signing_key,
                              is_ca=i > 0)
            cert_fault = FaultType.NONE
            if fault is FaultType.WRONG_KEY and i == fault_position:
                cert_fault = fault
            if fault is FaultType.TRUNCATED_DER and i == fault_position:
                der = der[:-7]
                cert_fault = fault
            if fault is FaultType.UNRECOGNIZED_KEY and i == fault_position:
                if _EC_PUBKEY_OID in der:
                    der = der.replace(_EC_PUBKEY_OID, _BOGUS_PUBKEY_OID, 1)
                elif _RSA_PUBKEY_OID in der:
                    der = der.replace(_RSA_PUBKEY_OID, _BOGUS_RSA_OID, 1)
                else:  # pragma: no cover - defensive
                    raise RuntimeError("public key OID not found in DER")
                cert_fault = fault
            certs.append(PemCertificate(der=der, subject=subject,
                                        issuer=issuer_name, fault=cert_fault))
        return certs

    def _rogue_key(self, exclude: Sequence[ec.EllipticCurvePrivateKey]):
        for key in self._keys:
            if key not in exclude:
                return key
        return ec.generate_private_key(ec.SECP256R1())


def encode_pem_bundle(chain: Sequence[PemCertificate]) -> str:
    """Concatenate a chain the way ``openssl s_client -showcerts`` prints it."""
    return "".join(cert.pem() for cert in chain)


def decode_pem_bundle(text: str) -> list[bytes]:
    """Split a PEM bundle into DER blobs (tolerates malformed members —
    the bytes are returned as-is for the validator to reject)."""
    blobs: list[bytes] = []
    lines = text.splitlines()
    collecting = False
    body: list[str] = []
    for line in lines:
        if line.strip() == "-----BEGIN CERTIFICATE-----":
            collecting, body = True, []
        elif line.strip() == "-----END CERTIFICATE-----":
            if collecting:
                blobs.append(base64.b64decode("".join(body)))
            collecting = False
        elif collecting:
            body.append(line.strip())
    return blobs

"""Certificate record model.

This mirrors what the paper's pipeline actually had access to: the
*structured* fields Zeek extracts into ``X509.log`` (issuer, subject,
serial, validity, key algorithm/length), **not** raw DER.  Raw-crypto
certificates (with real keys and signatures) live in
:mod:`repro.x509.pem` and are only used for the Appendix D validation
comparison, exactly as in the paper.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from datetime import datetime, timedelta, timezone
from enum import Enum
from typing import Optional

from .dn import DistinguishedName
from .extensions import ExtensionSet

__all__ = ["Certificate", "CertificateRole", "KeyAlgorithm", "ValidityPeriod"]


class CertificateRole(str, Enum):
    """Ground-truth role of a certificate within its issuing hierarchy.

    The analyzer never reads this — it must *infer* structure from the
    issuer/subject fields like the paper does — but the simulator records it
    so tests can check the analyzer's inferences against truth.
    """

    ROOT = "root"
    INTERMEDIATE = "intermediate"
    LEAF = "leaf"


class KeyAlgorithm(str, Enum):
    RSA = "rsa"
    ECDSA = "ecdsa"
    ED25519 = "ed25519"
    DSA = "dsa"
    UNKNOWN = "unknown"


@dataclass(frozen=True, slots=True)
class ValidityPeriod:
    not_before: datetime
    not_after: datetime

    def __post_init__(self) -> None:
        if self.not_after < self.not_before:
            raise ValueError(
                f"notAfter ({self.not_after}) precedes notBefore ({self.not_before})"
            )

    def contains(self, moment: datetime) -> bool:
        return self.not_before <= moment <= self.not_after

    def overlaps(self, other: "ValidityPeriod") -> bool:
        return self.not_before <= other.not_after and other.not_before <= self.not_after

    @property
    def lifetime(self) -> timedelta:
        return self.not_after - self.not_before

    def is_expired(self, at: datetime) -> bool:
        return at > self.not_after

    @classmethod
    def days(cls, start: datetime, days: int) -> "ValidityPeriod":
        return cls(start, start + timedelta(days=days))


@dataclass(frozen=True, slots=True)
class Certificate:
    """One certificate as seen by the measurement pipeline.

    Identity is the SHA-256 ``fingerprint`` of the canonical field encoding;
    two log entries with the same fingerprint are the same certificate, which
    is how the paper de-duplicates 743,993 distinct certificates out of
    millions of log rows.
    """

    subject: DistinguishedName
    issuer: DistinguishedName
    serial: str
    validity: ValidityPeriod
    key_algorithm: KeyAlgorithm = KeyAlgorithm.RSA
    key_bits: int = 2048
    signature_algorithm: str = "sha256WithRSAEncryption"
    extensions: ExtensionSet = field(default_factory=ExtensionSet)
    version: int = 3
    #: Ground truth for the simulator; never consulted by the analyzer.
    true_role: Optional[CertificateRole] = None
    #: Key identifier of the key that actually signed this certificate
    #: (ground truth for cross-sign modelling; the analyzer sees only DNs).
    signing_key_id: Optional[str] = None
    #: Set when the certificate was reconstructed from a log row, so the
    #: identity stays the one the SSL log references.
    fingerprint_override: Optional[str] = None
    #: Lazily computed :attr:`fingerprint`.  Excluded from equality and
    #: repr; ``dataclasses.replace`` re-runs ``__init__`` so a copy with
    #: edited fields starts with a clean memo.
    _fingerprint_memo: Optional[str] = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def fingerprint(self) -> str:
        """SHA-256 over the canonical structured encoding, hex-encoded.

        Serial numbers are factory-unique, so the canonical string (and the
        fingerprint) survives a round trip through an X509 log row.

        Memoized per instance: the workload generator asks for every chain
        member's fingerprint once per simulated connection (SSL rows, tap
        dedup, spec keys), and the canonical string renders two RFC 4514
        names each time — recomputing it dominated generation profiles.
        """
        if self.fingerprint_override is not None:
            return self.fingerprint_override
        memo = self._fingerprint_memo
        if memo is None:
            canonical = "|".join(
                (
                    self.subject.rfc4514(),
                    self.issuer.rfc4514(),
                    self.serial,
                    f"{self.validity.not_before.timestamp():.6f}",
                    f"{self.validity.not_after.timestamp():.6f}",
                    self.key_algorithm.value,
                    str(self.key_bits),
                    self.signature_algorithm,
                )
            )
            memo = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_fingerprint_memo", memo)
        return memo

    @property
    def is_self_signed(self) -> bool:
        """Issuer and subject name are identical — the paper's §4.3 definition."""
        return self.subject.matches(self.issuer)

    def issued(self, other: "Certificate") -> bool:
        """Name-chaining check: does this certificate's subject match
        ``other``'s issuer?  This is the paper's issuer–subject methodology
        (Appendix D.1) — no key material involved."""
        return self.subject.matches(other.issuer)

    def is_valid_at(self, moment: datetime) -> bool:
        return self.validity.contains(moment)

    def with_serial(self, serial: str) -> "Certificate":
        return replace(self, serial=serial)

    def short_name(self) -> str:
        """Human-readable label for reports: CN, else O, else the full DN."""
        return (
            self.subject.common_name
            or self.subject.organization
            or self.subject.rfc4514()
            or "<empty subject>"
        )

    def __repr__(self) -> str:
        return (
            f"Certificate(subject={self.subject.rfc4514()!r}, "
            f"issuer={self.issuer.rfc4514()!r}, serial={self.serial!r})"
        )


def utcnow() -> datetime:
    """Timezone-aware 'now'; isolated for test monkeypatching."""
    return datetime.now(timezone.utc)

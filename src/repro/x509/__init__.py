"""X.509 substrate: distinguished names, certificate records, extensions,
synthetic hierarchy generation, and crypto-backed PEM chains."""

from .certificate import Certificate, CertificateRole, KeyAlgorithm, ValidityPeriod
from .der import certificate_to_pem, chain_to_pem, encode_certificate_der
from .dn import AttributeTypeAndValue, DistinguishedName, DNParseError
from .extensions import (
    BasicConstraints,
    ExtensionSet,
    ExtendedKeyUsage,
    EKU,
    KeyUsage,
    SubjectAltName,
)
from .generation import CertificateFactory, IssuingAuthority, name, DEFAULT_EPOCH
from .revocation import (
    CertificateRevocationList,
    OCSPResponder,
    RevocationChecker,
    RevocationStatus,
)

__all__ = [
    "AttributeTypeAndValue",
    "BasicConstraints",
    "Certificate",
    "CertificateFactory",
    "CertificateRevocationList",
    "CertificateRole",
    "certificate_to_pem",
    "chain_to_pem",
    "encode_certificate_der",
    "DEFAULT_EPOCH",
    "DistinguishedName",
    "DNParseError",
    "EKU",
    "ExtendedKeyUsage",
    "ExtensionSet",
    "IssuingAuthority",
    "KeyAlgorithm",
    "KeyUsage",
    "OCSPResponder",
    "RevocationChecker",
    "RevocationStatus",
    "SubjectAltName",
    "ValidityPeriod",
    "name",
]

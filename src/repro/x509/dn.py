"""Distinguished names (X.501) with RFC 4514 string parsing and formatting.

The paper's analysis pipeline operates on the ``issuer`` and ``subject``
fields exactly as Zeek renders them: RFC 4514 strings such as
``CN=R3,O=Let's Encrypt,C=US``.  This module provides a structured
:class:`DistinguishedName` so that matching, normalisation, and attribute
extraction do not devolve into ad hoc string surgery.

Only the escaping rules that actually appear in RFC 4514 strings are
implemented: backslash escapes for the special characters ``, + " \\ < > ;``,
leading ``#``/space and trailing space, and two-hex-digit escapes.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from ..obs import instruments
from ..obs.cache import BoundedLRU

__all__ = [
    "AttributeTypeAndValue",
    "DistinguishedName",
    "DNParseError",
    "OID_NAMES",
]

#: Attribute types commonly found in certificate subject/issuer fields,
#: mapped from dotted OIDs to their RFC 4514 short names.
OID_NAMES: Mapping[str, str] = {
    "2.5.4.3": "CN",
    "2.5.4.6": "C",
    "2.5.4.7": "L",
    "2.5.4.8": "ST",
    "2.5.4.9": "STREET",
    "2.5.4.10": "O",
    "2.5.4.11": "OU",
    "2.5.4.5": "serialNumber",
    "2.5.4.12": "title",
    "2.5.4.42": "GN",
    "2.5.4.4": "SN",
    "0.9.2342.19200300.100.1.25": "DC",
    "0.9.2342.19200300.100.1.1": "UID",
    "1.2.840.113549.1.9.1": "emailAddress",
}

_SPECIALS = {",", "+", '"', "\\", "<", ">", ";"}


class DNParseError(ValueError):
    """Raised when an RFC 4514 string cannot be parsed."""


@dataclass(frozen=True, slots=True)
class AttributeTypeAndValue:
    """A single ``type=value`` assertion inside a relative distinguished name."""

    attr_type: str
    value: str

    def rfc4514(self) -> str:
        """Render as an RFC 4514 ``type=value`` string with escaping."""
        return f"{self.attr_type}={_escape_value(self.value)}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.rfc4514()


def _hex_escape(char: str) -> str:
    """Escape one character as RFC 4514 hex pairs over its UTF-8 bytes."""
    return "".join(f"\\{byte:02x}" for byte in char.encode("utf-8"))


def _needs_hex_escape(char: str) -> bool:
    # Control characters and non-ASCII whitespace would be mangled by
    # whitespace trimming (or are plain unprintable); hex-escape them.
    code = ord(char)
    return code < 0x20 or code == 0x7F or (char.isspace() and char != " ")


def _escape_value(value: str) -> str:
    if not value:
        return value
    out: list[str] = []
    for index, char in enumerate(value):
        if char in _SPECIALS:
            out.append("\\" + char)
        elif char == "#" and index == 0:
            out.append("\\#")
        elif char == " " and index in (0, len(value) - 1):
            out.append("\\ ")
        elif _needs_hex_escape(char):
            out.append(_hex_escape(char))
        else:
            out.append(char)
    return "".join(out)


def _unescape_value(raw: str) -> str:
    out = bytearray()
    i = 0
    while i < len(raw):
        char = raw[i]
        if char == "\\":
            if i + 1 >= len(raw):
                raise DNParseError(f"dangling escape in value: {raw!r}")
            nxt = raw[i + 1]
            if nxt in _SPECIALS or nxt in ("#", " ", "="):
                out.extend(nxt.encode("utf-8"))
                i += 2
            else:
                hex_pair = raw[i + 1 : i + 3]
                if len(hex_pair) == 2 and all(c in "0123456789abcdefABCDEF" for c in hex_pair):
                    out.append(int(hex_pair, 16))
                    i += 3
                else:
                    raise DNParseError(f"invalid escape \\{nxt} in value: {raw!r}")
        else:
            out.extend(char.encode("utf-8"))
            i += 1
    try:
        return out.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise DNParseError(f"hex escapes do not decode as UTF-8: {raw!r}") from exc


def _split_unescaped(raw: str, separator: str) -> list[str]:
    """Split ``raw`` on ``separator`` characters that are not backslash-escaped."""
    parts: list[str] = []
    current: list[str] = []
    i = 0
    while i < len(raw):
        char = raw[i]
        if char == "\\" and i + 1 < len(raw):
            current.append(char)
            current.append(raw[i + 1])
            i += 2
            continue
        if char == separator:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
        i += 1
    parts.append("".join(current))
    return parts


class DistinguishedName:
    """An ordered sequence of attribute assertions forming an X.501 name.

    Instances are immutable, hashable, and compare by their normalised
    attribute sequence, so they can key dictionaries that join certificates
    by issuer/subject (the core operation of the paper's chain analyzer).
    """

    __slots__ = ("_attrs", "_hash", "_normalized", "_sorted_normalized",
                 "_rfc4514")

    def __init__(self, attrs: Iterable[AttributeTypeAndValue]):
        self._attrs: tuple[AttributeTypeAndValue, ...] = tuple(attrs)
        self._hash = hash(self._attrs)
        # Lazy caches: name matching is the hottest operation in the whole
        # pipeline (hundreds of millions of calls over a year of logs).
        self._normalized: tuple[tuple[str, str], ...] | None = None
        self._sorted_normalized: tuple[tuple[str, str], ...] | None = None
        self._rfc4514: str | None = None

    # -- construction -----------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[str, str]]) -> "DistinguishedName":
        """Build from ``(attr_type, value)`` pairs, most-specific first."""
        return cls(AttributeTypeAndValue(t, v) for t, v in pairs)

    @classmethod
    def parse(cls, text: str) -> "DistinguishedName":
        """Parse an RFC 4514 string such as ``CN=R3,O=Let's Encrypt,C=US``.

        Multi-valued RDNs (``+``-joined) are flattened in order; Zeek does the
        same when rendering issuer/subject fields.

        Results are memoized in a bounded LRU keyed by the interned input
        string: a campus corpus repeats the same few thousand issuer and
        subject strings across millions of rows, so almost every call
        after warm-up is a dict hit instead of a character-level parse.
        Instances are immutable, so sharing one object per distinct input
        is safe (and makes repeat-name comparisons pointer-fast).
        """
        text = sys.intern(text)
        cached = _PARSE_CACHE.get(text)
        if cached is not None:
            return cached
        parsed = cls._parse_uncached(text)
        _PARSE_CACHE.put(text, parsed)
        return parsed

    @classmethod
    def _parse_uncached(cls, text: str) -> "DistinguishedName":
        text = _strip_unescaped_spaces(text.strip("\r\n"))
        if not text:
            return cls(())
        attrs: list[AttributeTypeAndValue] = []
        for rdn in _split_unescaped(text, ","):
            for atv in _split_unescaped(rdn, "+"):
                atv = _strip_unescaped_spaces(atv)
                if not atv:
                    raise DNParseError(f"empty RDN component in {text!r}")
                eq = _find_unescaped_equals(atv)
                if eq < 0:
                    raise DNParseError(f"missing '=' in RDN component {atv!r}")
                attr_type = atv[:eq].strip()
                if not attr_type:
                    raise DNParseError(f"empty attribute type in {atv!r}")
                attr_type = OID_NAMES.get(attr_type, attr_type)
                value = _unescape_value(_strip_unescaped_spaces(atv[eq + 1 :]))
                attrs.append(AttributeTypeAndValue(attr_type, value))
        return cls(attrs)

    # -- accessors ---------------------------------------------------------

    @property
    def attributes(self) -> tuple[AttributeTypeAndValue, ...]:
        return self._attrs

    def get(self, attr_type: str) -> str | None:
        """Return the first value for ``attr_type`` (case-insensitive type match)."""
        wanted = attr_type.lower()
        for atv in self._attrs:
            if atv.attr_type.lower() == wanted:
                return atv.value
        return None

    def get_all(self, attr_type: str) -> list[str]:
        wanted = attr_type.lower()
        return [a.value for a in self._attrs if a.attr_type.lower() == wanted]

    @property
    def common_name(self) -> str | None:
        return self.get("CN")

    @property
    def organization(self) -> str | None:
        return self.get("O")

    @property
    def organizational_unit(self) -> str | None:
        return self.get("OU")

    @property
    def country(self) -> str | None:
        return self.get("C")

    def is_empty(self) -> bool:
        return not self._attrs

    # -- rendering / comparison --------------------------------------------

    def rfc4514(self) -> str:
        """Render in RFC 4514 order (as stored; Zeek stores most-specific first).

        Memoized per instance: generation renders every certificate's
        subject and issuer repeatedly (plan ids, fingerprints, x509 rows,
        SPKI seeds), and instances are shared via the parse memo, so the
        character-level escape walk runs once per distinct name object.
        """
        if self._rfc4514 is None:
            self._rfc4514 = ",".join(a.rfc4514() for a in self._attrs)
        return self._rfc4514

    def normalized(self) -> tuple[tuple[str, str], ...]:
        """Case-folded, order-preserving key used for issuer–subject matching.

        RFC 5280 name matching is case-insensitive for printable strings;
        folding here prevents spurious mismatches between CAs that render
        the same name with different capitalisation.
        """
        if self._normalized is None:
            self._normalized = tuple(
                (a.attr_type.upper(), a.value.casefold())
                for a in self._attrs)
        return self._normalized

    def _sorted_key(self) -> tuple[tuple[str, str], ...]:
        if self._sorted_normalized is None:
            key = tuple(sorted(self.normalized()))
            # Intern the key: thousands of certificates repeat the same
            # issuer DN, and downstream indexes (interception name keys,
            # cross-sign disclosures, leaf-like counts) use these tuples as
            # dict keys — sharing one object per distinct name makes those
            # hash-compares pointer-equal fast paths and stops each parsed
            # DN from carrying its own copy.  The table is bounded by the
            # corpus's distinct-name cardinality (~50k in the paper).
            self._sorted_normalized = _SORTED_KEY_INTERN.setdefault(key, key)
        return self._sorted_normalized

    def sorted_key(self) -> tuple[tuple[str, str], ...]:
        """Order-insensitive normalized key (interned).

        Equal for any two DNs that :meth:`matches` treats as the same
        name, which makes it the canonical dict key for name-indexed
        structures (issuer counts, disclosure maps, interception keys).
        """
        return self._sorted_key()

    def matches(self, other: "DistinguishedName") -> bool:
        """RFC 5280-style name match: same attributes ignoring case and order."""
        return self._sorted_key() == other._sorted_key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistinguishedName):
            return NotImplemented
        return self._attrs == other._attrs

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self) -> Iterator[AttributeTypeAndValue]:
        return iter(self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    def __str__(self) -> str:
        return self.rfc4514()

    def __repr__(self) -> str:
        return f"DistinguishedName({self.rfc4514()!r})"


#: Shared storage for sorted normalized keys; see ``_sorted_key``.
_SORTED_KEY_INTERN: dict[tuple, tuple] = {}

#: DN-parse memo.  65,536 entries × two names per certificate comfortably
#: covers the paper's 5,047 issuer / ~50k distinct subject universe while
#: bounding memory on adversarial input; hit rates are observable via
#: ``repro_dn_parse_cache_lookups_total`` (docs/PERFORMANCE.md).
_PARSE_CACHE: BoundedLRU[str, DistinguishedName] = BoundedLRU(
    65536,
    hits=instruments.DN_PARSE_CACHE_HIT,
    misses=instruments.DN_PARSE_CACHE_MISS)


def _strip_unescaped_spaces(raw: str) -> str:
    """Strip surrounding spaces, preserving a trailing backslash-escaped one."""
    raw = raw.lstrip(" ")
    while raw.endswith(" "):
        # Count the backslashes before the final space; an odd number means
        # the space is escaped and must stay.
        backslashes = 0
        for char in reversed(raw[:-1]):
            if char != "\\":
                break
            backslashes += 1
        if backslashes % 2 == 1:
            break
        raw = raw[:-1]
    return raw


def _find_unescaped_equals(raw: str) -> int:
    i = 0
    while i < len(raw):
        if raw[i] == "\\":
            i += 2
            continue
        if raw[i] == "=":
            return i
        i += 1
    return -1

"""repro.faults — deterministic, seed-driven fault injection.

``plan``
    :class:`FaultPlan` (declarative per-subsystem fault rates, parseable
    from ``--fault-plan`` / ``REPRO_FAULT_PLAN`` specs) and the ambient
    install/active machinery.
``injector``
    :class:`FaultInjector` (SHA-256 per-record decisions — reproducible,
    stream-independent) and :class:`FlakyCTIndex`.

Nothing here injects anything unless a plan with nonzero rates is
constructed and handed (or ambiently installed) to a subsystem; the
default is a perfectly healthy world.
"""

from __future__ import annotations

from .injector import FaultInjector, FlakyCTIndex
from .plan import (
    NO_FAULTS,
    FaultPlan,
    active_plan,
    clear_plan,
    install_plan,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FlakyCTIndex",
    "NO_FAULTS",
    "active_plan",
    "clear_plan",
    "install_plan",
]

"""Fault plans: a declarative, seed-driven description of what should fail.

Web-PKI measurement treats partial failure as the normal case — servers
vanish between passive window and revisit, CT frontends rate-limit, and a
year of Zeek logs contains truncated rows.  A :class:`FaultPlan` makes
those failure modes *reproducible*: it names per-subsystem fault rates and
a seed, and :class:`~repro.faults.injector.FaultInjector` turns the plan
into deterministic per-record decisions.  Two runs with the same plan
inject exactly the same faults.

Plans can be parsed from a compact ``key=value,key=value`` spec (the CLI's
``--fault-plan`` flag and the ``REPRO_FAULT_PLAN`` environment variable),
and a process-wide *ambient* plan can be installed so deep call sites
(e.g. the scanner inside the §5 revisit) pick it up without threading a
parameter through every layer.  Nothing installs an ambient plan by
default — the pipeline is fault-free unless the operator asks otherwise.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Mapping, Optional

__all__ = ["FaultPlan", "NO_FAULTS", "install_plan", "clear_plan",
           "active_plan"]

#: Environment variable the CLI consults for an ambient plan spec.
PLAN_ENV_VAR = "REPRO_FAULT_PLAN"


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Per-subsystem fault rates (each in ``[0, 1]``) plus the plan seed."""

    seed: int | str = 0
    #: Active scans: connection timed out (retryable).
    scan_timeout_rate: float = 0.0
    #: Active scans: connection reset mid-handshake (retryable).
    scan_reset_rate: float = 0.0
    #: Active scans: handshake succeeds but is pathologically slow.
    scan_slow_handshake_rate: float = 0.0
    #: Active scans: server truncates the delivered chain by one certificate.
    scan_truncated_chain_rate: float = 0.0
    #: CT index: lookup fails as if crt.sh were unavailable.
    ct_outage_rate: float = 0.0
    #: Zeek reader: a data row arrives garbled (extra/garbage column).
    zeek_corrupt_rate: float = 0.0
    #: Zeek reader: a data row arrives truncated mid-line.
    zeek_truncate_rate: float = 0.0
    #: Pool workers: the worker process dies (``os._exit``) at task start,
    #: as a segfault or OOM kill would — the driver sees BrokenProcessPool.
    worker_crash_rate: float = 0.0
    #: Pool workers: the worker stalls at task start without progressing,
    #: so only a per-task deadline (``--task-timeout``) can recover it.
    worker_hang_rate: float = 0.0

    def __post_init__(self) -> None:
        for name, value in self.rates().items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"fault rate {name}={value!r} must be within [0, 1]")

    def rates(self) -> dict[str, float]:
        """Every rate field by name (excludes ``seed``)."""
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "seed"}

    def any(self) -> bool:
        """True when at least one fault rate is nonzero."""
        return any(rate > 0.0 for rate in self.rates().values())

    @property
    def scan_failure_rate(self) -> float:
        """Combined probability one scan attempt fails retryably."""
        return self.scan_timeout_rate + self.scan_reset_rate

    @classmethod
    def parse(cls, spec: str, *, seed: int | str = 0) -> "FaultPlan":
        """Parse a ``key=value,key=value`` spec (``seed=`` may appear too).

        >>> FaultPlan.parse("zeek_corrupt_rate=0.05,scan_timeout_rate=0.1")
        ... # doctest: +SKIP
        """
        plan = cls(seed=seed)
        valid = {f.name for f in fields(cls)}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(
                    f"fault-plan entry {part!r} is not key=value")
            if key not in valid:
                raise ValueError(
                    f"unknown fault-plan key {key!r}; valid keys: "
                    f"{', '.join(sorted(valid))}")
            value: int | str | float
            if key == "seed":
                value = raw.strip()
            else:
                try:
                    value = float(raw)
                except ValueError:
                    raise ValueError(
                        f"fault-plan rate {key}={raw!r} is not a number")
            plan = replace(plan, **{key: value})
        return plan

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None,
                 *, seed: int | str = 0) -> Optional["FaultPlan"]:
        """Plan from ``REPRO_FAULT_PLAN``, or ``None`` when unset/empty."""
        environ = os.environ if environ is None else environ
        spec = environ.get(PLAN_ENV_VAR, "").strip()
        if not spec:
            return None
        return cls.parse(spec, seed=seed)


#: The default, all-zero plan: injects nothing.
NO_FAULTS = FaultPlan()

_ambient: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as the process-wide ambient plan (``None`` clears)."""
    global _ambient
    _ambient = plan if plan is not None and plan.any() else None


def clear_plan() -> None:
    install_plan(None)


def active_plan() -> FaultPlan:
    """The installed ambient plan, or :data:`NO_FAULTS`."""
    return _ambient if _ambient is not None else NO_FAULTS

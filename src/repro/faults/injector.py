"""Deterministic fault injection driven by a :class:`~repro.faults.plan.FaultPlan`.

Every decision is a pure function of ``(plan seed, scope, key, attempt)``
via SHA-256 — no shared RNG stream, so injecting a fault in one subsystem
never perturbs the draws of another, and a retried operation sees a fresh
(but reproducible) draw per attempt.  That property is what makes the
chaos CI job and the resilience tests exactly repeatable.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..obs import instruments
from .plan import FaultPlan, NO_FAULTS

__all__ = ["FaultInjector", "FlakyCTIndex"]

#: One draw maps to 53 bits of uniform [0, 1).
_DENOM = float(1 << 53)


class FaultInjector:
    """Turns a plan's rates into per-record, per-attempt fault decisions."""

    def __init__(self, plan: FaultPlan = NO_FAULTS):
        self.plan = plan

    def _draw(self, scope: str, key: str, attempt: int = 0) -> float:
        """Uniform [0, 1) from the (seed, scope, key, attempt) tuple."""
        token = f"{self.plan.seed}:{scope}:{key}:{attempt}".encode()
        digest = hashlib.sha256(token).digest()
        return (int.from_bytes(digest[:8], "big") >> 11) / _DENOM

    def _record(self, kind: str) -> None:
        """Account one injected fault.  Subclasses may redirect this —
        the parallel ingest workers tally locally so the driver can emit
        the canonical metric once, independent of worker count."""
        instruments.FAULTS_INJECTED.inc(kind=kind)

    # -- active scanning --------------------------------------------------------

    def scan_fault(self, server_id: str, attempt: int = 1) -> Optional[str]:
        """The fault (if any) this scan attempt hits.

        Returns ``"timeout"`` / ``"reset"`` (connection-level, retryable),
        ``"slow_handshake"`` / ``"truncated_chain"`` (degraded but
        answering), or ``None``.  A single draw is partitioned across the
        configured rates so the kinds are mutually exclusive per attempt.
        """
        plan = self.plan
        if not (plan.scan_timeout_rate or plan.scan_reset_rate
                or plan.scan_slow_handshake_rate
                or plan.scan_truncated_chain_rate):
            return None
        draw = self._draw("scan", server_id, attempt)
        for kind, rate in (
                ("timeout", plan.scan_timeout_rate),
                ("reset", plan.scan_reset_rate),
                ("slow_handshake", plan.scan_slow_handshake_rate),
                ("truncated_chain", plan.scan_truncated_chain_rate)):
            if rate and draw < rate:
                self._record(f"scan_{kind}")
                return kind
            draw -= rate
        return None

    # -- pool workers -----------------------------------------------------------

    def worker_fault(self, task_id: str, attempt: int = 1) -> Optional[str]:
        """The infrastructure fault (if any) this task attempt hits.

        Returns ``"crash"`` (the worker process dies), ``"hang"`` (the
        worker stalls until a deadline recovers it), or ``None``.  Keyed
        by (task id, attempt): a retried task draws afresh, so a bounded
        retry deterministically clears a sub-1.0 rate, while rate 1.0
        exercises the quarantine + serial-fallback path.  A single draw
        is partitioned across both rates so the kinds are mutually
        exclusive per attempt.
        """
        plan = self.plan
        if not (plan.worker_crash_rate or plan.worker_hang_rate):
            return None
        draw = self._draw("worker", task_id, attempt)
        for kind, rate in (("crash", plan.worker_crash_rate),
                           ("hang", plan.worker_hang_rate)):
            if rate and draw < rate:
                self._record(f"worker_{kind}")
                return kind
            draw -= rate
        return None

    # -- CT ---------------------------------------------------------------------

    def ct_unavailable(self, key: str) -> bool:
        """True when this CT lookup should fail as a remote outage."""
        rate = self.plan.ct_outage_rate
        if rate and self._draw("ct", key) < rate:
            self._record("ct_outage")
            return True
        return False

    # -- Zeek ingest ------------------------------------------------------------

    def corrupt_line(self, line: str, lineno: int) -> Optional[str]:
        """The corrupted form of a data row, or ``None`` to leave it alone.

        ``zeek_corrupt_rate`` appends a garbage column (guaranteed column
        count mismatch); ``zeek_truncate_rate`` cuts the row mid-line, as a
        crashed worker or full disk would.
        """
        plan = self.plan
        # Zero-rate fast path: a hash draw per row is measurable on a
        # 40M-row ingest, so an injector with no Zeek faults must be free.
        if not (plan.zeek_corrupt_rate or plan.zeek_truncate_rate):
            return None
        draw = self._draw("zeek", str(lineno))
        if plan.zeek_corrupt_rate and draw < plan.zeek_corrupt_rate:
            self._record("zeek_corrupt")
            return line + "\t\x00garbled"
        draw -= plan.zeek_corrupt_rate
        if plan.zeek_truncate_rate and draw < plan.zeek_truncate_rate:
            self._record("zeek_truncate")
            return line[: max(1, len(line) // 3)]
        return None


class FlakyCTIndex:
    """A CT index whose lookups can fail like a remote crt.sh frontend.

    Wraps any object with the :class:`~repro.ct.crtsh.CrtShIndex` query
    surface; drawn outages raise
    :class:`~repro.resilience.errors.CTUnavailableError` so callers
    exercise their retry/breaker path.
    """

    def __init__(self, inner, injector: FaultInjector):
        self._inner = inner
        self._injector = injector

    def _check(self, domain: str) -> None:
        if self._injector.ct_unavailable(domain):
            from ..resilience.errors import CTUnavailableError
            raise CTUnavailableError(
                f"CT index unavailable for {domain!r} (injected outage)")

    def records_for_domain(self, domain: str):
        self._check(domain)
        return self._inner.records_for_domain(domain)

    def issuers_for_domain(self, domain: str, overlapping=None):
        self._check(domain)
        return self._inner.issuers_for_domain(domain, overlapping)

    def knows_domain(self, domain: str) -> bool:
        self._check(domain)
        return self._inner.knows_domain(domain)

    def contains_certificate(self, certificate) -> bool:
        return self._inner.contains_certificate(certificate)

    def __len__(self) -> int:
        return len(self._inner)

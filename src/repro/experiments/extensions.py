"""Extension experiments beyond the paper's tables and figures.

* ``section6-overhead`` — quantifies §6.1's (qualitative) claim that
  unnecessary certificates cost bandwidth and latency;
* ``extension-survey`` — implements §6.3's proposed future work: an
  IP-space-wide active scan joined with passive usage statistics;
* ``extension-issuers`` — the Appendix-F issuer pivot: who issues the
  non-public leaves and how concentrated each issuer population is.
"""

from __future__ import annotations

from ..campus.dataset import CampusDataset
from ..core.categorization import ChainCategory
from ..core.issuers import concentration_index, issuer_statistics
from ..core.overhead import estimate_overhead
from ..core.serverchains import ChainChangeKind, analyze_multi_chain_servers
from ..core.timeline import churn_summary, monthly_activity
from ..scan.survey import run_survey
from .base import ExperimentResult, comparison_table, experiment

__all__ = ["run_overhead", "run_survey_experiment", "run_issuers",
           "run_timeline", "run_multichain"]


@experiment("section6-overhead")
def run_overhead(dataset: CampusDataset) -> ExperimentResult:
    result = dataset.analyze()
    hybrid = result.categorized.chains(ChainCategory.HYBRID)
    report = estimate_overhead(hybrid, disclosures=dataset.disclosures)
    rows = [
        ["chains carrying unnecessary certificates",
         "70 (+ leading-leaf cases)", report.chains_with_unnecessary, ""],
        ["connections paying the overhead", "-",
         f"{report.connections_affected:,}", ""],
        ["mean wasted bytes per affected handshake", "-",
         f"{report.wasted_bytes_per_affected_handshake:,.0f} B", ""],
        ["total wasted transfer", "-",
         f"{report.wasted_kib_total:,.1f} KiB", "over the whole year"],
        ["handshakes pushed over initcwnd", "-",
         f"{report.extra_round_trips:,}",
         ">= +1 RTT each (RFC 6928 10-segment window)"],
    ]
    rendered = comparison_table(
        "§6.1 extension — cost of unnecessary certificates", rows)
    return ExperimentResult("section6-overhead", "Unnecessary-cert overhead",
                            rendered, {"report": report})


@experiment("extension-survey")
def run_survey_experiment(dataset: CampusDataset) -> ExperimentResult:
    report = run_survey(dataset, seed=dataset.seed)
    flat = report.share_by_mix(weighted=False)
    weighted = report.share_by_mix(weighted=True)
    rows = [
        ["endpoints scanned", "entire fleet", report.endpoints, ""],
    ]
    for mix in ("public", "non-public", "hybrid"):
        rows.append([
            f"{mix} chains",
            f"{flat.get(mix, 0.0):.1f}% of endpoints",
            f"{weighted.get(mix, 0.0):.1f}% of connections",
            "usage weighting changes the picture",
        ])
    rows.append(["broken chains (endpoint / usage view)",
                 f"{report.broken_share():.2f}%",
                 f"{report.broken_share(weighted=True):.2f}%", ""])
    rows.append(["chains with unnecessary certs (endpoint / usage)",
                 f"{report.unnecessary_share():.2f}%",
                 f"{report.unnecessary_share(weighted=True):.2f}%", ""])
    rendered = comparison_table(
        "§6.3 extension — usage-weighted full-fleet survey", rows,
        headers=["metric", "endpoint view", "usage-weighted view", "note"])
    return ExperimentResult("extension-survey", "Usage-weighted survey",
                            rendered, {"report": report})


@experiment("extension-issuers")
def run_issuers(dataset: CampusDataset) -> ExperimentResult:
    result = dataset.analyze()
    classifier = result.classifier
    rows = []
    measured = {}
    for category in (ChainCategory.NON_PUBLIC_ONLY, ChainCategory.HYBRID,
                     ChainCategory.INTERCEPTION):
        chains = result.categorized.chains(category)
        stats = issuer_statistics(chains, classifier, leaf_only=True)
        hhi = concentration_index(stats)
        top = stats[0] if stats else None
        rows.append([
            f"{category.value}: distinct leaf issuers", "-", len(stats), ""])
        rows.append([
            f"{category.value}: issuer concentration (HHI)", "-",
            f"{hhi:.4f}",
            "fragmented" if hhi < 0.05 else "concentrated"])
        if top is not None:
            rows.append([
                f"{category.value}: top leaf issuer", "-",
                f"{top.display_name} ({top.chains} chains)", ""])
        measured[category.value] = {"issuers": len(stats), "hhi": hhi}
    rendered = comparison_table(
        "Appendix F extension — issuer population statistics", rows)
    return ExperimentResult("extension-issuers", "Issuer statistics",
                            rendered, measured)


@experiment("extension-timeline")
def run_timeline(dataset: CampusDataset) -> ExperimentResult:
    """Monthly chain activity across the 12-month window (§3.1's span)."""
    result = dataset.analyze()
    chains = list(result.chains.values())
    buckets = monthly_activity(chains)
    churn = churn_summary(chains)
    rows = [["observation span", "2020-09 .. 2021-08",
             f"{buckets[0].label} .. {buckets[-1].label}" if buckets else "-",
             ""]]
    for bucket in buckets:
        rows.append([f"month {bucket.label}", "-",
                     f"{bucket.active_chains:,} active / "
                     f"{bucket.new_chains:,} new", ""])
    rows.append(["median chain active span", "-",
                 f"{churn['median_active_days']:.0f} days", ""])
    rows.append(["chains seen on one day only", "-",
                 f"{churn['one_shot_share_pct']:.1f}%", ""])
    rendered = comparison_table(
        "Extension — monthly chain activity over the measurement year", rows)
    return ExperimentResult("extension-timeline", "Monthly activity",
                            rendered, {"months": buckets, "churn": churn})


@experiment("extension-multichain")
def run_multichain(dataset: CampusDataset) -> ExperimentResult:
    """Servers presenting multiple distinct hybrid chains (§4.2's 19)."""
    result = dataset.analyze()
    hybrid = result.categorized.chains(ChainCategory.HYBRID)
    report = analyze_multi_chain_servers(hybrid,
                                         disclosures=dataset.disclosures)
    counts = report.change_counts()
    rows = [
        ["servers presenting multiple hybrid chains", 19,
         report.multi_chain_servers, ""],
        ["caused by leaf replacement", "factor (1)",
         counts.get(ChainChangeKind.LEAF_REPLACEMENT, 0), ""],
        ["caused by different unnecessary certificates", "factor (2)",
         counts.get(ChainChangeKind.DIFFERENT_UNNECESSARY, 0), ""],
        ["restructured / other", "-",
         counts.get(ChainChangeKind.RESTRUCTURED, 0), ""],
    ]
    rendered = comparison_table(
        "§4.2 extension — multi-chain servers and why their chains differ",
        rows)
    return ExperimentResult("extension-multichain", "Multi-chain servers",
                            rendered, {"report": report, "counts": counts})

"""One experiment per paper table/figure, plus ablations and the CLI.

Importing this package registers every experiment; use
:func:`repro.experiments.run_experiment` or the ``certchain-analyze`` CLI.
"""

from .base import ExperimentResult, comparison_table, registry, run_experiment
from . import (  # noqa: F401  (register experiments)
    ablations,
    extensions,
    figures,
    sections,
    table5,
    tables,
)

__all__ = [
    "ExperimentResult",
    "comparison_table",
    "registry",
    "run_experiment",
]

"""Command-line interface: ``certchain-analyze``.

Two modes:

* **simulate** (default) — build the synthetic campus dataset and run any
  or all registered experiments, printing paper-vs-measured tables;
* **logs** — analyze real (or simulated) Zeek ``ssl.log``/``x509.log``
  files with the chain-structure pipeline and print the category summary,
  which is what a network operator would point this tool at.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..campus.dataset import cached_campus_dataset
from ..core.categorization import ChainCategory
from ..core.pipeline import ChainStructureAnalyzer
from ..core.report import render_table
from ..zeek.format import read_zeek_log
from ..zeek.records import SSLRecord, X509Record
from ..zeek.tap import join_logs
from .base import registry, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="certchain-analyze",
        description="Certificate chain structure analysis "
                    "(IMC '25 reproduction)")
    parser.add_argument("--seed", default="0",
                        help="deterministic simulation seed (default 0)")
    parser.add_argument("--scale", default="small",
                        choices=("small", "default"),
                        help="simulation scale preset")
    parser.add_argument("--experiment", "-e", action="append",
                        dest="experiments", metavar="ID",
                        help="experiment id (repeatable); 'all' for every "
                             "registered experiment; omit to list ids")
    parser.add_argument("--ssl-log", help="analyze a Zeek ssl.log instead "
                                          "of simulating")
    parser.add_argument("--x509-log", help="x509.log paired with --ssl-log")
    return parser


def _analyze_logs(ssl_path: str, x509_path: str) -> int:
    _, ssl_rows = read_zeek_log(ssl_path)
    _, x509_rows = read_zeek_log(x509_path)
    ssl_records = [SSLRecord.from_row(r) for r in ssl_rows]
    x509_records = [X509Record.from_row(r) for r in x509_rows]
    joined = join_logs(ssl_records, x509_records)
    # Without a trust-store snapshot every issuer is non-public; callers
    # embedding the library can supply their own registry.
    from ..truststores import build_public_pki
    analyzer = ChainStructureAnalyzer(build_public_pki().registry)
    result = analyzer.analyze_connections(joined)
    rows = [[row["category"], row["chains"], row["connections"],
             row["client_ips"]]
            for row in result.categorized.summary_rows()]
    print(render_table(["category", "chains", "connections", "client IPs"],
                       rows, title=f"Chain categories in {ssl_path}"))
    print()
    print(f"distinct certificates: {len(x509_records):,}")
    print(f"hybrid chains: "
          f"{result.categorized.chain_count(ChainCategory.HYBRID):,}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.ssl_log or args.x509_log:
        if not (args.ssl_log and args.x509_log):
            parser.error("--ssl-log and --x509-log must be given together")
        return _analyze_logs(args.ssl_log, args.x509_log)

    known = sorted(registry())
    if not args.experiments:
        print("Registered experiments:")
        for exp_id in known:
            print(f"  {exp_id}")
        print("\nRun with -e <id> (or -e all). Example:\n"
              "  certchain-analyze --scale small -e table3 -e section5")
        return 0

    wanted = known if "all" in args.experiments else args.experiments
    dataset = cached_campus_dataset(seed=args.seed, scale=args.scale)
    status = 0
    for exp_id in wanted:
        try:
            result = run_experiment(exp_id, dataset)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            status = 2
            continue
        print(result.rendered)
        print()
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

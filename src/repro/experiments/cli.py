"""Command-line interface: ``certchain-analyze`` / ``repro-experiments``.

Three modes:

* **simulate** (default) — build the synthetic campus dataset and run any
  or all registered experiments, printing paper-vs-measured tables;
* **logs** — analyze real (or simulated) Zeek ``ssl.log``/``x509.log``
  files with the chain-structure pipeline and print the category summary,
  which is what a network operator would point this tool at.  A single
  pair (``--ssl-log``/``--x509-log``) or a directory of shard pairs
  (``--shard-dir``) both go through the parallel ingestion engine;
  ``--jobs N`` fans shards out across worker processes — and switches the
  analysis stage to the sharded enrichment engine — with output
  guaranteed identical to ``--jobs 1`` (see docs/PERFORMANCE.md).
  ``--analysis-cache DIR`` serves a whole repeated analysis from a
  content-addressed artifact store.
* **generate** (``repro-experiments generate --out DIR --jobs N``) —
  run the parallel deterministic generation engine: simulate the
  campus workload and write it as paired ``ssl-NN.log``/``x509-NN.log``
  study-window shards ready for ``--shard-dir`` ingestion, byte-identical
  at any ``--jobs``.

A fourth mode, **bench-report** (``repro-experiments bench-report``),
loads the ``BENCH_*.json`` benchmark history and prints a per-metric
trajectory table with floor margins — see :mod:`repro.obs.benchreport`.

Any mode can emit observability artefacts: ``--metrics-out`` writes a
Prometheus text-exposition (or ``.json``) snapshot of every pipeline
metric, ``--run-report`` writes the diffable per-run JSON summary (stage
timings, throughput, cache hit rates), ``--trace-out`` writes the merged
driver+worker span forest as Chrome-trace/Perfetto JSON,
``--serve-metrics PORT`` exposes live ``/metrics``/``/healthz``/
``/runreport`` HTTP endpoints for the duration of the run, and
``--log-level debug`` turns on structured key=value logging (propagated
into pool workers).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from ..campus.dataset import cached_campus_dataset, resolve_scale
from ..core.categorization import ChainCategory
from ..core.pipeline import ChainStructureAnalyzer
from ..core.report import render_table
from ..faults import FaultPlan, clear_plan, install_plan
from ..obs import benchreport
from ..obs.exporters import RunReport, write_metrics_file
from ..obs.logging import configure_logging, get_logger, kv
from ..obs.metrics import get_registry
from ..obs.server import MetricsServer
from ..obs.sink import get_sink
from ..obs.traceexport import write_trace
from ..obs.tracing import get_tracer
from ..parallel import (ShardSpec, SupervisorConfig, discover_shards,
                        generate_dataset, ingest_shards)
from ..resilience import (ArtifactStore, CheckpointStore, Quarantine,
                          RunJournal)
from ..truststores import build_public_pki
from ..zeek.format import ZeekFormatError
from .base import registry, run_experiment

__all__ = ["main", "build_parser", "build_generate_parser",
           "package_version"]

log = get_logger(__name__)


def package_version() -> str:
    """The installed distribution version (falls back to the source tree)."""
    try:
        from importlib.metadata import PackageNotFoundError, version
        try:
            return version("repro")
        except PackageNotFoundError:
            pass
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        pass
    from .. import __version__
    return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="certchain-analyze",
        description="Certificate chain structure analysis "
                    "(IMC '25 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {package_version()}")
    parser.add_argument("--seed", default="0",
                        help="deterministic simulation seed (default 0)")
    parser.add_argument("--scale", default="small",
                        choices=("small", "default"),
                        help="simulation scale preset")
    parser.add_argument("--experiment", "-e", action="append",
                        dest="experiments", metavar="ID",
                        help="experiment id (repeatable); 'all' for every "
                             "registered experiment; omit to list ids")
    parser.add_argument("--ssl-log", help="analyze a Zeek ssl.log instead "
                                          "of simulating")
    parser.add_argument("--x509-log", help="x509.log paired with --ssl-log")
    parser.add_argument("--shard-dir", metavar="DIR",
                        help="analyze a directory of ssl*/x509* shard "
                             "pairs instead of a single log pair")
    parser.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                        help="worker processes for log ingestion and chain "
                             "analysis (default: CPU count for ingestion, "
                             "serial analysis; capped at the CPU and shard "
                             "counts)")
    parser.add_argument("--no-columnar", action="store_true",
                        help="ingest through the row-object readers instead "
                             "of the columnar struct-of-arrays hot path "
                             "(outputs are byte-identical; this is the "
                             "escape hatch)")
    parser.add_argument("--log-level", metavar="LEVEL", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help="structured-logging level "
                             "(overrides REPRO_LOG_LEVEL)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write a metrics snapshot on exit "
                             "(Prometheus text; JSON when PATH ends in "
                             ".json)")
    parser.add_argument("--run-report", metavar="PATH",
                        help="write the per-run JSON report (stage timings, "
                             "throughput, cache hit rates)")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write the merged driver+worker span timeline "
                             "as Chrome-trace/Perfetto JSON (open in "
                             "ui.perfetto.dev)")
    parser.add_argument("--serve-metrics", type=int, metavar="PORT",
                        help="serve live /metrics, /healthz and /runreport "
                             "on 127.0.0.1:PORT for the duration of the "
                             "run (0 picks a free port)")
    parser.add_argument("--fault-plan", metavar="SPEC",
                        help="deterministic fault injection, e.g. "
                             "'zeek_corrupt_rate=0.05,scan_timeout_rate=0.1' "
                             "(overrides REPRO_FAULT_PLAN); enables "
                             "quarantine of malformed Zeek rows")
    parser.add_argument("--quarantine-out", metavar="PATH",
                        help="tolerate malformed Zeek rows and write every "
                             "dropped row (reason + raw bytes) to PATH as "
                             "JSONL")
    parser.add_argument("--checkpoint-dir", metavar="DIR",
                        help="persist per-stage pipeline checkpoints to DIR "
                             "(logs mode)")
    parser.add_argument("--resume", action="store_true",
                        help="serve completed stages from --checkpoint-dir "
                             "instead of recomputing them")
    parser.add_argument("--analysis-cache", metavar="DIR",
                        help="content-addressed AnalysisResult cache: a "
                             "repeat run over unchanged inputs serves the "
                             "whole analysis from DIR (logs mode)")
    _add_supervisor_flags(parser)
    return parser


def _add_supervisor_flags(parser: argparse.ArgumentParser) -> None:
    """The supervised-execution knobs, shared by both parsers."""
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task deadline for pool workers: a worker "
                             "whose heartbeat is older than SECONDS is "
                             "treated as hung, the pool is rebuilt, and "
                             "the task is retried")
    parser.add_argument("--max-task-retries", type=int, default=None,
                        metavar="N",
                        help="crash/hang retries per task before it is "
                             "quarantined and recovered in-driver "
                             "(default 2)")
    parser.add_argument("--run-journal", metavar="DIR",
                        help="append every completed task (and its partial "
                             "artifact) to a crash-safe journal under DIR; "
                             "with --resume, tasks already journaled are "
                             "served from it instead of recomputed")


def build_generate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments generate",
        description="Generate the synthetic campus dataset as "
                    "ssl-NN.log study-window shards plus one broadcast "
                    "x509.log, ready for --shard-dir ingestion; "
                    "byte-identical at any --jobs")
    parser.add_argument("--out", required=True, metavar="DIR",
                        help="directory to write the shard logs into")
    parser.add_argument("--seed", default="0",
                        help="deterministic simulation seed (default 0)")
    parser.add_argument("--scale", default="small",
                        choices=("small", "default"),
                        help="simulation scale preset")
    parser.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                        help="worker processes (default: CPU count; capped "
                             "at the CPU and interval counts)")
    parser.add_argument("--legacy-writer", action="store_true",
                        help="use the per-row legacy write path instead of "
                             "the compiled renderer (identical bytes, "
                             "slower; kept as the benchmark baseline)")
    parser.add_argument("--log-level", metavar="LEVEL", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help="structured-logging level "
                             "(overrides REPRO_LOG_LEVEL)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write a metrics snapshot on exit")
    parser.add_argument("--run-report", metavar="PATH",
                        help="write the per-run JSON report")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write the merged driver+worker span timeline "
                             "as Chrome-trace/Perfetto JSON")
    parser.add_argument("--serve-metrics", type=int, metavar="PORT",
                        help="serve live /metrics, /healthz and /runreport "
                             "on 127.0.0.1:PORT for the duration of the "
                             "run (0 picks a free port)")
    parser.add_argument("--fault-plan", metavar="SPEC",
                        help="install a deterministic fault plan for the "
                             "run; generation draws from its own derived "
                             "RNG streams, so output is identical with or "
                             "without one (asserted by the golden tests)")
    parser.add_argument("--resume", action="store_true",
                        help="with --run-journal, serve shards already "
                             "completed by a previous (killed) run from "
                             "the journal instead of regenerating them")
    _add_supervisor_flags(parser)
    return parser


def _supervisor_config(args: argparse.Namespace,
                       namespace: str) -> Optional[SupervisorConfig]:
    """Build one engine's :class:`SupervisorConfig` from the CLI flags.

    Returns ``None`` when no supervisor flag was given — the engines then
    resolve their built-in defaults.  Each engine journals into its own
    subdirectory of ``--run-journal`` (``ingest``/``analysis``/
    ``generate``) so task ids cannot collide across engines.
    """
    timeout = getattr(args, "task_timeout", None)
    retries = getattr(args, "max_task_retries", None)
    journal_dir = getattr(args, "run_journal", None)
    if timeout is None and retries is None and not journal_dir:
        return None
    config = SupervisorConfig()
    if timeout is not None:
        config.task_timeout = timeout
    if retries is not None:
        config.max_task_retries = retries
    if journal_dir:
        config.journal = RunJournal(os.path.join(journal_dir, namespace))
        config.resume = bool(getattr(args, "resume", False))
    return config


def _print_supervisor_summary(run) -> None:
    """Degradation is never silent: echo the supervisor's incident lines."""
    if run is not None and (run.degraded or run.journal_replayed):
        for line in run.summary_lines():
            print(line)


def _start_server(args: argparse.Namespace) -> Optional[MetricsServer]:
    """Start the live-metrics endpoint when ``--serve-metrics`` was given."""
    if getattr(args, "serve_metrics", None) is None:
        return None
    server = MetricsServer(args.serve_metrics, version=package_version())
    try:
        server.start()
    except OSError as exc:
        print(f"certchain-analyze: cannot serve metrics: {exc}",
              file=sys.stderr)
        return None
    print(f"serving metrics at {server.url}/metrics", file=sys.stderr)
    return server


def _generate(argv: Sequence[str]) -> int:
    parser = build_generate_parser()
    args = parser.parse_args(argv)
    configure_logging(level=args.log_level)
    get_registry().reset()
    get_tracer().reset()
    get_sink().reset()
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.resume and not args.run_journal:
        parser.error("--resume requires --run-journal")
    try:
        plan = (FaultPlan.parse(args.fault_plan, seed=args.seed)
                if args.fault_plan else FaultPlan.from_env(seed=args.seed))
    except ValueError as exc:
        print(f"repro-experiments: bad fault plan: {exc}", file=sys.stderr)
        return 2
    if plan is not None and plan.any():
        install_plan(plan)
    supervise = _supervisor_config(args, "generate")
    server = _start_server(args)
    try:
        result = generate_dataset(args.out, seed=args.seed,
                                  scale=resolve_scale(args.scale),
                                  jobs=args.jobs,
                                  compiled=not args.legacy_writer,
                                  supervise=supervise)
    except OSError as exc:
        print(f"repro-experiments: cannot write dataset: {exc}",
              file=sys.stderr)
        return 2
    finally:
        if supervise is not None and supervise.journal is not None:
            supervise.journal.close()
        clear_plan()
        if server is not None:
            server.stop()
    _print_supervisor_summary(result.supervisor)
    print(f"generated {result.ssl_rows:,} connections and "
          f"{result.x509_rows:,} certificates into "
          f"{result.shard_count} ssl shards + broadcast x509.log under "
          f"{result.out_dir} "
          f"(jobs: {result.jobs} of {result.requested_jobs} requested)")
    print(f"analyze with: certchain-analyze --shard-dir {result.out_dir} "
          f"--jobs {result.jobs}")
    return _write_observability(args, ["generate", *argv])


def _analyze_logs(args: argparse.Namespace,
                  plan: Optional[FaultPlan]) -> int:
    # A fault plan or an explicit quarantine destination switches the
    # readers from strict (one bad row aborts) to degraded-but-complete.
    tolerant = plan is not None or bool(args.quarantine_out)
    quarantine = Quarantine() if tolerant else None
    ingest_supervise = _supervisor_config(args, "ingest")
    analysis_supervise = _supervisor_config(args, "analysis")
    try:
        if args.shard_dir:
            corpus_label = args.shard_dir
            shards = discover_shards(args.shard_dir)
        else:
            corpus_label = args.ssl_log
            shards = [ShardSpec(index=0, ssl_path=args.ssl_log,
                                x509_path=args.x509_log)]
        ingest = ingest_shards(shards, jobs=args.jobs, plan=plan,
                               quarantine=quarantine,
                               columnar=not args.no_columnar,
                               supervise=ingest_supervise)
    except OSError as exc:
        print(f"certchain-analyze: cannot read log: {exc}", file=sys.stderr)
        return 2
    except ZeekFormatError as exc:
        # str(exc) carries file:line so the operator can jump straight to
        # the offending row.
        print(f"certchain-analyze: malformed Zeek log: {exc}",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"certchain-analyze: malformed Zeek log: {exc}",
              file=sys.stderr)
        return 2
    checkpoint = (CheckpointStore(args.checkpoint_dir)
                  if args.checkpoint_dir else None)
    artifacts = (ArtifactStore(args.analysis_cache)
                 if args.analysis_cache else None)
    # Without a trust-store snapshot every issuer is non-public; callers
    # embedding the library can supply their own registry.
    analyzer = ChainStructureAnalyzer(build_public_pki().registry)
    try:
        result = analyzer.analyze_ingest(ingest, checkpoint=checkpoint,
                                         resume=args.resume, jobs=args.jobs,
                                         artifacts=artifacts,
                                         supervise=analysis_supervise)
    finally:
        for config in (ingest_supervise, analysis_supervise):
            if config is not None and config.journal is not None:
                config.journal.close()
    rows = [[row["category"], row["chains"], row["connections"],
             row["client_ips"]]
            for row in result.categorized.summary_rows()]
    print(render_table(["category", "chains", "connections", "client IPs"],
                       rows, title=f"Chain categories in {corpus_label}"))
    print()
    print(f"distinct certificates: {len(ingest.cert_fingerprints):,}")
    print(f"hybrid chains: "
          f"{result.categorized.chain_count(ChainCategory.HYBRID):,}")
    _print_supervisor_summary(ingest.supervisor)
    if quarantine is not None:
        print()
        for line in quarantine.summary_lines():
            print(line)
        if result.interception.degraded_count:
            print(f"degraded: {result.interception.degraded_count} chains "
                  f"with CT unavailable (no interception verdict)")
        if args.quarantine_out:
            try:
                quarantine.write(args.quarantine_out)
            except OSError as exc:
                print(f"certchain-analyze: cannot write quarantine: {exc}",
                      file=sys.stderr)
                return 2
            log.info("quarantine written",
                     extra=kv(path=args.quarantine_out,
                              records=len(quarantine)))
    return 0


def _write_observability(args: argparse.Namespace,
                         argv: Sequence[str]) -> int:
    """Write requested snapshot files; returns 0, or 2 on an unwritable path."""
    status = 0
    if args.metrics_out:
        try:
            write_metrics_file(args.metrics_out)
        except OSError as exc:
            print(f"certchain-analyze: cannot write metrics: {exc}",
                  file=sys.stderr)
            status = 2
        else:
            log.info("metrics written", extra=kv(path=args.metrics_out))
    if args.run_report:
        report = RunReport.collect(version=package_version(),
                                   argv=list(argv))
        try:
            report.write(args.run_report)
        except OSError as exc:
            print(f"certchain-analyze: cannot write run report: {exc}",
                  file=sys.stderr)
            status = 2
        else:
            log.info("run report written", extra=kv(path=args.run_report))
    if getattr(args, "trace_out", None):
        try:
            trace = write_trace(args.trace_out)
        except OSError as exc:
            print(f"certchain-analyze: cannot write trace: {exc}",
                  file=sys.stderr)
            status = 2
        else:
            log.info("trace written",
                     extra=kv(path=args.trace_out,
                              events=len(trace["traceEvents"])))
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    if raw_argv and raw_argv[0] == "generate":
        return _generate(raw_argv[1:])
    if raw_argv and raw_argv[0] == "bench-report":
        return benchreport.main(raw_argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(level=args.log_level)

    # One CLI invocation = one measurement window: zero anything earlier
    # runs in this process recorded so exports describe exactly this run.
    get_registry().reset()
    get_tracer().reset()
    get_sink().reset()

    effective_argv = list(argv) if argv is not None else sys.argv[1:]

    if args.resume and not (args.checkpoint_dir or args.run_journal):
        parser.error("--resume requires --checkpoint-dir or --run-journal")
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.task_timeout is not None and args.task_timeout <= 0:
        parser.error("--task-timeout must be positive")
    if args.max_task_retries is not None and args.max_task_retries < 0:
        parser.error("--max-task-retries cannot be negative")
    if args.jobs is not None and not (args.ssl_log or args.x509_log
                                      or args.shard_dir):
        parser.error("--jobs only applies to log analysis "
                     "(--ssl-log/--x509-log or --shard-dir)")
    if args.analysis_cache and not (args.ssl_log or args.x509_log
                                    or args.shard_dir):
        parser.error("--analysis-cache only applies to log analysis "
                     "(--ssl-log/--x509-log or --shard-dir)")

    # Resolve the fault plan (flag wins over environment) and install it
    # ambiently so deep call sites — the scanner inside the §5 revisit,
    # the pipeline's CT lookups — pick it up without parameter threading.
    try:
        if args.fault_plan:
            plan = FaultPlan.parse(args.fault_plan, seed=args.seed)
        else:
            plan = FaultPlan.from_env(seed=args.seed)
    except ValueError as exc:
        print(f"certchain-analyze: bad fault plan: {exc}", file=sys.stderr)
        return 2
    active: Optional[FaultPlan] = None
    if plan is not None and plan.any():
        install_plan(plan)
        active = plan
        log.info("fault plan installed", extra=kv(
            **{k: v for k, v in plan.rates().items() if v}))

    server = _start_server(args)
    try:
        if args.ssl_log or args.x509_log or args.shard_dir:
            if args.shard_dir and (args.ssl_log or args.x509_log):
                parser.error("--shard-dir cannot be combined with "
                             "--ssl-log/--x509-log")
            if not args.shard_dir and not (args.ssl_log and args.x509_log):
                parser.error("--ssl-log and --x509-log must be given "
                             "together")
            status = _analyze_logs(args, active)
            return status or _write_observability(args, effective_argv)

        known = sorted(registry())
        if not args.experiments:
            print("Registered experiments:")
            for exp_id in known:
                print(f"  {exp_id}")
            print("\nRun with -e <id> (or -e all). Example:\n"
                  "  certchain-analyze --scale small -e table3 -e section5")
            return 0

        wanted = known if "all" in args.experiments else args.experiments
        dataset = cached_campus_dataset(seed=args.seed, scale=args.scale)
        status = 0
        for exp_id in wanted:
            try:
                result = run_experiment(exp_id, dataset)
            except KeyError as exc:
                print(exc, file=sys.stderr)
                status = 2
                continue
            print(result.rendered)
            print()
        return status or _write_observability(args, effective_argv)
    finally:
        clear_plan()
        if server is not None:
            server.stop()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

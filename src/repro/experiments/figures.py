"""Experiments for the paper's Figures 1, 4, 5, 6, 7, 8.

Figures are reproduced as printable series: the CDF points behind Figure 1,
the per-position cell grid behind Figure 4, the graph summaries behind
Figures 5/7/8, and the histogram behind Figure 6 (Appendix G).
"""

from __future__ import annotations

from collections import Counter

from ..campus.dataset import CampusDataset
from ..campus.profiles import PAPER
from ..core.categorization import ChainCategory
from ..core.hybrid import HybridCategory
from ..core.lengths import exclude_outliers
from ..core.report import render_table
from ..core.structures import (
    build_cooccurrence_graph,
    build_issuance_graph,
    complex_subgraph,
    summarize_graph,
)
from .base import ExperimentResult, comparison_table, experiment

__all__ = ["run_figure1", "run_figure4", "run_figure5", "run_figure6",
           "run_figure7", "run_figure8"]


@experiment("figure1")
def run_figure1(dataset: CampusDataset) -> ExperimentResult:
    """Figure 1: chain length CDF per category."""
    result = dataset.analyze()
    distributions = result.length_distributions()
    rows = []
    checks = [
        (ChainCategory.PUBLIC_ONLY, "cum. fraction at length 2",
         f">= {PAPER.public_len2_share_pct / 100:.2f}",
         lambda d: f"{d.cumulative_fraction_at(2):.3f}"),
        (ChainCategory.NON_PUBLIC_ONLY, "fraction at length 1",
         f"~{PAPER.nonpub_len1_share_pct / 100:.3f}",
         lambda d: f"{d.fraction_at(1):.3f}"),
        (ChainCategory.INTERCEPTION, "fraction at length 3",
         f">= {PAPER.interception_len3_share_pct / 100:.2f}",
         lambda d: f"{d.fraction_at(3):.3f}"),
        (ChainCategory.HYBRID, "dominant length",
         "none dominates (<50%)",
         lambda d: f"len {d.dominant_length()} at "
                   f"{d.fraction_at(d.dominant_length() or 0):.3f}"),
    ]
    for category, metric, paper_value, extract in checks:
        rows.append([f"{category.value}: {metric}", paper_value,
                     extract(distributions[category]), ""])
    # Outlier exclusion (the paper drops 3 monster chains observed once).
    _, excluded = exclude_outliers(
        result.categorized.chains(ChainCategory.NON_PUBLIC_ONLY))
    rows.append(["excluded outlier lengths",
                 str(list(PAPER.outlier_lengths)),
                 str(sorted((c.length for c in excluded), reverse=True)),
                 "all unestablished, observed once"])
    cdf_lines = []
    for category in ChainCategory:
        points = distributions[category].cdf()
        series = " ".join(f"({length},{fraction:.3f})"
                          for length, fraction in points[:10])
        cdf_lines.append([category.value, "-", series, "CDF points"])
    rendered = comparison_table("Figure 1 — chain length distribution",
                                rows + cdf_lines)
    return ExperimentResult("figure1", "Chain length CDF", rendered, {
        "cdf": {c.value: distributions[c].cdf() for c in ChainCategory},
        "excluded": [c.length for c in excluded],
    })


@experiment("figure4")
def run_figure4(dataset: CampusDataset) -> ExperimentResult:
    """Figure 4: structure grid of contains-complete-path hybrid chains."""
    result = dataset.analyze()
    grid = result.hybrid.figure4_grid()
    counts = result.hybrid.figure4_label_counts()
    rows = [["chains in grid", PAPER.hybrid_contains_complete, len(grid), ""]]
    for label, count in counts.most_common():
        rows.append([f"cells: {label.value}", "-", count, ""])
    tallest = max((len(column) for column in grid), default=0)
    rows.append(["tallest chain", "~12 (figure y-axis)", tallest, ""])
    rendered = comparison_table(
        "Figure 4 — hybrid chains containing a complete matched path", rows)
    return ExperimentResult("figure4", "Structure grid", rendered, {
        "grid": [[cell.value for cell in column] for column in grid],
        "label_counts": {k.value: v for k, v in counts.items()},
    })


@experiment("figure5")
def run_figure5(dataset: CampusDataset) -> ExperimentResult:
    """Figure 5: certificate relationship graph of hybrid chains."""
    result = dataset.analyze()
    graph = build_cooccurrence_graph(
        result.categorized.chains(ChainCategory.HYBRID), result.classifier)
    summary = summarize_graph(graph)
    rows = [
        ["nodes (distinct certificates)", "-", summary.nodes, ""],
        ["co-occurrence edges", "-", summary.edges, ""],
        ["public-DB nodes", "-",
         dict(summary.nodes_by_class).get("public-db", 0), "blue in figure"],
        ["non-public-DB nodes", "-",
         dict(summary.nodes_by_class).get("non-public-db", 0),
         "red in figure"],
        ["connected components", "-", summary.components, ""],
        ["max node degree", "-", summary.max_degree,
         "shared public intermediates are hubs"],
    ]
    rendered = comparison_table(
        "Figure 5 — certificates in hybrid chains (co-occurrence graph)",
        rows)
    return ExperimentResult("figure5", "Hybrid PKI graph", rendered,
                            {"summary": summary.as_dict()})


@experiment("figure6")
def run_figure6(dataset: CampusDataset) -> ExperimentResult:
    """Figure 6 / Appendix G: mismatch-ratio histogram for no-path chains."""
    result = dataset.analyze()
    histogram = result.hybrid.figure6_histogram()
    share = result.hybrid.high_mismatch_share(0.5)
    rows = [["share with ratio >= 0.5",
             f"{PAPER.no_path_high_mismatch_share_pct:.2f}%",
             f"{share:.2f}%", ""]]
    for upper, count in histogram:
        rows.append([f"ratio <= {upper:.1f}", "-", count, ""])
    rendered = comparison_table("Figure 6 — mismatch ratio distribution",
                                rows)
    return ExperimentResult("figure6", "Mismatch ratios", rendered,
                            {"histogram": histogram, "high_share": share})


def _complex_figure(dataset: CampusDataset, category: ChainCategory,
                    exp_id: str, title: str) -> ExperimentResult:
    result = dataset.analyze()
    graph = build_issuance_graph(result.categorized.chains(category))
    summary = summarize_graph(graph)
    sub = complex_subgraph(graph)
    rows = [
        ["issuance-graph nodes", "-", summary.nodes, ""],
        ["issuance-graph edges", "-", summary.edges, ""],
        ["complex intermediates (>=3 links)", ">= 1",
         summary.complex_intermediates, "Appendix I criterion"],
        ["complex subgraph nodes", "-", sub.number_of_nodes(), ""],
        ["complex subgraph roles", "-",
         str(dict(Counter(sub.nodes[n].get("role") for n in sub))), ""],
    ]
    rendered = comparison_table(title, rows)
    return ExperimentResult(exp_id, title, rendered, {
        "summary": summary.as_dict(),
        "complex_nodes": sub.number_of_nodes(),
    })


@experiment("figure7")
def run_figure7(dataset: CampusDataset) -> ExperimentResult:
    return _complex_figure(
        dataset, ChainCategory.NON_PUBLIC_ONLY, "figure7",
        "Figure 7 — complex PKI structures in non-public-only chains")


@experiment("figure8")
def run_figure8(dataset: CampusDataset) -> ExperimentResult:
    return _complex_figure(
        dataset, ChainCategory.INTERCEPTION, "figure8",
        "Figure 8 — complex PKI structures in interception chains")

"""Experiment harness: one module per paper table/figure.

Every experiment takes an analyzed campus dataset (plus whatever extra
substrate it needs) and produces an :class:`ExperimentResult` holding the
machine-readable measured values and a rendered paper-vs-measured table.
The registry powers the CLI and keeps DESIGN.md's experiment index honest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..campus.dataset import CampusDataset
from ..core.report import render_table
from ..obs import instruments
from ..obs.logging import get_logger, kv
from ..obs.tracing import trace_span

__all__ = ["ExperimentResult", "experiment", "registry", "run_experiment",
           "comparison_table"]

log = get_logger(__name__)


@dataclass
class ExperimentResult:
    exp_id: str
    title: str
    rendered: str
    measured: dict = field(default_factory=dict)
    #: Wall-clock seconds :func:`run_experiment` spent in the runner
    #: (0.0 when the runner was invoked directly).
    duration_seconds: float = 0.0

    def __str__(self) -> str:
        return self.rendered


#: exp_id -> runner(dataset) registry.
_REGISTRY: Dict[str, Callable[[CampusDataset], ExperimentResult]] = {}


def experiment(exp_id: str):
    """Register an experiment runner under its table/figure id."""
    def decorator(func: Callable[[CampusDataset], ExperimentResult]):
        _REGISTRY[exp_id] = func
        return func
    return decorator


def registry() -> Dict[str, Callable[[CampusDataset], ExperimentResult]]:
    return dict(_REGISTRY)


def run_experiment(exp_id: str, dataset: CampusDataset) -> ExperimentResult:
    try:
        runner = _REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(_REGISTRY)}"
        ) from None
    started = time.perf_counter()
    with trace_span(f"experiment:{exp_id}"):
        result = runner(dataset)
    result.duration_seconds = time.perf_counter() - started
    instruments.EXPERIMENT_RUNS.inc(experiment=exp_id)
    log.debug("experiment complete", extra=kv(
        experiment=exp_id, seconds=f"{result.duration_seconds:.3f}"))
    return result


def comparison_table(title: str, rows: List[List[object]],
                     headers: Optional[List[str]] = None) -> str:
    """Standard paper-vs-measured rendering."""
    return render_table(headers or ["metric", "paper", "measured", "note"],
                        rows, title=title)

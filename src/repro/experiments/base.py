"""Experiment harness: one module per paper table/figure.

Every experiment takes an analyzed campus dataset (plus whatever extra
substrate it needs) and produces an :class:`ExperimentResult` holding the
machine-readable measured values and a rendered paper-vs-measured table.
The registry powers the CLI and keeps DESIGN.md's experiment index honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..campus.dataset import CampusDataset
from ..core.report import render_table

__all__ = ["ExperimentResult", "experiment", "registry", "run_experiment",
           "comparison_table"]


@dataclass
class ExperimentResult:
    exp_id: str
    title: str
    rendered: str
    measured: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.rendered


#: exp_id -> runner(dataset) registry.
_REGISTRY: Dict[str, Callable[[CampusDataset], ExperimentResult]] = {}


def experiment(exp_id: str):
    """Register an experiment runner under its table/figure id."""
    def decorator(func: Callable[[CampusDataset], ExperimentResult]):
        _REGISTRY[exp_id] = func
        return func
    return decorator


def registry() -> Dict[str, Callable[[CampusDataset], ExperimentResult]]:
    return dict(_REGISTRY)


def run_experiment(exp_id: str, dataset: CampusDataset) -> ExperimentResult:
    try:
        runner = _REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return runner(dataset)


def comparison_table(title: str, rows: List[List[object]],
                     headers: Optional[List[str]] = None) -> str:
    """Standard paper-vs-measured rendering."""
    return render_table(headers or ["metric", "paper", "measured", "note"],
                        rows, title=title)

"""Experiments for in-text results: §4.3's single-certificate and DGA
statistics and §5's revisit."""

from __future__ import annotations

from ..campus.dataset import CampusDataset
from ..campus.profiles import PAPER
from ..core.categorization import ChainCategory
from ..scan.revisit import run_revisit
from .base import ExperimentResult, comparison_table, experiment

__all__ = ["run_section43", "run_section5"]


@experiment("section4.3")
def run_section43(dataset: CampusDataset) -> ExperimentResult:
    """§4.3: single-certificate chains and the DGA cluster."""
    result = dataset.analyze()
    nonpub = result.single_cert_stats(ChainCategory.NON_PUBLIC_ONLY)
    intercept = result.single_cert_stats(ChainCategory.INTERCEPTION)
    rows = [
        ["non-public single-chain share",
         f"{PAPER.nonpub_len1_share_pct:.2f}%",
         f"{nonpub.share_of_category:.2f}%", ""],
        ["non-public singles self-signed",
         f"{PAPER.nonpub_single_self_signed_pct:.2f}%",
         f"{nonpub.self_signed_pct:.2f}%", ""],
        ["non-public single conns without SNI",
         f"{PAPER.nonpub_single_no_sni_pct:.2f}%",
         f"{nonpub.no_sni_connection_pct:.2f}%", ""],
        ["interception single-chain share",
         f"{PAPER.interception_single_share_pct:.2f}%",
         f"{intercept.share_of_category:.2f}%", ""],
        ["interception singles self-signed",
         f"{PAPER.interception_single_self_signed_pct:.2f}%",
         f"{intercept.self_signed_pct:.2f}%", ""],
    ]
    if result.dga_clusters:
        cluster = max(result.dga_clusters, key=lambda c: len(c.chains))
        low, high = cluster.validity_range_days()
        rows.extend([
            ["DGA cluster template", "www[dot]randomstring[dot]com",
             cluster.template, ""],
            ["DGA connections / client IPs",
             f"{PAPER.dga_connections:,} / {PAPER.dga_client_ips}",
             f"{cluster.connections:,} / {cluster.client_ips}",
             "scaled population"],
            ["DGA validity range (days)",
             f"{PAPER.dga_validity_days[0]}-{PAPER.dga_validity_days[1]}",
             f"{low}-{high}", ""],
        ])
    else:
        rows.append(["DGA cluster", "1 cluster", "none detected", "FAIL"])
    rendered = comparison_table("§4.3 — single-certificate chains and DGA",
                                rows)
    return ExperimentResult("section4.3", "Single-certificate statistics",
                            rendered, {
                                "nonpub": nonpub,
                                "interception": intercept,
                                "dga_clusters": len(result.dga_clusters),
                            })


@experiment("section5")
def run_section5(dataset: CampusDataset) -> ExperimentResult:
    """§5: the November-2024 revisit."""
    report = run_revisit(dataset, seed=dataset.seed)
    le_share = (100.0 * report.hybrid_to_public_lets_encrypt
                / report.hybrid_to_public if report.hybrid_to_public else 0.0)
    shares = report.prev_state_shares()
    rows = [
        ["hybrid servers reachable",
         f"270/321 ({PAPER.revisit_hybrid_reachable_pct:.1f}%)",
         f"{report.hybrid_reachable}/{report.hybrid_total} "
         f"({report.hybrid_reachable_pct:.1f}%)", ""],
        ["now public-DB-only", PAPER.revisit_hybrid_to_public,
         report.hybrid_to_public,
         f"Let's Encrypt share {le_share:.0f}% (paper: 'majority')"],
        ["now non-public-only", PAPER.revisit_hybrid_to_nonpub,
         report.hybrid_to_nonpub, "exact cell"],
        ["still hybrid (clean/unnec/no-path)",
         f"{PAPER.revisit_hybrid_still_hybrid} "
         f"({PAPER.revisit_still_hybrid_complete_clean}/"
         f"{PAPER.revisit_still_hybrid_complete_unnecessary}/23)",
         f"{report.hybrid_still_hybrid} "
         f"({report.still_complete_clean}/"
         f"{report.still_complete_unnecessary}/{report.still_no_path})", ""],
        ["Chrome-vs-OpenSSL divergence",
         "Chrome validates, OpenSSL rejects (3 chains)",
         f"browser OK {report.divergent_browser_ok}/"
         f"{report.divergent_chains}, strict OK "
         f"{report.divergent_strict_ok}/{report.divergent_chains}", ""],
        ["non-public servers scanned", f"{PAPER.revisit_nonpub_scanned:,}",
         report.nonpub_scanned, "scaled population"],
        ["still non-public-only", "100%",
         f"{100.0 * report.nonpub_still_nonpub / report.nonpub_scanned:.1f}%"
         if report.nonpub_scanned else "n/a", ""],
        ["now multi-certificate",
         f"{PAPER.revisit_nonpub_now_multi_pct:.2f}%",
         f"{report.nonpub_now_multi_pct:.2f}%", ""],
        ["of now-multi: previously multi",
         f"{PAPER.revisit_prev_multi_pct:.2f}%",
         f"{shares['prev_multi_pct']:.2f}%", ""],
        ["of now-multi: prev single self-signed",
         f"{PAPER.revisit_prev_single_self_signed_pct:.2f}%",
         f"{shares['prev_single_self_signed_pct']:.2f}%", ""],
        ["of now-multi: prev single distinct",
         f"{PAPER.revisit_prev_single_distinct_pct:.2f}%",
         f"{shares['prev_single_distinct_pct']:.2f}%", ""],
        ["new multi chains complete matched paths",
         f"{PAPER.revisit_multi_complete_pct:.2f}%",
         f"{report.nonpub_multi_complete_pct:.2f}%", ""],
    ]
    rendered = comparison_table("§5 — November 2024 revisit", rows)
    return ExperimentResult("section5", "Retrospective revisit", rendered,
                            {"report": report})

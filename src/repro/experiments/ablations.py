"""Ablations for the design choices DESIGN.md calls out.

* ``ablation-crosssign`` — run issuer–subject matching with the cross-sign
  disclosure table disabled and count the chains that flip from matched to
  mismatched (the Appendix D.1 false-positive hazard).
* ``ablation-truststores`` — classify with Zeek's default view (Mozilla NSS
  only) vs the paper's expanded view (NSS+Apple+Microsoft+CCADB) and count
  the chains whose category changes.
* ``ablation-blindspot`` — inject same-name/wrong-key impersonation chains
  into the Table 5 corpus and measure how many the issuer–subject method
  misses (Appendix D.2's stated limitation).
"""

from __future__ import annotations

from ..campus.dataset import CampusDataset
from ..core.categorization import ChainCategorizer, ChainCategory
from ..core.classification import CertificateClassifier
from ..core.matching import analyze_structure
from ..validation.compare import compare_validators
from ..validation.corpus import build_validation_corpus
from .base import ExperimentResult, comparison_table, experiment

__all__ = ["run_ablation_crosssign", "run_ablation_truststores",
           "run_ablation_blindspot", "run_ablation_leafrule"]


@experiment("ablation-crosssign")
def run_ablation_crosssign(dataset: CampusDataset) -> ExperimentResult:
    result = dataset.analyze()
    flipped = 0
    affected_pairs = 0
    total = 0
    for category in (ChainCategory.HYBRID, ChainCategory.PUBLIC_ONLY):
        for chain in result.categorized.chains(category):
            if chain.length < 2:
                continue
            total += 1
            aware = analyze_structure(chain.certificates,
                                      disclosures=dataset.disclosures)
            naive = analyze_structure(chain.certificates, disclosures=None)
            if (aware.is_fully_matched and not naive.is_fully_matched):
                flipped += 1
            affected_pairs += sum(
                1 for a, b in zip(aware.pair_matches, naive.pair_matches)
                if a.matched and not b.matched)
    rows = [
        ["multi-cert chains examined", "-", total, "hybrid + public"],
        ["chains flipped matched→mismatched", "0 (method must avoid this)",
         flipped, "false positives without disclosures"],
        ["pairs repaired by disclosures", "-", affected_pairs, ""],
    ]
    rendered = comparison_table(
        "Ablation — issuer–subject matching without cross-sign disclosures",
        rows)
    return ExperimentResult("ablation-crosssign", "Cross-sign awareness",
                            rendered, {"flipped": flipped,
                                       "pairs": affected_pairs})


@experiment("ablation-truststores")
def run_ablation_truststores(dataset: CampusDataset) -> ExperimentResult:
    result = dataset.analyze()
    full = result.categorized
    nss_registry = dataset.registry.restricted_to(["Mozilla"],
                                                  include_ccadb=False)
    nss_categorizer = ChainCategorizer(
        CertificateClassifier(nss_registry),
        result.interception.issuer_name_keys)
    nss = nss_categorizer.categorize(result.chains.values())
    rows = []
    moved = 0
    for category in ChainCategory:
        full_count = full.chain_count(category)
        nss_count = nss.chain_count(category)
        moved += abs(full_count - nss_count)
        rows.append([f"{category.value} chains",
                     f"{full_count} (full registry)",
                     f"{nss_count} (NSS only)", ""])
    rows.append(["total reassignments", "0 if stores equivalent", moved // 2,
                 "chains changing category under NSS-only"])
    rendered = comparison_table(
        "Ablation — classification scope: NSS-only vs NSS+Apple+MS+CCADB",
        rows)
    return ExperimentResult("ablation-truststores", "Trust-store scope",
                            rendered, {"moved": moved // 2})


@experiment("ablation-blindspot")
def run_ablation_blindspot(dataset: CampusDataset) -> ExperimentResult:
    corpus = build_validation_corpus(total=320, seed=dataset.seed,
                                     impersonated=16)
    result = compare_validators(corpus, disclosures=dataset.disclosures)
    missed = corpus.count_truth("impersonated")
    rows = [
        ["impersonated chains injected", "-", missed,
         "same names, wrong signing key"],
        ["issuer–subject broken count", "-", result.is_broken,
         "method cannot see the impersonations"],
        ["key–signature broken count", "-", result.ks_broken,
         "catches name-broken + impersonated"],
        ["disagreements", "-", result.disagreements,
         "the Appendix D.2 blind spot, quantified"],
    ]
    rendered = comparison_table(
        "Ablation — issuer–subject blind spot under key impersonation", rows)
    return ExperimentResult("ablation-blindspot", "Impersonation blind spot",
                            rendered, {"result": result, "injected": missed})


@experiment("ablation-leafrule")
def run_ablation_leafrule(dataset: CampusDataset) -> ExperimentResult:
    """Drop §4.2's valid-leaf requirement from complete-path detection.

    Without the rule, any matched run of CA certificates qualifies as a
    "complete matched path", collapsing Table 3's no-path group — e.g. the
    five nonpub-root-appended chains (a matched but leafless public
    sub-chain plus junk) migrate into the contains-complete group.
    """
    from ..core.hybrid import HybridAnalyzer, HybridCategory

    result = dataset.analyze()
    chains = result.categorized.chains(ChainCategory.HYBRID)
    classifier = result.classifier
    strict = HybridAnalyzer(classifier, dataset.disclosures).analyze(chains)
    relaxed = HybridAnalyzer(classifier, dataset.disclosures,
                             require_leaf=False).analyze(chains)
    rows = []
    moved = 0
    for category in HybridCategory:
        before = len(strict.by_category(category))
        after = len(relaxed.by_category(category))
        moved += abs(after - before)
        rows.append([category.value, f"{before} (paper rule)",
                     f"{after} (relaxed)", ""])
    rows.append(["chains changing group", "0 if rule were irrelevant",
                 moved // 2, ""])
    rendered = comparison_table(
        "Ablation — complete-path detection without the valid-leaf rule",
        rows)
    return ExperimentResult("ablation-leafrule", "Leaf-requirement rule",
                            rendered, {"moved": moved // 2})

"""Table 5 experiment: issuer–subject vs key–signature validation.

Unlike the other experiments this one runs on the crypto-backed Appendix D
corpus rather than the campus dataset; the dataset argument only supplies
cross-sign disclosures (the paper consulted the same CA announcements).
"""

from __future__ import annotations

from ..campus.dataset import CampusDataset
from ..campus.profiles import PAPER
from ..validation.compare import Table5Result, compare_validators
from ..validation.corpus import build_validation_corpus
from .base import ExperimentResult, comparison_table, experiment

__all__ = ["run_table5", "DEFAULT_CORPUS_SIZE"]

#: 1/10 of the paper's 12,676 scanned chains; rare cells kept exact.
DEFAULT_CORPUS_SIZE = 1268


@experiment("table5")
def run_table5(dataset: CampusDataset, *,
               corpus_size: int = DEFAULT_CORPUS_SIZE) -> ExperimentResult:
    corpus = build_validation_corpus(corpus_size, seed=dataset.seed)
    result = compare_validators(corpus, disclosures=dataset.disclosures)
    rows = [
        ["total chains", PAPER.validation_total_chains, result.total,
         f"1/{PAPER.validation_total_chains // corpus_size} scale"],
        ["single-certificate chains (both)", PAPER.validation_single,
         f"{result.is_single} / {result.ks_single}", ""],
        ["valid chains (IS / KS)",
         f"{PAPER.validation_is_valid} / {PAPER.validation_ks_valid}",
         f"{result.is_valid} / {result.ks_valid}",
         "IS counts unrecognized+malformed as valid"],
        ["broken chains (IS / KS)",
         f"{PAPER.validation_is_broken} / {PAPER.validation_ks_broken}",
         f"{result.is_broken} / {result.ks_broken}",
         "KS counts the ASN.1-error chain"],
        ["chains with unrecognized keys (KS)",
         PAPER.validation_unrecognized, result.ks_unrecognized, "exact cell"],
        ["valid-count gap (IS - KS)",
         PAPER.validation_is_valid - PAPER.validation_ks_valid,
         result.is_valid - result.ks_valid, ""],
        ["broken-count gap (KS - IS)",
         PAPER.validation_ks_broken - PAPER.validation_is_broken,
         result.ks_broken - result.is_broken, ""],
        ["mismatch-position agreement", "all broken chains align",
         f"{result.position_agreements}/{result.position_comparisons}", ""],
    ]
    rendered = comparison_table(
        "Table 5 — issuer–subject vs key–signature validation", rows)
    return ExperimentResult("table5", "Validation method comparison",
                            rendered, {"result": result})

"""Experiments for the paper's Tables 1–4 and 6–8.

(Table 5 needs the crypto corpus, not the campus dataset, and lives in
:mod:`repro.experiments.table5`.)
"""

from __future__ import annotations

from ..campus.dataset import CampusDataset
from ..campus.profiles import PAPER
from ..core.categorization import ChainCategory
from ..core.hybrid import HybridCategory
from ..core.report import render_table
from .base import ExperimentResult, comparison_table, experiment

__all__ = ["run_table1", "run_table2", "run_table3", "run_table4",
           "run_table6", "run_table7", "run_table8"]


@experiment("table1")
def run_table1(dataset: CampusDataset) -> ExperimentResult:
    """Table 1: categories of issuers conducting TLS interception."""
    result = dataset.analyze()
    measured_rows = result.interception.category_table(result.chains)
    paper = {category: (issuers, pct, ips)
             for category, issuers, pct, ips
             in PAPER.interception_issuer_categories}
    rows = []
    for row in measured_rows:
        p_issuers, p_pct, p_ips = paper[row["category"]]
        rows.append([row["category"],
                     f"{p_issuers} / {p_pct:.2f}% / {p_ips:,}",
                     f"{row['issuers']} / {row['pct_connections']:.2f}% / "
                     f"{row['client_ips']:,}",
                     ""])
    rendered = comparison_table(
        "Table 1 — TLS interception issuer categories "
        "(issuers / % connections / client IPs)", rows,
        headers=["category", "paper", "measured", "note"])
    return ExperimentResult("table1", "Interception issuer categories",
                            rendered, {"rows": measured_rows})


@experiment("table2")
def run_table2(dataset: CampusDataset) -> ExperimentResult:
    """Table 2: chains / connections / client IPs per category.

    Each population is simulated at its own scale factor (hybrid is
    unscaled, the bulk categories shrink), so raw shares are meaningless;
    the comparison de-scales the measured counts back to full-population
    estimates before computing shares.
    """
    result = dataset.analyze()
    cat = result.categorized
    scale = dataset.scale
    scale_factor = {
        ChainCategory.NON_PUBLIC_ONLY: scale.nonpub_chain_scale,
        ChainCategory.HYBRID: 1.0,
        ChainCategory.INTERCEPTION: scale.interception_chain_scale,
        ChainCategory.PUBLIC_ONLY: scale.public_chain_scale,
    }
    descaled = {
        category: cat.chain_count(category) / factor
        for category, factor in scale_factor.items()
    }
    descaled_total = sum(descaled.values()) or 1.0
    paper_share = {
        ChainCategory.NON_PUBLIC_ONLY: PAPER.nonpub_chain_share_pct,
        ChainCategory.HYBRID: 100.0 * PAPER.hybrid_chains / PAPER.total_chains,
        ChainCategory.INTERCEPTION: PAPER.interception_chain_share_pct,
    }
    rows = []
    shares = {}
    for category in (ChainCategory.NON_PUBLIC_ONLY, ChainCategory.HYBRID,
                     ChainCategory.INTERCEPTION):
        share = 100.0 * descaled[category] / descaled_total
        shares[category.value] = share
        rows.append([
            category.value,
            f"{paper_share[category]:.2f}% of chains",
            f"{share:.2f}% of chains "
            f"({cat.chain_count(category):,} simulated chains, "
            f"{cat.connection_count(category):,} conns, "
            f"{cat.client_ip_count(category):,} IPs)",
            "share de-scaled to full population",
        ])
    rows.append(["hybrid chains (abs)", PAPER.hybrid_chains,
                 cat.chain_count(ChainCategory.HYBRID), "unscaled population"])
    rendered = comparison_table("Table 2 — certificate chain categories", rows)
    return ExperimentResult("table2", "Chain category statistics", rendered,
                            {"rows": cat.summary_rows(),
                             "descaled_shares": shares})


@experiment("table3")
def run_table3(dataset: CampusDataset) -> ExperimentResult:
    """Table 3: hybrid chain taxonomy + establishment rates."""
    result = dataset.analyze()
    report = result.hybrid
    measured = {(r["category"], r["subcategory"]): r["chains"]
                for r in report.table3_rows()}
    rows = [
        ["(1) complete path: Non-pub chained to Pub.",
         PAPER.hybrid_nonpub_to_pub,
         measured.get(("(1) Chain is a complete matched path",
                       "Non-pub. chained to Pub."), 0), ""],
        ["(1) complete path: Pub. chained to Prv.",
         PAPER.hybrid_pub_to_private,
         measured.get(("(1) Chain is a complete matched path",
                       "Pub. chained to Prv."), 0), ""],
        ["(2) contains complete matched path",
         PAPER.hybrid_contains_complete,
         measured.get(("(2) Chain contains a complete matched path", "-"), 0),
         ""],
        ["(3) no complete matched path",
         PAPER.hybrid_no_path,
         measured.get(("(3) No complete matched path", "-"), 0), ""],
        ["total hybrid chains", PAPER.hybrid_chains,
         measured.get(("Total", ""), 0), ""],
        ["established % (complete)",
         f"{PAPER.complete_establish_pct:.2f}%",
         f"{report.establishment_rate(HybridCategory.COMPLETE_PATH_ONLY):.2f}%",
         ""],
        ["established % (contains)",
         f"{PAPER.contains_establish_pct:.2f}%",
         f"{report.establishment_rate(HybridCategory.CONTAINS_COMPLETE_PATH):.2f}%",
         ""],
        ["established % (no path)",
         f"{PAPER.no_path_establish_pct:.2f}%",
         f"{report.establishment_rate(HybridCategory.NO_COMPLETE_PATH):.2f}%",
         ""],
    ]
    rendered = comparison_table("Table 3 — hybrid certificate chains", rows)
    return ExperimentResult("table3", "Hybrid chain taxonomy", rendered,
                            {"rows": report.table3_rows()})


@experiment("table4")
def run_table4(dataset: CampusDataset) -> ExperimentResult:
    """Table 4: port distribution per category."""
    result = dataset.analyze()
    cat = result.categorized
    paper_top = {
        "hybrid": (443, 97.21),
        "nonpub-single": (443, 46.29),
        "nonpub-multi": (443, 83.51),
        "interception": (8013, 35.40),
    }
    sections = []
    measured = {}
    hybrid_ports = cat.port_distribution(ChainCategory.HYBRID)
    single_ports = _ports(cat, ChainCategory.NON_PUBLIC_ONLY, single=True)
    multi_ports = _ports(cat, ChainCategory.NON_PUBLIC_ONLY, single=False)
    interception_ports = cat.port_distribution(ChainCategory.INTERCEPTION)
    for label, ports in (("hybrid", hybrid_ports),
                         ("nonpub-single", single_ports),
                         ("nonpub-multi", multi_ports),
                         ("interception", interception_ports)):
        total = sum(ports.values()) or 1
        top = ports.most_common(5)
        measured[label] = [(port, 100.0 * count / total)
                           for port, count in top]
        p_port, p_pct = paper_top[label]
        top_line = ", ".join(f"{port}:{100.0 * count / total:.1f}%"
                             for port, count in top)
        sections.append([label, f"top={p_port} ({p_pct:.2f}%)", top_line, ""])
    rendered = comparison_table(
        "Table 4 — port distribution per category (top-5 measured)", sections)
    return ExperimentResult("table4", "Port distribution", rendered,
                            {"ports": measured})


def _ports(cat, category, *, single: bool):
    from collections import Counter
    ports: Counter = Counter()
    for chain in cat.chains(category):
        if chain.is_single == single:
            ports += chain.usage.ports
    return ports


@experiment("table6")
def run_table6(dataset: CampusDataset) -> ExperimentResult:
    """Table 6: operators of non-public leaves on public trust anchors."""
    result = dataset.analyze()
    measured = {r["category"]: r["chains"]
                for r in result.hybrid.table6_rows()}
    rows = [
        ["Corporate", PAPER.anchored_corporate, measured.get("Corporate", 0),
         "Symantec, SignKorea and others"],
        ["Government", PAPER.anchored_government,
         measured.get("Government", 0), "Korea, Brazil, USA"],
    ]
    rendered = comparison_table(
        "Table 6 — non-public leaves chained to public trust anchors", rows)
    return ExperimentResult("table6", "Anchored non-public issuers", rendered,
                            {"rows": result.hybrid.table6_rows()})


@experiment("table7")
def run_table7(dataset: CampusDataset) -> ExperimentResult:
    """Table 7: taxonomy of chains without a complete matched path."""
    result = dataset.analyze()
    measured = {r["category"]: r["chains"]
                for r in result.hybrid.table7_rows()}
    rows = []
    for category, paper_count in PAPER.no_path_taxonomy:
        rows.append([category, paper_count, measured.get(category, 0), ""])
    missing = result.hybrid.missing_issuer_stats()
    rows.append(["public leaf w/o issuing intermediate",
                 PAPER.no_path_public_leaf_missing_issuer, missing["chains"],
                 f"{missing['established_pct']:.1f}% established"])
    rendered = comparison_table("Table 7 — no-complete-matched-path taxonomy",
                                rows)
    return ExperimentResult("table7", "No-path taxonomy", rendered,
                            {"rows": result.hybrid.table7_rows(),
                             "missing_issuer": missing})


@experiment("table8")
def run_table8(dataset: CampusDataset) -> ExperimentResult:
    """Table 8: matched paths in multi-certificate non-public/interception
    chains."""
    result = dataset.analyze()
    nonpub = result.multicert_path_stats(ChainCategory.NON_PUBLIC_ONLY)
    intercept = result.multicert_path_stats(ChainCategory.INTERCEPTION)
    rows = [
        ["non-public-only: is a matched path",
         f"{PAPER.nonpub_multi_matched_pct:.2f}%",
         f"{nonpub.is_matched_path_pct:.2f}%",
         f"{nonpub.is_matched_path}/{nonpub.chains} chains"],
        ["non-public-only: contains a matched path",
         PAPER.nonpub_multi_contains, nonpub.contains_matched_path,
         "count scales with population"],
        ["non-public-only: no matched path",
         PAPER.nonpub_multi_none, nonpub.no_matched_path, ""],
        ["interception: is a matched path",
         f"{PAPER.interception_multi_matched_pct:.2f}%",
         f"{intercept.is_matched_path_pct:.2f}%",
         f"{intercept.is_matched_path}/{intercept.chains} chains"],
        ["interception: contains a matched path",
         PAPER.interception_multi_contains, intercept.contains_matched_path,
         ""],
        ["interception: no matched path",
         PAPER.interception_multi_none, intercept.no_matched_path, ""],
    ]
    rendered = comparison_table(
        "Table 8 — matched paths in multi-certificate chains", rows)
    return ExperimentResult("table8", "Multi-certificate matched paths",
                            rendered,
                            {"nonpub": nonpub, "interception": intercept})

"""Server-level chain analysis: who serves multiple distinct chains, and why.

§4.2 observes that 19 servers presented multiple distinct hybrid chains
over the year and attributes the behaviour to two causes: (1) leaf
replacement on expiry/renewal, and (2) inclusion of *different* unnecessary
certificates across connections.  This module recovers both findings from
logs alone: it groups observed chains by server endpoint, pairs up the
chains each endpoint served, and classifies each pair's relationship.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..x509.certificate import Certificate
from .chain import ObservedChain
from .matching import analyze_structure

__all__ = ["ChainChangeKind", "ServerChainGroup", "MultiChainReport",
           "group_by_server", "analyze_multi_chain_servers"]


class ChainChangeKind(str, Enum):
    """Why one server served two different chains."""

    LEAF_REPLACEMENT = "leaf-replacement"
    DIFFERENT_UNNECESSARY = "different-unnecessary-certificates"
    RESTRUCTURED = "restructured"


def _dn_key(dn) -> tuple:
    return tuple(sorted(dn.normalized()))


@dataclass
class ServerChainGroup:
    """All distinct chains one server endpoint delivered."""

    server_key: str
    chains: List[ObservedChain] = field(default_factory=list)

    @property
    def is_multi_chain(self) -> bool:
        return len(self.chains) > 1

    def pairwise_changes(self, *, disclosures=None
                         ) -> List[Tuple[ObservedChain, ObservedChain,
                                         ChainChangeKind]]:
        """Classify every chain pair this server served."""
        changes = []
        ordered = sorted(
            self.chains,
            key=lambda c: (c.usage.first_seen or 0.0, c.key))
        for i, first in enumerate(ordered):
            for second in ordered[i + 1:]:
                changes.append((first, second,
                                classify_change(first, second,
                                                disclosures=disclosures)))
        return changes


def classify_change(first: ObservedChain, second: ObservedChain, *,
                    disclosures=None) -> ChainChangeKind:
    """Relate two chains from the same server (§4.2's two causes).

    * **leaf replacement** — the leaves differ but name the same issuer
      (a renewal), and the rest of the chain is unchanged;
    * **different unnecessary certificates** — both chains contain the same
      complete matched path; only material outside it differs;
    * **restructured** — anything else (migration, re-issuance, breakage).
    """
    if _is_leaf_replacement(first, second):
        return ChainChangeKind.LEAF_REPLACEMENT
    if _same_path_different_extras(first, second, disclosures):
        return ChainChangeKind.DIFFERENT_UNNECESSARY
    return ChainChangeKind.RESTRUCTURED


def _is_leaf_replacement(first: ObservedChain, second: ObservedChain) -> bool:
    a, b = first.certificates, second.certificates
    if not a or not b or len(a) != len(b):
        return False
    leaf_a, leaf_b = a[0], b[0]
    if leaf_a.fingerprint == leaf_b.fingerprint:
        return False
    if _dn_key(leaf_a.issuer) != _dn_key(leaf_b.issuer):
        return False
    rest_a = tuple(c.fingerprint for c in a[1:])
    rest_b = tuple(c.fingerprint for c in b[1:])
    return rest_a == rest_b


def _same_path_different_extras(first: ObservedChain, second: ObservedChain,
                                disclosures) -> bool:
    structure_a = analyze_structure(first.certificates,
                                    disclosures=disclosures)
    structure_b = analyze_structure(second.certificates,
                                    disclosures=disclosures)
    path_a = tuple(c.fingerprint for c in structure_a.path_certificates())
    path_b = tuple(c.fingerprint for c in structure_b.path_certificates())
    if not path_a or path_a != path_b:
        return False
    extras_a = tuple(c.fingerprint
                     for c in structure_a.unnecessary_certificates())
    extras_b = tuple(c.fingerprint
                     for c in structure_b.unnecessary_certificates())
    return extras_a != extras_b


def group_by_server(chains: Iterable[ObservedChain]) -> List[ServerChainGroup]:
    """Group chains by server endpoint (the responder IPs that served them).

    A chain served from several IPs joins every group; groups keyed by the
    sorted server-IP set, which is how a log-only observer identifies "the
    same server".
    """
    groups: Dict[str, ServerChainGroup] = {}
    for chain in chains:
        key = ",".join(sorted(chain.usage.server_ips)) or "?"
        group = groups.get(key)
        if group is None:
            group = ServerChainGroup(key)
            groups[key] = group
        group.chains.append(chain)
    return list(groups.values())


@dataclass
class MultiChainReport:
    groups: List[ServerChainGroup]
    changes: List[Tuple[str, ChainChangeKind]]

    @property
    def multi_chain_servers(self) -> int:
        return sum(1 for g in self.groups if g.is_multi_chain)

    def change_counts(self) -> Dict[ChainChangeKind, int]:
        counts: Dict[ChainChangeKind, int] = defaultdict(int)
        for _, kind in self.changes:
            counts[kind] += 1
        return dict(counts)


def analyze_multi_chain_servers(chains: Iterable[ObservedChain], *,
                                disclosures=None) -> MultiChainReport:
    groups = group_by_server(chains)
    changes: List[Tuple[str, ChainChangeKind]] = []
    for group in groups:
        if not group.is_multi_chain:
            continue
        for _, _, kind in group.pairwise_changes(disclosures=disclosures):
            changes.append((group.server_key, kind))
    return MultiChainReport(groups=groups, changes=changes)

"""Hybrid certificate chain analysis (§4.2; Tables 3, 6, 7; Figures 4, 6).

Hybrid chains mix certificates from public-DB and non-public-DB issuers.
The paper sorts them into three top-level groups:

1. the chain **is** a complete matched path (36 chains: 26 non-public
   leaves anchored to public roots + 10 public paths chained to a private
   re-issue of the root — the Scalyr/Canal+ pattern),
2. the chain **contains** a complete matched path plus unnecessary
   certificates (70 chains, Figure 4),
3. the chain has **no** complete matched path (215 chains, Table 7,
   Figure 6).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

from ..x509.certificate import Certificate
from ..x509.dn import DistinguishedName
from .chain import ObservedChain
from .classification import CertificateClassifier, IssuerClass
from .crosssign import CrossSignDisclosures
from .matching import ChainStructure, Segment, analyze_structure, is_leaf_like

__all__ = [
    "HybridCategory",
    "CompletePathKind",
    "NoPathCategory",
    "EntityKind",
    "classify_entity",
    "HybridChainAnalysis",
    "HybridReport",
    "HybridAnalyzer",
    "CellLabel",
]


class HybridCategory(str, Enum):
    COMPLETE_PATH_ONLY = "is-complete-matched-path"
    CONTAINS_COMPLETE_PATH = "contains-complete-matched-path"
    NO_COMPLETE_PATH = "no-complete-matched-path"


class CompletePathKind(str, Enum):
    """Table 3's split of the chains that are exactly a complete path."""

    NON_PUBLIC_CHAINED_TO_PUBLIC = "non-pub-chained-to-pub"
    PUBLIC_CHAINED_TO_PRIVATE = "pub-chained-to-prv"
    OTHER = "other"


class NoPathCategory(str, Enum):
    """Table 7's taxonomy of chains without a complete matched path."""

    SELF_SIGNED_LEAF_THEN_MISMATCHES = "nonpub-self-signed-leaf+mismatches"
    SELF_SIGNED_LEAF_THEN_VALID_SUBCHAIN = "nonpub-self-signed-leaf+valid-subchain"
    ALL_MISMATCHED = "all-pairs-mismatched"
    PARTIAL_MISMATCHED = "partial-pairs-mismatched"
    ROOT_APPENDED_TO_PUBLIC_SUBCHAIN = "nonpub-root-appended-to-public-subchain"
    ROOT_AND_MISMATCHED = "nonpub-root+mismatched-pairs"


class EntityKind(str, Enum):
    """Table 6's operator split for non-public leaves on public roots."""

    GOVERNMENT = "Government"
    CORPORATE = "Corporate"


_GOVERNMENT_MARKERS = (
    "government", "veterans affairs", "federal", "u.s.", "gpki", "klid",
    "korea", "iti", "icp-brasil", "instituto nacional", "ministry",
    "department of",
)

#: Commercial operators whose names would otherwise trip a government
#: marker (Table 6 files SignKorea under Corporate despite the "Korea").
_CORPORATE_OVERRIDES = ("signkorea", "symantec", "scalyr", "canal")


def classify_entity(dn: DistinguishedName) -> EntityKind:
    """Heuristic operator classification from DN text — the analyzer's
    equivalent of the paper's manual issuer research (Appendix F.1)."""
    haystack = " ".join(v for v in (
        dn.organization, dn.organizational_unit, dn.common_name) if v).lower()
    if any(marker in haystack for marker in _CORPORATE_OVERRIDES):
        return EntityKind.CORPORATE
    if any(marker in haystack for marker in _GOVERNMENT_MARKERS):
        return EntityKind.GOVERNMENT
    return EntityKind.CORPORATE


class CellLabel(str, Enum):
    """Figure 4 cell vocabulary: segment kind × issuer-class makeup."""

    PUB_COMPLETE = "Pub. Complete"
    NON_PUB_COMPLETE = "Non-Pub. Complete"
    HYBRID_COMPLETE = "Hybrid Complete"
    PUB_PARTIAL = "Pub. Partial"
    NON_PUB_PARTIAL = "Non-Pub. Partial"
    HYBRID_PARTIAL = "Hybrid Partial"
    PUB_SINGLE = "Pub. Single"
    NON_PUB_SINGLE = "Non-Pub. Single"
    SINGLE_LEAF = "Single Leaf"


@dataclass
class HybridChainAnalysis:
    """Everything §4.2 derives from one hybrid chain."""

    chain: ObservedChain
    structure: ChainStructure
    classes: tuple[IssuerClass, ...]
    category: HybridCategory
    complete_kind: Optional[CompletePathKind] = None
    no_path_category: Optional[NoPathCategory] = None
    anchored_to_public_root: bool = False
    entity: Optional[EntityKind] = None

    @property
    def mismatch_ratio(self) -> float:
        return self.structure.mismatch_ratio

    @property
    def leaf_missing_issuer(self) -> bool:
        """Public-DB leaf present but nothing in the chain issues it —
        the 56-chain sub-finding inside the no-path group."""
        if self.category is not HybridCategory.NO_COMPLETE_PATH:
            return False
        certs = self.structure.certificates
        if not certs or len(certs) < 2:
            return False
        leaf = certs[0]
        if self.classes[0] is not IssuerClass.PUBLIC_DB or leaf.is_self_signed:
            return False
        return not any(other.issued(leaf) for other in certs[1:])


@dataclass
class HybridReport:
    analyses: List[HybridChainAnalysis] = field(default_factory=list)

    def by_category(self, category: HybridCategory) -> list[HybridChainAnalysis]:
        return [a for a in self.analyses if a.category is category]

    # -- Table 3 ---------------------------------------------------------------

    def table3_rows(self) -> list[dict]:
        complete = self.by_category(HybridCategory.COMPLETE_PATH_ONLY)
        non_pub_to_pub = [a for a in complete if a.complete_kind is
                          CompletePathKind.NON_PUBLIC_CHAINED_TO_PUBLIC]
        pub_to_prv = [a for a in complete if a.complete_kind is
                      CompletePathKind.PUBLIC_CHAINED_TO_PRIVATE]
        other = [a for a in complete if a.complete_kind is CompletePathKind.OTHER]
        rows = [
            {"category": "(1) Chain is a complete matched path",
             "subcategory": "Non-pub. chained to Pub.",
             "chains": len(non_pub_to_pub)},
            {"category": "(1) Chain is a complete matched path",
             "subcategory": "Pub. chained to Prv.",
             "chains": len(pub_to_prv)},
        ]
        if other:
            rows.append({"category": "(1) Chain is a complete matched path",
                         "subcategory": "Other", "chains": len(other)})
        rows.extend([
            {"category": "(2) Chain contains a complete matched path",
             "subcategory": "-",
             "chains": len(self.by_category(HybridCategory.CONTAINS_COMPLETE_PATH))},
            {"category": "(3) No complete matched path",
             "subcategory": "-",
             "chains": len(self.by_category(HybridCategory.NO_COMPLETE_PATH))},
            {"category": "Total", "subcategory": "",
             "chains": len(self.analyses)},
        ])
        return rows

    def establishment_rate(self, category: HybridCategory) -> float:
        chains = self.by_category(category)
        connections = sum(a.chain.usage.connections for a in chains)
        established = sum(a.chain.usage.established for a in chains)
        if connections == 0:
            return 0.0
        return 100.0 * established / connections

    # -- Table 6 ---------------------------------------------------------------

    def table6_rows(self) -> list[dict]:
        anchored = [
            a for a in self.by_category(HybridCategory.COMPLETE_PATH_ONLY)
            if a.complete_kind is CompletePathKind.NON_PUBLIC_CHAINED_TO_PUBLIC
        ]
        counts = Counter(a.entity for a in anchored)
        return [
            {"category": "Corporate",
             "chains": counts.get(EntityKind.CORPORATE, 0)},
            {"category": "Government",
             "chains": counts.get(EntityKind.GOVERNMENT, 0)},
        ]

    # -- Table 7 ---------------------------------------------------------------

    def table7_rows(self) -> list[dict]:
        no_path = self.by_category(HybridCategory.NO_COMPLETE_PATH)
        counts = Counter(a.no_path_category for a in no_path)
        order = (
            NoPathCategory.SELF_SIGNED_LEAF_THEN_MISMATCHES,
            NoPathCategory.SELF_SIGNED_LEAF_THEN_VALID_SUBCHAIN,
            NoPathCategory.ALL_MISMATCHED,
            NoPathCategory.PARTIAL_MISMATCHED,
            NoPathCategory.ROOT_APPENDED_TO_PUBLIC_SUBCHAIN,
            NoPathCategory.ROOT_AND_MISMATCHED,
        )
        return [{"category": category.value, "chains": counts.get(category, 0)}
                for category in order]

    def missing_issuer_stats(self) -> dict:
        """The 56-chain sub-finding: public leaf with no issuing intermediate."""
        matching = [a for a in self.analyses if a.leaf_missing_issuer]
        connections = sum(a.chain.usage.connections for a in matching)
        established = sum(a.chain.usage.established for a in matching)
        clients = set().union(
            *(a.chain.usage.client_ips for a in matching))
        return {
            "chains": len(matching),
            "connections": connections,
            "established_pct": 100.0 * established / connections if connections else 0.0,
            "client_ips": len(clients),
        }

    # -- Figure 4 ---------------------------------------------------------------

    def figure4_grid(self) -> list[list[CellLabel]]:
        """One column per contains-complete-path chain; index 0 is the
        bottom of the hierarchy (first delivered certificate)."""
        columns: list[list[CellLabel]] = []
        for analysis in self.by_category(HybridCategory.CONTAINS_COMPLETE_PATH):
            columns.append(_column_labels(analysis))
        columns.sort(key=len, reverse=True)
        return columns

    def figure4_label_counts(self) -> Counter:
        counts: Counter = Counter()
        for column in self.figure4_grid():
            counts.update(column)
        return counts

    # -- Figure 6 ---------------------------------------------------------------

    def figure6_histogram(self, bins: int = 10) -> list[tuple[float, int]]:
        """(bin upper edge, count) over the no-path chains' mismatch ratios."""
        histogram = [0] * bins
        for analysis in self.by_category(HybridCategory.NO_COMPLETE_PATH):
            ratio = analysis.mismatch_ratio
            index = min(int(ratio * bins), bins - 1) if ratio < 1.0 else bins - 1
            histogram[index] += 1
        return [((i + 1) / bins, count) for i, count in enumerate(histogram)]

    def high_mismatch_share(self, threshold: float = 0.5) -> float:
        no_path = self.by_category(HybridCategory.NO_COMPLETE_PATH)
        if not no_path:
            return 0.0
        high = sum(1 for a in no_path if a.mismatch_ratio >= threshold)
        return 100.0 * high / len(no_path)


def _segment_class(classes: Sequence[IssuerClass],
                   segment: Segment) -> str:
    members = {classes[i] for i in segment.indices()}
    if members == {IssuerClass.PUBLIC_DB}:
        return "pub"
    if members == {IssuerClass.NON_PUBLIC_DB}:
        return "nonpub"
    return "hybrid"


def _column_labels(analysis: HybridChainAnalysis) -> list[CellLabel]:
    labels: list[CellLabel] = []
    structure = analysis.structure
    for index in range(structure.length):
        segment = structure.segment_for_index(index)
        seg_class = _segment_class(analysis.classes, segment)
        if segment.is_singleton:
            if is_leaf_like(structure.certificates[index],
                            structure.certificates):
                labels.append(CellLabel.SINGLE_LEAF)
            elif seg_class == "pub":
                labels.append(CellLabel.PUB_SINGLE)
            else:
                labels.append(CellLabel.NON_PUB_SINGLE)
        elif segment.is_complete_matched_path:
            labels.append({
                "pub": CellLabel.PUB_COMPLETE,
                "nonpub": CellLabel.NON_PUB_COMPLETE,
                "hybrid": CellLabel.HYBRID_COMPLETE,
            }[seg_class])
        else:
            labels.append({
                "pub": CellLabel.PUB_PARTIAL,
                "nonpub": CellLabel.NON_PUB_PARTIAL,
                "hybrid": CellLabel.HYBRID_PARTIAL,
            }[seg_class])
    return labels


class HybridAnalyzer:
    """Runs the §4.2 pipeline over the hybrid chain set.

    ``require_leaf`` is §4.2's rule that a complete matched path must start
    at a valid leaf certificate; disabling it (the §4.3 relaxation) is an
    ablation — several no-path taxonomy cells collapse without it.
    """

    def __init__(self, classifier: CertificateClassifier,
                 disclosures: Optional[CrossSignDisclosures] = None,
                 *, require_leaf: bool = True):
        self.classifier = classifier
        self.disclosures = disclosures
        self.require_leaf = require_leaf

    def analyze(self, chains: Iterable[ObservedChain]) -> HybridReport:
        report = HybridReport()
        for chain in chains:
            report.analyses.append(self.analyze_chain(chain))
        return report

    def analyze_chain(self, chain: ObservedChain, *,
                      structure: Optional[ChainStructure] = None,
                      ) -> HybridChainAnalysis:
        """Analyze one chain; ``structure`` may be supplied precomputed
        (it must be this analyzer's ``require_leaf`` variant — the
        parallel engine reuses the eager with-leaf structure here)."""
        if structure is None:
            structure = analyze_structure(chain.certificates,
                                          disclosures=self.disclosures,
                                          require_leaf=self.require_leaf)
        classes = tuple(self.classifier.classify(c) for c in chain.certificates)
        anchored = self.classifier.chain_anchored_to_public_root(
            structure.path_certificates() or chain.certificates)
        analysis = HybridChainAnalysis(
            chain=chain, structure=structure, classes=classes,
            category=self._top_category(structure),
            anchored_to_public_root=anchored,
        )
        if analysis.category is HybridCategory.COMPLETE_PATH_ONLY:
            analysis.complete_kind = self._complete_kind(analysis)
            if analysis.complete_kind is CompletePathKind.NON_PUBLIC_CHAINED_TO_PUBLIC:
                leaf = chain.certificates[0]
                analysis.entity = classify_entity(leaf.issuer)
        elif analysis.category is HybridCategory.NO_COMPLETE_PATH:
            analysis.no_path_category = self._no_path_category(analysis)
        return analysis

    @staticmethod
    def _top_category(structure: ChainStructure) -> HybridCategory:
        if structure.is_complete_matched_path:
            return HybridCategory.COMPLETE_PATH_ONLY
        if structure.contains_complete_matched_path:
            return HybridCategory.CONTAINS_COMPLETE_PATH
        return HybridCategory.NO_COMPLETE_PATH

    def _complete_kind(self, analysis: HybridChainAnalysis) -> CompletePathKind:
        classes = analysis.classes
        if classes[0] is IssuerClass.NON_PUBLIC_DB and analysis.anchored_to_public_root:
            return CompletePathKind.NON_PUBLIC_CHAINED_TO_PUBLIC
        if (classes[0] is IssuerClass.PUBLIC_DB
                and classes[-1] is IssuerClass.NON_PUBLIC_DB):
            return CompletePathKind.PUBLIC_CHAINED_TO_PRIVATE
        return CompletePathKind.OTHER

    def _no_path_category(self, analysis: HybridChainAnalysis) -> NoPathCategory:
        certs = analysis.structure.certificates
        pairs = analysis.structure.pair_matches
        classes = analysis.classes
        leaf = certs[0]
        all_mismatched = all(not p.matched for p in pairs) if pairs else False
        if leaf.is_self_signed and classes[0] is IssuerClass.NON_PUBLIC_DB:
            rest_matched = all(p.matched for p in pairs[1:]) if len(pairs) > 1 else False
            if rest_matched and len(certs) >= 3:
                return NoPathCategory.SELF_SIGNED_LEAF_THEN_VALID_SUBCHAIN
            return NoPathCategory.SELF_SIGNED_LEAF_THEN_MISMATCHES
        last = certs[-1]
        last_is_nonpub_root = (last.is_self_signed
                               and classes[-1] is IssuerClass.NON_PUBLIC_DB)
        if last_is_nonpub_root and len(pairs) >= 1:
            head_matched = all(p.matched for p in pairs[:-1]) if len(pairs) > 1 else True
            head_public = all(c is IssuerClass.PUBLIC_DB for c in classes[:-1])
            if head_matched and head_public and not pairs[-1].matched:
                return NoPathCategory.ROOT_APPENDED_TO_PUBLIC_SUBCHAIN
            if not head_matched:
                return NoPathCategory.ROOT_AND_MISMATCHED
        if all_mismatched:
            return NoPathCategory.ALL_MISMATCHED
        return NoPathCategory.PARTIAL_MISMATCHED

"""Certificate issuer classification (§3.2.1).

A certificate is *issued by a public-DB issuer* when its issuer —
intermediate or root — is listed in at least one major Web PKI root store
or in CCADB; otherwise it is issued by a *non-public-DB issuer* (including
self-signed certificates absent from those databases).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Sequence

from ..truststores.registry import PublicDBRegistry
from ..x509.certificate import Certificate

__all__ = ["IssuerClass", "CertificateClassifier", "ChainClassProfile"]


class IssuerClass(str, Enum):
    PUBLIC_DB = "public-db"
    NON_PUBLIC_DB = "non-public-db"


@dataclass(frozen=True, slots=True)
class ChainClassProfile:
    """Per-certificate classes for one chain plus convenience aggregates."""

    classes: tuple[IssuerClass, ...]

    @property
    def all_public(self) -> bool:
        return bool(self.classes) and all(
            c is IssuerClass.PUBLIC_DB for c in self.classes)

    @property
    def all_non_public(self) -> bool:
        return bool(self.classes) and all(
            c is IssuerClass.NON_PUBLIC_DB for c in self.classes)

    @property
    def mixed(self) -> bool:
        return bool(self.classes) and not self.all_public and not self.all_non_public

    def count(self, issuer_class: IssuerClass) -> int:
        return sum(1 for c in self.classes if c is issuer_class)


class CertificateClassifier:
    """Caches public/non-public classifications against a registry.

    The cache is keyed by fingerprint: a year of campus traffic revisits the
    same 743,993 certificates hundreds of millions of times, so the
    classification must be O(1) amortised.
    """

    def __init__(self, registry: PublicDBRegistry):
        self.registry = registry
        self._cache: Dict[str, IssuerClass] = {}

    def classify(self, certificate: Certificate) -> IssuerClass:
        cached = self._cache.get(certificate.fingerprint)
        if cached is not None:
            return cached
        if self.registry.issued_by_public_db(certificate):
            result = IssuerClass.PUBLIC_DB
        else:
            result = IssuerClass.NON_PUBLIC_DB
        self._cache[certificate.fingerprint] = result
        return result

    def classify_chain(self, chain: Sequence[Certificate]) -> ChainClassProfile:
        return ChainClassProfile(tuple(self.classify(cert) for cert in chain))

    def is_public_anchor(self, certificate: Certificate) -> bool:
        """Is this certificate itself a public trust anchor (in a root store)?"""
        return self.registry.is_trust_anchor_name(certificate.subject)

    def chain_anchored_to_public_root(self, chain: Sequence[Certificate]) -> bool:
        """Does the chain terminate at — or name as its final issuer — a
        public trust anchor?  (The 'anchored to a public trust root'
        condition of §4.2.)"""
        if not chain:
            return False
        last = chain[-1]
        return (self.registry.is_trust_anchor_name(last.subject)
                or self.registry.is_trust_anchor_name(last.issuer))

    def preload(self, classes: Dict[str, IssuerClass]) -> None:
        """Adopt classifications computed elsewhere (partition workers).

        Sound because classification is a pure function of the certificate
        and the registry, and every worker holds the same registry — the
        merged map is exactly what this instance would have computed.
        """
        self._cache.update(classes)

    def cached_classes(self) -> Dict[str, IssuerClass]:
        """Snapshot of the fingerprint → class cache (for merge/preload)."""
        return dict(self._cache)

    def cache_size(self) -> int:
        return len(self._cache)

"""TLS interception detection (§3.2.1, Table 1, Appendix B).

Interception appliances re-sign traffic with their own CA, so the client
(and the campus monitor) sees a substitute chain whose issuer never appears
in public databases.  The paper detects this by (1) filtering connections
whose leaf issuer is outside the major trust stores and (2) asking CT
whether a *different* issuer is on record for the same domain and validity
window; a mismatch flags possible interception, confirmed by manual
investigation.  The manual step is modelled by :class:`VendorDirectory`,
a curated keyword → (vendor, category) table equivalent to the authors'
web-search notes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from ..ct.crtsh import CrtShIndex
from ..faults.injector import FaultInjector
from ..obs import instruments
from ..resilience.breaker import CircuitBreaker
from ..resilience.errors import CircuitOpenError, CTUnavailableError
from ..x509.certificate import Certificate
from ..x509.dn import DistinguishedName
from .chain import ObservedChain
from .classification import CertificateClassifier, IssuerClass

__all__ = [
    "CATEGORY_ORDER",
    "VendorDirectory",
    "InterceptionIssuer",
    "InterceptionReport",
    "InterceptionDetector",
]

CATEGORY_ORDER: tuple[str, ...] = (
    "Security & Network",
    "Business & Corporate",
    "Health & Education",
    "Government & Public Service",
    "Bank & Finance",
    "Other",
)


def _dn_key(dn: DistinguishedName) -> tuple:
    return dn.sorted_key()


class VendorDirectory:
    """Keyword lookup standing in for the paper's manual investigation.

    Keywords are matched case-insensitively against the issuer's O and CN
    attributes.  Unmatched issuers fall into the ``Other`` category, as the
    paper's Table 1 does for unidentifiable entities.
    """

    def __init__(self, entries: Iterable[tuple[str, str, str]] = ()):
        #: keyword (lowercase) -> (vendor, category)
        self._by_keyword: Dict[str, tuple[str, str]] = {}
        for keyword, vendor, category in entries:
            self.add(keyword, vendor, category)

    def add(self, keyword: str, vendor: str, category: str) -> None:
        if category not in CATEGORY_ORDER:
            raise ValueError(f"unknown interception category {category!r}")
        self._by_keyword[keyword.lower()] = (vendor, category)

    def lookup(self, issuer: DistinguishedName) -> tuple[str, str]:
        """Returns (vendor, category); unknown issuers map to 'Other'."""
        haystacks = [value.lower() for value in (
            issuer.organization, issuer.common_name) if value]
        for keyword, (vendor, category) in self._by_keyword.items():
            if any(keyword in haystack for haystack in haystacks):
                return vendor, category
        fallback = issuer.organization or issuer.common_name or "unknown"
        return fallback, "Other"

    def __len__(self) -> int:
        return len(self._by_keyword)


@dataclass(frozen=True, slots=True)
class InterceptionIssuer:
    issuer: DistinguishedName
    vendor: str
    category: str


@dataclass
class InterceptionReport:
    """Detection output: issuers, the flagged chains, and Table 1 rows."""

    issuers: list[InterceptionIssuer] = field(default_factory=list)
    #: chain key -> the issuer that flagged it
    flagged_chains: Dict[tuple[str, ...], InterceptionIssuer] = field(
        default_factory=dict)
    #: every DN (issuer and CA subjects) attributable to interception CAs,
    #: used downstream by chain categorisation.
    issuer_name_keys: Set[tuple] = field(default_factory=set)
    #: chains whose CT evidence could not be retrieved (outage / breaker
    #: open) — the *degraded* verdict: no interception claim either way.
    degraded_chains: list = field(default_factory=list)

    def category_table(self, chains: Dict[tuple[str, ...], ObservedChain]
                       ) -> list[dict]:
        """Table 1: per category — issuing *entities* (vendors, as resolved
        by the manual-investigation directory), % connections, client IPs.

        The paper's 80 issuers are organisations, not distinct issuer DNs:
        one appliance fleet can mint many per-host issuer names.
        """
        vendors_per_category: Dict[str, set] = {c: set() for c in CATEGORY_ORDER}
        connections_per_category: Counter = Counter()
        client_sets: Dict[str, list] = {c: [] for c in CATEGORY_ORDER}
        for chain_key, issuer in self.flagged_chains.items():
            chain = chains.get(chain_key)
            if chain is None:
                continue
            vendors_per_category[issuer.category].add(issuer.vendor)
            connections_per_category[issuer.category] += chain.usage.connections
            client_sets[issuer.category].append(chain.usage.client_ips)
        total_connections = sum(connections_per_category.values()) or 1
        rows = []
        for category in CATEGORY_ORDER:
            rows.append({
                "category": category,
                "issuers": len(vendors_per_category[category]),
                "pct_connections": 100.0 * connections_per_category[category]
                / total_connections,
                # One n-ary union per category instead of per-chain |=
                # (each of which copies the accumulator).
                "client_ips": len(set().union(*client_sets[category])),
            })
        return rows

    @property
    def issuer_count(self) -> int:
        """Distinct issuer DNs flagged (one vendor can mint several)."""
        return len(self.issuers)

    def vendor_count(self) -> int:
        """Distinct issuing entities — the paper's '80 issuers' unit."""
        return len({issuer.vendor for issuer in self.issuers})

    @property
    def degraded_count(self) -> int:
        """Chains the detector could not check because CT was unavailable."""
        return len(self.degraded_chains)


class InterceptionDetector:
    """CT-mismatch interception detection over observed chains.

    CT is a *remote* dependency in the real pipeline, so every lookup can
    go through a :class:`CircuitBreaker` and a fault injector: when CT is
    unavailable (or the breaker is open) the affected chain gets the
    degraded ``ct_unavailable`` verdict — it is **not** flagged (no
    interception claim without CT evidence, mirroring the Appendix B
    absent-from-CT caveat) and is listed on
    ``InterceptionReport.degraded_chains`` so the loss of coverage is
    visible, never silent.
    """

    def __init__(self, classifier: CertificateClassifier,
                 ct_index: CrtShIndex,
                 directory: Optional[VendorDirectory] = None,
                 *, breaker: Optional[CircuitBreaker] = None,
                 faults: Optional[FaultInjector] = None):
        self.classifier = classifier
        self.ct_index = ct_index
        self.directory = directory or VendorDirectory()
        self.breaker = breaker
        self.faults = faults

    def detect(self, chains: Iterable[ObservedChain]) -> InterceptionReport:
        report = InterceptionReport()
        issuer_seen: Dict[tuple, InterceptionIssuer] = {}
        # CT verdicts are batched per unique (leaf, domain set) evidence
        # key: many chains share one appliance leaf and SNI population, so
        # the fan-out to CT runs once per distinct lookup instead of once
        # per chain.  Only *successful* verdicts are memoised — a degraded
        # chain must re-attempt its lookups so breaker dynamics and the
        # per-chain degraded bookkeeping stay exactly as an unbatched pass.
        verdict_seen: Dict[tuple, bool] = {}
        for chain in chains:
            leaf = chain.leaf
            if leaf is None:
                instruments.INTERCEPTION_CHAINS.inc(verdict="empty_chain")
                continue
            if self.classifier.classify(leaf) is not IssuerClass.NON_PUBLIC_DB:
                instruments.INTERCEPTION_CHAINS.inc(verdict="public_issuer")
                continue
            domains = set(chain.usage.snis)
            san = leaf.extensions.subject_alt_name
            if san is not None:
                domains.update(san.dns_names)
            # Sorted so lookup order (and thus per-domain fault draws and
            # any early return) is identical across processes and runs.
            domain_key = tuple(sorted(domains))
            memo_key = (leaf.fingerprint, domain_key)
            cached = verdict_seen.get(memo_key)
            if cached is not None:
                instruments.CT_VERDICT_MEMO_HIT.inc()
                flagged = cached
            else:
                instruments.CT_VERDICT_MEMO_MISS.inc()
                try:
                    flagged = self._flag_via_ct(leaf, domain_key)
                except (CTUnavailableError, CircuitOpenError):
                    instruments.INTERCEPTION_CHAINS.inc(
                        verdict="ct_unavailable")
                    report.degraded_chains.append(chain.key)
                    continue
                verdict_seen[memo_key] = flagged
            if not flagged:
                instruments.INTERCEPTION_CHAINS.inc(verdict="not_flagged")
                continue
            instruments.INTERCEPTION_CHAINS.inc(verdict="flagged")
            key = _dn_key(leaf.issuer)
            issuer = issuer_seen.get(key)
            if issuer is None:
                vendor, category = self.directory.lookup(leaf.issuer)
                issuer = InterceptionIssuer(leaf.issuer, vendor, category)
                issuer_seen[key] = issuer
                report.issuers.append(issuer)
            report.flagged_chains[chain.key] = issuer
            report.issuer_name_keys.add(key)
            # The appliance's intermediates/roots ride along in the same
            # chain; attribute their names to the interception entity too.
            for certificate in chain.certificates[1:]:
                report.issuer_name_keys.add(_dn_key(certificate.subject))
                report.issuer_name_keys.add(_dn_key(certificate.issuer))
        return report

    def _ct_issuers(self, domain: str, validity) -> list[DistinguishedName]:
        """One CT lookup, routed through the fault injector and breaker."""
        def lookup() -> list[DistinguishedName]:
            if self.faults is not None and self.faults.ct_unavailable(domain):
                raise CTUnavailableError(
                    f"CT index unavailable for {domain!r} (injected outage)")
            return self.ct_index.issuers_for_domain(domain,
                                                    overlapping=validity)
        if self.breaker is not None:
            return self.breaker.call(lookup)  # type: ignore[return-value]
        return lookup()

    def _flag_via_ct(self, leaf: Certificate,
                     domains: Sequence[str]) -> bool:
        """True when CT records a different issuer for any domain this
        chain served (pre-sorted by the caller), over the observed
        validity period."""
        observed = _dn_key(leaf.issuer)
        for domain in domains:
            recorded = self._ct_issuers(domain, leaf.validity)
            if not recorded:
                continue  # absent from CT: undetectable (Appendix B caveat)
            if all(_dn_key(issuer) != observed for issuer in recorded):
                return True
        return False

"""Temporal activity analysis over the 12-month observation window.

The paper's dataset spans 2020-09-01 → 2021-08-31; chain usage carries
first/last-seen timestamps, which support the longitudinal questions the
paper touches only implicitly (chain churn, per-month activity, leaf
replacement showing up as new chains on old servers).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .chain import ObservedChain

__all__ = ["MonthBucket", "monthly_activity", "month_key", "churn_summary"]


def month_key(ts: float) -> Tuple[int, int]:
    """(year, month) of a UNIX timestamp, in UTC."""
    moment = datetime.fromtimestamp(ts, timezone.utc)
    return moment.year, moment.month


def _iterate_months(start: Tuple[int, int],
                    end: Tuple[int, int]) -> List[Tuple[int, int]]:
    months = []
    year, month = start
    while (year, month) <= end:
        months.append((year, month))
        month += 1
        if month == 13:
            year, month = year + 1, 1
    return months


@dataclass(frozen=True, slots=True)
class MonthBucket:
    """Activity for one calendar month."""

    year: int
    month: int
    #: Chains seen at least once during the month span (first..last seen
    #: overlapping the month).
    active_chains: int
    #: Chains whose first observation falls in this month.
    new_chains: int

    @property
    def label(self) -> str:
        return f"{self.year:04d}-{self.month:02d}"


def monthly_activity(chains: Iterable[ObservedChain]) -> List[MonthBucket]:
    """Per-month active/new chain counts across the observed span."""
    spans: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
    for chain in chains:
        usage = chain.usage
        if usage.first_seen is None or usage.last_seen is None:
            continue
        spans.append((month_key(usage.first_seen),
                      month_key(usage.last_seen)))
    if not spans:
        return []
    overall_start = min(first for first, _ in spans)
    overall_end = max(last for _, last in spans)
    months = _iterate_months(overall_start, overall_end)
    active: Dict[Tuple[int, int], int] = {m: 0 for m in months}
    fresh: Dict[Tuple[int, int], int] = {m: 0 for m in months}
    for first, last in spans:
        fresh[first] += 1
        for m in _iterate_months(first, last):
            active[m] += 1
    return [MonthBucket(year, month, active[(year, month)],
                        fresh[(year, month)])
            for year, month in months]


def churn_summary(chains: Sequence[ObservedChain]) -> dict:
    """How long chains stay in service, and how much turnover there is."""
    lifetimes_days: List[float] = []
    for chain in chains:
        usage = chain.usage
        if usage.first_seen is None or usage.last_seen is None:
            continue
        lifetimes_days.append((usage.last_seen - usage.first_seen) / 86400.0)
    if not lifetimes_days:
        return {"chains": 0, "median_active_days": 0.0,
                "one_shot_share_pct": 0.0}
    lifetimes_days.sort()
    mid = len(lifetimes_days) // 2
    if len(lifetimes_days) % 2:
        median = lifetimes_days[mid]
    else:
        median = (lifetimes_days[mid - 1] + lifetimes_days[mid]) / 2
    one_shot = sum(1 for d in lifetimes_days if d < 1.0)
    return {
        "chains": len(lifetimes_days),
        "median_active_days": median,
        "one_shot_share_pct": 100.0 * one_shot / len(lifetimes_days),
    }

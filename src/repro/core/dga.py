"""Domain Generation Algorithm (DGA) certificate cluster detection (§4.3).

The paper finds a cluster of single-certificate chains whose issuer and
subject both carry randomly generated domains following one template
(``www[dot]randomstring[dot]com``) with validity periods scattered between
4 and 365 days.  The detector below recognises that shape: template
conformance, lexical randomness of the middle label, issuer ≠ subject, and
clusters the matches by template.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from ..x509.certificate import Certificate
from .chain import ObservedChain

__all__ = ["looks_random", "domain_template", "DGACluster", "DGADetector"]

_DOMAIN_RE = re.compile(r"^(?P<prefix>www)\.(?P<label>[a-z0-9]{6,24})\.(?P<tld>com|net|org|info)$")

#: English-ish bigrams that rarely all go missing in natural words.
_VOWELS = set("aeiou")


def _shannon_entropy(text: str) -> float:
    if not text:
        return 0.0
    counts = Counter(text)
    total = len(text)
    return -sum((c / total) * math.log2(c / total) for c in counts.values())


def looks_random(label: str) -> bool:
    """Lexical randomness heuristic for one DNS label.

    Random strings drawn uniformly from [a-z0-9] exhibit high character
    entropy, an off-natural vowel ratio, and long consonant runs; dictionary
    words and brand names do not.  The heuristic requires at least two of
    the three signals, which keeps both false-positive and false-negative
    rates low on the synthetic corpus (see tests).
    """
    if len(label) < 6:
        return False
    letters = [c for c in label if c.isalpha()]
    if not letters:
        return True
    vowel_ratio = sum(1 for c in letters if c in _VOWELS) / len(letters)
    entropy = _shannon_entropy(label)
    longest_consonant_run = _longest_run(label)
    signals = 0
    if entropy >= 3.2:
        signals += 1
    if vowel_ratio < 0.22 or vowel_ratio > 0.62:
        signals += 1
    if longest_consonant_run >= 4:
        signals += 1
    if any(c.isdigit() for c in label):
        signals += 1
    return signals >= 2


def _longest_run(label: str) -> int:
    longest = run = 0
    for char in label:
        if char.isalpha() and char not in _VOWELS:
            run += 1
            longest = max(longest, run)
        else:
            run = 0
    return longest


def domain_template(domain: str) -> Optional[str]:
    """Return the structural template of a candidate DGA domain, or None.

    ``www.qkzjtvwy.com`` → ``www.<rand>.com``; non-conforming or
    non-random domains return None.
    """
    match = _DOMAIN_RE.match(domain.lower().strip("."))
    if match is None:
        return None
    if not looks_random(match.group("label")):
        return None
    return f"{match.group('prefix')}.<rand>.{match.group('tld')}"


@dataclass
class DGACluster:
    """A group of single-certificate chains sharing one domain template."""

    template: str
    chains: List[ObservedChain] = field(default_factory=list)

    @property
    def connections(self) -> int:
        return sum(chain.usage.connections for chain in self.chains)

    @property
    def client_ips(self) -> int:
        ips: set[str] = set()
        for chain in self.chains:
            ips |= chain.usage.client_ips
        return len(ips)

    def validity_range_days(self) -> tuple[int, int]:
        """(min, max) certificate lifetime in days across the cluster."""
        days = [
            round(chain.certificates[0].validity.lifetime.total_seconds() / 86400)
            for chain in self.chains
        ]
        return (min(days), max(days)) if days else (0, 0)


class DGADetector:
    """Finds DGA clusters among single-certificate, distinct-issuer chains."""

    def __init__(self, *, min_cluster_size: int = 3):
        self.min_cluster_size = min_cluster_size

    def candidate(self, chain: ObservedChain) -> Optional[str]:
        """The template a chain matches, or None when it is not a candidate."""
        if not chain.is_single:
            return None
        certificate = chain.certificates[0]
        if certificate.is_self_signed:
            return None
        issuer_cn = certificate.issuer.common_name or ""
        subject_cn = certificate.subject.common_name or ""
        issuer_template = domain_template(issuer_cn)
        subject_template = domain_template(subject_cn)
        if issuer_template is None or subject_template is None:
            return None
        if issuer_template != subject_template:
            return None
        if issuer_cn == subject_cn:
            return None
        return subject_template

    def detect(self, chains: Iterable[ObservedChain]) -> list[DGACluster]:
        clusters: dict[str, DGACluster] = {}
        for chain in chains:
            template = self.candidate(chain)
            if template is None:
                continue
            clusters.setdefault(template, DGACluster(template)).chains.append(chain)
        return [cluster for cluster in clusters.values()
                if len(cluster.chains) >= self.min_cluster_size]

"""Plain-text table rendering for experiment reports.

Every benchmark prints "paper vs measured" tables; this module keeps the
formatting in one place so the output stays aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["render_table", "format_pct", "format_count", "side_by_side"]


def format_pct(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}%"


def format_count(value: int) -> str:
    """Thousands-separated counts: 1234567 → '1,234,567'."""
    return f"{value:,}"


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 *, title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells; expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def side_by_side(label: str, paper: object, measured: object,
                 note: str = "") -> list[object]:
    """One comparison row: [label, paper value, measured value, note]."""
    return [label, paper, measured, note]

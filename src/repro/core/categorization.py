"""Certificate chain categorisation (§3.2.2, Table 2).

Chains are partitioned into four categories:

* **public-DB-only** — every certificate issued by a public-DB issuer,
* **non-public-DB-only** — every certificate issued by a non-public-DB
  issuer, excluding TLS interception,
* **hybrid** — a mix of both issuer classes,
* **TLS interception** — chains containing certificates attributable to an
  identified interception entity (takes precedence over the other three).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Optional, Sequence, Set

from ..x509.dn import DistinguishedName
from .chain import ObservedChain
from .classification import CertificateClassifier

__all__ = ["ChainCategory", "CategorizedChains", "ChainCategorizer"]


class ChainCategory(str, Enum):
    PUBLIC_ONLY = "public-db-only"
    NON_PUBLIC_ONLY = "non-public-db-only"
    HYBRID = "hybrid"
    INTERCEPTION = "tls-interception"


def _dn_key(dn: DistinguishedName) -> tuple:
    return dn.sorted_key()


@dataclass
class CategorizedChains:
    """Chains bucketed by category, with Table 2-style aggregates."""

    by_category: Dict[ChainCategory, list[ObservedChain]] = field(
        default_factory=lambda: {c: [] for c in ChainCategory})

    def add(self, category: ChainCategory, chain: ObservedChain) -> None:
        self.by_category[category].append(chain)

    def chains(self, category: ChainCategory) -> list[ObservedChain]:
        return self.by_category[category]

    def chain_count(self, category: ChainCategory) -> int:
        return len(self.by_category[category])

    def connection_count(self, category: ChainCategory) -> int:
        return sum(c.usage.connections for c in self.by_category[category])

    def client_ip_count(self, category: ChainCategory) -> int:
        # A single n-ary union: per-chain |= re-hashes the growing
        # accumulator once per chain, which dominates Table 2 rendering on
        # large corpora.
        return len(set().union(
            *(chain.usage.client_ips for chain in self.by_category[category])))

    def port_distribution(self, category: ChainCategory) -> Counter:
        ports: Counter = Counter()
        for chain in self.by_category[category]:
            ports += chain.usage.ports
        return ports

    @property
    def total_chains(self) -> int:
        return sum(len(chains) for chains in self.by_category.values())

    def category_share(self, category: ChainCategory) -> float:
        total = self.total_chains
        if total == 0:
            return 0.0
        return len(self.by_category[category]) / total

    def summary_rows(self) -> list[dict]:
        """Table 2: chains / connections / client IPs per category."""
        rows = []
        for category in (ChainCategory.NON_PUBLIC_ONLY, ChainCategory.HYBRID,
                         ChainCategory.INTERCEPTION, ChainCategory.PUBLIC_ONLY):
            rows.append({
                "category": category.value,
                "chains": self.chain_count(category),
                "connections": self.connection_count(category),
                "client_ips": self.client_ip_count(category),
            })
        return rows


class ChainCategorizer:
    """Assigns each observed chain to its §3.2.2 category."""

    def __init__(self, classifier: CertificateClassifier,
                 interception_name_keys: Optional[Set[tuple]] = None):
        self.classifier = classifier
        self.interception_name_keys = interception_name_keys or set()

    def category(self, chain: ObservedChain) -> ChainCategory:
        if self._is_interception(chain):
            return ChainCategory.INTERCEPTION
        profile = self.classifier.classify_chain(chain.certificates)
        if profile.all_public:
            return ChainCategory.PUBLIC_ONLY
        if profile.all_non_public:
            return ChainCategory.NON_PUBLIC_ONLY
        return ChainCategory.HYBRID

    def _is_interception(self, chain: ObservedChain) -> bool:
        if not self.interception_name_keys:
            return False
        for certificate in chain.certificates:
            if _dn_key(certificate.issuer) in self.interception_name_keys:
                return True
            if _dn_key(certificate.subject) in self.interception_name_keys:
                return True
        return False

    def categorize(self, chains: Iterable[ObservedChain]) -> CategorizedChains:
        result = CategorizedChains()
        for chain in chains:
            result.add(self.category(chain), chain)
        return result

"""Issuer–subject matching and matched-path detection (§4.2, Appendix D.1).

Because the X509 logs carry no keys or signatures, the paper validates
chains *structurally*: walk the delivered chain from the leaf upward and
check that each certificate's issuer matches the next certificate's
subject.  On top of the pairwise matches we detect:

* **segments** — maximal contiguous runs of matching certificates,
* **complete matched paths** — segments of ≥2 certificates whose bottom
  certificate is a valid leaf (Figure 3),
* **mismatch ratio** — mismatched adjacent pairs over total pairs,
* **unnecessary certificates** — certificates outside the chosen complete
  matched path.

Cross-sign disclosures can bridge pairs that would otherwise read as
mismatches (Appendix D.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence

from ..obs import instruments
from ..obs.cache import BoundedLRU
from ..x509.certificate import Certificate
from .crosssign import CrossSignDisclosures

__all__ = [
    "PairMatch",
    "Segment",
    "ChainStructure",
    "analyze_structure",
    "analyze_structure_pair",
    "match_pair",
    "is_leaf_like",
    "pack_structure",
    "unpack_structure",
]


class PairMatch(str, Enum):
    """Verdict for one adjacent (child, parent) pair."""

    DIRECT = "direct"
    CROSS_SIGN = "cross-sign"
    MISMATCH = "mismatch"

    @property
    def matched(self) -> bool:
        return self is not PairMatch.MISMATCH


@dataclass(frozen=True, slots=True)
class Segment:
    """A maximal contiguous run of certificates with matching adjacent pairs.

    ``start``/``end`` are inclusive indexes into the delivered chain;
    a singleton certificate forms a one-element segment.
    """

    start: int
    end: int
    has_leaf: bool

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    @property
    def is_singleton(self) -> bool:
        return self.start == self.end

    @property
    def is_complete_matched_path(self) -> bool:
        """Figure 3's definition: ≥2 matched certificates starting at a
        valid leaf."""
        return self.length >= 2 and self.has_leaf

    def indices(self) -> range:
        return range(self.start, self.end + 1)


def is_leaf_like(certificate: Certificate,
                 chain: Sequence[Certificate] = ()) -> bool:
    """Is this certificate plausibly an end-entity certificate?

    Public-DB issuers set ``basicConstraints`` as the standards require, so
    presence decides directly.  For the extension-less certificates common
    among non-public-DB issuers (§4.3), we fall back to structural hints:
    a certificate that issues nothing else in the chain and either carries a
    subjectAltName or sits first in the delivered order.
    """
    ext = certificate.extensions
    if ext.basic_constraints is not None:
        return not ext.basic_constraints.ca
    # Identity is the fingerprint, not the Python object: a chain
    # reconstructed from logs may hold several distinct objects for one
    # certificate, and they must all answer alike.
    fingerprint = certificate.fingerprint
    issues_someone = any(
        other.fingerprint != fingerprint and certificate.issued(other)
        for other in chain
    )
    if issues_someone:
        return False
    if ext.subject_alt_name is not None and ext.subject_alt_name.dns_names:
        return True
    return bool(chain) and chain[0].fingerprint == fingerprint


@dataclass
class ChainStructure:
    """Full structural analysis of one delivered chain."""

    certificates: tuple[Certificate, ...]
    pair_matches: tuple[PairMatch, ...]
    segments: tuple[Segment, ...]
    #: Segments qualifying as complete matched paths, in chain order.
    complete_paths: tuple[Segment, ...]
    #: The path used for unnecessary-certificate attribution (longest
    #: complete path; earliest wins ties), or None.
    best_path: Optional[Segment]
    mismatch_ratio: float

    @property
    def length(self) -> int:
        return len(self.certificates)

    @property
    def mismatch_positions(self) -> tuple[int, ...]:
        return tuple(i for i, m in enumerate(self.pair_matches)
                     if m is PairMatch.MISMATCH)

    @property
    def is_fully_matched(self) -> bool:
        """Every adjacent pair matches (no leaf requirement) — the §4.3
        criterion for non-public-DB-only and interception chains."""
        return all(m.matched for m in self.pair_matches)

    @property
    def is_complete_matched_path(self) -> bool:
        """The whole chain is exactly one complete matched path."""
        return (self.best_path is not None
                and self.best_path.start == 0
                and self.best_path.end == self.length - 1)

    @property
    def contains_complete_matched_path(self) -> bool:
        return bool(self.complete_paths)

    @property
    def unnecessary_indices(self) -> tuple[int, ...]:
        """Certificates that do not contribute to the chosen trust path."""
        if self.best_path is None:
            return ()
        chosen = set(self.best_path.indices())
        return tuple(i for i in range(self.length) if i not in chosen)

    @property
    def has_unnecessary(self) -> bool:
        return bool(self.unnecessary_indices)

    def unnecessary_certificates(self) -> tuple[Certificate, ...]:
        return tuple(self.certificates[i] for i in self.unnecessary_indices)

    def path_certificates(self) -> tuple[Certificate, ...]:
        if self.best_path is None:
            return ()
        return tuple(self.certificates[i] for i in self.best_path.indices())

    def segment_for_index(self, index: int) -> Segment:
        for segment in self.segments:
            if segment.start <= index <= segment.end:
                return segment
        raise IndexError(index)


def _match_pair(child: Certificate, parent: Certificate,
                disclosures: Optional[CrossSignDisclosures]) -> PairMatch:
    if parent.issued(child):
        return PairMatch.DIRECT
    if disclosures is not None and disclosures.bridges(child, parent):
        return PairMatch.CROSS_SIGN
    return PairMatch.MISMATCH


#: Pair-match memo.  The corpus repeats adjacent pairs massively — every
#: Let's Encrypt leaf shares the same (R3, ISRG Root) tail — so one verdict
#: per distinct (child, parent, disclosure-state) triple covers hundreds of
#: thousands of chains.  262,144 entries bound the memory on adversarial
#: input; hit rates export as ``repro_match_memo_lookups_total``.
_MATCH_MEMO: BoundedLRU[tuple, PairMatch] = BoundedLRU(
    262_144,
    hits=instruments.MATCH_MEMO_HIT,
    misses=instruments.MATCH_MEMO_MISS)


def match_pair(child: Certificate, parent: Certificate,
               disclosures: Optional[CrossSignDisclosures] = None) -> PairMatch:
    """Memoised adjacent-pair verdict.

    Keyed by certificate fingerprints plus the disclosure set's
    ``memo_token`` (a process-local instance id + mutation epoch), so a
    verdict cached under one disclosure state is never served for another:
    mutating or swapping the disclosures changes the token and the memo
    line goes cold.  Safe because :func:`_match_pair` is a pure function
    of the two certificates' names and the disclosure contents.
    """
    token = disclosures.memo_token if disclosures is not None else None
    key = (child.fingerprint, parent.fingerprint, token)
    cached = _MATCH_MEMO.get(key)
    if cached is None:
        cached = _match_pair(child, parent, disclosures)
        _MATCH_MEMO.put(key, cached)
    return cached


def _leaf_like_index(certs: Sequence[Certificate]):
    """O(1)-per-query equivalent of :func:`is_leaf_like` for one chain.

    Precomputes, per subject name, how many *distinct certificates* in the
    chain name it as their issuer — replacing the O(n) rescan that made
    pathological 3,800-certificate chains quadratic to analyze.
    Distinctness is by fingerprint: a reconstructed chain may carry
    several Python objects for one certificate, and counting them per
    object would inflate the issuer counts and flip leaf verdicts
    depending on how the chain was materialised.
    """
    issuer_counts: dict[tuple, int] = {}
    seen_fingerprints: set[str] = set()
    for certificate in certs:
        fingerprint = certificate.fingerprint
        if fingerprint in seen_fingerprints:
            continue
        seen_fingerprints.add(fingerprint)
        key = certificate.issuer.sorted_key()
        issuer_counts[key] = issuer_counts.get(key, 0) + 1

    first_fp = certs[0].fingerprint if certs else None

    def leaf_like(certificate: Certificate) -> bool:
        ext = certificate.extensions
        if ext.basic_constraints is not None:
            return not ext.basic_constraints.ca
        key = certificate.subject.sorted_key()
        named_by = issuer_counts.get(key, 0)
        if certificate.is_self_signed:
            named_by -= 1  # its own issuer field
        if named_by > 0:
            return False
        if ext.subject_alt_name is not None and ext.subject_alt_name.dns_names:
            return True
        return certificate.fingerprint == first_fp

    return leaf_like


def analyze_structure(chain: Sequence[Certificate], *,
                      disclosures: Optional[CrossSignDisclosures] = None,
                      require_leaf: bool = True) -> ChainStructure:
    """Analyze one delivered (wire-order, leaf-first) chain.

    ``require_leaf=False`` relaxes the complete-path definition to "all
    pairs in the segment match", which is how §4.3 treats non-public-DB
    chains whose missing ``basicConstraints`` defeat leaf identification.
    """
    certs = tuple(chain)
    pairs = tuple(
        match_pair(child, parent, disclosures)
        for child, parent in zip(certs, certs[1:])
    )
    return _structure_from_pairs(certs, pairs, require_leaf)


def analyze_structure_pair(chain: Sequence[Certificate], *,
                           disclosures: Optional[CrossSignDisclosures] = None,
                           ) -> tuple[ChainStructure, ChainStructure]:
    """Both ``require_leaf`` variants of one chain from a single
    pair-match pass.

    The pair verdicts do not depend on ``require_leaf`` — only the
    segment ``has_leaf`` flags do — so eager enrichment (the parallel
    analysis engine computes both variants for every multi-certificate
    chain) matches pairs once instead of twice.  Returns
    ``(with_leaf, without_leaf)``.
    """
    certs = tuple(chain)
    pairs = tuple(
        match_pair(child, parent, disclosures)
        for child, parent in zip(certs, certs[1:])
    )
    return (_structure_from_pairs(certs, pairs, True),
            _structure_from_pairs(certs, pairs, False))


def _structure_from_pairs(certs: tuple[Certificate, ...],
                          pairs: tuple[PairMatch, ...],
                          require_leaf: bool) -> ChainStructure:
    """Segment/path/ratio derivation shared by both entry points."""
    leaf_like = _leaf_like_index(certs) if (certs and require_leaf) else None
    segments: list[Segment] = []
    if certs:
        start = 0
        for i, match in enumerate(pairs):
            if not match.matched:
                segments.append(_make_segment(certs, start, i, leaf_like))
                start = i + 1
        segments.append(_make_segment(certs, start, len(certs) - 1, leaf_like))
    return _assemble_structure(certs, pairs, tuple(segments))


def _assemble_structure(certs: tuple[Certificate, ...],
                        pairs: tuple[PairMatch, ...],
                        segments: tuple[Segment, ...]) -> ChainStructure:
    """Derive complete paths / best path / ratio from pairs + segments."""
    complete = tuple(s for s in segments if s.is_complete_matched_path)
    best = None
    for segment in complete:
        if best is None or segment.length > best.length:
            best = segment
    total_pairs = len(pairs)
    mismatches = sum(1 for m in pairs if m is PairMatch.MISMATCH)
    ratio = mismatches / total_pairs if total_pairs else 0.0
    return ChainStructure(
        certificates=certs,
        pair_matches=pairs,
        segments=tuple(segments),
        complete_paths=complete,
        best_path=best,
        mismatch_ratio=ratio,
    )


#: Wire order for the packed pair-match encoding — append only.
_PAIR_ORDER = (PairMatch.DIRECT, PairMatch.CROSS_SIGN, PairMatch.MISMATCH)
_PAIR_ORDINAL = {match: i for i, match in enumerate(_PAIR_ORDER)}


def pack_structure(structure: ChainStructure) -> tuple:
    """Encode a structure's *derived* state as pickle-cheap primitives.

    The artifact cache (:mod:`repro.resilience.checkpoint`) must not
    persist certificates — the caller re-supplies them on load — and
    unpickling tens of thousands of ``Segment`` dataclasses costs more
    than the analysis it saves.  The packed form is one bytes object plus
    int triples; :func:`unpack_structure` rebuilds everything derivable.
    """
    return (
        bytes(_PAIR_ORDINAL[m] for m in structure.pair_matches),
        tuple((s.start, s.end, s.has_leaf) for s in structure.segments),
    )


def unpack_structure(certificates: Sequence[Certificate],
                     packed: tuple) -> ChainStructure:
    """Rebuild a :func:`pack_structure` encoding against live certificates."""
    pair_bytes, segment_triples = packed
    pairs = tuple(_PAIR_ORDER[b] for b in pair_bytes)
    segments = tuple(Segment(start=start, end=end, has_leaf=has_leaf)
                     for start, end, has_leaf in segment_triples)
    return _assemble_structure(tuple(certificates), pairs, segments)


def _make_segment(certs: Sequence[Certificate], start: int, end: int,
                  leaf_like) -> Segment:
    if leaf_like is not None:
        has_leaf = leaf_like(certs[start])
    else:
        has_leaf = True
    return Segment(start=start, end=end, has_leaf=has_leaf)

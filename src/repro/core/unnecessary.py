"""Unnecessary-certificate pattern attribution (Appendix F.2).

Beyond *detecting* unnecessary certificates (``ChainStructure`` does
that structurally), the paper attributes them to recognisable causes:
Let's Encrypt staging placeholders deployed to production, Athenz-style
software-appended self-signed certificates, enterprise "tester"
certificates, and redundant extra roots.  This module implements those
pattern detectors so reports can say *why* a chain carries dead weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Sequence

from ..truststores.registry import PublicDBRegistry
from ..x509.certificate import Certificate
from .matching import ChainStructure

__all__ = ["UnnecessaryPattern", "UnnecessaryFinding", "attribute_unnecessary"]

#: The staging placeholder Let's Encrypt's --test-cert/--dry-run flow mints.
FAKE_LE_ROOT_CN = "Fake LE Root X1"
FAKE_LE_INTERMEDIATE_CN = "Fake LE Intermediate X1"


class UnnecessaryPattern(str, Enum):
    FAKE_LE_STAGING = "lets-encrypt-staging-placeholder"
    SOFTWARE_APPENDED_SELF_SIGNED = "software-appended-self-signed"
    ENTERPRISE_SELF_SIGNED = "enterprise-self-signed"
    EXTRA_PUBLIC_ROOT = "extra-public-root"
    LEAF_BEFORE_PATH = "stray-leaf-before-path"
    UNCLASSIFIED = "unclassified"


#: CNs/O markers of certificate-management software known to append
#: self-signed certificates (Appendix F.2 names Athenz explicitly).
_SOFTWARE_MARKERS = ("athenz", "cert-manager", "自動", "autocert")
_ENTERPRISE_MARKERS = ("tester", "internal", "corp", "hp inc", "localhost")


@dataclass(frozen=True, slots=True)
class UnnecessaryFinding:
    """One unnecessary certificate with its attributed cause."""

    index: int
    certificate: Certificate
    pattern: UnnecessaryPattern

    def describe(self) -> str:
        return (f"position {self.index}: {self.certificate.short_name()!r} "
                f"[{self.pattern.value}]")


def _is_fake_le(certificate: Certificate) -> bool:
    cn = certificate.subject.common_name or ""
    issuer_cn = certificate.issuer.common_name or ""
    return (cn == FAKE_LE_INTERMEDIATE_CN or cn == FAKE_LE_ROOT_CN
            or issuer_cn == FAKE_LE_ROOT_CN)


def _marker_match(certificate: Certificate, markers: Sequence[str]) -> bool:
    haystacks = [
        value.lower() for value in (
            certificate.subject.common_name,
            certificate.subject.organization,
            certificate.issuer.common_name,
            certificate.issuer.organization,
        ) if value
    ]
    return any(marker in haystack for marker in markers for haystack in haystacks)


def attribute_unnecessary(structure: ChainStructure,
                          registry: Optional[PublicDBRegistry] = None
                          ) -> List[UnnecessaryFinding]:
    """Attribute each unnecessary certificate in a chain to a pattern.

    Requires a chain that *contains* a complete matched path (otherwise
    there is no chosen trust path to be unnecessary relative to).
    """
    findings: List[UnnecessaryFinding] = []
    best = structure.best_path
    if best is None:
        return findings
    for index in structure.unnecessary_indices:
        certificate = structure.certificates[index]
        findings.append(UnnecessaryFinding(
            index, certificate, _pattern_for(certificate, index, best.start,
                                             registry)))
    return findings


def _pattern_for(certificate: Certificate, index: int, path_start: int,
                 registry: Optional[PublicDBRegistry]) -> UnnecessaryPattern:
    if _is_fake_le(certificate):
        return UnnecessaryPattern.FAKE_LE_STAGING
    if certificate.is_self_signed and _marker_match(certificate, _SOFTWARE_MARKERS):
        return UnnecessaryPattern.SOFTWARE_APPENDED_SELF_SIGNED
    if certificate.is_self_signed and _marker_match(certificate, _ENTERPRISE_MARKERS):
        return UnnecessaryPattern.ENTERPRISE_SELF_SIGNED
    if registry is not None and registry.is_trust_anchor_name(certificate.subject):
        return UnnecessaryPattern.EXTRA_PUBLIC_ROOT
    if index < path_start:
        # A leaf delivered *before* the complete matched path (§4.2's
        # "chains begin with a leaf certificate followed by the path").
        ext = certificate.extensions
        if ext.basic_constraints is None or not ext.basic_constraints.ca:
            return UnnecessaryPattern.LEAF_BEFORE_PATH
    if certificate.is_self_signed:
        return UnnecessaryPattern.ENTERPRISE_SELF_SIGNED
    return UnnecessaryPattern.UNCLASSIFIED

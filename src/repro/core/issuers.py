"""Issuer-level statistics (Appendix F's issuer analysis, generalised).

The paper's appendices repeatedly pivot from chains to *issuers*: which
entities issue the non-public leaves (F.1), whose software appends the
junk (F.2), how concentrated the issuer population is.  This module
computes those pivots for any chain set.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..x509.dn import DistinguishedName
from .chain import ObservedChain
from .classification import CertificateClassifier, IssuerClass

__all__ = ["IssuerStats", "issuer_statistics", "concentration_index"]


def _dn_key(dn: DistinguishedName) -> tuple:
    return tuple(sorted(dn.normalized()))


@dataclass(frozen=True, slots=True)
class IssuerStats:
    """One issuer's footprint over a chain set."""

    issuer: DistinguishedName
    issuer_class: IssuerClass
    chains: int
    connections: int
    leaf_chains: int

    @property
    def display_name(self) -> str:
        return (self.issuer.common_name or self.issuer.organization
                or self.issuer.rfc4514())


def issuer_statistics(chains: Iterable[ObservedChain],
                      classifier: CertificateClassifier, *,
                      leaf_only: bool = False) -> List[IssuerStats]:
    """Per-issuer chain/connection counts, sorted by chain count.

    ``leaf_only`` restricts the pivot to leaf issuers (first certificate),
    the view Appendix F.1 takes; otherwise every certificate in every chain
    attributes its issuer.
    """
    per_issuer_chains: Counter = Counter()
    per_issuer_connections: Counter = Counter()
    per_issuer_leaves: Counter = Counter()
    issuer_dns: Dict[tuple, DistinguishedName] = {}
    issuer_class: Dict[tuple, IssuerClass] = {}

    for chain in chains:
        seen_in_chain: set[tuple] = set()
        for position, certificate in enumerate(chain.certificates):
            if leaf_only and position > 0:
                break
            key = _dn_key(certificate.issuer)
            issuer_dns.setdefault(key, certificate.issuer)
            if key not in issuer_class:
                issuer_class[key] = (
                    IssuerClass.PUBLIC_DB
                    if classifier.registry.is_public_issuer_name(
                        certificate.issuer)
                    else IssuerClass.NON_PUBLIC_DB)
            if position == 0:
                per_issuer_leaves[key] += 1
            if key not in seen_in_chain:
                seen_in_chain.add(key)
                per_issuer_chains[key] += 1
                per_issuer_connections[key] += chain.usage.connections
    stats = [
        IssuerStats(
            issuer=issuer_dns[key],
            issuer_class=issuer_class[key],
            chains=per_issuer_chains[key],
            connections=per_issuer_connections[key],
            leaf_chains=per_issuer_leaves.get(key, 0),
        )
        for key in per_issuer_chains
    ]
    stats.sort(key=lambda s: (-s.chains, s.display_name))
    return stats


def concentration_index(stats: Sequence[IssuerStats], *,
                        by: str = "chains") -> float:
    """Herfindahl–Hirschman index of issuer concentration in [0, 1].

    1.0 means a single issuer covers everything; → 0 means a perfectly
    fragmented issuer population (the non-public world's signature).
    """
    values = [getattr(s, by) for s in stats]
    total = sum(values)
    if total == 0:
        return 0.0
    return sum((v / total) ** 2 for v in values)

"""Bandwidth and latency cost of unnecessary certificates (§6.1).

The paper notes that unnecessary certificates "increase the TLS handshake
latency and consume additional network bandwidth" but does not quantify it.
This module does, using a deterministic DER-size model for structured
certificates and a TCP delivery model:

* **bytes** — each unnecessary certificate inflates the Certificate
  message by its encoded size;
* **latency** — when the inflated message overflows the server's initial
  congestion window (10 segments ≈ 14,600 bytes, RFC 6928), the handshake
  pays at least one extra round trip before the client can respond.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from ..x509.certificate import Certificate, KeyAlgorithm
from ..x509.der import encode_certificate_der
from .chain import ObservedChain
from .matching import ChainStructure, analyze_structure

__all__ = [
    "estimated_der_size",
    "chain_wire_size",
    "OverheadReport",
    "estimate_overhead",
    "INITCWND_BYTES",
]

#: 10 segments of 1,460 B MSS (RFC 6928's initial congestion window).
INITCWND_BYTES = 14_600

#: Fixed ASN.1 scaffolding: TBS wrapper, version, validity, algorithm
#: identifiers, signature wrapper (empirically ~320 B on real certs).
_BASE_OVERHEAD = 320
#: Per-attribute DN overhead (SET/SEQUENCE/OID wrappers).
_DN_ATTR_OVERHEAD = 11


#: Cache of encoded sizes; the overhead sweep revisits the same
#: certificates across many chains.
_SIZE_CACHE: Dict[str, int] = {}


def estimated_der_size(certificate: Certificate) -> int:
    """The certificate's DER size in bytes — byte-exact, not a model.

    The record is rendered through :mod:`repro.x509.der` (the from-scratch
    X.509 encoder) and measured.  A 2048-bit RSA leaf with a couple of SANs
    lands near 900 B–1.2 kB, a 4096-bit root near 1.3-1.9 kB — the figures
    operators see in practice.
    """
    cached = _SIZE_CACHE.get(certificate.fingerprint)
    if cached is None:
        cached = len(encode_certificate_der(certificate))
        _SIZE_CACHE[certificate.fingerprint] = cached
    return cached


def _heuristic_der_size(certificate: Certificate) -> int:
    """The original closed-form size model, kept for the encoder tests
    (which bound how far the heuristic drifts from the real encoding)."""
    size = _BASE_OVERHEAD
    for dn in (certificate.subject, certificate.issuer):
        for attr in dn:
            size += _DN_ATTR_OVERHEAD + len(attr.attr_type) \
                + len(attr.value.encode("utf-8"))
    if certificate.key_algorithm is KeyAlgorithm.RSA:
        # Modulus + exponent + SPKI wrapper; signature of the same order.
        size += certificate.key_bits // 8 + 38
        size += certificate.key_bits // 8 + 10
    elif certificate.key_algorithm is KeyAlgorithm.ECDSA:
        size += certificate.key_bits // 4 + 30
        size += 72
    else:
        size += 64 + 72
    ext = certificate.extensions
    if ext.basic_constraints is not None:
        size += 15
    if ext.key_usage is not None:
        size += 14
    if ext.extended_key_usage is not None:
        size += 20 + 10 * len(ext.extended_key_usage.purposes)
    if ext.subject_alt_name is not None:
        size += 14 + sum(len(n) + 4
                         for n in ext.subject_alt_name.dns_names)
    if ext.subject_key_id is not None:
        size += 33
    if ext.authority_key_id is not None:
        size += 35
    return size


def chain_wire_size(chain: Sequence[Certificate]) -> int:
    """Bytes the certificate_list contributes to the handshake
    (3-byte length prefix per certificate, RFC 5246 §7.4.2)."""
    return sum(estimated_der_size(cert) + 3 for cert in chain)


@dataclass(frozen=True, slots=True)
class OverheadReport:
    """Aggregate §6.1 cost of unnecessary certificates over a chain set."""

    chains_with_unnecessary: int
    connections_affected: int
    wasted_bytes_per_affected_handshake: float
    total_wasted_bytes: int
    #: Handshakes pushed over the initial congestion window *only because*
    #: of unnecessary certificates (they fit without them).
    extra_round_trips: int

    @property
    def wasted_kib_total(self) -> float:
        return self.total_wasted_bytes / 1024.0


def estimate_overhead(chains: Iterable[ObservedChain], *,
                      disclosures=None) -> OverheadReport:
    """Quantify the §6.1 costs across observed chains with usage data."""
    affected = 0
    affected_connections = 0
    total_wasted = 0
    wasted_samples: list[int] = []
    extra_rtt = 0
    for chain in chains:
        structure = analyze_structure(chain.certificates,
                                      disclosures=disclosures,
                                      require_leaf=True)
        unnecessary = structure.unnecessary_certificates()
        if not unnecessary:
            continue
        wasted = sum(estimated_der_size(cert) + 3 for cert in unnecessary)
        full_size = chain_wire_size(chain.certificates)
        lean_size = full_size - wasted
        affected += 1
        connections = chain.usage.connections
        affected_connections += connections
        total_wasted += wasted * connections
        wasted_samples.append(wasted)
        if lean_size <= INITCWND_BYTES < full_size:
            extra_rtt += connections
    mean_wasted = (sum(wasted_samples) / len(wasted_samples)
                   if wasted_samples else 0.0)
    return OverheadReport(
        chains_with_unnecessary=affected,
        connections_affected=affected_connections,
        wasted_bytes_per_affected_handshake=mean_wasted,
        total_wasted_bytes=total_wasted,
        extra_round_trips=extra_rtt,
    )

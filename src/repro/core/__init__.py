"""The paper's contribution: the certificate chain structure analyzer.

The pipeline (Figure 2) is orchestrated by
:class:`~repro.core.pipeline.ChainStructureAnalyzer`; the submodules
implement its stages and the per-section analyses.
"""

from .categorization import CategorizedChains, ChainCategorizer, ChainCategory
from .chain import ChainUsage, ObservedChain, aggregate_chains
from .classification import CertificateClassifier, ChainClassProfile, IssuerClass
from .crosssign import CrossSignDisclosures, detect_cross_sign_candidates
from .dga import DGACluster, DGADetector, domain_template, looks_random
from .hybrid import (
    CellLabel,
    CompletePathKind,
    EntityKind,
    HybridAnalyzer,
    HybridCategory,
    HybridChainAnalysis,
    HybridReport,
    NoPathCategory,
    classify_entity,
)
from .interception import (
    CATEGORY_ORDER,
    InterceptionDetector,
    InterceptionIssuer,
    InterceptionReport,
    VendorDirectory,
)
from .lengths import LengthDistribution, exclude_outliers, length_distributions
from .matching import ChainStructure, PairMatch, Segment, analyze_structure, is_leaf_like
from .pipeline import (
    AnalysisResult,
    ChainStructureAnalyzer,
    MultiCertPathStats,
    SingleCertStats,
)
from .issuers import IssuerStats, concentration_index, issuer_statistics
from .overhead import (
    INITCWND_BYTES,
    OverheadReport,
    chain_wire_size,
    estimate_overhead,
    estimated_der_size,
)
from .report import format_count, format_pct, render_table, side_by_side
from .serverchains import (
    ChainChangeKind,
    MultiChainReport,
    ServerChainGroup,
    analyze_multi_chain_servers,
    classify_change,
    group_by_server,
)
from .timeline import MonthBucket, churn_summary, month_key, monthly_activity
from .structures import (
    GraphSummary,
    build_cooccurrence_graph,
    build_issuance_graph,
    complex_intermediates,
    complex_subgraph,
    infer_role,
    summarize_graph,
)
from .unnecessary import UnnecessaryFinding, UnnecessaryPattern, attribute_unnecessary

__all__ = [
    "AnalysisResult",
    "CATEGORY_ORDER",
    "CategorizedChains",
    "CellLabel",
    "ChainCategorizer",
    "ChainCategory",
    "ChainClassProfile",
    "ChainStructure",
    "ChainStructureAnalyzer",
    "ChainUsage",
    "CertificateClassifier",
    "CompletePathKind",
    "CrossSignDisclosures",
    "DGACluster",
    "DGADetector",
    "EntityKind",
    "GraphSummary",
    "INITCWND_BYTES",
    "IssuerStats",
    "OverheadReport",
    "HybridAnalyzer",
    "HybridCategory",
    "HybridChainAnalysis",
    "HybridReport",
    "InterceptionDetector",
    "InterceptionIssuer",
    "InterceptionReport",
    "IssuerClass",
    "LengthDistribution",
    "MultiCertPathStats",
    "NoPathCategory",
    "ObservedChain",
    "PairMatch",
    "Segment",
    "SingleCertStats",
    "UnnecessaryFinding",
    "UnnecessaryPattern",
    "VendorDirectory",
    "aggregate_chains",
    "analyze_structure",
    "attribute_unnecessary",
    "build_cooccurrence_graph",
    "build_issuance_graph",
    "chain_wire_size",
    "classify_entity",
    "concentration_index",
    "complex_intermediates",
    "complex_subgraph",
    "detect_cross_sign_candidates",
    "domain_template",
    "estimate_overhead",
    "estimated_der_size",
    "exclude_outliers",
    "format_count",
    "format_pct",
    "infer_role",
    "is_leaf_like",
    "issuer_statistics",
    "length_distributions",
    "looks_random",
    "MonthBucket",
    "ChainChangeKind",
    "MultiChainReport",
    "ServerChainGroup",
    "analyze_multi_chain_servers",
    "classify_change",
    "group_by_server",
    "churn_summary",
    "month_key",
    "monthly_activity",
    "render_table",
    "side_by_side",
    "summarize_graph",
]

"""PKI relationship graphs (Figures 5, 7, 8; Appendix E, I).

Figure 5 draws certificates in hybrid chains with co-occurrence edges
("two nodes are connected if ever observed together in at least one
chain"), coloured by issuer class and sized by hierarchy role.  Figures 7
and 8 extract the *complex* PKI structures in non-public-only and
interception chains: intermediate certificates linked to at least three
distinct other intermediates across chains.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import networkx as nx

from ..x509.certificate import Certificate
from .chain import ObservedChain
from .classification import CertificateClassifier, IssuerClass

__all__ = [
    "infer_role",
    "build_cooccurrence_graph",
    "build_issuance_graph",
    "complex_intermediates",
    "complex_subgraph",
    "GraphSummary",
    "summarize_graph",
]


def infer_role(certificate: Certificate,
               chains: Sequence[ObservedChain]) -> str:
    """Infer leaf/intermediate/root from names and extensions, as a
    log-based observer must (ground-truth roles are never consulted).
    """
    issues_someone = any(
        certificate.issued(other)
        for chain in chains
        for other in chain.certificates
        if other.fingerprint != certificate.fingerprint
    )
    return _role_from(certificate, issues_someone)


def _role_from(certificate: Certificate, issues_someone: bool) -> str:
    if certificate.is_self_signed:
        return "root" if (issues_someone or _declares_ca(certificate)) else "leaf"
    if _declares_ca(certificate) or issues_someone:
        return "intermediate"
    return "leaf"


def _roles_for_chains(chains: Sequence[ObservedChain]) -> Dict[str, str]:
    """Role for every distinct certificate, in one pass.

    Equivalent to calling :func:`infer_role` per certificate, but indexes
    issuer names once instead of rescanning all chains per certificate.
    """
    from collections import Counter

    def dn_key(dn) -> tuple:
        return tuple(sorted(dn.normalized()))

    certificates: Dict[str, Certificate] = {}
    #: issuer name -> how many distinct certificates name it as issuer.
    issuer_name_counts: Counter = Counter()
    #: fingerprint -> whether the certificate names *itself* as issuer.
    for chain in chains:
        for certificate in chain.certificates:
            if certificate.fingerprint not in certificates:
                certificates[certificate.fingerprint] = certificate
                issuer_name_counts[dn_key(certificate.issuer)] += 1
    roles: Dict[str, str] = {}
    for fingerprint, certificate in certificates.items():
        key = dn_key(certificate.subject)
        named_by = issuer_name_counts.get(key, 0)
        if certificate.is_self_signed:
            # The certificate names itself; anyone else naming it means it
            # issues someone.
            issues_someone = named_by > 1
        else:
            issues_someone = named_by > 0
        roles[fingerprint] = _role_from(certificate, issues_someone)
    return roles


def _declares_ca(certificate: Certificate) -> bool:
    bc = certificate.extensions.basic_constraints
    return bc is not None and bc.ca


def build_cooccurrence_graph(chains: Sequence[ObservedChain],
                             classifier: Optional[CertificateClassifier] = None
                             ) -> nx.Graph:
    """Figure 5's graph: one node per distinct certificate, an edge for
    every pair that co-occurs in at least one chain.

    Node attributes: ``label`` (short name), ``issuer_class``
    ("public-db"/"non-public-db"/"unknown"), ``role``
    ("leaf"/"intermediate"/"root").
    """
    graph = nx.Graph()
    roles = _roles_for_chains(chains)
    for chain in chains:
        for certificate in chain.certificates:
            if certificate.fingerprint not in graph:
                issuer_class = "unknown"
                if classifier is not None:
                    issuer_class = classifier.classify(certificate).value
                graph.add_node(
                    certificate.fingerprint,
                    label=certificate.short_name(),
                    issuer_class=issuer_class,
                    role=roles[certificate.fingerprint],
                )
        fps = [c.fingerprint for c in chain.certificates]
        for i, a in enumerate(fps):
            for b in fps[i + 1:]:
                if a != b:
                    graph.add_edge(a, b)
    return graph


def build_issuance_graph(chains: Sequence[ObservedChain]) -> nx.DiGraph:
    """Figures 7/8's graph: edges point from the issuing certificate to the
    certificate it issued, across all delivered chains (only pairs whose
    names actually chain contribute edges)."""
    graph = nx.DiGraph()
    roles = _roles_for_chains(chains)
    for chain in chains:
        certs = chain.certificates
        for certificate in certs:
            if certificate.fingerprint not in graph:
                graph.add_node(
                    certificate.fingerprint,
                    label=certificate.short_name(),
                    role=roles[certificate.fingerprint],
                )
        for child, parent in zip(certs, certs[1:]):
            if parent.issued(child):
                graph.add_edge(parent.fingerprint, child.fingerprint)
    return graph


def complex_intermediates(graph: nx.DiGraph, *, min_links: int = 3) -> List[str]:
    """Appendix I's criterion: intermediates linked to at least
    ``min_links`` distinct *intermediate* certificates across chains."""
    result = []
    for node, data in graph.nodes(data=True):
        if data.get("role") != "intermediate":
            continue
        neighbors = set(graph.predecessors(node)) | set(graph.successors(node))
        intermediate_neighbors = {
            n for n in neighbors
            if graph.nodes[n].get("role") == "intermediate"
        }
        if len(intermediate_neighbors) >= min_links:
            result.append(node)
    return result


def complex_subgraph(graph: nx.DiGraph, *, min_links: int = 3) -> nx.DiGraph:
    """The subgraph shown in Figures 7/8: complex intermediates plus their
    immediate neighborhoods."""
    cores = complex_intermediates(graph, min_links=min_links)
    keep: set[str] = set(cores)
    for node in cores:
        keep |= set(graph.predecessors(node))
        keep |= set(graph.successors(node))
    return graph.subgraph(keep).copy()


@dataclass(frozen=True, slots=True)
class GraphSummary:
    """The printable series behind a PKI-structure figure."""

    nodes: int
    edges: int
    nodes_by_role: tuple[tuple[str, int], ...]
    nodes_by_class: tuple[tuple[str, int], ...]
    components: int
    max_degree: int
    complex_intermediates: int

    def as_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "edges": self.edges,
            "nodes_by_role": dict(self.nodes_by_role),
            "nodes_by_class": dict(self.nodes_by_class),
            "components": self.components,
            "max_degree": self.max_degree,
            "complex_intermediates": self.complex_intermediates,
        }


def summarize_graph(graph: nx.Graph | nx.DiGraph, *,
                    min_links: int = 3) -> GraphSummary:
    roles = Counter(data.get("role", "unknown")
                    for _, data in graph.nodes(data=True))
    classes = Counter(data.get("issuer_class", "unknown")
                      for _, data in graph.nodes(data=True))
    undirected = graph.to_undirected() if graph.is_directed() else graph
    components = nx.number_connected_components(undirected) if len(graph) else 0
    max_degree = max((d for _, d in undirected.degree()), default=0)
    if graph.is_directed():
        complex_count = len(complex_intermediates(graph, min_links=min_links))
    else:
        complex_count = 0
    return GraphSummary(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        nodes_by_role=tuple(sorted(roles.items())),
        nodes_by_class=tuple(sorted(classes.items())),
        components=components,
        max_degree=max_degree,
        complex_intermediates=complex_count,
    )

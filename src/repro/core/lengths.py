"""Chain length distributions (§4.1, Figure 1).

Figure 1 plots the cumulative fraction of *chains* by advertised length for
each category.  The paper excludes three pathological outliers (lengths
3,822, 921, and 41 — each observed once, all failing to establish); the
same exclusion rule is parameterised here.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .categorization import CategorizedChains, ChainCategory
from .chain import ObservedChain

__all__ = ["LengthDistribution", "length_distributions", "exclude_outliers"]


@dataclass
class LengthDistribution:
    """Length histogram + CDF for one chain category."""

    category: ChainCategory
    counts: Counter

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction_at(self, length: int) -> float:
        if self.total == 0:
            return 0.0
        return self.counts.get(length, 0) / self.total

    def cdf(self) -> List[Tuple[int, float]]:
        """(length, cumulative fraction) points in increasing length order."""
        if self.total == 0:
            return []
        points: List[Tuple[int, float]] = []
        cumulative = 0
        for length in sorted(self.counts):
            cumulative += self.counts[length]
            points.append((length, cumulative / self.total))
        return points

    def cumulative_fraction_at(self, length: int) -> float:
        if self.total == 0:
            return 0.0
        covered = sum(count for l, count in self.counts.items() if l <= length)
        return covered / self.total

    def dominant_length(self) -> int | None:
        if not self.counts:
            return None
        return self.counts.most_common(1)[0][0]

    def max_length(self) -> int:
        return max(self.counts) if self.counts else 0


def exclude_outliers(chains: Iterable[ObservedChain], *,
                     max_length: int = 40,
                     min_connections: int = 2) -> tuple[list[ObservedChain],
                                                        list[ObservedChain]]:
    """Split chains into (kept, excluded) using the paper's §4.1 rule:
    a chain is an outlier when it is longer than ``max_length`` *and* was
    observed fewer than ``min_connections`` times."""
    kept: list[ObservedChain] = []
    excluded: list[ObservedChain] = []
    for chain in chains:
        if chain.length > max_length and chain.usage.connections < min_connections:
            excluded.append(chain)
        else:
            kept.append(chain)
    return kept, excluded


def length_distributions(categorized: CategorizedChains, *,
                         apply_outlier_rule: bool = True
                         ) -> Dict[ChainCategory, LengthDistribution]:
    """Figure 1's per-category distributions."""
    result: Dict[ChainCategory, LengthDistribution] = {}
    for category in ChainCategory:
        chains = categorized.chains(category)
        if apply_outlier_rule:
            chains, _ = exclude_outliers(chains)
        counts = Counter(chain.length for chain in chains)
        result[category] = LengthDistribution(category, counts)
    return result

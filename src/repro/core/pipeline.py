"""The certificate chain structure analyzer (Figure 2).

This is the paper's end-to-end pipeline: **certificate enrichment**
(public/non-public classification against trust stores, interception
identification via CT) feeding the **chain enrichment pipeline**
(categorisation → mismatch & cross-sign detection → complete/partial path
detection), producing every statistic reported in §3–§4.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from ..ct.crtsh import CrtShIndex
from ..faults.injector import FaultInjector
from ..faults.plan import active_plan
from ..obs import instruments
from ..obs.logging import get_logger, kv
from ..obs.tracing import trace_span
from .. import __version__
from ..resilience.breaker import CircuitBreaker
from ..resilience.checkpoint import (ArtifactStore, CheckpointStore,
                                     input_fingerprint)
from ..truststores.registry import PublicDBRegistry
from ..zeek.tap import JoinedConnection
from .categorization import CategorizedChains, ChainCategorizer, ChainCategory
from .chain import ObservedChain, aggregate_chains
from .classification import CertificateClassifier
from .crosssign import CrossSignDisclosures
from .dga import DGACluster, DGADetector
from .hybrid import HybridAnalyzer, HybridChainAnalysis, HybridReport
from .interception import InterceptionDetector, InterceptionReport, VendorDirectory
from .lengths import LengthDistribution, length_distributions
from .matching import (ChainStructure, analyze_structure, pack_structure,
                       unpack_structure)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..parallel.engine import IngestResult
    from ..parallel.supervisor import SupervisorConfig

__all__ = ["ChainStructureAnalyzer", "AnalysisResult",
           "SingleCertStats", "MultiCertPathStats"]

log = get_logger(__name__)

#: Part of the artifact-cache key.  Bump whenever enrichment semantics
#: change (new category rules, structure derivation, hybrid taxonomy…) so
#: cached ``AnalysisResult`` pickles from older code read as stale.
_ANALYSIS_CODE_VERSION = "analysis-v2"


@dataclass(frozen=True, slots=True)
class SingleCertStats:
    """§4.3's single-certificate chain statistics for one category."""

    chains: int
    share_of_category: float
    self_signed_pct: float
    connections: int
    client_ips: int
    no_sni_connection_pct: float


@dataclass(frozen=True, slots=True)
class MultiCertPathStats:
    """Table 8's matched-path statistics for multi-certificate chains."""

    chains: int
    is_matched_path: int
    contains_matched_path: int
    no_matched_path: int

    @property
    def is_matched_path_pct(self) -> float:
        if self.chains == 0:
            return 0.0
        return 100.0 * self.is_matched_path / self.chains


@dataclass
class AnalysisResult:
    """Everything the analyzer derives from one log corpus."""

    chains: Dict[tuple[str, ...], ObservedChain]
    categorized: CategorizedChains
    interception: InterceptionReport
    hybrid: HybridReport
    dga_clusters: List[DGACluster]
    classifier: CertificateClassifier
    disclosures: Optional[CrossSignDisclosures]
    _structure_cache: Dict[tuple[str, ...], ChainStructure] = field(
        default_factory=dict)
    #: Artifact-cache entries not yet decoded: chain key -> packed
    #: (require_leaf=True, require_leaf=False) structure encodings.
    #: Decoded lazily so a warm load does no per-structure Python work.
    _packed_structures: Dict[tuple[str, ...], tuple] = field(
        default_factory=dict)

    # -- structure access -------------------------------------------------------

    def structure_of(self, chain: ObservedChain, *,
                     require_leaf: bool = False) -> ChainStructure:
        cache_key = chain.key + (("L",) if require_leaf else ("N",))
        cached = self._structure_cache.get(cache_key)
        if cached is not None:
            instruments.STRUCTURE_CACHE_HIT.inc()
            return cached
        packed_pair = self._packed_structures.get(chain.key)
        packed = packed_pair[0 if require_leaf else 1] if packed_pair else None
        if packed is not None:
            # Decoding a packed artifact entry skips the pair matching —
            # observable as a cache hit.
            instruments.STRUCTURE_CACHE_HIT.inc()
            cached = unpack_structure(chain.certificates, packed)
        else:
            instruments.STRUCTURE_CACHE_MISS.inc()
            cached = analyze_structure(chain.certificates,
                                       disclosures=self.disclosures,
                                       require_leaf=require_leaf)
        self._structure_cache[cache_key] = cached
        return cached

    # -- §4.1 -------------------------------------------------------------------

    def length_distributions(self) -> Dict[ChainCategory, LengthDistribution]:
        return length_distributions(self.categorized)

    # -- §4.3 -------------------------------------------------------------------

    def single_cert_stats(self, category: ChainCategory) -> SingleCertStats:
        chains = self.categorized.chains(category)
        singles = [c for c in chains if c.is_single]
        self_signed = sum(1 for c in singles if c.is_single_self_signed)
        connections = sum(c.usage.connections for c in singles)
        no_sni = sum(c.usage.connections - c.usage.sni_present for c in singles)
        clients = set().union(*(c.usage.client_ips for c in singles))
        return SingleCertStats(
            chains=len(singles),
            share_of_category=100.0 * len(singles) / len(chains) if chains else 0.0,
            self_signed_pct=100.0 * self_signed / len(singles) if singles else 0.0,
            connections=connections,
            client_ips=len(clients),
            no_sni_connection_pct=100.0 * no_sni / connections if connections else 0.0,
        )

    def multicert_path_stats(self, category: ChainCategory) -> MultiCertPathStats:
        chains = [c for c in self.categorized.chains(category) if c.length > 1]
        is_path = contains = none = 0
        for chain in chains:
            structure = self.structure_of(chain, require_leaf=False)
            if structure.is_fully_matched:
                is_path += 1
            elif any(s.length >= 2 for s in structure.segments):
                contains += 1
            else:
                none += 1
        return MultiCertPathStats(
            chains=len(chains),
            is_matched_path=is_path,
            contains_matched_path=contains,
            no_matched_path=none,
        )

    # -- convenience -------------------------------------------------------------

    def establishment_pct(self, category: ChainCategory) -> float:
        chains = self.categorized.chains(category)
        connections = sum(c.usage.connections for c in chains)
        established = sum(c.usage.established for c in chains)
        return 100.0 * established / connections if connections else 0.0


class ChainStructureAnalyzer:
    """Figure 2's full pipeline, from joined log rows to AnalysisResult.

    Resilience hooks:

    * CT lookups inside interception detection run through ``ct_breaker``
      (and ``faults``, defaulting to the ambient fault plan) — an outage
      produces the degraded ``ct_unavailable`` verdict instead of a crash;
    * ``analyze_chains(..., checkpoint=..., resume=True)`` persists each
      stage's output to a :class:`CheckpointStore` and, on resume, serves
      completed stages from disk when the input fingerprint still matches,
      so a run killed in stage 3 does not redo stages 1–2.
    """

    def __init__(self, registry: PublicDBRegistry, *,
                 ct_index: Optional[CrtShIndex] = None,
                 vendor_directory: Optional[VendorDirectory] = None,
                 disclosures: Optional[CrossSignDisclosures] = None,
                 ct_breaker: Optional[CircuitBreaker] = None,
                 faults: Optional[FaultInjector] = None):
        self.registry = registry
        self.ct_index = ct_index
        self.vendor_directory = vendor_directory
        self.disclosures = disclosures
        self.ct_breaker = ct_breaker or CircuitBreaker(name="ct")
        if faults is None:
            plan = active_plan()
            faults = FaultInjector(plan) if plan.any() else None
        self.faults = faults

    def analyze_connections(self, connections: Iterable[JoinedConnection],
                            *, checkpoint: Optional[CheckpointStore] = None,
                            resume: bool = False,
                            jobs: Optional[int] = None,
                            artifacts: Optional[ArtifactStore] = None,
                            supervise: Optional["SupervisorConfig"] = None,
                            ) -> AnalysisResult:
        return self.analyze_chains(aggregate_chains(connections),
                                   checkpoint=checkpoint, resume=resume,
                                   jobs=jobs, artifacts=artifacts,
                                   supervise=supervise)

    def analyze_ingest(self, ingest: "IngestResult",
                       *, checkpoint: Optional[CheckpointStore] = None,
                       resume: bool = False,
                       jobs: Optional[int] = None,
                       artifacts: Optional[ArtifactStore] = None,
                       supervise: Optional["SupervisorConfig"] = None,
                       ) -> AnalysisResult:
        """Analyze the merged chain map of a (parallel) sharded ingest.

        The engine's merge already produced the same chain map a serial
        pass yields, so the checkpoint fingerprint — derived from the
        sorted chain keys and usage counts — matches across ``--jobs``
        values and a resume works regardless of the worker count that
        wrote the checkpoint.
        """
        return self.analyze_chains(ingest.chains,
                                   checkpoint=checkpoint, resume=resume,
                                   jobs=jobs, artifacts=artifacts,
                                   supervise=supervise)

    def _fingerprint(self, chains: Dict[tuple[str, ...], ObservedChain]
                     ) -> str:
        """Identity of this run's input + configuration, for checkpoints."""
        parts: List[object] = [
            "analyzer-v1",
            type(self.registry).__name__,
            self.ct_index is not None,
            self.vendor_directory is not None,
            self.disclosures is not None,
        ]
        for key in sorted(chains):
            usage = chains[key].usage
            parts.append((key, usage.connections, usage.established,
                          usage.sni_present))
        return input_fingerprint(parts)

    def _artifact_fingerprint(self, fingerprint: str) -> str:
        """Content address of one run's whole ``AnalysisResult``.

        Chain-map identity + analyzer configuration (both folded into
        ``fingerprint``) + the analysis code version + the package
        version.  ``jobs`` is deliberately absent: the parallel engine is
        byte-identical to a serial pass, so a warm artifact serves any
        worker count.
        """
        return input_fingerprint([
            "analysis-artifact", _ANALYSIS_CODE_VERSION, __version__,
            fingerprint,
        ])

    def _dehydrate(self, result: AnalysisResult) -> dict:
        """The artifact payload: derived state only.

        Certificates, chains, and the classifier cache are reproducible
        from the caller's chain map, and unpickling them costs about as
        much as recomputing the analysis — so the artifact stores the
        *decisions* (category per chain, hybrid verdicts, packed
        structure encodings, cluster membership) keyed by chain key, and
        :meth:`_rehydrate` reattaches them to live objects.
        """
        categories = {}
        for category in ChainCategory:
            for chain in result.categorized.chains(category):
                categories[chain.key] = category
        structures = {}
        for key in result.chains:
            with_leaf = result._structure_cache.get(key + ("L",))
            without_leaf = result._structure_cache.get(key + ("N",))
            if with_leaf is not None or without_leaf is not None:
                structures[key] = (
                    pack_structure(with_leaf)
                    if with_leaf is not None else None,
                    pack_structure(without_leaf)
                    if without_leaf is not None else None)
        hybrid = [(analysis.chain.key, pack_structure(analysis.structure),
                   analysis.classes, analysis.category,
                   analysis.complete_kind, analysis.no_path_category,
                   analysis.anchored_to_public_root, analysis.entity)
                  for analysis in result.hybrid.analyses]
        return {
            "categories": categories,
            "structures": structures,
            "hybrid": hybrid,
            # Small on its own (issuers + name keys + chain keys), and
            # degraded_chains already holds keys, not chains.
            "interception": result.interception,
            "dga": [(cluster.template,
                     [chain.key for chain in cluster.chains])
                    for cluster in result.dga_clusters],
        }

    def _rehydrate(self, chains: Dict[tuple[str, ...], ObservedChain],
                   state: dict) -> Optional[AnalysisResult]:
        """Reassemble a cached analysis against the live chain map.

        Returns ``None`` when the payload does not fit ``chains`` (a
        truncated or malformed artifact) so the caller recomputes and
        overwrites instead of failing the run.
        """
        try:
            categories = state["categories"]
            categorized = CategorizedChains()
            for key, chain in chains.items():
                categorized.add(categories[key], chain)
            analyses = []
            for (key, packed, classes, category, complete_kind,
                 no_path_category, anchored, entity) in state["hybrid"]:
                chain = chains[key]
                analyses.append(HybridChainAnalysis(
                    chain=chain,
                    structure=unpack_structure(chain.certificates, packed),
                    classes=classes, category=category,
                    complete_kind=complete_kind,
                    no_path_category=no_path_category,
                    anchored_to_public_root=anchored, entity=entity))
            dga = [DGACluster(template=template,
                              chains=[chains[key] for key in keys])
                   for template, keys in state["dga"]]
            packed_structures = dict(state["structures"])
            interception = state["interception"]
        except (KeyError, IndexError, TypeError, ValueError):
            log.warning("analysis artifact failed to rehydrate; recomputing")
            return None
        return AnalysisResult(
            chains=chains,
            categorized=categorized,
            interception=interception,
            hybrid=HybridReport(analyses=analyses),
            dga_clusters=dga,
            classifier=CertificateClassifier(self.registry),
            disclosures=self.disclosures,
            _packed_structures=packed_structures,
        )

    def analyze_chains(self, chains: Dict[tuple[str, ...], ObservedChain],
                       *, checkpoint: Optional[CheckpointStore] = None,
                       resume: bool = False,
                       jobs: Optional[int] = None,
                       artifacts: Optional[ArtifactStore] = None,
                       supervise: Optional["SupervisorConfig"] = None,
                       ) -> AnalysisResult:
        """Run the Figure-2 pipeline over a merged chain map.

        ``jobs=None`` keeps the historical serial stage sequence
        (interception → categorize → hybrid → dga).  Any integer ``jobs``
        routes stages 2–3 through the parallel enrichment engine
        (:mod:`repro.parallel.analysis`), which additionally computes both
        ``ChainStructure`` variants for every multi-certificate chain
        eagerly — the result is byte-identical either way, and identical
        at every ``jobs`` value.

        ``artifacts`` layers the content-addressed cache on top: when a
        stored ``AnalysisResult`` matches this input + configuration +
        code version, it is served whole from disk and no stage runs.
        """
        classifier = CertificateClassifier(self.registry)
        instruments.PIPELINE_CHAINS.inc(len(chains))
        fingerprint = (self._fingerprint(chains)
                       if (checkpoint is not None or artifacts is not None)
                       else "")
        if artifacts is not None:
            artifact_fp = self._artifact_fingerprint(fingerprint)
            hit, state = artifacts.load("analysis", artifact_fp)
            if hit:
                cached = self._rehydrate(chains, state)
                if cached is not None:
                    log.info("analysis served from artifact cache",
                             extra=kv(chains=len(chains)))
                    return cached

        def staged(name: str, compute):
            """Serve a stage from the checkpoint on resume, else compute
            (and persist when checkpointing)."""
            if checkpoint is not None and resume:
                hit, payload = checkpoint.load(name, fingerprint)
                if hit:
                    log.info("stage served from checkpoint",
                             extra=kv(stage=name))
                    return payload
            value = compute()
            if checkpoint is not None:
                checkpoint.save(name, fingerprint, value)
            return value

        with trace_span("analyze_chains", chains=len(chains)):
            # Stage 1 — certificate enrichment: interception identification.
            with trace_span("enrich_interception"):
                def run_interception() -> InterceptionReport:
                    if self.ct_index is None:
                        return InterceptionReport()
                    detector = InterceptionDetector(
                        classifier, self.ct_index, self.vendor_directory,
                        breaker=self.ct_breaker, faults=self.faults)
                    return detector.detect(chains.values())
                interception = staged("interception", run_interception)

            structure_cache: Dict[tuple[str, ...], ChainStructure] = {}
            if jobs is None:
                # Stage 2 — chain categorisation (serial).
                with trace_span("categorize", chains=len(chains)):
                    def run_categorize() -> CategorizedChains:
                        categorizer = ChainCategorizer(
                            classifier, interception.issuer_name_keys)
                        result = categorizer.categorize(chains.values())
                        for category in ChainCategory:
                            instruments.PIPELINE_CATEGORY_CHAINS.inc(
                                result.chain_count(category),
                                category=category.value)
                        return result
                    categorized = staged("categorize", run_categorize)

                # Stage 3 — mismatch/cross-sign + path detection on hybrids.
                hybrid_chains = categorized.chains(ChainCategory.HYBRID)
                with trace_span("hybrid_analysis", chains=len(hybrid_chains)):
                    def run_hybrid() -> HybridReport:
                        hybrid_analyzer = HybridAnalyzer(classifier,
                                                         self.disclosures)
                        return hybrid_analyzer.analyze(hybrid_chains)
                    hybrid = staged("hybrid", run_hybrid)
            else:
                # Stages 2+3 — sharded chain enrichment: categorisation,
                # hybrid analysis, and eager structure computation fan out
                # across partitions; the merge is byte-identical to the
                # serial stages above at any jobs value.
                from ..parallel.analysis import analyze_partitions
                with trace_span("enrichment", chains=len(chains), jobs=jobs):
                    def run_enrichment():
                        return analyze_partitions(
                            chains, registry=self.registry,
                            disclosures=self.disclosures,
                            interception_keys=frozenset(
                                interception.issuer_name_keys),
                            jobs=jobs, supervise=supervise)
                    enriched = staged("enrichment", run_enrichment)

                # Reassemble in the chain map's insertion order so list
                # and Counter orderings match the serial pass exactly.
                # A chain whose partition was dropped by the supervisor
                # (quarantined with in-driver fallback disabled) has no
                # category — skip it loudly rather than KeyError the run.
                categorized = CategorizedChains()
                dropped = 0
                for key, chain in chains.items():
                    category = enriched.categories.get(key)
                    if category is None:
                        dropped += 1
                        continue
                    categorized.add(category, chain)
                if dropped:
                    log.warning(
                        "chains lost to dropped enrichment partitions",
                        extra=kv(dropped=dropped, total=len(chains)))
                for category in ChainCategory:
                    instruments.PIPELINE_CATEGORY_CHAINS.inc(
                        categorized.chain_count(category),
                        category=category.value)
                classifier.preload(enriched.classes)
                hybrid_chains = categorized.chains(ChainCategory.HYBRID)
                analyses = []
                for chain in hybrid_chains:
                    analysis = enriched.hybrid_by_key[chain.key]
                    # Rebind to the driver's objects: the worker's copies
                    # crossed a pickle boundary, and downstream consumers
                    # expect the analysis to reference the same chain the
                    # result's chain map holds.
                    analysis.chain = chain
                    analysis.structure.certificates = chain.certificates
                    analyses.append(analysis)
                hybrid = HybridReport(analyses=analyses)
                for key, (with_leaf, without_leaf) in \
                        enriched.structures.items():
                    certificates = chains[key].certificates
                    with_leaf.certificates = certificates
                    without_leaf.certificates = certificates
                    structure_cache[key + ("L",)] = with_leaf
                    structure_cache[key + ("N",)] = without_leaf

            # Stage 4 — special populations.
            with trace_span("special_populations"):
                def run_dga() -> List[DGACluster]:
                    return DGADetector().detect(
                        categorized.chains(ChainCategory.NON_PUBLIC_ONLY))
                dga = staged("dga", run_dga)

        instruments.PIPELINE_RUNS.inc()
        log.debug("pipeline run complete", extra=kv(
            chains=len(chains),
            flagged_interception=len(interception.flagged_chains),
            hybrid=len(hybrid_chains), dga_clusters=len(dga)))
        result = AnalysisResult(
            chains=chains,
            categorized=categorized,
            interception=interception,
            hybrid=hybrid,
            dga_clusters=dga,
            classifier=classifier,
            disclosures=self.disclosures,
            _structure_cache=structure_cache,
        )
        if artifacts is not None:
            artifacts.save("analysis", artifact_fp, self._dehydrate(result))
        return result

"""Observed certificate chains and their usage aggregation.

The paper's unit of analysis is the *delivered chain*: the exact ordered
certificate list a server presented, de-duplicated across connections
(731,175 unique chains out of 259.30 M connections).  ``ObservedChain``
couples one such chain with its usage statistics — connection count,
establishment rate, client IPs, ports, SNI presence — which drive every
"% of connections successfully established" number in §4 and §5.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

from ..obs import instruments
from ..obs.tracing import trace_span
from ..x509.certificate import Certificate
from ..zeek.tap import JoinedConnection

__all__ = ["ChainUsage", "ObservedChain", "aggregate_chains"]


@dataclass
class ChainUsage:
    """Mutable usage accumulator for one delivered chain."""

    connections: int = 0
    established: int = 0
    client_ips: set[str] = field(default_factory=set)
    ports: Counter = field(default_factory=Counter)
    sni_present: int = 0
    snis: set[str] = field(default_factory=set)
    first_seen: Optional[float] = None
    last_seen: Optional[float] = None
    server_ips: set[str] = field(default_factory=set)

    def observe_timestamp(self, ts: float) -> None:
        """Widen the ``first_seen``/``last_seen`` window to include ``ts``.

        The single definition of the min/max fold, shared by
        :meth:`record` (one connection at a time) and :meth:`merge`
        (endpoints of another accumulator's window) — which is what makes
        merge-of-partials reproduce the single-pass window exactly.
        """
        if self.first_seen is None or ts < self.first_seen:
            self.first_seen = ts
        if self.last_seen is None or ts > self.last_seen:
            self.last_seen = ts

    def record(self, *, established: bool, client_ip: str, server_ip: str,
               port: int, sni: Optional[str], ts: float) -> None:
        self.connections += 1
        if established:
            self.established += 1
        self.client_ips.add(client_ip)
        self.server_ips.add(server_ip)
        self.ports[port] += 1
        if sni:
            self.sni_present += 1
            self.snis.add(sni)
        self.observe_timestamp(ts)

    @property
    def establishment_rate(self) -> float:
        if self.connections == 0:
            return 0.0
        return self.established / self.connections

    @property
    def sni_rate(self) -> float:
        if self.connections == 0:
            return 0.0
        return self.sni_present / self.connections

    def merge(self, other: "ChainUsage") -> None:
        self.connections += other.connections
        self.established += other.established
        self.client_ips |= other.client_ips
        self.server_ips |= other.server_ips
        self.ports += other.ports
        self.sni_present += other.sni_present
        self.snis |= other.snis
        for ts in (other.first_seen, other.last_seen):
            if ts is not None:
                self.observe_timestamp(ts)


@dataclass
class ObservedChain:
    """One distinct delivered chain plus its aggregated usage."""

    certificates: tuple[Certificate, ...]
    usage: ChainUsage = field(default_factory=ChainUsage)

    @property
    def key(self) -> tuple[str, ...]:
        return tuple(cert.fingerprint for cert in self.certificates)

    @property
    def length(self) -> int:
        return len(self.certificates)

    @property
    def leaf(self) -> Optional[Certificate]:
        return self.certificates[0] if self.certificates else None

    @property
    def is_single(self) -> bool:
        return len(self.certificates) == 1

    @property
    def is_single_self_signed(self) -> bool:
        return self.is_single and self.certificates[0].is_self_signed

    def __len__(self) -> int:
        return len(self.certificates)

    def __repr__(self) -> str:
        names = " <- ".join(c.short_name() for c in self.certificates) or "<empty>"
        return f"ObservedChain({names}, conns={self.usage.connections})"


def aggregate_chains(connections: Iterable[JoinedConnection],
                     *, skip_empty: bool = True) -> Dict[tuple[str, ...], ObservedChain]:
    """Fold joined connections into distinct chains with usage stats.

    Empty chains (TLS 1.3 sessions whose certificates the monitor could not
    see, or resumptions) are skipped by default — the paper's chain analysis
    only covers connections with visible chains.
    """
    chains: Dict[tuple[str, ...], ObservedChain] = {}
    aggregated = skipped = discovered = 0
    with trace_span("aggregate_chains"):
        for joined in connections:
            key = joined.chain_key
            if skip_empty and not key:
                skipped += 1
                continue
            chain = chains.get(key)
            if chain is None:
                chain = ObservedChain(joined.chain)
                chains[key] = chain
                discovered += 1
            ssl = joined.ssl
            chain.usage.record(
                established=ssl.established,
                client_ip=ssl.id_orig_h,
                server_ip=ssl.id_resp_h,
                port=ssl.id_resp_p,
                sni=ssl.server_name,
                ts=ssl.ts,
            )
            aggregated += 1
    instruments.CHAIN_CONN_AGGREGATED.inc(aggregated)
    instruments.CHAIN_CONN_SKIPPED.inc(skipped)
    instruments.CHAIN_DISTINCT.inc(discovered)
    return chains

"""Cross-signing awareness for issuer–subject matching (Appendix D.1).

Cross-signed certificates can make a technically valid chain look broken to
pure issuer–subject matching: a child naming issuer ``R3`` may be followed
by the *cross-signer's* certificate (e.g. ``DST Root CA X3``) rather than
the R3 certificate itself, or a chain may carry both same-subject twins
back-to-back.  The paper compensates by consulting CA cross-sign
disclosures [32] and Zeek's validation verdicts; this module implements
both signals.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from ..x509.certificate import Certificate
from ..x509.dn import DistinguishedName

__all__ = ["CrossSignDisclosures", "detect_cross_sign_candidates"]


def _dn_key(dn: DistinguishedName) -> tuple:
    return dn.sorted_key()


#: Process-local ids handed to disclosure sets on first use; see
#: :attr:`CrossSignDisclosures.memo_token`.
_TOKEN_COUNTER = itertools.count(1)


class CrossSignDisclosures:
    """CA-published cross-sign relationships: subject → alternate issuers.

    A disclosure ``(subject=S, issuer=I)`` records that a certificate for
    subject ``S`` also exists signed by ``I`` (e.g. R3 cross-signed by DST
    Root CA X3).  Two bridging rules follow for an adjacent (child, parent)
    pair whose direct names do not chain:

    * **signer-bridge** — the child names issuer ``S`` and the parent *is*
      the cross-signer ``I`` (the server delivered the signer's certificate
      instead of the cross-signed intermediate itself);
    * **twin-bridge** — child and parent are same-subject twins (both
      variants of a cross-signed CA delivered back-to-back).
    """

    #: Class-level fallbacks so instances unpickled from old checkpoints
    #: (whose ``__dict__`` predates these fields) still resolve them.
    _token: Optional[int] = None
    _epoch: int = 0

    def __init__(self, disclosures: Iterable[Tuple[DistinguishedName,
                                                   DistinguishedName]] = ()):
        self._alt_issuers: Dict[tuple, Set[tuple]] = {}
        self._pairs: list[Tuple[DistinguishedName, DistinguishedName]] = []
        self._token = None
        self._epoch = 0
        for subject, issuer in disclosures:
            self.add(subject, issuer)

    @classmethod
    def from_pki(cls, pki: "object") -> "CrossSignDisclosures":
        """Build from a :class:`~repro.truststores.builtin.PublicPKI`."""
        return cls(pki.cross_sign_disclosures())  # type: ignore[attr-defined]

    def add(self, subject: DistinguishedName, issuer: DistinguishedName) -> None:
        self._alt_issuers.setdefault(_dn_key(subject), set()).add(_dn_key(issuer))
        self._pairs.append((subject, issuer))
        self._epoch += 1

    @property
    def memo_token(self) -> tuple[int, int]:
        """Identity of this disclosure set's *current contents*.

        The pair-match memo (:mod:`repro.core.matching`) keys cached
        verdicts by ``(child_fp, parent_fp, memo_token)``: the first
        component is a process-local instance id (assigned lazily, dropped
        on pickling so unpickled copies never alias another instance's
        cache lines), the second an epoch bumped by every :meth:`add` so
        mutating the disclosures invalidates prior verdicts.
        """
        if self._token is None:
            self._token = next(_TOKEN_COUNTER)
        return (self._token, self._epoch)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_token", None)  # instance ids are process-local
        return state

    def __len__(self) -> int:
        return len(self._pairs)

    def disclosed_issuers_for(self, subject: DistinguishedName) -> Set[tuple]:
        return set(self._alt_issuers.get(_dn_key(subject), set()))

    def bridges(self, child: Certificate, parent: Certificate) -> bool:
        """Would cross-sign knowledge repair this otherwise-mismatched pair?"""
        if parent.issued(child):
            return False  # direct match; no bridge needed
        # signer-bridge: the parent is a disclosed alternate issuer for the
        # subject the child names as its issuer.
        alternates = self._alt_issuers.get(_dn_key(child.issuer))
        if alternates and _dn_key(parent.subject) in alternates:
            return True
        # twin-bridge: same-subject CA twins delivered adjacently, where the
        # subject is disclosed as cross-signed.
        if (child.subject.matches(parent.subject)
                and _dn_key(child.subject) in self._alt_issuers):
            return True
        return False


@dataclass(frozen=True, slots=True)
class CrossSignCandidate:
    """A chain whose name matching and validation verdict disagree."""

    chain_key: tuple[str, ...]
    mismatch_positions: tuple[int, ...]
    detail: str


def detect_cross_sign_candidates(
        chains: Sequence[Sequence[Certificate]],
        validation_ok: Sequence[bool],
        mismatch_positions: Sequence[Sequence[int]],
) -> list[CrossSignCandidate]:
    """The paper's second cross-sign signal: chains that *validate* (per
    Zeek / the browser policy) yet show issuer–subject mismatches are
    candidates for undisclosed cross-signing and warrant manual review.

    Inputs are parallel sequences (chain, did-it-validate, mismatch
    positions from plain matching without disclosures).
    """
    if not (len(chains) == len(validation_ok) == len(mismatch_positions)):
        raise ValueError("parallel inputs must have equal lengths")
    candidates: list[CrossSignCandidate] = []
    for chain, ok, positions in zip(chains, validation_ok, mismatch_positions):
        if ok and positions:
            candidates.append(CrossSignCandidate(
                tuple(c.fingerprint for c in chain),
                tuple(positions),
                "validates despite issuer-subject mismatches",
            ))
    return candidates

"""Packed chain partials: the zero-pickle shard hand-off layout.

The compiled parallel path returns a :class:`ShardAggregate` whose chain
map pickles one ``ObservedChain`` object graph per distinct chain —
reconstructed ``Certificate`` objects, ``DistinguishedName`` trees, sets
and Counters — which the driver then unpickles only to merge.  This
module replaces that hand-off with three pieces:

* :func:`fold_ssl_segment` — the aggregation loop rewritten over the
  columnar reader's parallel arrays: chain keys are resolved **once per
  distinct interned ``cert_chain_fps`` cell** (not once per row) and the
  per-connection update is exactly one :meth:`ChainUsage.record` call,
  so the fold reproduces legacy ``aggregate_chains`` semantics —
  insertion order, missing-certificate tallies, empty-chain skips —
  without materialising a row object;
* :func:`pack_shard_payload` / :func:`unpack_shard_payload` — a compact
  binary column layout (``bytes``) for the fold's output plus the
  shard's de-duplicated X509 rows: numeric columns as native arrays with
  None-bitmaps, strings as ids against one payload-global deduplicated
  string table.  Pickling the resulting ``bytes`` blob is a memcpy;
* :func:`materialize_chains` — the driver-side rebuild of the legacy
  ``chains`` dict from unpacked columns plus a certificate map, in the
  exact order the worker discovered the chains.

The layout is self-describing length-prefixed blobs, native byte order
(worker and driver always share one machine).  Sets round-trip through
lists (set equality is order-free); ``Counter`` key order — observable
in merged output — is preserved exactly.
"""

from __future__ import annotations

import struct
from array import array
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .chain import ChainUsage, ObservedChain

__all__ = ["ChainFold", "fold_ssl_segment", "ShardColumns",
           "pack_shard_payload", "unpack_shard_payload",
           "materialize_chains", "X509_COLUMN_SPEC"]

_MAGIC = b"RPK1"

#: The shipped X509 columns: name and codec kind, in record-field order.
#: Kinds: ``f`` nullable float, ``i`` nullable int, ``s`` string id,
#: ``ss`` string-id sequence, ``b`` nullable bool.
X509_COLUMN_SPEC: Tuple[Tuple[str, str], ...] = (
    ("ts", "f"),
    ("fingerprint", "s"),
    ("certificate.version", "i"),
    ("certificate.serial", "s"),
    ("certificate.subject", "s"),
    ("certificate.issuer", "s"),
    ("certificate.not_valid_before", "f"),
    ("certificate.not_valid_after", "f"),
    ("certificate.key_alg", "s"),
    ("certificate.sig_alg", "s"),
    ("certificate.key_length", "i"),
    ("san.dns", "ss"),
    ("basic_constraints.ca", "b"),
    ("basic_constraints.path_len", "i"),
)


# -- the columnar aggregation fold --------------------------------------------

@dataclass(slots=True)
class ChainFold:
    """Accumulates one shard's chain partials across SSL segments."""

    chains: Dict[Tuple[Optional[str], ...], ChainUsage] = field(
        default_factory=dict)
    joined: int = 0
    missing_certs: int = 0
    aggregated: int = 0


def fold_ssl_segment(fold: ChainFold, *, known_fps: frozenset,
                     ts: Sequence, client_ip: Sequence, server_ip: Sequence,
                     port: Sequence, established: Sequence,
                     sni_ids: Sequence[int], sni_values: Sequence,
                     chain_ids: Sequence[int], chain_values: Sequence) -> None:
    """Fold one columnar SSL segment into ``fold``.

    Mirrors ``iter_joined`` + ``aggregate_chains`` exactly: every row
    counts as joined, each referenced fingerprint absent from
    ``known_fps`` counts as one missing certificate (per occurrence),
    empty resolved keys are skipped, and usage updates go through
    :meth:`ChainUsage.record` so every set/Counter/window semantic —
    including ``None`` clients, SNI truthiness, and timestamp folds —
    is the legacy code itself.  ``sni_ids``/``chain_ids`` index into
    their intern tables' value lists; the chain key and its missing
    count are resolved once per distinct interned cell.
    """
    # (resolved key, missing count) per distinct cert_chain_fps cell
    resolved: List[Optional[Tuple[tuple, int]]] = [None] * len(chain_values)
    chains = fold.chains
    chains_get = chains.get
    joined = missing = aggregated = 0
    for ts_v, cip, sip, prt, est, sid, cid in zip(
            ts, client_ip, server_ip, port, established, sni_ids, chain_ids):
        entry = resolved[cid]
        if entry is None:
            fps = chain_values[cid] or ()
            key = tuple(fp for fp in fps if fp in known_fps)
            entry = (key, len(fps) - len(key))
            resolved[cid] = entry
        key, absent = entry
        joined += 1
        missing += absent
        if not key:
            continue
        usage = chains_get(key)
        if usage is None:
            usage = chains[key] = ChainUsage()
        usage.record(established=bool(est), client_ip=cip, server_ip=sip,
                     port=prt, sni=sni_values[sid], ts=ts_v)
        aggregated += 1
    fold.joined += joined
    fold.missing_certs += missing
    fold.aggregated += aggregated


# -- binary column codec ------------------------------------------------------

class _Writer:
    """Length-prefixed column blobs plus one deduplicated string table."""

    __slots__ = ("_parts", "_string_ids", "strings")

    def __init__(self) -> None:
        self._parts: List[bytes] = []
        self._string_ids: Dict[str, int] = {}
        self.strings: List[str] = []

    def blob(self, data: bytes) -> None:
        self._parts.append(struct.pack("<Q", len(data)))
        self._parts.append(data)

    def string_id(self, value: Optional[str]) -> int:
        if value is None:
            return -1
        sid = self._string_ids.get(value)
        if sid is None:
            sid = len(self.strings)
            self._string_ids[value] = sid
            self.strings.append(value)
        return sid

    def counts(self, values: Sequence[int]) -> None:
        """Non-nullable int column."""
        self.blob(array("q", values).tobytes())

    def int_column(self, values: Sequence[Optional[int]]) -> None:
        self.blob(bytes(v is None for v in values))
        self.blob(array("q", [0 if v is None else v for v in values])
                  .tobytes())

    def float_column(self, values: Sequence[Optional[float]]) -> None:
        self.blob(bytes(v is None for v in values))
        self.blob(array("d", [0.0 if v is None else v for v in values])
                  .tobytes())

    def bool_column(self, values: Sequence[Optional[bool]]) -> None:
        self.blob(bytes(v is None for v in values))
        self.blob(bytes(bool(v) for v in values))

    def string_column(self, values: Sequence[Optional[str]]) -> None:
        self.blob(array("q", [self.string_id(v) for v in values]).tobytes())

    def string_seq_column(
            self, seqs: Sequence[Optional[Sequence[Optional[str]]]]) -> None:
        lens = array("q")
        flat = array("q")
        for seq in seqs:
            if seq is None:
                lens.append(-1)
            else:
                lens.append(len(seq))
                for value in seq:
                    flat.append(self.string_id(value))
        self.blob(lens.tobytes())
        self.blob(flat.tobytes())

    def render(self) -> bytes:
        body = b"".join(self._parts)
        table = [struct.pack("<Q", len(self.strings))]
        for value in self.strings:
            raw = value.encode("utf-8")
            table.append(struct.pack("<Q", len(raw)))
            table.append(raw)
        return b"".join([_MAGIC, struct.pack("<Q", len(body)), body, *table])


class _Reader:
    """Reads :class:`_Writer` output; string table parsed up front."""

    __slots__ = ("_view", "_pos", "strings")

    def __init__(self, payload: bytes) -> None:
        if payload[:4] != _MAGIC:
            raise ValueError("not a packed shard payload")
        try:
            (body_len,) = struct.unpack_from("<Q", payload, 4)
            self._view = memoryview(payload)
            self._pos = 12
            pos = 12 + body_len
            (count,) = struct.unpack_from("<Q", payload, pos)
            pos += 8
            strings: List[str] = []
            for _ in range(count):
                (n,) = struct.unpack_from("<Q", payload, pos)
                pos += 8
                strings.append(bytes(self._view[pos:pos + n])
                               .decode("utf-8"))
                pos += n
            self.strings = strings
        except struct.error as error:  # truncated or mangled hand-off
            raise ValueError(
                f"corrupt shard payload: {error}") from error

    def blob(self) -> memoryview:
        (n,) = struct.unpack_from("<Q", self._view, self._pos)
        self._pos += 8
        data = self._view[self._pos:self._pos + n]
        self._pos += n
        return data

    def _ints(self) -> List[int]:
        values = array("q")
        values.frombytes(bytes(self.blob()))
        return values.tolist()

    counts = _ints

    def int_column(self) -> List[Optional[int]]:
        mask = bytes(self.blob())
        return [None if m else v for m, v in zip(mask, self._ints())]

    def float_column(self) -> List[Optional[float]]:
        mask = bytes(self.blob())
        values = array("d")
        values.frombytes(bytes(self.blob()))
        return [None if m else v for m, v in zip(mask, values.tolist())]

    def bool_column(self) -> List[Optional[bool]]:
        mask = bytes(self.blob())
        values = bytes(self.blob())
        return [None if m else bool(v) for m, v in zip(mask, values)]

    def string_column(self) -> List[Optional[str]]:
        strings = self.strings
        return [None if i < 0 else strings[i] for i in self._ints()]

    def string_seq_column(self) -> List[Optional[Tuple[Optional[str], ...]]]:
        lens = self._ints()
        flat = self._ints()
        strings = self.strings
        out: List[Optional[Tuple[Optional[str], ...]]] = []
        pos = 0
        for n in lens:
            if n < 0:
                out.append(None)
            else:
                out.append(tuple(None if i < 0 else strings[i]
                                 for i in flat[pos:pos + n]))
                pos += n
        return out


_WRITE_KIND = {"f": _Writer.float_column, "i": _Writer.int_column,
               "b": _Writer.bool_column, "s": _Writer.string_column,
               "ss": _Writer.string_seq_column}
_READ_KIND = {"f": _Reader.float_column, "i": _Reader.int_column,
              "b": _Reader.bool_column, "s": _Reader.string_column,
              "ss": _Reader.string_seq_column}


# -- shard payloads -----------------------------------------------------------

@dataclass(slots=True)
class ShardColumns:
    """One shard's unpacked hand-off: chain partials + X509 columns."""

    chain_keys: List[Tuple[Optional[str], ...]]
    usages: List[ChainUsage]
    #: Distinct certificate fingerprints, first-seen row order.
    cert_fingerprints: List[Optional[str]]
    #: De-duplicated X509 rows (last row per fingerprint, first-seen
    #: fingerprint order) as name-keyed parallel columns.
    x509_columns: Dict[str, list]


def pack_shard_payload(*, chain_keys: Sequence[Tuple[Optional[str], ...]],
                       usages: Sequence[ChainUsage],
                       cert_fingerprints: Sequence[Optional[str]],
                       x509_columns: Dict[str, list]) -> bytes:
    """Pack one shard's fold output into a compact ``bytes`` payload."""
    writer = _Writer()
    writer.counts([len(chain_keys)])
    writer.string_seq_column(chain_keys)
    writer.counts([u.connections for u in usages])
    writer.counts([u.established for u in usages])
    writer.counts([u.sni_present for u in usages])
    writer.float_column([u.first_seen for u in usages])
    writer.float_column([u.last_seen for u in usages])
    writer.string_seq_column([list(u.client_ips) for u in usages])
    writer.string_seq_column([list(u.server_ips) for u in usages])
    writer.string_seq_column([list(u.snis) for u in usages])
    # ports: per-chain width, then flat (key, count) pairs in the exact
    # Counter insertion order — merged output key order depends on it
    writer.counts([len(u.ports) for u in usages])
    writer.int_column([p for u in usages for p in u.ports])
    writer.counts([c for u in usages for c in u.ports.values()])
    writer.string_column(cert_fingerprints)
    n_x509 = len(next(iter(x509_columns.values()), []))
    writer.counts([n_x509])
    for name, kind in X509_COLUMN_SPEC:
        _WRITE_KIND[kind](writer, x509_columns[name])
    return writer.render()


def unpack_shard_payload(payload: bytes) -> ShardColumns:
    """Inverse of :func:`pack_shard_payload`."""
    reader = _Reader(payload)
    (n_chains,) = reader.counts()
    chain_keys = [key or () for key in reader.string_seq_column()]
    connections = reader.counts()
    established = reader.counts()
    sni_present = reader.counts()
    first_seen = reader.float_column()
    last_seen = reader.float_column()
    client_ips = reader.string_seq_column()
    server_ips = reader.string_seq_column()
    snis = reader.string_seq_column()
    port_lens = reader.counts()
    flat_ports = reader.int_column()
    flat_counts = reader.counts()
    usages: List[ChainUsage] = []
    pos = 0
    for i in range(n_chains):
        ports: Counter = Counter()
        for _ in range(port_lens[i]):
            ports[flat_ports[pos]] = flat_counts[pos]
            pos += 1
        usages.append(ChainUsage(
            connections=connections[i], established=established[i],
            client_ips=set(client_ips[i] or ()), ports=ports,
            sni_present=sni_present[i], snis=set(snis[i] or ()),
            first_seen=first_seen[i], last_seen=last_seen[i],
            server_ips=set(server_ips[i] or ())))
    cert_fingerprints = reader.string_column()
    (n_x509,) = reader.counts()
    x509_columns = {name: _READ_KIND[kind](reader)
                    for name, kind in X509_COLUMN_SPEC}
    for column in x509_columns.values():
        if len(column) != n_x509:
            raise ValueError("corrupt shard payload: ragged X509 columns")
    return ShardColumns(chain_keys=chain_keys, usages=usages,
                        cert_fingerprints=cert_fingerprints,
                        x509_columns=x509_columns)


def materialize_chains(chain_keys: Sequence[Tuple[Optional[str], ...]],
                       usages: Sequence[ChainUsage],
                       certificates: Dict[Optional[str], object]
                       ) -> Dict[tuple, ObservedChain]:
    """Rebuild the legacy ``chains`` dict from unpacked columns.

    ``chain_keys`` arrive in worker discovery order, so the dict's
    insertion order — which drives every Counter/set merge order in the
    reduce — matches what ``aggregate_chains`` would have produced.
    Every key fingerprint is present in ``certificates`` by
    construction (the fold only keeps known fingerprints).
    """
    return {key: ObservedChain(tuple(certificates[fp] for fp in key),
                               usage=usage)
            for key, usage in zip(chain_keys, usages)}

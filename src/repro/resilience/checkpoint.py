"""Stage-level checkpoints and content-addressed analysis artifacts.

A year-of-logs run that dies in stage 3 should not redo stages 1–2.  The
:class:`CheckpointStore` persists each completed stage's output to a
directory (pickle, written atomically via rename), keyed by the stage
name and guarded by a *fingerprint* of the run's input — so a resume
against different logs, a different trust-store registry, or a different
analyzer configuration silently recomputes instead of serving stale
state.  Loads/saves/stale hits are counted on
``repro_checkpoint_stages_total``.

The :class:`ArtifactStore` layers a content-addressed cache on the same
envelope format: instead of one file per *stage name* (overwritten by the
next run), it keeps one file per *fingerprint* — chain-map identity +
analyzer configuration + analysis code version — so a warm ``repro
report`` over unchanged inputs serves the whole ``AnalysisResult`` from
disk and only re-renders tables and figures.  Events are counted on
``repro_analysis_artifacts_total``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Iterable, List, Optional, Tuple

from ..obs import instruments
from ..obs.logging import get_logger, kv

__all__ = ["CheckpointStore", "ArtifactStore", "input_fingerprint"]

log = get_logger(__name__)

#: Bump when the stage payload layout changes incompatibly.
_FORMAT_VERSION = 1


def input_fingerprint(parts: Iterable[object]) -> str:
    """Deterministic digest of whatever identifies a run's input.

    Callers pass stable, order-significant components (sorted chain keys,
    registry identity, analyzer flags); any change yields a new
    fingerprint and therefore a cold recompute on resume.
    """
    digest = hashlib.sha256()
    digest.update(f"v{_FORMAT_VERSION}".encode())
    for part in parts:
        digest.update(b"\x1f")
        digest.update(repr(part).encode())
    return digest.hexdigest()


def _fsync_directory(directory: str) -> None:
    """Best-effort fsync of a directory so a rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _write_envelope(path: str, *, stage: str, fingerprint: str,
                    payload: Any) -> None:
    """Crash-atomic (tmp + fsync + rename) pickle of one envelope.

    The data is flushed to disk *before* the rename, so a crash at any
    point leaves either the old file or the complete new one — never a
    truncated pickle under the final name.  The directory fsync makes
    the rename itself durable; it is best-effort because some
    filesystems refuse directory fds.
    """
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        pickle.dump({"version": _FORMAT_VERSION,
                     "stage": stage,
                     "fingerprint": fingerprint,
                     "payload": payload}, handle,
                    protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(os.path.dirname(path) or ".")


def _read_envelope(path: str) -> Tuple[str, Optional[dict]]:
    """``(status, envelope)``: 'missing'/'corrupt' carry ``None``."""
    if not os.path.exists(path):
        return "missing", None
    try:
        with open(path, "rb") as handle:
            return "ok", pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return "corrupt", None


class CheckpointStore:
    """Per-stage pickle files under one checkpoint directory."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def stage_path(self, stage: str) -> str:
        safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in stage)
        return os.path.join(self.directory, f"stage-{safe}.ckpt")

    def save(self, stage: str, fingerprint: str, payload: Any) -> None:
        """Persist one stage's output (atomic: tmp file + rename)."""
        path = self.stage_path(stage)
        _write_envelope(path, stage=stage, fingerprint=fingerprint,
                        payload=payload)
        instruments.CHECKPOINT_STAGES.inc(stage=stage, result="saved")
        log.debug("checkpoint saved", extra=kv(stage=stage, path=path))

    def load(self, stage: str, fingerprint: str) -> Tuple[bool, Any]:
        """``(True, payload)`` when a matching checkpoint exists, else
        ``(False, None)`` — also on fingerprint/version mismatch (stale)
        or an unreadable file (corrupt)."""
        path = self.stage_path(stage)
        status, envelope = _read_envelope(path)
        if status == "missing":
            return False, None
        if status == "corrupt":
            instruments.CHECKPOINT_STAGES.inc(stage=stage, result="corrupt")
            log.warning("checkpoint unreadable; recomputing",
                        extra=kv(stage=stage, path=path))
            return False, None
        if (envelope.get("version") != _FORMAT_VERSION
                or envelope.get("fingerprint") != fingerprint):
            instruments.CHECKPOINT_STAGES.inc(stage=stage, result="stale")
            log.warning("checkpoint stale; recomputing",
                        extra=kv(stage=stage, path=path))
            return False, None
        instruments.CHECKPOINT_STAGES.inc(stage=stage, result="loaded")
        log.debug("checkpoint loaded", extra=kv(stage=stage, path=path))
        return True, envelope["payload"]

    def stages_present(self) -> List[str]:
        names = []
        for entry in sorted(os.listdir(self.directory)):
            if entry.startswith("stage-") and entry.endswith(".ckpt"):
                names.append(entry[len("stage-"):-len(".ckpt")])
        return names

    def clear(self) -> None:
        for entry in os.listdir(self.directory):
            if entry.startswith("stage-") and (entry.endswith(".ckpt")
                                               or entry.endswith(".tmp")):
                os.remove(os.path.join(self.directory, entry))


class ArtifactStore:
    """Content-addressed analysis artifacts: one pickle per fingerprint.

    File names embed a prefix of the fingerprint (``artifact-<kind>-
    <fp[:32]>.pkl``), so distinct inputs/configurations coexist in one
    directory; the envelope's full fingerprint is double-checked on load
    and a prefix collision reads as ``stale`` (recompute), never as a
    false hit.
    """

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def path(self, kind: str, fingerprint: str) -> str:
        safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in kind)
        return os.path.join(self.directory,
                            f"artifact-{safe}-{fingerprint[:32]}.pkl")

    def save(self, kind: str, fingerprint: str, payload: Any) -> None:
        path = self.path(kind, fingerprint)
        _write_envelope(path, stage=kind, fingerprint=fingerprint,
                        payload=payload)
        instruments.ANALYSIS_ARTIFACTS.inc(result="saved")
        log.debug("artifact saved", extra=kv(kind=kind, path=path))

    def load(self, kind: str, fingerprint: str) -> Tuple[bool, Any]:
        """``(True, payload)`` on a verified hit, else ``(False, None)``."""
        path = self.path(kind, fingerprint)
        status, envelope = _read_envelope(path)
        if status == "missing":
            instruments.ANALYSIS_ARTIFACTS.inc(result="miss")
            return False, None
        if status == "corrupt":
            instruments.ANALYSIS_ARTIFACTS.inc(result="corrupt")
            log.warning("artifact unreadable; recomputing",
                        extra=kv(kind=kind, path=path))
            return False, None
        if (envelope.get("version") != _FORMAT_VERSION
                or envelope.get("fingerprint") != fingerprint):
            instruments.ANALYSIS_ARTIFACTS.inc(result="stale")
            log.warning("artifact stale; recomputing",
                        extra=kv(kind=kind, path=path))
            return False, None
        instruments.ANALYSIS_ARTIFACTS.inc(result="hit")
        log.debug("artifact loaded", extra=kv(kind=kind, path=path))
        return True, envelope["payload"]

    def artifacts_present(self) -> List[str]:
        names = []
        for entry in sorted(os.listdir(self.directory)):
            if entry.startswith("artifact-") and entry.endswith(".pkl"):
                names.append(entry[len("artifact-"):-len(".pkl")])
        return names

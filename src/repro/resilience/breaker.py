"""Circuit breaker: stop hammering a dependency that is clearly down.

State machine (classic three-state):

* **closed** — calls pass through; ``failure_threshold`` *consecutive*
  failures trip it open.
* **open** — calls are rejected with :class:`CircuitOpenError` without
  touching the dependency.  Recovery is **count-based** rather than
  clock-based (after ``recovery_after`` rejections the breaker goes
  half-open) so behaviour is a pure function of the call sequence —
  deterministic under test and under the fault injector.
* **half-open** — up to ``half_open_probes`` trial calls pass through;
  one success closes the breaker, one failure reopens it.

Transitions and rejections are counted on the ``repro_breaker_*``
metrics, labelled by the breaker's name.
"""

from __future__ import annotations

import enum
from typing import Callable

from ..obs import instruments
from .errors import CircuitOpenError, TransientError

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Deterministic, count-based circuit breaker."""

    def __init__(self, *, name: str = "breaker", failure_threshold: int = 5,
                 recovery_after: int = 10, half_open_probes: int = 1):
        if failure_threshold < 1 or recovery_after < 1 or half_open_probes < 1:
            raise ValueError("breaker thresholds must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_after = recovery_after
        self.half_open_probes = half_open_probes
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._rejections_since_open = 0
        self._probes_in_flight = 0

    @property
    def state(self) -> BreakerState:
        return self._state

    def _transition(self, state: BreakerState) -> None:
        if state is self._state:
            return
        self._state = state
        instruments.BREAKER_TRANSITIONS.inc(breaker=self.name,
                                            state=state.value)

    def allow(self) -> bool:
        """Whether the next call may proceed (advances recovery counting)."""
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            self._rejections_since_open += 1
            if self._rejections_since_open >= self.recovery_after:
                self._transition(BreakerState.HALF_OPEN)
                self._probes_in_flight = 0
            else:
                instruments.BREAKER_REJECTIONS.inc(breaker=self.name)
                return False
        # Half-open: admit a bounded number of probes.
        if self._probes_in_flight < self.half_open_probes:
            self._probes_in_flight += 1
            return True
        instruments.BREAKER_REJECTIONS.inc(breaker=self.name)
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self._state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        if self._state is BreakerState.HALF_OPEN:
            self._reopen()
            return
        self._consecutive_failures += 1
        if (self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold):
            self._reopen()

    def _reopen(self) -> None:
        self._transition(BreakerState.OPEN)
        self._consecutive_failures = 0
        self._rejections_since_open = 0
        self._probes_in_flight = 0

    def call(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` through the breaker; transient failures count against
        it, :class:`CircuitOpenError` is raised while it rejects."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit {self.name!r} is open; call rejected")
        try:
            value = fn()
        except TransientError:
            self.record_failure()
            raise
        self.record_success()
        return value

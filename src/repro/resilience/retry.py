"""Retry policy: bounded attempts, exponential backoff, deterministic jitter.

The jitter is derived from ``(seed, key, attempt)`` via SHA-256 rather
than a shared RNG, so the backoff schedule for any operation is a pure
function of the policy — two runs with the same seed produce identical
schedules, which keeps fault-injected runs byte-reproducible.

By default :meth:`RetryPolicy.call` does **not** sleep: the reproduction
simulates a measurement campaign, and stalling the test suite for real
backoff seconds would buy nothing.  The intended delays are still
computed, recorded on the :class:`RetryResult`, and handed to the
``sleep`` callable when an embedding wants real waiting.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Type

from ..obs import instruments
from .errors import TransientError

__all__ = ["RetryPolicy", "RetryResult"]

_DENOM = float(1 << 53)


@dataclass
class RetryResult:
    """What one retried call did: its value, attempts, and intended waits."""

    value: object
    attempts: int
    delays: List[float] = field(default_factory=list)

    @property
    def total_delay(self) -> float:
        return sum(self.delays)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff with deterministic ±``jitter`` fraction."""

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int | str = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be within [0, 1)")

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``key``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1),
                  self.max_delay)
        if not self.jitter:
            return raw
        token = f"{self.seed}:{key}:{attempt}".encode()
        digest = hashlib.sha256(token).digest()
        uniform = (int.from_bytes(digest[:8], "big") >> 11) / _DENOM
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * uniform)

    def schedule(self, key: str) -> Tuple[float, ...]:
        """Every backoff delay the policy would apply for ``key``."""
        return tuple(self.delay(key, attempt)
                     for attempt in range(1, self.max_attempts))

    def call(self, fn: Callable[[int], object], *, key: str = "",
             operation: str = "op",
             retry_on: Tuple[Type[BaseException], ...] = (TransientError,),
             sleep: Optional[Callable[[float], None]] = None) -> RetryResult:
        """Run ``fn(attempt)`` with retries; raises the last error when
        every attempt fails.

        ``fn`` receives the 1-based attempt number so deterministic fault
        injectors can draw per-attempt.  Retried/successful/exhausted
        attempts are counted on ``repro_retry_attempts_total`` under
        ``operation``.
        """
        delays: List[float] = []
        for attempt in range(1, self.max_attempts + 1):
            try:
                value = fn(attempt)
            except retry_on:
                if attempt >= self.max_attempts:
                    instruments.RETRY_ATTEMPTS.inc(operation=operation,
                                                   result="exhausted")
                    raise
                instruments.RETRY_ATTEMPTS.inc(operation=operation,
                                               result="retried")
                backoff = self.delay(key, attempt)
                delays.append(backoff)
                if sleep is not None:
                    sleep(backoff)
                continue
            instruments.RETRY_ATTEMPTS.inc(operation=operation,
                                           result="success")
            return RetryResult(value=value, attempts=attempt, delays=delays)
        raise AssertionError("unreachable")  # pragma: no cover

"""repro.resilience — retries, circuit breaking, quarantine, checkpoints.

The policy half of the fault story (:mod:`repro.faults` is the chaos
half).  Five modules:

``errors``
    :class:`TransientError` and its family — what is worth retrying.
``retry``
    :class:`RetryPolicy`: bounded attempts, exponential backoff,
    deterministic SHA-256 jitter, optional (off by default) sleeping.
``breaker``
    :class:`CircuitBreaker`: closed → open → half-open, count-based and
    therefore deterministic.
``quarantine``
    :class:`Quarantine`: capture bad records (reason + raw bytes) instead
    of raising; JSONL round-trip; degradation summaries.
``checkpoint``
    :class:`CheckpointStore`: fingerprint-guarded per-stage pickle
    checkpoints enabling ``--resume``; :class:`ArtifactStore`:
    content-addressed whole-``AnalysisResult`` cache enabling warm
    ``--analysis-cache`` runs.
``journal``
    :class:`RunJournal`: crash-safe append-only completion log +
    partial-artifact store, enabling task-granular ``--resume
    --run-journal`` through the supervised executor.
"""

from __future__ import annotations

from .breaker import BreakerState, CircuitBreaker
from .checkpoint import ArtifactStore, CheckpointStore, input_fingerprint
from .journal import RunJournal
from .errors import (
    CircuitOpenError,
    CTUnavailableError,
    ScanReset,
    ScanTimeout,
    TransientError,
)
from .quarantine import Quarantine, QuarantinedRecord
from .retry import RetryPolicy, RetryResult

__all__ = [
    "TransientError",
    "ScanTimeout",
    "ScanReset",
    "CTUnavailableError",
    "CircuitOpenError",
    "RetryPolicy",
    "RetryResult",
    "CircuitBreaker",
    "BreakerState",
    "Quarantine",
    "QuarantinedRecord",
    "CheckpointStore",
    "ArtifactStore",
    "RunJournal",
    "input_fingerprint",
]

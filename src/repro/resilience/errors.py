"""Exception taxonomy for the resilience layer.

``TransientError`` marks failures worth retrying (timeouts, resets,
remote outages); everything else is permanent and should surface
immediately.  Policies in :mod:`repro.resilience.retry` default to
retrying exactly this family.
"""

from __future__ import annotations

__all__ = ["TransientError", "ScanTimeout", "ScanReset",
           "CTUnavailableError", "CircuitOpenError"]


class TransientError(Exception):
    """A failure that may succeed on retry."""


class ScanTimeout(TransientError):
    """An active scan's connection attempt timed out."""


class ScanReset(TransientError):
    """The peer reset the connection mid-handshake."""


class CTUnavailableError(TransientError):
    """The CT index (crt.sh frontend) did not answer."""


class CircuitOpenError(TransientError):
    """The circuit breaker is open; the call was rejected without trying."""

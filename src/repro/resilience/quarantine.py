"""Quarantine sink: capture bad records with their reason instead of raising.

One malformed row out of 40 million must not abort a run.  A
:class:`Quarantine` collects every dropped record — coarse ``reason``
kind (low-cardinality, suitable as a metric label), the detailed parse
message, the raw bytes, and where it came from — and round-trips the lot
through a JSONL file so an operator can inspect, re-parse, or replay
exactly what was skipped.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict, dataclass
from typing import Iterator, List

from ..obs import instruments

__all__ = ["Quarantine", "QuarantinedRecord"]


@dataclass(frozen=True, slots=True)
class QuarantinedRecord:
    """One dropped record: provenance, reason, and the raw line."""

    source: str
    line: int
    reason: str
    detail: str
    raw: str


class Quarantine:
    """Accumulates dropped records and summarises the degradation."""

    def __init__(self) -> None:
        self.records: List[QuarantinedRecord] = []

    def add(self, *, source: str, line: int, reason: str, detail: str = "",
            raw: str = "") -> QuarantinedRecord:
        record = QuarantinedRecord(source=source, line=line, reason=reason,
                                   detail=detail or reason, raw=raw)
        self.records.append(record)
        instruments.QUARANTINE_RECORDS.inc(source=source, reason=reason)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[QuarantinedRecord]:
        return iter(self.records)

    def counts_by_reason(self) -> Counter:
        return Counter(record.reason for record in self.records)

    def counts_by_source(self) -> Counter:
        return Counter(record.source for record in self.records)

    def summary_lines(self) -> List[str]:
        """Human degradation summary for the CLI footer."""
        if not self.records:
            return ["degraded: 0 records quarantined"]
        plural = "s" if len(self.records) != 1 else ""
        lines = [f"degraded: {len(self.records)} record{plural} quarantined"]
        for (source, reason), count in sorted(Counter(
                (r.source, r.reason) for r in self.records).items()):
            lines.append(f"  {source}: {reason} ×{count}")
        return lines

    # -- persistence (JSONL) ----------------------------------------------------

    def write(self, path: str) -> int:
        """Write one JSON object per quarantined record; returns the count."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(asdict(record), sort_keys=True) + "\n")
        return len(self.records)

    @classmethod
    def load(cls, path: str) -> "Quarantine":
        """Rebuild a quarantine from its JSONL file (metrics not re-counted)."""
        quarantine = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for text in handle:
                text = text.strip()
                if not text:
                    continue
                quarantine.records.append(QuarantinedRecord(**json.loads(text)))
        return quarantine

"""Quarantine sink: capture bad records with their reason instead of raising.

One malformed row out of 40 million must not abort a run.  A
:class:`Quarantine` collects every dropped record — coarse ``reason``
kind (low-cardinality, suitable as a metric label), the detailed parse
message, the raw bytes, and where it came from — and round-trips the lot
through a JSONL file so an operator can inspect, re-parse, or replay
exactly what was skipped.

Persistence is crash-safe in both shapes: :meth:`Quarantine.write` is
atomic (tmp + fsync + rename), an open :meth:`Quarantine.open_spill`
appends one fsynced line per record as it arrives (so a killed run
keeps everything quarantined up to the kill), and
:meth:`Quarantine.load` skips a torn trailing line instead of raising.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import asdict, dataclass
from typing import IO, Iterator, List, Optional

from ..obs import instruments
from ..obs.logging import get_logger, kv

__all__ = ["Quarantine", "QuarantinedRecord"]

log = get_logger(__name__)


@dataclass(frozen=True, slots=True)
class QuarantinedRecord:
    """One dropped record: provenance, reason, and the raw line."""

    source: str
    line: int
    reason: str
    detail: str
    raw: str


class Quarantine:
    """Accumulates dropped records and summarises the degradation."""

    def __init__(self) -> None:
        self.records: List[QuarantinedRecord] = []
        self._spill: Optional[IO[str]] = None

    def add(self, *, source: str, line: int, reason: str, detail: str = "",
            raw: str = "") -> QuarantinedRecord:
        record = QuarantinedRecord(source=source, line=line, reason=reason,
                                   detail=detail or reason, raw=raw)
        self.records.append(record)
        instruments.QUARANTINE_RECORDS.inc(source=source, reason=reason)
        if self._spill is not None:
            self._spill.write(json.dumps(asdict(record), sort_keys=True)
                              + "\n")
            self._spill.flush()
            os.fsync(self._spill.fileno())
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[QuarantinedRecord]:
        return iter(self.records)

    def counts_by_reason(self) -> Counter:
        return Counter(record.reason for record in self.records)

    def counts_by_source(self) -> Counter:
        return Counter(record.source for record in self.records)

    def summary_lines(self) -> List[str]:
        """Human degradation summary for the CLI footer."""
        if not self.records:
            return ["degraded: 0 records quarantined"]
        plural = "s" if len(self.records) != 1 else ""
        lines = [f"degraded: {len(self.records)} record{plural} quarantined"]
        for (source, reason), count in sorted(Counter(
                (r.source, r.reason) for r in self.records).items()):
            lines.append(f"  {source}: {reason} ×{count}")
        return lines

    # -- persistence (JSONL) ----------------------------------------------------

    def write(self, path: str) -> int:
        """Write one JSON object per record; returns the count.

        Crash-atomic: the JSONL is staged to ``path + ".tmp"``, fsynced,
        then renamed over the target — a crash mid-write leaves the old
        file (or nothing), never a half-written one.
        """
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(asdict(record), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return len(self.records)

    def open_spill(self, path: str) -> None:
        """Start appending every future :meth:`add` to ``path``, fsynced.

        The incremental twin of :meth:`write`: each record becomes one
        complete, flushed JSONL line the moment it is quarantined, so a
        driver killed mid-run loses nothing already captured.  Records
        quarantined *before* the spill opened are written out first.
        """
        self.close_spill()
        self._spill = open(path, "a", encoding="utf-8")
        for record in self.records:
            self._spill.write(json.dumps(asdict(record), sort_keys=True)
                              + "\n")
        self._spill.flush()
        os.fsync(self._spill.fileno())

    def close_spill(self) -> None:
        if self._spill is not None:
            self._spill.close()
            self._spill = None

    @classmethod
    def load(cls, path: str) -> "Quarantine":
        """Rebuild a quarantine from its JSONL file (metrics not re-counted).

        Tolerant of a torn tail: a line that does not decode as a full
        record object — the signature of a crash mid-append — is skipped
        with a warning rather than aborting the load.
        """
        quarantine = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for number, text in enumerate(handle, start=1):
                text = text.strip()
                if not text:
                    continue
                try:
                    payload = json.loads(text)
                    record = QuarantinedRecord(**payload)
                except (json.JSONDecodeError, TypeError):
                    log.warning("skipping torn quarantine line",
                                extra=kv(path=path, line=number))
                    continue
                quarantine.records.append(record)
        return quarantine

"""Crash-safe run journals: resume a killed parallel run mid-corpus.

A checkpoint (:mod:`repro.resilience.checkpoint`) saves whole *stages* —
useless for a run killed halfway through stage 0, which loses every
completed shard.  A :class:`RunJournal` records progress at *task*
granularity: each completed supervised task saves its partial result
into a content-addressed :class:`~repro.resilience.checkpoint.ArtifactStore`
under the journal directory, then appends one JSON line — task id,
input fingerprint, artifact pointer — to an append-only ``journal.jsonl``.
The line is flushed and fsync'd before the task counts as done, so the
journal never claims work the disk does not hold.

On ``--resume`` the supervisor replays the journal: a task whose
recorded fingerprint still matches its current input is served from its
saved partial (and, because partials are merged in task order
regardless of which run produced them, the final tables are identical
to an uninterrupted run); a task whose input changed reads as *stale*
and recomputes.  A torn trailing line — the signature of a driver
killed mid-append — is tolerated: intact lines before it replay
normally, the torn tail is dropped with a warning, and that one task
recomputes.  Events are counted on ``repro_supervisor_journal_total``.

The journal keys on task ids and input fingerprints only — not on the
full engine configuration — so a journal directory belongs to one run
configuration.  The CLI namespaces per-engine subdirectories
(``<dir>/ingest``, ``<dir>/analysis``, ``<dir>/generate``) under
``--run-journal`` for exactly that reason.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional, Tuple

from ..obs import instruments
from ..obs.logging import get_logger, kv
from .checkpoint import ArtifactStore

__all__ = ["RunJournal"]

log = get_logger(__name__)

#: The append-only completion log inside a journal directory.
JOURNAL_NAME = "journal.jsonl"


class RunJournal:
    """Append-only task-completion journal + partial-artifact store."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, JOURNAL_NAME)
        self.artifacts = ArtifactStore(os.path.join(directory, "partials"))
        self._handle = None

    # -- replay -----------------------------------------------------------------

    def completed(self) -> Dict[str, str]:
        """``task id -> fingerprint`` for every intact journal line.

        Unreadable lines (a torn tail from a killed driver, stray
        garbage) are dropped with a warning — never an exception: a
        corrupted journal must degrade to "recompute that task", not
        abort the resume that exists to recover from crashes.  Later
        lines win when a task id repeats (a recomputed task re-appends).
        """
        entries: Dict[str, str] = {}
        if not os.path.exists(self.path):
            return entries
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, text in enumerate(handle, start=1):
                stripped = text.strip()
                if not stripped:
                    continue
                try:
                    entry = json.loads(stripped)
                except json.JSONDecodeError:
                    instruments.SUPERVISOR_JOURNAL.inc(result="torn")
                    log.warning("run journal line unreadable; dropping",
                                extra=kv(path=self.path, line=lineno))
                    continue
                if not isinstance(entry, dict) or "task" not in entry:
                    instruments.SUPERVISOR_JOURNAL.inc(result="torn")
                    continue
                entries[str(entry["task"])] = str(
                    entry.get("fingerprint", ""))
        return entries

    def load_partial(self, kind: str,
                     fingerprint: str) -> Tuple[bool, Any]:
        """The saved partial for one journaled task, or ``(False, None)``."""
        return self.artifacts.load(f"{kind}-partial", fingerprint)

    # -- append -----------------------------------------------------------------

    def record(self, kind: str, task_id: str, fingerprint: str,
               payload: Any) -> None:
        """Persist one completed task: artifact first, then the line.

        Ordering matters for crash safety — the artifact write is itself
        atomic (tmp + replace + fsync), and the journal line lands only
        after it, so every line the journal holds points at a partial
        that is really on disk.  The line is written whole, flushed, and
        fsync'd: a crash mid-append can tear at most the final line,
        which :meth:`completed` drops.  Appending to a journal whose
        tail *is* torn (resuming after exactly such a crash) first
        seals the fragment with a newline — otherwise the new record
        would concatenate onto it and both would read as garbage.
        """
        self.artifacts.save(f"{kind}-partial", fingerprint, payload)
        line = json.dumps({"task": task_id, "kind": kind,
                           "fingerprint": fingerprint,
                           "artifact": os.path.basename(
                               self.artifacts.path(f"{kind}-partial",
                                                   fingerprint))},
                          sort_keys=True)
        if self._handle is None:
            torn_tail = False
            try:
                with open(self.path, "rb") as probe:
                    probe.seek(-1, os.SEEK_END)
                    torn_tail = probe.read(1) != b"\n"
            except OSError:  # missing or empty journal: nothing to seal
                pass
            self._handle = open(self.path, "a", encoding="utf-8")
            if torn_tail:
                self._handle.write("\n")
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        instruments.SUPERVISOR_JOURNAL.inc(result="appended")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> Optional[bool]:
        self.close()
        return None

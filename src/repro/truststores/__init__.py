"""Root stores, CCADB, and the combined public-DB issuer registry."""

from .builtin import PublicCA, PublicPKI, STORE_NAMES, build_public_pki
from .ccadb import CCADB, CCADBRecord
from .registry import PublicDBRegistry
from .store import RootStore, StoreEntry

__all__ = [
    "CCADB",
    "CCADBRecord",
    "PublicCA",
    "PublicDBRegistry",
    "PublicPKI",
    "RootStore",
    "STORE_NAMES",
    "StoreEntry",
    "build_public_pki",
]

"""Root store model.

A root store (Mozilla NSS, Apple, Microsoft) is a curated set of trust
anchors.  The paper classifies a certificate as issued by a *public-DB
issuer* when its issuer appears in at least one major root store or in
CCADB (§3.2.1); this module provides the membership primitives for that
classification.

Lookups are by distinguished name (what Zeek logs expose) with fingerprint
lookups available when full certificates are in hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional

from ..x509.certificate import Certificate
from ..x509.dn import DistinguishedName

__all__ = ["RootStore", "StoreEntry"]


@dataclass(frozen=True, slots=True)
class StoreEntry:
    """One trust anchor inside a root store."""

    certificate: Certificate
    #: Operator-assigned label, e.g. "ISRG Root X1".
    label: str
    #: Whether the anchor is enabled for TLS server authentication.
    trust_tls: bool = True

    @property
    def subject(self) -> DistinguishedName:
        return self.certificate.subject

    @property
    def fingerprint(self) -> str:
        return self.certificate.fingerprint


class RootStore:
    """A named collection of trust anchors with O(1) DN and fingerprint lookup."""

    def __init__(self, name: str, entries: Iterable[StoreEntry] = ()):
        self.name = name
        self._by_fingerprint: Dict[str, StoreEntry] = {}
        self._by_dn: Dict[tuple, list[StoreEntry]] = {}
        for entry in entries:
            self.add(entry)

    def add(self, entry: StoreEntry) -> None:
        self._by_fingerprint[entry.fingerprint] = entry
        self._by_dn.setdefault(_dn_key(entry.subject), []).append(entry)

    def add_certificate(self, certificate: Certificate, label: Optional[str] = None,
                        trust_tls: bool = True) -> StoreEntry:
        entry = StoreEntry(certificate, label or certificate.short_name(), trust_tls)
        self.add(entry)
        return entry

    def remove(self, fingerprint: str) -> None:
        entry = self._by_fingerprint.pop(fingerprint, None)
        if entry is None:
            return
        bucket = self._by_dn.get(_dn_key(entry.subject), [])
        self._by_dn[_dn_key(entry.subject)] = [
            e for e in bucket if e.fingerprint != fingerprint
        ]

    # -- queries -------------------------------------------------------------

    def contains_fingerprint(self, fingerprint: str) -> bool:
        return fingerprint in self._by_fingerprint

    def contains_subject(self, dn: DistinguishedName, *, tls_only: bool = True) -> bool:
        """Is there an anchor whose subject matches ``dn``?

        This is the operation available to a log-based pipeline: Zeek exposes
        the issuer *name* of each certificate, so store membership is decided
        by name.
        """
        for entry in self._by_dn.get(_dn_key(dn), ()):
            if entry.trust_tls or not tls_only:
                return True
        return False

    def anchors_for_subject(self, dn: DistinguishedName) -> list[StoreEntry]:
        return list(self._by_dn.get(_dn_key(dn), ()))

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Certificate):
            return self.contains_fingerprint(item.fingerprint)
        if isinstance(item, DistinguishedName):
            return self.contains_subject(item)
        if isinstance(item, str):
            return self.contains_fingerprint(item)
        return False

    def __iter__(self) -> Iterator[StoreEntry]:
        return iter(self._by_fingerprint.values())

    def __len__(self) -> int:
        return len(self._by_fingerprint)

    def __repr__(self) -> str:
        return f"RootStore({self.name!r}, {len(self)} anchors)"


def _dn_key(dn: DistinguishedName) -> tuple:
    return tuple(sorted(dn.normalized()))

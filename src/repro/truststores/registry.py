"""Combined public-database registry.

Implements §3.2.1's classification rule: an issuer is a **public-DB
issuer** when its certificate is listed in at least one major Web PKI root
store (Mozilla NSS, Apple, Microsoft) or in CCADB; otherwise it is a
**non-public-DB issuer**.  Zeek itself validates with NSS only; the paper
*expands* the validation with the other stores and CCADB — our registry
makes that expansion explicit and ablatable.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..x509.certificate import Certificate
from ..x509.dn import DistinguishedName
from .ccadb import CCADB
from .store import RootStore

__all__ = ["PublicDBRegistry"]


class PublicDBRegistry:
    """Answers "is this name a public-DB issuer?" across all databases."""

    def __init__(self, stores: Sequence[RootStore] = (),
                 ccadb: Optional[CCADB] = None):
        self.stores: list[RootStore] = list(stores)
        self.ccadb = ccadb or CCADB()

    # -- membership -----------------------------------------------------------

    def is_public_issuer_name(self, dn: DistinguishedName) -> bool:
        """True when ``dn`` names a certificate present in any root store or
        CCADB.  This is the log-level check the paper performs on the
        ``issuer`` field of each observed certificate."""
        if any(store.contains_subject(dn) for store in self.stores):
            return True
        return self.ccadb.contains_subject(dn)

    def is_trust_anchor_name(self, dn: DistinguishedName) -> bool:
        """True when ``dn`` names a root-store anchor (not merely a CCADB
        intermediate) — used to decide whether a chain is *anchored to a
        public trust root*."""
        return any(store.contains_subject(dn) for store in self.stores)

    def is_public_certificate(self, certificate: Certificate) -> bool:
        """Fingerprint-level membership, for when full certs are available."""
        if any(store.contains_fingerprint(certificate.fingerprint)
               for store in self.stores):
            return True
        return self.ccadb.contains_fingerprint(certificate.fingerprint)

    # -- derived classification -------------------------------------------------

    def issued_by_public_db(self, certificate: Certificate) -> bool:
        """§3.2.1: a certificate is *issued by a public-DB issuer* when its
        issuer name is listed in any store or CCADB.  Self-signed
        certificates qualify only if they are themselves listed (i.e. they
        are trust anchors)."""
        if certificate.is_self_signed:
            return (self.is_public_issuer_name(certificate.subject)
                    or self.is_public_certificate(certificate))
        return self.is_public_issuer_name(certificate.issuer)

    # -- composition -----------------------------------------------------------

    def restricted_to(self, store_names: Iterable[str], *,
                      include_ccadb: bool = True) -> "PublicDBRegistry":
        """A narrowed registry for ablation (e.g. NSS-only, Zeek's default)."""
        wanted = set(store_names)
        stores = [s for s in self.stores if s.name in wanted]
        return PublicDBRegistry(stores, self.ccadb if include_ccadb else CCADB())

    def store(self, name: str) -> RootStore:
        for candidate in self.stores:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no root store named {name!r}")

    def __repr__(self) -> str:
        names = ", ".join(s.name for s in self.stores)
        return f"PublicDBRegistry(stores=[{names}], ccadb={len(self.ccadb)})"

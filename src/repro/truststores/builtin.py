"""Synthetic public Web PKI: the cast of public CAs and their store placement.

The paper's classification depends on concrete store contents (Mozilla NSS,
Apple, Microsoft, CCADB).  Real store snapshots are config data, not code,
so we instantiate a faithful synthetic cast: the CAs the paper names
(Let's Encrypt, DigiCert, Sectigo/AAA, COMODO, GoDaddy, Symantec, the U.S.
Federal PKI, Korean and Brazilian government anchors) with realistic
hierarchy shapes and deliberately *asymmetric* store membership — e.g. the
Federal Common Policy CA is only in the Microsoft store — which is what
makes the trust-store-scope ablation meaningful.

Cross-signing is modelled on the two canonical real-world cases the paper's
methodology must survive (Appendix D.1): IdenTrust "DST Root CA X3" → Let's
Encrypt "R3", and Sectigo "AAA Certificate Services" → "USERTrust RSA
Certification Authority".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..x509.certificate import Certificate
from ..x509.dn import DistinguishedName
from ..x509.generation import CertificateFactory, IssuingAuthority, name
from .ccadb import CCADB
from .registry import PublicDBRegistry
from .store import RootStore

__all__ = ["PublicCA", "PublicPKI", "build_public_pki", "STORE_NAMES"]

STORE_NAMES = ("Mozilla", "Apple", "Microsoft")


@dataclass
class PublicCA:
    """One public CA operator: a root plus its issuing intermediates."""

    name: str
    root: IssuingAuthority
    intermediates: Dict[str, IssuingAuthority] = field(default_factory=dict)
    #: Which root stores carry this CA's root.
    store_membership: tuple[str, ...] = STORE_NAMES

    def default_intermediate(self) -> IssuingAuthority:
        if not self.intermediates:
            return self.root
        return next(iter(self.intermediates.values()))

    def intermediate(self, label: str) -> IssuingAuthority:
        return self.intermediates[label]

    def all_certificates(self) -> list[Certificate]:
        return [self.root.certificate] + [
            ia.certificate for ia in self.intermediates.values()
        ]


class PublicPKI:
    """The assembled public PKI: CAs, cross-signs, stores, and the registry."""

    def __init__(self, factory: CertificateFactory):
        self.factory = factory
        self.cas: Dict[str, PublicCA] = {}
        #: cross-signed twins: label -> the re-issued IssuingAuthority.
        self.cross_signed: Dict[str, IssuingAuthority] = {}
        self._registry: Optional[PublicDBRegistry] = None

    def add_ca(self, ca: PublicCA) -> PublicCA:
        self.cas[ca.name] = ca
        self._registry = None
        return ca

    def ca(self, ca_name: str) -> PublicCA:
        return self.cas[ca_name]

    def add_cross_sign(self, label: str, signer: IssuingAuthority,
                       existing: IssuingAuthority) -> IssuingAuthority:
        twin = self.factory.cross_sign(signer, existing)
        self.cross_signed[label] = twin
        self._registry = None
        return twin

    # -- registry construction ---------------------------------------------------

    @property
    def registry(self) -> PublicDBRegistry:
        """Root stores + CCADB assembled from the current CA set (cached)."""
        if self._registry is None:
            self._registry = self._build_registry()
        return self._registry

    def _build_registry(self) -> PublicDBRegistry:
        stores = {store_name: RootStore(store_name) for store_name in STORE_NAMES}
        ccadb = CCADB()
        for ca in self.cas.values():
            for store_name in ca.store_membership:
                stores[store_name].add_certificate(ca.root.certificate)
            ccadb.add_root(ca.root.certificate,
                           programs=tuple(ca.store_membership))
            for ia in ca.intermediates.values():
                ccadb.add_intermediate(ia.certificate,
                                       programs=tuple(ca.store_membership))
        for twin in self.cross_signed.values():
            ccadb.add_intermediate(twin.certificate)
        return PublicDBRegistry(list(stores.values()), ccadb)

    def cross_sign_disclosures(self) -> list[tuple[DistinguishedName, DistinguishedName]]:
        """(subject, alternate issuer) pairs, as CAs publicly disclose [32]."""
        return [
            (twin.certificate.subject, twin.certificate.issuer)
            for twin in self.cross_signed.values()
        ]

    def all_public_certificates(self) -> list[Certificate]:
        certs: list[Certificate] = []
        for ca in self.cas.values():
            certs.extend(ca.all_certificates())
        certs.extend(t.certificate for t in self.cross_signed.values())
        return certs


def _ca(factory: CertificateFactory, pki: PublicPKI, ca_name: str,
        root_dn: DistinguishedName,
        intermediates: Iterable[tuple[str, DistinguishedName]],
        stores: tuple[str, ...] = STORE_NAMES) -> PublicCA:
    root = factory.root(root_dn)
    ca = PublicCA(ca_name, root, store_membership=stores)
    for label, dn in intermediates:
        ca.intermediates[label] = factory.intermediate(root, dn)
    return pki.add_ca(ca)


def build_public_pki(seed: int | str = 0) -> PublicPKI:
    """Instantiate the full public cast deterministically from ``seed``."""
    factory = CertificateFactory(seed=f"public-pki:{seed}")
    pki = PublicPKI(factory)

    lets_encrypt = _ca(
        factory, pki, "lets_encrypt",
        name("ISRG Root X1", o="Internet Security Research Group", c="US"),
        [("R3", name("R3", o="Let's Encrypt", c="US")),
         ("E1", name("E1", o="Let's Encrypt", c="US"))],
    )
    identrust = _ca(
        factory, pki, "identrust",
        name("DST Root CA X3", o="Digital Signature Trust Co.", c="US"),
        [],
    )
    digicert = _ca(
        factory, pki, "digicert",
        name("DigiCert Global Root CA", o="DigiCert Inc", ou="www.digicert.com", c="US"),
        [("tls2020", name("DigiCert TLS RSA SHA256 2020 CA1", o="DigiCert Inc", c="US")),
         ("sha2", name("DigiCert SHA2 Secure Server CA", o="DigiCert Inc", c="US"))],
    )
    sectigo = _ca(
        factory, pki, "sectigo",
        name("AAA Certificate Services", o="Comodo CA Limited", c="GB"),
        [],
    )
    usertrust = _ca(
        factory, pki, "usertrust",
        name("USERTrust RSA Certification Authority", o="The USERTRUST Network", c="US"),
        [("sectigo_dv", name("Sectigo RSA Domain Validation Secure Server CA",
                             o="Sectigo Limited", c="GB"))],
    )
    _ca(
        factory, pki, "comodo",
        name("COMODO RSA Certification Authority", o="COMODO CA Limited", c="GB"),
        [("dv", name("COMODO RSA Domain Validation Secure Server CA",
                     o="COMODO CA Limited", c="GB"))],
    )
    _ca(
        factory, pki, "godaddy",
        name("Go Daddy Root Certificate Authority - G2", o="GoDaddy.com, Inc.", c="US"),
        [("g2", name("Go Daddy Secure Certificate Authority - G2",
                     o="GoDaddy.com, Inc.", c="US"))],
    )
    _ca(
        factory, pki, "globalsign",
        name("GlobalSign Root CA", o="GlobalSign nv-sa", ou="Root CA", c="BE"),
        [("ov2018", name("GlobalSign RSA OV SSL CA 2018", o="GlobalSign nv-sa", c="BE"))],
    )
    _ca(
        factory, pki, "symantec",
        name("VeriSign Class 3 Public Primary Certification Authority - G5",
             o="VeriSign, Inc.", c="US"),
        [("class3_g4", name("Symantec Class 3 Secure Server CA - G4",
                            o="Symantec Corporation", c="US"))],
    )
    _ca(
        factory, pki, "amazon",
        name("Amazon Root CA 1", o="Amazon", c="US"),
        [("m02", name("Amazon RSA 2048 M02", o="Amazon", c="US"))],
    )
    # Government anchors with deliberately partial store membership.
    _ca(
        factory, pki, "federal_pki",
        name("Federal Common Policy CA", o="U.S. Government", ou="FPKI", c="US"),
        [("verizon_ssp", name("Verizon SSP CA A2", o="Verizon Business", c="US"))],
        stores=("Microsoft",),
    )
    _ca(
        factory, pki, "kisa",
        name("KISA RootCA 1", o="KISA", ou="Korea Certification Authority Central", c="KR"),
        [("gpki", name("GPKIRootCA1", o="Government of Korea", c="KR"))],
        stores=("Microsoft", "Apple"),
    )
    _ca(
        factory, pki, "icp_brasil",
        name("Autoridade Certificadora Raiz Brasileira v5",
             o="ICP-Brasil", ou="Instituto Nacional de Tecnologia da Informacao - ITI",
             c="BR"),
        [("ssl", name("AC Certisign Multipla G7", o="ICP-Brasil", c="BR"))],
        stores=("Microsoft",),
    )

    # Canonical cross-signs (Appendix D.1 false-mismatch hazards).
    pki.add_cross_sign("R3-cross", identrust.root, lets_encrypt.intermediates["R3"])
    pki.add_cross_sign("USERTrust-cross", sectigo.root, usertrust.root)
    return pki

"""Common CA Database (CCADB) model.

CCADB is a repository of root *and intermediate* certificate records
contributed by public root-store operators.  An intermediate is included
when it chains to a trusted root of a participating program and is either
technically constrained or publicly audited (§3.2.1).  The paper uses CCADB
membership as one of the signals that an issuer is a *public-DB issuer*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator

from ..x509.certificate import Certificate
from ..x509.dn import DistinguishedName
from .store import _dn_key

__all__ = ["CCADB", "CCADBRecord", "RootProgram"]

#: Participating root programs per the CCADB inclusion policy.
RootProgram = str
KNOWN_PROGRAMS: tuple[RootProgram, ...] = (
    "Mozilla", "Microsoft", "Apple", "Google", "Oracle",
)


@dataclass(frozen=True, slots=True)
class CCADBRecord:
    """One CCADB row: a root or intermediate certificate plus audit metadata."""

    certificate: Certificate
    record_type: str  # "root" or "intermediate"
    programs: tuple[RootProgram, ...] = ("Mozilla",)
    technically_constrained: bool = False
    audited: bool = True
    revoked: bool = False

    def eligible(self) -> bool:
        """CCADB inclusion criterion: chains to a participating program's
        root and is technically constrained or audited."""
        return bool(self.programs) and (self.technically_constrained or self.audited)

    @property
    def subject(self) -> DistinguishedName:
        return self.certificate.subject


class CCADB:
    """DN-indexed CCADB with the membership query the classifier needs."""

    def __init__(self, records: Iterable[CCADBRecord] = ()):
        self._by_dn: Dict[tuple, list[CCADBRecord]] = {}
        self._by_fingerprint: Dict[str, CCADBRecord] = {}
        for record in records:
            self.add(record)

    def add(self, record: CCADBRecord) -> None:
        if record.record_type not in ("root", "intermediate"):
            raise ValueError(f"unknown CCADB record type: {record.record_type!r}")
        self._by_dn.setdefault(_dn_key(record.subject), []).append(record)
        self._by_fingerprint[record.certificate.fingerprint] = record

    def add_intermediate(self, certificate: Certificate,
                         programs: Iterable[RootProgram] = ("Mozilla",),
                         technically_constrained: bool = False,
                         audited: bool = True) -> CCADBRecord:
        record = CCADBRecord(certificate, "intermediate",
                             tuple(programs), technically_constrained, audited)
        self.add(record)
        return record

    def add_root(self, certificate: Certificate,
                 programs: Iterable[RootProgram] = ("Mozilla",)) -> CCADBRecord:
        record = CCADBRecord(certificate, "root", tuple(programs))
        self.add(record)
        return record

    def contains_subject(self, dn: DistinguishedName) -> bool:
        """Is any eligible, unrevoked CCADB record's subject this DN?"""
        return any(
            record.eligible() and not record.revoked
            for record in self._by_dn.get(_dn_key(dn), ())
        )

    def records_for_subject(self, dn: DistinguishedName) -> list[CCADBRecord]:
        return list(self._by_dn.get(_dn_key(dn), ()))

    def contains_fingerprint(self, fingerprint: str) -> bool:
        record = self._by_fingerprint.get(fingerprint)
        return record is not None and record.eligible() and not record.revoked

    def __len__(self) -> int:
        return len(self._by_fingerprint)

    def __iter__(self) -> Iterator[CCADBRecord]:
        return iter(self._by_fingerprint.values())

    def __repr__(self) -> str:
        return f"CCADB({len(self)} records)"

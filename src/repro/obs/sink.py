"""Cross-process telemetry: capture in workers, merge in the driver.

The parallel engines keep their central guarantee — byte-identical
output and ``--jobs``-invariant counter exports — by having the driver
emit every canonical metric from the merged result.  Until now that
meant workers ran metrics-*disabled* and spans never left the worker
process, so a ``--jobs 4`` run was a black box between fan-out and
reduce.  This module makes workers observable without touching the
guarantee:

:func:`capture_telemetry`
    A context manager a worker wraps around its unit of work.  It
    snapshots the process-local registry, runs the body with metrics
    and tracing **enabled**, then packages what changed — the counter
    and histogram deltas, plus every span the body finished — into a
    picklable :class:`WorkerTelemetry` and *restores* the registry to
    its baseline.  Restoring makes the mechanism identical inline
    (``jobs=1``, body runs in the driver process) and in a pool worker
    (forked registry, inherited garbage values): either way the body
    leaves no direct trace, and the driver decides what to keep.

:class:`TelemetrySink`
    The driver-side collector.  ``attach()`` is called once per unit in
    deterministic unit order during each engine's reduce.  It stores
    the record (for the trace exporter and run report), replays
    *designated* counter families value-for-value (the families whose
    canonical values genuinely live worker-side, e.g.
    ``repro_faults_injected_total`` label splits), creates — without
    incrementing — any other counter children the worker touched (so
    the driver's child set is identical at any ``--jobs``), and merges
    histogram deltas (timing distributions, free to vary run to run).

This replaces the two previous ad-hoc channels: the ingest engine's
tallying ``FaultInjector._record`` override and the scanner's
hand-rolled ``_TALLIED`` family list.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from threading import Lock
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .metrics import MetricsRegistry, _HistogramChild, get_registry
from .tracing import Tracer, get_tracer

__all__ = ["WorkerSpan", "WorkerTelemetry", "TelemetrySink",
           "capture_telemetry", "get_sink"]

#: (family name, label values, delta) — one captured counter change.
CounterDelta = Tuple[str, Tuple[str, ...], float]
#: (family name, label values, per-bucket deltas, sum delta, count delta).
HistogramDelta = Tuple[str, Tuple[str, ...], Tuple[int, ...], float, int]


@dataclass(slots=True)
class WorkerSpan:
    """One finished span, re-based onto the capture's own timeline."""

    name: str
    path: str
    depth: int
    duration_s: float
    #: Seconds after the capture opened that this span started.
    offset_s: float
    attrs: Dict[str, object] = field(default_factory=dict)


@dataclass(slots=True)
class WorkerTelemetry:
    """Everything one worker unit observed — picklable for the pool.

    ``kind`` names the engine (``ingest``/``analysis``/``generate``/
    ``scan``); ``unit`` is the shard / partition / batch index the
    driver labels the merged record with.  ``pid`` and
    ``started_epoch`` (``time.time()`` at capture start) let the trace
    exporter place this worker's spans on the driver's timeline.
    """

    kind: str
    unit: int
    pid: int = 0
    started_epoch: float = 0.0
    duration_s: float = 0.0
    spans: List[WorkerSpan] = field(default_factory=list)
    #: Counter deltas, *including* zero-valued entries for children the
    #: body created but never incremented past baseline — the driver
    #: must create those too or its child set would depend on ``--jobs``.
    counters: List[CounterDelta] = field(default_factory=list)
    histograms: List[HistogramDelta] = field(default_factory=list)

    @property
    def span_count(self) -> int:
        return len(self.spans)


def _counter_baseline(registry: MetricsRegistry) -> Dict[tuple, float]:
    base: Dict[tuple, float] = {}
    for family in registry.families():
        if family.kind == "counter":
            for labels, child in family.samples():
                base[(family.name, labels)] = child.value
    return base


def _histogram_baseline(registry: MetricsRegistry) -> Dict[tuple, tuple]:
    base: Dict[tuple, tuple] = {}
    for family in registry.families():
        if family.kind == "histogram":
            for labels, child in family.samples():
                assert isinstance(child, _HistogramChild)
                base[(family.name, labels)] = (
                    tuple(child.bucket_counts()), child.sum, child.count)
    return base


def _gauge_baseline(registry: MetricsRegistry) -> Dict[tuple, float]:
    base: Dict[tuple, float] = {}
    for family in registry.families():
        if family.kind == "gauge":
            for labels, child in family.samples():
                base[(family.name, labels)] = child.value
    return base


@contextmanager
def capture_telemetry(kind: str, unit: int, *,
                      registry: Optional[MetricsRegistry] = None,
                      tracer: Optional[Tracer] = None
                      ) -> Iterator[WorkerTelemetry]:
    """Run a worker body observed: metrics + spans on, then diffed away.

    Yields the :class:`WorkerTelemetry` that is filled in when the body
    exits.  The registry and tracer are restored to their pre-capture
    state on *any* exit — counter/histogram/gauge values go back to
    baseline (children created by the body stay registered, zeroed, so
    later driver-side replays find an identical child set inline and
    pooled), and the body's finished spans are drained out of the
    tracer into the telemetry instead of polluting the driver's list.
    """
    registry = registry or get_registry()
    tracer = tracer or get_tracer()
    telemetry = WorkerTelemetry(kind=kind, unit=unit, pid=os.getpid(),
                                started_epoch=time.time())
    counter_base = _counter_baseline(registry)
    histogram_base = _histogram_baseline(registry)
    gauge_base = _gauge_baseline(registry)
    previous_metrics = registry.enabled
    previous_tracing = tracer.enabled
    registry.enabled = True
    tracer.enabled = True
    mark = tracer.mark()
    anchor = time.perf_counter()
    try:
        yield telemetry
    finally:
        telemetry.duration_s = time.perf_counter() - anchor
        registry.enabled = previous_metrics
        tracer.enabled = previous_tracing
        for record in tracer.drain(mark):
            telemetry.spans.append(WorkerSpan(
                name=record.name, path=record.path, depth=record.depth,
                duration_s=record.duration_s,
                offset_s=record.start_s - anchor, attrs=dict(record.attrs)))
        for family in registry.families():
            if family.kind == "counter":
                for labels, child in family.samples():
                    base = counter_base.get((family.name, labels))
                    if base is None:
                        # Child born inside the body: ship it (delta may
                        # be zero) and leave it registered at zero.
                        telemetry.counters.append(
                            (family.name, labels, child.value))
                        child.zero()
                    elif child.value != base:
                        telemetry.counters.append(
                            (family.name, labels, child.value - base))
                        with child._lock:
                            child._value = base
            elif family.kind == "histogram":
                for labels, child in family.samples():
                    assert isinstance(child, _HistogramChild)
                    base = histogram_base.get((family.name, labels))
                    if base is None:
                        base = ((0,) * len(family.buckets), 0.0, 0)
                    counts, total, count = base
                    if child.count != count:
                        telemetry.histograms.append((
                            family.name, labels,
                            tuple(now - was for now, was in
                                  zip(child.bucket_counts(), counts)),
                            child.sum - total, child.count - count))
                    with child._lock:
                        child._counts = list(counts)
                        child._sum = total
                        child._count = count
            else:  # gauges are driver-owned: restore, never ship
                for labels, child in family.samples():
                    base = gauge_base.get((family.name, labels), 0.0)
                    with child._lock:
                        child._value = base


class TelemetrySink:
    """Driver-side collector for :class:`WorkerTelemetry` records.

    Engines call :meth:`attach` once per unit, in unit order, inside
    their reduce — so the sink's record list, the replayed counters,
    and the merged histograms are all deterministic functions of the
    corpus, independent of worker count and completion order.
    """

    def __init__(self) -> None:
        self._lock = Lock()
        self.records: List[WorkerTelemetry] = []

    def attach(self, telemetry: Optional[WorkerTelemetry], *,
               replay: Sequence[str] = (),
               record_metrics: bool = True,
               registry: Optional[MetricsRegistry] = None) -> None:
        """Merge one worker's telemetry into the driver.

        ``replay`` names the counter families whose captured deltas are
        re-applied value-for-value — the families whose canonical
        per-label splits only the worker saw (fault kinds, scan attempt
        outcomes).  Every other captured counter child is created but
        left untouched, so the driver's child set — and therefore the
        Prometheus export structure — is identical at any ``--jobs``
        while the *values* stay driver-canonical.  Histogram deltas
        (timing distributions) always merge.  ``record_metrics=False``
        skips the ``repro_worker_*`` bookkeeping counters for engines
        whose unit count varies with ``--jobs`` (the scanner's batches).
        """
        if telemetry is None:
            return
        registry = registry or get_registry()
        with self._lock:
            self.records.append(telemetry)
        replay_set = frozenset(replay)
        for name, labels, delta in telemetry.counters:
            family = registry.get_family(name)
            if family is None or family.kind != "counter":
                continue
            child = family.labels(**dict(zip(family.labelnames, labels)))
            if name in replay_set and delta:
                child.inc(delta)
        if registry.enabled:
            for name, labels, counts, total, count in telemetry.histograms:
                family = registry.get_family(name)
                if family is None or family.kind != "histogram":
                    continue
                child = family.labels(**dict(zip(family.labelnames, labels)))
                assert isinstance(child, _HistogramChild)
                with child._lock:
                    for i, delta in enumerate(counts):
                        child._counts[i] += delta
                    child._sum += total
                    child._count += count
        if record_metrics:
            from . import instruments
            instruments.WORKER_TELEMETRY_RECORDS.inc(kind=telemetry.kind)
            if telemetry.spans:
                instruments.WORKER_SPANS.inc(len(telemetry.spans),
                                             kind=telemetry.kind)

    def spans(self) -> List[Tuple[WorkerTelemetry, WorkerSpan]]:
        """Every collected worker span, in attach (unit) order."""
        with self._lock:
            records = list(self.records)
        return [(telemetry, span) for telemetry in records
                for span in telemetry.spans]

    def summary(self) -> dict:
        """Deterministic per-kind rollup for the run report."""
        with self._lock:
            records = list(self.records)
        by_kind: Dict[str, Dict[str, int]] = {}
        for telemetry in records:
            entry = by_kind.setdefault(telemetry.kind,
                                       {"records": 0, "spans": 0})
            entry["records"] += 1
            entry["spans"] += telemetry.span_count
        return {kind: by_kind[kind] for kind in sorted(by_kind)}

    def reset(self) -> None:
        with self._lock:
            self.records.clear()


#: The process-wide sink every engine reduce attaches to — reset it at
#: the start of a CLI run, next to the registry and tracer resets.
_DEFAULT = TelemetrySink()


def get_sink() -> TelemetrySink:
    return _DEFAULT

"""Registry exporters: Prometheus text exposition, JSON, and the RunReport.

Two export shapes serve two consumers:

* :func:`render_prometheus` — the text exposition format a Prometheus
  scrape (or ``promtool check metrics``) expects, for the long-running
  deployment the ROADMAP targets;
* :func:`render_json` / :class:`RunReport` — a diffable per-run summary
  (stage timings, throughput, cache hit rates, verdict counters) an
  operator can archive next to the analysis output and compare across
  builds.

Everything is emitted in sorted order so two same-seed runs differ only in
durations, never in structure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .metrics import MetricsRegistry, get_registry
from .tracing import Tracer, get_tracer

__all__ = ["render_prometheus", "render_json", "registry_to_dict",
           "RunReport", "write_metrics_file"]


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in labels.items())
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def registry_to_dict(registry: Optional[MetricsRegistry] = None) -> dict:
    """Deterministic JSON-ready view of the registry."""
    return (registry or get_registry()).snapshot()


def render_json(registry: Optional[MetricsRegistry] = None, *,
                indent: int = 2) -> str:
    return json.dumps(registry_to_dict(registry), indent=indent,
                      sort_keys=True)


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Prometheus text exposition (version 0.0.4) of a registry snapshot."""
    registry = registry or get_registry()
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labelvalues, child in family.samples():
            labels = dict(zip(family.labelnames, labelvalues))
            if family.kind == "histogram":
                cumulative = child.bucket_counts()
                for bound, count in zip(family.buckets, cumulative):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(f"{family.name}_bucket"
                                 f"{_format_labels(bucket_labels)} {count}")
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(f"{family.name}_bucket"
                             f"{_format_labels(inf_labels)} {child.count}")
                lines.append(f"{family.name}_sum{_format_labels(labels)} "
                             f"{repr(child.sum)}")
                lines.append(f"{family.name}_count{_format_labels(labels)} "
                             f"{child.count}")
            else:
                lines.append(f"{family.name}{_format_labels(labels)} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + "\n"


def write_metrics_file(path: str,
                       registry: Optional[MetricsRegistry] = None) -> None:
    """Write the Prometheus exposition (or JSON when path ends in .json)."""
    if path.endswith(".json"):
        text = render_json(registry) + "\n"
    else:
        text = render_prometheus(registry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def _rate(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


def _counter_total(snapshot: dict, name: str, **match: str) -> float:
    entry = snapshot.get(name)
    if entry is None:
        return 0.0
    total = 0.0
    for sample in entry["samples"]:
        labels = sample["labels"]
        if all(labels.get(k) == v for k, v in match.items()):
            total += sample.get("value", 0.0)
    return total


@dataclass
class RunReport:
    """Diffable summary of one analyzer run.

    ``stages`` carries the only nondeterministic values (durations);
    every other field is a pure function of the input data, so
    ``RunReport.collect()`` outputs from two same-seed runs diff clean
    apart from the timing columns.
    """

    version: str = ""
    argv: List[str] = field(default_factory=list)
    #: span name -> {"seconds": float, "calls": int}
    stages: Dict[str, Dict[str, float]] = field(default_factory=dict)
    throughput: Dict[str, float] = field(default_factory=dict)
    cache: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, object] = field(default_factory=dict)
    resilience: Dict[str, float] = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    @classmethod
    def collect(cls, *, registry: Optional[MetricsRegistry] = None,
                tracer: Optional[Tracer] = None, version: str = "",
                argv: Optional[List[str]] = None,
                include_metrics: bool = True) -> "RunReport":
        registry = registry or get_registry()
        tracer = tracer or get_tracer()
        snapshot = registry.snapshot()
        stages = tracer.stage_timings()

        rows_read = _counter_total(snapshot, "repro_zeek_rows_total",
                                   direction="read")
        rows_written = _counter_total(snapshot, "repro_zeek_rows_total",
                                      direction="written")
        connections = _counter_total(snapshot,
                                     "repro_chain_connections_total",
                                     result="aggregated")
        chains = _counter_total(snapshot, "repro_pipeline_chains_total")
        read_seconds = stages.get("zeek_read", {}).get("seconds", 0.0)
        analyze_seconds = stages.get("analyze_chains", {}).get("seconds", 0.0)

        cache_hits = _counter_total(
            snapshot, "repro_structure_cache_lookups_total", result="hit")
        cache_misses = _counter_total(
            snapshot, "repro_structure_cache_lookups_total", result="miss")
        ct_hits = _counter_total(snapshot, "repro_ct_lookups_total",
                                 result="hit")
        ct_misses = _counter_total(snapshot, "repro_ct_lookups_total",
                                   result="miss")

        verdicts = {}
        for sample in snapshot.get("repro_interception_chains_total",
                                   {"samples": []})["samples"]:
            verdicts[sample["labels"].get("verdict", "")] = sample["value"]

        resilience = {
            "faults_injected": _counter_total(
                snapshot, "repro_faults_injected_total"),
            "retries": _counter_total(
                snapshot, "repro_retry_attempts_total", result="retried"),
            "retry_exhausted": _counter_total(
                snapshot, "repro_retry_attempts_total", result="exhausted"),
            "breaker_rejections": _counter_total(
                snapshot, "repro_breaker_rejections_total"),
            "quarantined_records": _counter_total(
                snapshot, "repro_quarantine_records_total"),
            "ct_unavailable_chains": verdicts.get("ct_unavailable", 0.0),
            "checkpoint_stages_loaded": _counter_total(
                snapshot, "repro_checkpoint_stages_total", result="loaded"),
            "checkpoint_stages_saved": _counter_total(
                snapshot, "repro_checkpoint_stages_total", result="saved"),
            "supervisor_worker_crashes": _counter_total(
                snapshot, "repro_supervisor_incidents_total",
                incident="worker_crash"),
            "supervisor_worker_hangs": _counter_total(
                snapshot, "repro_supervisor_incidents_total",
                incident="worker_hang"),
            "supervisor_serial_fallbacks": _counter_total(
                snapshot, "repro_supervisor_incidents_total",
                incident="serial_fallback"),
            "supervisor_pool_rebuilds": _counter_total(
                snapshot, "repro_supervisor_pool_rebuilds_total"),
            "supervisor_tasks_quarantined": _counter_total(
                snapshot, "repro_supervisor_tasks_total",
                outcome="quarantined"),
            "supervisor_journal_replays": _counter_total(
                snapshot, "repro_supervisor_journal_total",
                result="replayed"),
        }

        report = cls(
            version=version,
            argv=list(argv or []),
            stages=stages,
            throughput={
                "zeek_rows_read": rows_read,
                "zeek_rows_written": rows_written,
                "zeek_rows_read_per_s": _rate(rows_read, read_seconds),
                "connections_aggregated": connections,
                "chains_analyzed": chains,
                "chains_per_s": _rate(chains, analyze_seconds),
            },
            cache={
                "structure_cache_lookups": cache_hits + cache_misses,
                "structure_cache_hit_rate": _rate(cache_hits,
                                                  cache_hits + cache_misses),
                "ct_lookups": ct_hits + ct_misses,
                "ct_hit_rate": _rate(ct_hits, ct_hits + ct_misses),
            },
            counters={"interception_verdicts": verdicts},
            resilience=resilience,
        )
        if include_metrics:
            report.metrics = snapshot
        return report

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "argv": self.argv,
            "stages": self.stages,
            "throughput": self.throughput,
            "cache": self.cache,
            "counters": self.counters,
            "resilience": self.resilience,
            "metrics": self.metrics,
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    def summary_lines(self) -> List[str]:
        """Human one-liners for the CLI footer."""
        lines = []
        for name, entry in self.stages.items():
            lines.append(f"stage {name}: {entry['seconds']:.3f}s "
                         f"({entry['calls']} call"
                         f"{'s' if entry['calls'] != 1 else ''})")
        hit_rate = self.cache.get("structure_cache_hit_rate", 0.0)
        lines.append(f"structure cache hit rate: {100.0 * hit_rate:.1f}%")
        for key in ("faults_injected", "retries", "quarantined_records",
                    "breaker_rejections", "supervisor_worker_crashes",
                    "supervisor_worker_hangs", "supervisor_serial_fallbacks",
                    "supervisor_journal_replays"):
            value = self.resilience.get(key, 0.0)
            if value:
                lines.append(f"{key.replace('_', ' ')}: {int(value)}")
        return lines

"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

The paper's analyzer ran once over a year of logs; the ROADMAP wants it to
run continuously over campus-scale traffic.  That requires knowing where a
731k-chain run spends its time and how often each cache hits — so every
subsystem increments metrics here, and :mod:`repro.obs.exporters` renders
the registry for Prometheus scrapes or JSON diffing.

Design rules:

* **Deterministic** — metric and label *values* derive only from the data
  processed; two runs over the same seed produce identical counters.
  Durations live in histograms/spans and are the only thing allowed to
  vary.
* **Fixed buckets** — histograms use a declared bucket list (no dynamic
  resizing), so exports are diffable and mergeable across shards.
* **Thread-safe** — a lock per child; the free-threaded sharded pipeline
  planned by the ROADMAP can increment from worker threads.
* **Cheap when off** — ``registry.enabled = False`` (or the
  :func:`disabled` context manager) turns every increment into one
  attribute check, so the overhead benchmark can measure a clean baseline.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "disabled",
    "DEFAULT_BUCKETS",
]

#: Default latency buckets (seconds): sub-millisecond parses up to
#: multi-minute full-campus runs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class _Child:
    """One (metric, label-values) time series."""

    __slots__ = ("_family", "_lock", "_value")

    def __init__(self, family: "_MetricFamily"):
        self._family = family
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def zero(self) -> None:
        with self._lock:
            self._value = 0.0


class _CounterChild(_Child):
    def inc(self, amount: float = 1.0) -> None:
        if not self._family.registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount


class _GaugeChild(_Child):
    def set(self, value: float) -> None:
        if not self._family.registry.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._family.registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _HistogramChild(_Child):
    __slots__ = ("_counts", "_sum", "_count")

    def __init__(self, family: "_MetricFamily"):
        super().__init__(family)
        self._counts = [0] * len(family.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._family.registry.enabled:
            return
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self._family.buckets):
                if value <= bound:
                    self._counts[i] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> list[int]:
        """Cumulative per-bucket counts, Prometheus style (+Inf implied)."""
        return list(self._counts)

    def zero(self) -> None:
        with self._lock:
            self._counts = [0] * len(self._counts)
            self._sum = 0.0
            self._count = 0


_CHILD_TYPES = {"counter": _CounterChild, "gauge": _GaugeChild,
                "histogram": _HistogramChild}


class _MetricFamily:
    """A named metric plus all its labelled children."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.registry = registry
        self.name = _check_name(name)
        self.help = help
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Child] = {}

    def labels(self, **labelvalues: object) -> _Child:
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}")
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(
                    key, _CHILD_TYPES[self.kind](self))
        return child

    def _default_child(self) -> _Child:
        return self.labels()

    def reset_values(self) -> None:
        """Zero every child in place (handles held by callers stay valid)."""
        with self._lock:
            children = list(self._children.values())
        for child in children:
            child.zero()

    def samples(self) -> list[tuple[Tuple[str, ...], _Child]]:
        """(label values, child) pairs in deterministic (sorted) order."""
        with self._lock:
            return sorted(self._children.items())


class Counter(_MetricFamily):
    """Monotonically increasing count (events, rows, cache hits)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labelvalues: object) -> None:
        self.labels(**labelvalues).inc(amount)

    def value(self, **labelvalues: object) -> float:
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        return child.value if child is not None else 0.0


class Gauge(_MetricFamily):
    """A value that can go up and down (sizes, rates, last-run stats)."""

    kind = "gauge"

    def set(self, value: float, **labelvalues: object) -> None:
        self.labels(**labelvalues).set(value)

    def inc(self, amount: float = 1.0, **labelvalues: object) -> None:
        self.labels(**labelvalues).inc(amount)

    def value(self, **labelvalues: object) -> float:
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        return child.value if child is not None else 0.0


class Histogram(_MetricFamily):
    """Fixed-bucket distribution (durations, chain lengths)."""

    kind = "histogram"

    def observe(self, value: float, **labelvalues: object) -> None:
        self.labels(**labelvalues).observe(value)


class MetricsRegistry:
    """Get-or-create home for every metric family in the process.

    Families are identified by name; asking twice with the same name
    returns the same family (and raises if the kind or labels disagree,
    which would otherwise silently fork a metric).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _MetricFamily] = {}
        #: When False every inc/set/observe is a no-op.
        self.enabled = True

    def _get_or_create(self, cls: type, name: str, help: str,
                       labelnames: Sequence[str],
                       buckets: Sequence[float] = DEFAULT_BUCKETS) -> _MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(self, name, help, labelnames, buckets)
                self._families[name] = family
                return family
        if type(family) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}")
        if family.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{family.labelnames}, asked for {tuple(labelnames)}")
        return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets)  # type: ignore[return-value]

    def families(self) -> list[_MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get_family(self, name: str) -> Optional[_MetricFamily]:
        """The family registered under ``name``, or None.

        Lookup only — never creates.  The telemetry sink uses this to
        replay worker deltas into whatever families the driver already
        declared, without guessing kinds or label sets.
        """
        with self._lock:
            return self._families.get(name)

    def reset(self) -> None:
        """Zero every time series (families and label children stay).

        Values are zeroed in place rather than dropped so module-level
        child handles (see :mod:`repro.obs.instruments`) stay live.  Run
        this at the start of a CLI invocation so the export reflects
        exactly one run — the acceptance criterion that two same-seed runs
        emit identical names/labels/values depends on it.
        """
        for family in self.families():
            family.reset_values()

    def snapshot(self) -> dict:
        """Deterministic plain-dict view of every time series."""
        out: dict = {}
        for family in self.families():
            entry: dict = {"kind": family.kind, "help": family.help,
                           "labelnames": list(family.labelnames),
                           "samples": []}
            for labelvalues, child in family.samples():
                labels = dict(zip(family.labelnames, labelvalues))
                if family.kind == "histogram":
                    assert isinstance(child, _HistogramChild)
                    entry["samples"].append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": dict(zip(
                            (str(b) for b in family.buckets),
                            child.bucket_counts())),
                    })
                else:
                    entry["samples"].append(
                        {"labels": labels, "value": child.value})
            out[family.name] = entry
        return out


#: The process-wide default registry every instrumented module uses.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _DEFAULT


@contextmanager
def disabled(registry: Optional[MetricsRegistry] = None) -> Iterator[None]:
    """Temporarily turn off all metric recording (baseline benchmarking)."""
    registry = registry or _DEFAULT
    previous = registry.enabled
    registry.enabled = False
    try:
        yield
    finally:
        registry.enabled = previous

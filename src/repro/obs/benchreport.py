"""Bench trajectory reporting: ``repro-experiments bench-report``.

The perf CI job writes ``BENCH_ingest.json`` / ``BENCH_analyze.json`` /
``BENCH_generate.json`` / ``BENCH_e2e.json`` and gates a handful of
floors with inline asserts.  Those gates answer "did this run pass?"
but nothing answered "where is this metric *heading*?" — a 5% loss per
PR sails under any single floor until it doesn't.  This module loads
every available copy of each bench file (the fresh repo-root ones plus
any ``--history`` directories of downloaded CI artifacts), orders runs
per bench, and prints a per-metric trajectory table: current value,
delta vs the previous run, the floor, and the margin above it.  With
``--check`` it exits non-zero when a floor is violated or a gated
metric regressed past ``--tolerance`` — the same verdicts as the
existing gates, now with the history that explains them.

Also home to :func:`host_metadata`, the shared helper every bench
writer embeds so trajectory comparisons across runners are sound (a
30k rows/s "regression" that is actually a 1-CPU runner is visible as
such).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.report import render_table

__all__ = ["Gate", "BenchRun", "DEFAULT_GATES", "host_metadata",
           "flatten_numbers", "load_history", "build_rows", "main"]

#: Bench file stems the reporter knows about, in pipeline order.
BENCH_KINDS = ("BENCH_ingest", "BENCH_analyze", "BENCH_generate", "BENCH_e2e",
               "BENCH_resilience")


def host_metadata(*, requested_jobs: Optional[int] = None,
                  effective_jobs: Optional[int] = None) -> dict:
    """Uniform host block for every ``BENCH_*.json`` writer.

    Records what the numbers were measured *on*, so a trajectory across
    CI runners (or a laptop vs CI) compares like with like.  Jobs
    counts are included when the bench exercised a worker pool —
    ``requested`` vs ``effective`` exposes the CPU clamp.
    """
    meta: dict = {
        "cpu_count": os.cpu_count(),
        "python_version": platform.python_version(),
        "platform": platform.platform(),
    }
    if requested_jobs is not None:
        meta["requested_jobs"] = requested_jobs
    if effective_jobs is not None:
        meta["effective_jobs"] = effective_jobs
    return meta


@dataclass(frozen=True, slots=True)
class Gate:
    """One bound on ``metric`` (dotted path) in ``bench``.

    A ``floor`` gate fails when the value drops below it (throughputs,
    speedups); a ``ceiling`` gate fails when the value rises above it
    (wall-clock budgets).  Exactly one of the two is set.  These mirror
    the enforcement already spread across the benchmark asserts and the
    CI inline gates — bench-report must reproduce those verdicts, not
    invent new ones.
    """

    bench: str
    metric: str
    floor: Optional[float] = None
    ceiling: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.floor is None) == (self.ceiling is None):
            raise ValueError("a Gate needs exactly one of floor/ceiling")


#: The floors (and wall-clock ceilings) the repo already enforces, one place.
DEFAULT_GATES: Tuple[Gate, ...] = (
    Gate("BENCH_ingest", "read.compiled_rows_per_second", 60_000),
    Gate("BENCH_ingest", "read.compiled_over_legacy", 1.2),
    # Columnar design target: >=500k rows/s single core, ~4x the
    # compiled codec (PERFORMANCE.md records the quiet-box numbers).
    # Like the compiled floors above, the gates sit at roughly half of
    # typical so load swings on shared 1-CPU runners cannot flake CI.
    Gate("BENCH_ingest", "read.columnar_rows_per_second", 250_000),
    Gate("BENCH_ingest", "read.columnar_over_compiled", 2.0),
    Gate("BENCH_ingest", "engine.1.speedup_vs_serial", 1.1),
    Gate("BENCH_analyze", "engine.1.chains_per_second", 5_000),
    Gate("BENCH_analyze", "artifact.warm_speedup", 5),
    Gate("BENCH_generate", "write.compiled_over_legacy", 1.5),
    Gate("BENCH_generate", "engine.1.rows_written_per_second", 5_000),
    Gate("BENCH_generate", "der.part_memo_speedup", 1.25),
    # The whole pipeline (generate + ingest + analyze, jobs=1) must fit
    # a wall-clock budget at the bench scale: a ceiling, not a floor.
    Gate("BENCH_e2e", "pipeline.1.total_seconds", ceiling=10.0),
    # Supervised dispatch may cost at most 5% over a bare inline loop
    # (the ratio is baseline/supervised, so the floor is 0.95).
    Gate("BENCH_resilience", "supervisor.throughput_ratio", 0.95),
)

#: Ungated metrics still worth a trajectory row per bench kind.
TRACKED_METRICS: Dict[str, Tuple[str, ...]] = {
    "BENCH_ingest": ("serial_legacy.rows_per_second",
                     "engine.1.rows_per_second"),
    "BENCH_analyze": ("artifact.cold_seconds", "artifact.warm_seconds"),
    "BENCH_generate": ("write.compiled_rows_per_second",),
    "BENCH_e2e": ("pipeline.1.total_seconds", "pipeline.1.generate_seconds",
                  "pipeline.1.ingest_seconds", "pipeline.1.analyze_seconds"),
    "BENCH_resilience": ("supervisor.baseline_seconds",
                         "supervisor.supervised_seconds"),
}


@dataclass(slots=True)
class BenchRun:
    """One parsed ``BENCH_*.json`` file."""

    kind: str
    path: str
    mtime: float
    numbers: Dict[str, float] = field(default_factory=dict)


def flatten_numbers(data: object, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested bench dict as ``a.b.c`` paths."""
    out: Dict[str, float] = {}
    if isinstance(data, dict):
        for key, value in data.items():
            out.update(flatten_numbers(value,
                                       f"{prefix}{key}."))
    elif isinstance(data, (int, float)) and not isinstance(data, bool):
        out[prefix[:-1]] = float(data)
    return out


def _kind_of(path: str) -> Optional[str]:
    name = os.path.basename(path)
    for kind in BENCH_KINDS:
        if name == f"{kind}.json" or name.startswith(f"{kind}."):
            return kind
    return None


def load_history(directories: Sequence[str]) -> Dict[str, List[BenchRun]]:
    """Per bench kind, every parseable run found, oldest first.

    Later directories win ties only through mtime ordering; unreadable
    or non-JSON files are skipped with a note on stderr rather than
    failing the report (CI artifact folders collect clutter).
    """
    runs: Dict[str, List[BenchRun]] = {}
    seen: set = set()
    for directory in directories:
        for path in sorted(glob.glob(os.path.join(directory, "**",
                                                  "BENCH_*.json"),
                                     recursive=True)):
            kind = _kind_of(path)
            if kind is None:
                continue
            real = os.path.realpath(path)
            if real in seen:  # overlapping --dir arguments
                continue
            seen.add(real)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
            except (OSError, ValueError) as exc:
                print(f"bench-report: skipping {path}: {exc}",
                      file=sys.stderr)
                continue
            runs.setdefault(kind, []).append(BenchRun(
                kind=kind, path=path, mtime=os.path.getmtime(path),
                numbers=flatten_numbers(data)))
    for kind in runs:
        runs[kind].sort(key=lambda run: (run.mtime, run.path))
    return runs


@dataclass(slots=True)
class ReportRow:
    kind: str
    metric: str
    current: float
    previous: Optional[float]
    floor: Optional[float]
    tolerance: float
    ceiling: Optional[float] = None

    @property
    def delta_pct(self) -> Optional[float]:
        if self.previous is None or self.previous == 0:
            return None
        return 100.0 * (self.current - self.previous) / self.previous

    @property
    def margin_pct(self) -> Optional[float]:
        """Distance from the bound, positive = healthy, either direction."""
        if self.floor is not None and self.floor != 0:
            return 100.0 * (self.current - self.floor) / self.floor
        if self.ceiling is not None and self.ceiling != 0:
            return 100.0 * (self.ceiling - self.current) / self.ceiling
        return None

    @property
    def bound(self) -> Optional[float]:
        return self.floor if self.floor is not None else self.ceiling

    @property
    def status(self) -> str:
        if self.floor is not None and self.current < self.floor:
            return "FLOOR"
        if self.ceiling is not None and self.current > self.ceiling:
            return "CEILING"
        delta = self.delta_pct
        if delta is not None:
            # Regression direction flips for ceiling (lower-is-better)
            # metrics: growth past tolerance is the regression.
            if self.floor is not None and delta < -self.tolerance:
                return "REGRESSED"
            if self.ceiling is not None and delta > self.tolerance:
                return "REGRESSED"
        return "ok"

    @property
    def failed(self) -> bool:
        return self.status != "ok"


def build_rows(runs: Dict[str, List[BenchRun]],
               gates: Sequence[Gate] = DEFAULT_GATES, *,
               tolerance: float = 10.0,
               include_all: bool = False) -> List[ReportRow]:
    """Trajectory rows for every gated (and tracked) metric present."""
    floors = {(gate.bench, gate.metric): gate.floor for gate in gates}
    ceilings = {(gate.bench, gate.metric): gate.ceiling for gate in gates}
    rows: List[ReportRow] = []
    for kind in BENCH_KINDS:
        history = runs.get(kind, [])
        if not history:
            continue
        current = history[-1]
        previous = history[-2] if len(history) > 1 else None
        metrics = [gate.metric for gate in gates if gate.bench == kind]
        metrics += [m for m in TRACKED_METRICS.get(kind, ())
                    if m not in metrics]
        if include_all:
            metrics += [m for m in sorted(current.numbers)
                        if m not in metrics]
        for metric in metrics:
            if metric not in current.numbers:
                continue
            rows.append(ReportRow(
                kind=kind, metric=metric,
                current=current.numbers[metric],
                previous=(previous.numbers.get(metric)
                          if previous is not None else None),
                floor=floors.get((kind, metric)),
                ceiling=ceilings.get((kind, metric)),
                tolerance=tolerance))
    return rows


def _fmt(value: Optional[float], suffix: str = "") -> str:
    if value is None:
        return "-"
    if abs(value) >= 1000:
        return f"{value:,.0f}{suffix}"
    return f"{value:,.2f}{suffix}"


def render_report(rows: Sequence[ReportRow],
                  runs: Dict[str, List[BenchRun]]) -> str:
    """The human trajectory table plus a per-bench provenance footer."""
    table = render_table(
        ["bench", "metric", "current", "vs prev", "bound", "margin",
         "status"],
        [[row.kind.removeprefix("BENCH_"), row.metric, _fmt(row.current),
          _fmt(row.delta_pct, "%"),
          (_fmt(row.ceiling) + " max" if row.ceiling is not None
           else _fmt(row.floor)),
          _fmt(row.margin_pct, "%"), row.status]
         for row in rows],
        title="Benchmark trajectory")
    lines = [table, ""]
    for kind in BENCH_KINDS:
        history = runs.get(kind, [])
        if history:
            lines.append(f"{kind}: {len(history)} run"
                         f"{'s' if len(history) != 1 else ''}, "
                         f"latest {history[-1].path}")
    return "\n".join(lines)


def build_argparser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments bench-report",
        description="Per-metric trajectory over BENCH_*.json history, "
                    "with floor margins and regression gating")
    parser.add_argument("--dir", action="append", dest="directories",
                        metavar="DIR",
                        help="directory to scan (recursively) for "
                             "BENCH_*.json files; repeatable "
                             "(default: current directory)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when a floor is violated or a gated "
                             "metric regressed past --tolerance")
    parser.add_argument("--tolerance", type=float, default=10.0,
                        metavar="PCT",
                        help="allowed drop vs the previous run for gated "
                             "metrics, in percent (default 10)")
    parser.add_argument("--all", action="store_true", dest="include_all",
                        help="include every numeric metric, not just the "
                             "gated and tracked ones")
    parser.add_argument("--json", metavar="PATH", dest="json_out",
                        help="also write the rows as JSON to PATH")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_argparser().parse_args(argv)
    directories = args.directories or [os.getcwd()]
    runs = load_history(directories)
    if not runs:
        print("bench-report: no BENCH_*.json files under "
              + ", ".join(directories), file=sys.stderr)
        return 2
    rows = build_rows(runs, tolerance=args.tolerance,
                      include_all=args.include_all)
    print(render_report(rows, runs))
    if args.json_out:
        payload = [{"bench": row.kind, "metric": row.metric,
                    "current": row.current, "previous": row.previous,
                    "delta_pct": row.delta_pct, "floor": row.floor,
                    "ceiling": row.ceiling,
                    "margin_pct": row.margin_pct, "status": row.status}
                   for row in rows]
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    failures = [row for row in rows if row.failed]
    if failures:
        print()
        for row in failures:
            bound_kind = "ceiling" if row.ceiling is not None else "floor"
            print(f"FAIL {row.kind} {row.metric}: "
                  f"{_fmt(row.current)} ({bound_kind} {_fmt(row.bound)}, "
                  f"vs prev {_fmt(row.delta_pct, '%')}) [{row.status}]")
        if args.check:
            return 1
    return 0

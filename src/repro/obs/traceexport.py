"""Chrome-trace / Perfetto JSON export of the merged span forest.

One ``--trace-out trace.json`` run produces a file that
``chrome://tracing`` or https://ui.perfetto.dev opens directly: the
driver's spans on one track, and every worker's captured spans
(:mod:`repro.obs.sink`) on a track per (engine kind, unit), grouped
under the worker's real pid.  A ``--jobs 4`` ingest therefore renders
as four worker processes whose ``ingest_shard`` / ``zeek_read`` phases
visibly overlap — the profiling view the ROADMAP's columnar-hot-core
work needs.

Format notes (Trace Event Format, JSON object flavour):

* ``"X"`` *complete* events carry ``ts`` (µs since the trace origin)
  and ``dur`` (µs); nesting is recovered by the viewer from stacking
  on the same ``pid``/``tid``.
* ``"M"`` *metadata* events name processes and threads.
* The trace origin is the driver tracer's reset anchor; worker spans
  are re-based onto it via the capture's wall-clock ``started_epoch``
  (cross-process alignment is wall-clock-accurate, which is enough for
  a human timeline; within one process offsets are perf-counter exact).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Set, Tuple

from .sink import TelemetrySink, get_sink
from .tracing import Tracer, get_tracer

__all__ = ["build_trace", "validate_trace", "write_trace", "distinct_pids"]

_MICRO = 1e6


def build_trace(*, tracer: Optional[Tracer] = None,
                sink: Optional[TelemetrySink] = None) -> dict:
    """The merged driver + worker span forest as a Chrome-trace dict."""
    tracer = tracer or get_tracer()
    sink = sink or get_sink()
    driver_pid = os.getpid()
    events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": driver_pid, "tid": 0,
        "args": {"name": f"driver (pid {driver_pid})"},
    }, {
        "name": "thread_name", "ph": "M", "pid": driver_pid, "tid": 0,
        "args": {"name": "driver"},
    }]

    with tracer._lock:
        driver_records = list(tracer.finished)
    for record in driver_records:
        events.append({
            "name": record.name, "cat": "driver", "ph": "X",
            "ts": (record.start_s - tracer.anchor_perf) * _MICRO,
            "dur": record.duration_s * _MICRO,
            "pid": driver_pid, "tid": 0,
            "args": {"path": record.path, **record.attrs},
        })

    named_pids: Set[int] = {driver_pid}
    tids: Dict[Tuple[int, str, int], int] = {}
    next_tid: Dict[int, int] = {}
    for telemetry, span in sink.spans():
        if telemetry.pid not in named_pids:
            named_pids.add(telemetry.pid)
            events.append({
                "name": "process_name", "ph": "M", "pid": telemetry.pid,
                "tid": 0, "args": {"name": f"worker (pid {telemetry.pid})"},
            })
        track = (telemetry.pid, telemetry.kind, telemetry.unit)
        tid = tids.get(track)
        if tid is None:
            # Driver tid 0 is reserved; worker tracks count up from 1
            # per pid, in attach order — deterministic because attaches
            # happen in unit order inside each engine's reduce.
            tid = tids[track] = next_tid.get(telemetry.pid, 1)
            next_tid[telemetry.pid] = tid + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": telemetry.pid,
                "tid": tid,
                "args": {"name": f"{telemetry.kind}-{telemetry.unit:02d}"},
            })
        base_s = max(0.0, telemetry.started_epoch - tracer.anchor_epoch)
        events.append({
            "name": span.name, "cat": telemetry.kind, "ph": "X",
            "ts": (base_s + max(0.0, span.offset_s)) * _MICRO,
            "dur": span.duration_s * _MICRO,
            "pid": telemetry.pid, "tid": tid,
            "args": {"path": span.path, "unit": telemetry.unit,
                     **span.attrs},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_trace(trace: object) -> None:
    """Raise :class:`ValueError` unless ``trace`` is viewer-loadable.

    Checks the structural contract the Perfetto / ``chrome://tracing``
    importers rely on; the CI schema smoke test runs this so a
    malformed export fails the build instead of failing silently in
    the viewer.
    """
    if not isinstance(trace, dict):
        raise ValueError(f"trace must be a JSON object, got {type(trace)}")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace.traceEvents must be a list")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            raise ValueError(f"{where}: unsupported phase {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: missing event name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: {key} must be an integer")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)):
                    raise ValueError(f"{where}: {key} must be a number")
            if event["dur"] < 0:
                raise ValueError(f"{where}: negative duration")
        else:
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                raise ValueError(f"{where}: metadata event without "
                                 f"args.name")


def distinct_pids(trace: dict, *, category: Optional[str] = None) -> Set[int]:
    """Pids owning at least one span ("X") event, optionally per category."""
    return {event["pid"] for event in trace.get("traceEvents", [])
            if event.get("ph") == "X"
            and (category is None or event.get("cat") == category)}


def write_trace(path: str, *, tracer: Optional[Tracer] = None,
                sink: Optional[TelemetrySink] = None) -> dict:
    """Build, validate, and write the trace; returns the written dict."""
    trace = build_trace(tracer=tracer, sink=sink)
    validate_trace(trace)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1)
        handle.write("\n")
    from . import instruments
    instruments.TRACE_EXPORT_EVENTS.set(len(trace["traceEvents"]))
    return trace

"""Lightweight stage tracing: nested wall-clock spans.

``with trace_span("categorize", chains=n): ...`` records how long each
pipeline stage ran and in what nesting order, without touching analysis
results — spans use :func:`time.perf_counter`, never wall-clock dates, and
nothing from a span flows back into the data path, so results stay
deterministic while timings are free to vary run to run.

Spans aggregate into the default metrics registry
(``repro_span_duration_seconds{span=...}``) and into a per-process
:class:`Tracer` whose finished-span list powers the
:class:`~repro.obs.exporters.RunReport` stage table.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .metrics import get_registry

__all__ = ["SpanRecord", "Tracer", "get_tracer", "trace_span"]


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    #: Dotted ancestry, e.g. ``analyze_chains.categorize``.
    path: str
    duration_s: float
    depth: int
    #: Deterministic caller-supplied attributes (counts, sizes — no times).
    attrs: Dict[str, object] = field(default_factory=dict)
    #: ``time.perf_counter()`` when the span opened.  Subtract the owning
    #: tracer's :attr:`Tracer.anchor_perf` for a timeline offset — this is
    #: what the Chrome-trace exporter plots.  Like ``duration_s`` it is
    #: timing data, free to vary run to run.
    start_s: float = 0.0


class Tracer:
    """Collects finished spans; the stack of open spans is per-thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self.finished: List[SpanRecord] = []
        #: When False, span() is a near-no-op (still yields).
        self.enabled = True
        #: Timeline anchors, refreshed by :meth:`reset`: ``anchor_perf``
        #: pairs with :attr:`SpanRecord.start_s` offsets, ``anchor_epoch``
        #: (``time.time()``) aligns this process's timeline with worker
        #: telemetry captured in other processes.
        self.anchor_perf = time.perf_counter()
        self.anchor_epoch = time.time()

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        if not self.enabled:
            yield
            return
        stack = self._stack()
        path = ".".join(stack + [name])
        stack.append(name)
        started = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - started
            stack.pop()
            record = SpanRecord(name=name, path=path, duration_s=duration,
                                depth=len(stack), attrs=dict(attrs),
                                start_s=started)
            with self._lock:
                self.finished.append(record)
            _SPAN_SECONDS().observe(duration, span=name)

    def reset(self) -> None:
        with self._lock:
            self.finished.clear()
        self.anchor_perf = time.perf_counter()
        self.anchor_epoch = time.time()

    def mark(self) -> int:
        """Current finished-span count — pair with :meth:`drain`."""
        with self._lock:
            return len(self.finished)

    def drain(self, start_index: int) -> List[SpanRecord]:
        """Remove and return every finished span from ``start_index`` on.

        The worker-telemetry capture uses this to divert the spans a
        captured body recorded into its :class:`WorkerTelemetry` instead
        of leaving them in this tracer — inline (jobs=1) engine runs
        would otherwise report each worker span twice, once directly and
        once via the sink.
        """
        with self._lock:
            drained = self.finished[start_index:]
            del self.finished[start_index:]
        return drained

    def stage_timings(self) -> Dict[str, Dict[str, float]]:
        """Per span name: total seconds and invocation count (sorted)."""
        totals: Dict[str, Dict[str, float]] = {}
        with self._lock:
            records = list(self.finished)
        for record in records:
            entry = totals.setdefault(record.name,
                                      {"seconds": 0.0, "calls": 0})
            entry["seconds"] += record.duration_s
            entry["calls"] += 1
        return {name: totals[name] for name in sorted(totals)}

    def span_tree(self) -> List[Dict[str, object]]:
        """Finished spans in completion order, with path/depth/attrs."""
        with self._lock:
            return [
                {"name": r.name, "path": r.path, "depth": r.depth,
                 "duration_s": r.duration_s, "attrs": dict(r.attrs)}
                for r in self.finished
            ]


def _SPAN_SECONDS():
    return get_registry().histogram(
        "repro_span_duration_seconds",
        "Wall-clock duration of traced pipeline spans.",
        labelnames=("span",),
    )


_DEFAULT = Tracer()


def get_tracer() -> Tracer:
    return _DEFAULT


def trace_span(name: str, **attrs: object):
    """Context manager: time a stage on the default tracer.

    Attribute values must be deterministic facts about the data (counts,
    ids) — never timestamps — so traces stay diffable across runs.
    """
    return _DEFAULT.span(name, **attrs)

"""Live observability endpoint: ``/metrics``, ``/healthz``, ``/runreport``.

The ROADMAP's ``repro serve`` streaming daemon needs the registry
visible *during* a run, not just snapshotted after it.
:class:`MetricsServer` is the stdlib-only building block: a
``ThreadingHTTPServer`` on a daemon thread serving

``/metrics``
    Prometheus text exposition (format 0.0.4) of the default registry
    — point a real Prometheus scrape config at it.
``/healthz``
    ``{"status": "ok"}`` liveness JSON.
``/runreport``
    The :class:`~repro.obs.exporters.RunReport` of the run so far
    (without the full metrics dump), so an operator can watch stage
    timings accumulate mid-run.

``port=0`` binds an ephemeral port (the ``port`` attribute reports the
real one — tests rely on this).  Request counts land in
``repro_metrics_server_requests_total``; that family is scrape-driven
and therefore exempt from the determinism rule (documented in
docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .exporters import RunReport, render_prometheus
from .logging import get_logger, kv

__all__ = ["MetricsServer"]

log = get_logger(__name__)

_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-metrics"

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        from . import instruments

        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            instruments.METRICS_SERVER_REQUESTS.inc(endpoint="metrics")
            self._reply(200, _PROM_CONTENT_TYPE, render_prometheus())
        elif path == "/healthz":
            instruments.METRICS_SERVER_REQUESTS.inc(endpoint="healthz")
            self._reply(200, "application/json",
                        json.dumps({"status": "ok"}) + "\n")
        elif path == "/runreport":
            instruments.METRICS_SERVER_REQUESTS.inc(endpoint="runreport")
            report = RunReport.collect(include_metrics=False,
                                       version=self.server.repro_version)  # type: ignore[attr-defined]
            self._reply(200, "application/json", report.to_json() + "\n")
        else:
            instruments.METRICS_SERVER_REQUESTS.inc(endpoint="other")
            self._reply(404, "application/json",
                        json.dumps({"error": "not found",
                                    "endpoints": ["/metrics", "/healthz",
                                                  "/runreport"]}) + "\n")

    def _reply(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        # Route access logs through structured logging at debug level
        # instead of stderr spam.
        log.debug("metrics server request",
                  extra=kv(detail=format % args))


class MetricsServer:
    """Serve the live registry over HTTP from a daemon thread.

    Usable either as a context manager around a run or via explicit
    :meth:`start` / :meth:`stop`.  The server thread only *reads* the
    registry (snapshots are taken under the family locks), so scrapes
    never perturb pipeline counters beyond its own request counter.
    """

    def __init__(self, port: int = 0, *, host: str = "127.0.0.1",
                 version: str = ""):
        self._requested_port = port
        self._host = host
        self._version = version
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> int:
        if self._httpd is not None:
            return self.port
        httpd = ThreadingHTTPServer((self._host, self._requested_port),
                                    _Handler)
        httpd.daemon_threads = True
        httpd.repro_version = self._version  # type: ignore[attr-defined]
        thread = threading.Thread(target=httpd.serve_forever,
                                  name="repro-metrics-server", daemon=True)
        thread.start()
        self._httpd = httpd
        self._thread = thread
        log.info("metrics server started", extra=kv(url=self.url))
        return self.port

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        log.info("metrics server stopped", extra=kv(url=self.url))
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

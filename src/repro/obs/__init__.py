"""repro.obs — pipeline observability.

Structured logging, stage tracing, and a process-local metrics registry
with Prometheus/JSON export.  Six modules:

``metrics``
    :class:`MetricsRegistry` with Counter/Gauge/Histogram primitives
    (labelled, thread-safe, deterministic fixed buckets).
``instruments``
    The catalogue of every metric the pipeline emits.
``tracing``
    ``with trace_span("categorize", chains=n):`` nested wall-clock spans.
``logging``
    ``get_logger(name)`` structured key=value stdlib logging with a
    ``REPRO_LOG_LEVEL`` override.
``exporters``
    Prometheus text exposition, JSON snapshots, and the diffable
    :class:`RunReport`.
"""

from __future__ import annotations

from .exporters import (
    RunReport,
    render_json,
    render_prometheus,
    registry_to_dict,
    write_metrics_file,
)
from .logging import configure_logging, get_logger, kv
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disabled,
    get_registry,
)
from .tracing import SpanRecord, Tracer, get_tracer, trace_span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "disabled",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "trace_span",
    "get_logger",
    "configure_logging",
    "kv",
    "RunReport",
    "render_prometheus",
    "render_json",
    "registry_to_dict",
    "write_metrics_file",
]

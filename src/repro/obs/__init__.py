"""repro.obs — pipeline observability.

Structured logging, stage tracing, and a process-local metrics registry
with Prometheus/JSON export.  Six modules:

``metrics``
    :class:`MetricsRegistry` with Counter/Gauge/Histogram primitives
    (labelled, thread-safe, deterministic fixed buckets).
``instruments``
    The catalogue of every metric the pipeline emits.
``tracing``
    ``with trace_span("categorize", chains=n):`` nested wall-clock spans.
``logging``
    ``get_logger(name)`` structured key=value stdlib logging with a
    ``REPRO_LOG_LEVEL`` override.
``exporters``
    Prometheus text exposition, JSON snapshots, and the diffable
    :class:`RunReport`.
``sink``
    Cross-process telemetry: :func:`capture_telemetry` in workers,
    :class:`TelemetrySink` merging in the driver.
``traceexport``
    The merged span forest rendered as Chrome-trace / Perfetto JSON.
``server``
    Stdlib-only live ``/metrics`` + ``/healthz`` + ``/runreport`` HTTP
    endpoint for long runs.
``benchreport``
    ``BENCH_*.json`` trajectory tables and regression gating for the
    ``repro-experiments bench-report`` subcommand.
"""

from __future__ import annotations

from .exporters import (
    RunReport,
    render_json,
    render_prometheus,
    registry_to_dict,
    write_metrics_file,
)
from .logging import configure_logging, current_log_level, get_logger, kv
from .sink import (
    TelemetrySink,
    WorkerSpan,
    WorkerTelemetry,
    capture_telemetry,
    get_sink,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disabled,
    get_registry,
)
from .tracing import SpanRecord, Tracer, get_tracer, trace_span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "disabled",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "trace_span",
    "get_logger",
    "configure_logging",
    "current_log_level",
    "kv",
    "TelemetrySink",
    "WorkerSpan",
    "WorkerTelemetry",
    "capture_telemetry",
    "get_sink",
    "RunReport",
    "render_prometheus",
    "render_json",
    "registry_to_dict",
    "write_metrics_file",
]

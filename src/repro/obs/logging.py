"""Structured (key=value) logging for the pipeline.

One call — :func:`get_logger` — gives any module a namespaced stdlib
logger whose records render as single-line ``key=value`` pairs, the format
every log shipper (Loki, Splunk, plain grep) ingests without config.  The
root ``repro`` logger is configured exactly once; the default level is
``WARNING`` so library use stays silent, and the ``REPRO_LOG_LEVEL``
environment variable (or ``certchain-analyze --log-level``) overrides it.

Usage::

    from repro.obs.logging import get_logger
    log = get_logger(__name__)
    log.info("stage done", extra=kv(stage="categorize", chains=1234))
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Dict, Optional, TextIO

__all__ = ["get_logger", "configure_logging", "current_log_level", "kv",
           "REPRO_LOG_LEVEL_VAR"]

REPRO_LOG_LEVEL_VAR = "REPRO_LOG_LEVEL"
_ROOT_NAME = "repro"
_KV_ATTR = "repro_kv"
_configured = False


def kv(**pairs: object) -> Dict[str, Dict[str, object]]:
    """Build the ``extra=`` dict that appends key=value pairs to a record."""
    return {_KV_ATTR: pairs}


class KeyValueFormatter(logging.Formatter):
    """``level=info logger=repro.core.pipeline msg="stage done" stage=...``"""

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        parts = [
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
            f'msg="{message}"' if " " in message else f"msg={message}",
        ]
        extra = getattr(record, _KV_ATTR, None)
        if extra:
            for key in extra:
                value = extra[key]
                text = str(value)
                parts.append(f'{key}="{text}"' if " " in text
                             else f"{key}={text}")
        if record.exc_info:
            parts.append(f'exc="{self.formatException(record.exc_info)}"')
        return " ".join(parts)


def _resolve_level(level: Optional[str]) -> int:
    name = (level or os.environ.get(REPRO_LOG_LEVEL_VAR) or "warning").upper()
    resolved = logging.getLevelName(name)
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {name!r}")
    return resolved


def configure_logging(level: Optional[str] = None,
                      stream: Optional[TextIO] = None,
                      force: bool = False) -> logging.Logger:
    """Configure the ``repro`` root logger (idempotent unless ``force``)."""
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    if _configured and not force:
        if level is not None:
            root.setLevel(_resolve_level(level))
        return root
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(KeyValueFormatter())
    root.addHandler(handler)
    root.setLevel(_resolve_level(level))
    root.propagate = False
    _configured = True
    return root


def current_log_level() -> str:
    """The ``repro`` root's effective level name, e.g. ``"WARNING"``.

    This is what pool initializers forward to worker processes: under
    the spawn start method a worker re-reads the environment but never
    sees a ``--log-level`` flag, so the driver ships its *resolved*
    level instead.
    """
    root = logging.getLogger(_ROOT_NAME)
    if not _configured:
        configure_logging()
    return logging.getLevelName(root.getEffectiveLevel())


def get_logger(name: str) -> logging.Logger:
    """Namespaced logger under ``repro``; configures the root on first use."""
    configure_logging()
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")

"""The pipeline's metric catalogue — every instrument declared in one place.

Instrumented modules import their handles from here instead of repeating
name/help/label strings, so the metric namespace stays consistent (and
``docs/OBSERVABILITY.md`` documents exactly this file).  All handles live
on the default registry; ``get_registry().reset()`` zeroes them between
runs without invalidating these references.

Naming follows Prometheus conventions: ``repro_<subsystem>_<what>_<unit>``
with ``_total`` on counters and base-unit seconds on histograms.
"""

from __future__ import annotations

from .metrics import get_registry

_R = get_registry()

# -- core pipeline ------------------------------------------------------------

PIPELINE_RUNS = _R.counter(
    "repro_pipeline_runs_total",
    "Full Figure-2 analyzer runs completed.")
PIPELINE_CHAINS = _R.counter(
    "repro_pipeline_chains_total",
    "Distinct observed chains entering the analyzer.")
PIPELINE_CATEGORY_CHAINS = _R.counter(
    "repro_pipeline_category_chains_total",
    "Chains per assigned category after stage 2.",
    labelnames=("category",))
STRUCTURE_CACHE_LOOKUPS = _R.counter(
    "repro_structure_cache_lookups_total",
    "Chain-structure cache lookups by result.",
    labelnames=("result",))

# -- chain aggregation --------------------------------------------------------

CHAIN_CONNECTIONS = _R.counter(
    "repro_chain_connections_total",
    "Joined connections folded into chain usage, by outcome.",
    labelnames=("result",))
CHAIN_DISTINCT = _R.counter(
    "repro_chain_distinct_total",
    "New distinct delivered chains discovered during aggregation.")

# -- zeek ingest --------------------------------------------------------------

ZEEK_ROWS = _R.counter(
    "repro_zeek_rows_total",
    "Zeek ASCII log rows processed, by direction and log path.",
    labelnames=("direction", "path"))
ZEEK_JOIN_CONNECTIONS = _R.counter(
    "repro_zeek_join_connections_total",
    "SSL rows joined against the X509 log.")
ZEEK_JOIN_MISSING_CERTS = _R.counter(
    "repro_zeek_join_missing_certs_total",
    "Chain fingerprints referenced by SSL rows but absent from x509.log.")

# -- parse caches -------------------------------------------------------------

DN_PARSE_CACHE = _R.counter(
    "repro_dn_parse_cache_lookups_total",
    "RFC 4514 distinguished-name parse cache lookups, by result.",
    labelnames=("result",))
CERT_RECONSTRUCT_CACHE = _R.counter(
    "repro_cert_reconstruct_cache_lookups_total",
    "Certificate reconstruction (X509 row -> Certificate) cache lookups, "
    "by result.",
    labelnames=("result",))
DER_ENCODE_CACHE = _R.counter(
    "repro_der_encode_cache_lookups_total",
    "Certificate DER serialization memo lookups, by result.",
    labelnames=("result",))
DER_PART_CACHE = _R.counter(
    "repro_der_part_cache_lookups_total",
    "Shared DER component memo lookups (encoded names and extension "
    "blocks reused across certificates), by part and result.",
    labelnames=("part", "result"))

# -- columnar ingest ----------------------------------------------------------

COLUMNAR_ROWS = _R.counter(
    "repro_columnar_rows_total",
    "Rows decoded by the columnar reader, by decode mode (vectorized "
    "struct-of-arrays runs vs the per-line parity path).",
    labelnames=("mode",))
COLUMNAR_RUNS = _R.counter(
    "repro_columnar_runs_total",
    "Contiguous data-line runs the columnar reader processed, by outcome "
    "(vectorized, or fallback to the per-line path for exact quarantine "
    "locations).",
    labelnames=("outcome",))
COLUMNAR_INTERN_LOOKUPS = _R.counter(
    "repro_columnar_intern_lookups_total",
    "Interned-column id-table lookups, by column (table) and result.",
    labelnames=("table", "result"))
COLUMNAR_PAYLOAD_BYTES = _R.counter(
    "repro_columnar_payload_bytes_total",
    "Packed column-buffer payload bytes handed from columnar ingest "
    "workers to the driver (the zero-pickle shard hand-off).")

# -- parallel ingestion -------------------------------------------------------

PARALLEL_SHARDS = _R.counter(
    "repro_parallel_shards_total",
    "Shards processed by the parallel ingestion engine, by outcome.",
    labelnames=("outcome",))
PARALLEL_SHARD_ROWS = _R.counter(
    "repro_parallel_shard_rows_total",
    "Log rows ingested through the parallel engine, by log path label.",
    labelnames=("path",))
PARALLEL_WORKERS = _R.gauge(
    "repro_parallel_workers",
    "Worker processes used by the most recent parallel ingest.")
PARALLEL_SHARD_SECONDS = _R.histogram(
    "repro_parallel_shard_seconds",
    "Wall-clock seconds one worker spent ingesting one shard.")

# -- parallel analysis --------------------------------------------------------

ANALYSIS_PARTITIONS = _R.counter(
    "repro_analysis_partitions_total",
    "Chain partitions processed by the parallel analysis engine, "
    "by outcome.",
    labelnames=("outcome",))
ANALYSIS_CHAINS = _R.counter(
    "repro_analysis_chains_total",
    "Chains enriched through the parallel analysis engine, by stage.",
    labelnames=("stage",))
ANALYSIS_WORKERS = _R.gauge(
    "repro_analysis_workers",
    "Worker processes used by the most recent parallel analysis.")
ANALYSIS_PARTITION_SECONDS = _R.histogram(
    "repro_analysis_partition_seconds",
    "Wall-clock seconds one worker spent enriching one chain partition.")
ANALYSIS_STRUCTURES = _R.counter(
    "repro_analysis_structures_total",
    "ChainStructure objects computed eagerly by the analysis engine.")
ANALYSIS_ARTIFACTS = _R.counter(
    "repro_analysis_artifacts_total",
    "Content-addressed analysis artifact events (hit/miss/stale/corrupt/"
    "saved).",
    labelnames=("result",))

# -- parallel generation ------------------------------------------------------

GENERATE_SHARDS = _R.counter(
    "repro_generate_shards_total",
    "Dataset shards produced by the parallel generation engine, by outcome.",
    labelnames=("outcome",))
GENERATE_WORKERS = _R.gauge(
    "repro_generate_workers",
    "Worker processes used by the most recent parallel generation.")
GENERATE_SHARD_SECONDS = _R.histogram(
    "repro_generate_shard_seconds",
    "Wall-clock seconds one worker spent generating one dataset shard.")

# -- matching memos -----------------------------------------------------------

MATCH_MEMO = _R.counter(
    "repro_match_memo_lookups_total",
    "(child_fp, parent_fp) pair-match memo lookups, by result.",
    labelnames=("result",))
CT_VERDICT_MEMO = _R.counter(
    "repro_ct_verdict_memo_lookups_total",
    "Interception CT-verdict memo lookups (per leaf + domain set), "
    "by result.",
    labelnames=("result",))

# -- CT index -----------------------------------------------------------------

CT_LOOKUPS = _R.counter(
    "repro_ct_lookups_total",
    "crt.sh-style domain lookups, by whether CT had any record.",
    labelnames=("result",))
CT_INDEXED_RECORDS = _R.counter(
    "repro_ct_indexed_records_total",
    "Domain records ingested into the CT index.")

# -- interception detection ---------------------------------------------------

INTERCEPTION_CHAINS = _R.counter(
    "repro_interception_chains_total",
    "Chains examined by the interception detector, by verdict.",
    labelnames=("verdict",))

# -- active scanning ----------------------------------------------------------

SCAN_ATTEMPTS = _R.counter(
    "repro_scan_attempts_total",
    "Active scan attempts, by outcome.",
    labelnames=("outcome",))

# -- resilience ---------------------------------------------------------------

FAULTS_INJECTED = _R.counter(
    "repro_faults_injected_total",
    "Faults the injector imposed, by kind.",
    labelnames=("kind",))
RETRY_ATTEMPTS = _R.counter(
    "repro_retry_attempts_total",
    "Retried-call attempts, by operation and result.",
    labelnames=("operation", "result"))
BREAKER_TRANSITIONS = _R.counter(
    "repro_breaker_transitions_total",
    "Circuit-breaker state transitions, by breaker and new state.",
    labelnames=("breaker", "state"))
BREAKER_REJECTIONS = _R.counter(
    "repro_breaker_rejections_total",
    "Calls rejected while a breaker was open/half-open saturated.",
    labelnames=("breaker",))
QUARANTINE_RECORDS = _R.counter(
    "repro_quarantine_records_total",
    "Records quarantined instead of aborting the run, by source and reason.",
    labelnames=("source", "reason"))
CHECKPOINT_STAGES = _R.counter(
    "repro_checkpoint_stages_total",
    "Pipeline-stage checkpoint events (saved/loaded/stale/corrupt).",
    labelnames=("stage", "result"))

# -- supervised execution -----------------------------------------------------
#
# Operational families: they describe what the supervisor had to *do*
# (retries, rebuilds, journal replays), so — like the worker bookkeeping
# counters — they legitimately vary with ``--jobs`` and with where a run
# was killed.  The determinism guarantee covers the merged outputs, not
# these.

SUPERVISOR_TASKS = _R.counter(
    "repro_supervisor_tasks_total",
    "Tasks dispatched through the supervised executor, by engine kind "
    "and final outcome (completed/replayed/fallback/quarantined/dropped).",
    labelnames=("kind", "outcome"))
SUPERVISOR_INCIDENTS = _R.counter(
    "repro_supervisor_incidents_total",
    "Failures the supervisor absorbed, by engine kind and incident "
    "(worker_crash/worker_hang/serial_fallback).",
    labelnames=("kind", "incident"))
SUPERVISOR_POOL_REBUILDS = _R.counter(
    "repro_supervisor_pool_rebuilds_total",
    "Worker pools torn down and rebuilt after a crash or hang, by "
    "engine kind.",
    labelnames=("kind",))
SUPERVISOR_JOURNAL = _R.counter(
    "repro_supervisor_journal_total",
    "Run-journal events (appended/replayed/stale/torn).",
    labelnames=("result",))

# -- cross-process telemetry --------------------------------------------------

WORKER_TELEMETRY_RECORDS = _R.counter(
    "repro_worker_telemetry_records_total",
    "WorkerTelemetry captures attached to the driver sink, by engine kind.",
    labelnames=("kind",))
WORKER_SPANS = _R.counter(
    "repro_worker_spans_total",
    "Worker-side spans collected through the telemetry sink, by engine "
    "kind.",
    labelnames=("kind",))
TRACE_EXPORT_EVENTS = _R.gauge(
    "repro_trace_export_events",
    "Events written by the most recent Chrome-trace export.")
METRICS_SERVER_REQUESTS = _R.counter(
    "repro_metrics_server_requests_total",
    "HTTP requests served by the embedded metrics server, by endpoint.  "
    "Operational (scrape-driven), so exempt from run determinism.",
    labelnames=("endpoint",))

# -- experiments --------------------------------------------------------------

EXPERIMENT_RUNS = _R.counter(
    "repro_experiment_runs_total",
    "Experiment executions, by experiment id.",
    labelnames=("experiment",))

# Frequently-hit children, resolved once so hot loops skip the label lookup.
STRUCTURE_CACHE_HIT = STRUCTURE_CACHE_LOOKUPS.labels(result="hit")
STRUCTURE_CACHE_MISS = STRUCTURE_CACHE_LOOKUPS.labels(result="miss")
CT_LOOKUP_HIT = CT_LOOKUPS.labels(result="hit")
CT_LOOKUP_MISS = CT_LOOKUPS.labels(result="miss")
CHAIN_CONN_AGGREGATED = CHAIN_CONNECTIONS.labels(result="aggregated")
CHAIN_CONN_SKIPPED = CHAIN_CONNECTIONS.labels(result="skipped_empty")
DN_PARSE_CACHE_HIT = DN_PARSE_CACHE.labels(result="hit")
DN_PARSE_CACHE_MISS = DN_PARSE_CACHE.labels(result="miss")
CERT_CACHE_HIT = CERT_RECONSTRUCT_CACHE.labels(result="hit")
CERT_CACHE_MISS = CERT_RECONSTRUCT_CACHE.labels(result="miss")
DER_CACHE_HIT = DER_ENCODE_CACHE.labels(result="hit")
DER_CACHE_MISS = DER_ENCODE_CACHE.labels(result="miss")
DER_NAME_CACHE_HIT = DER_PART_CACHE.labels(part="name", result="hit")
DER_NAME_CACHE_MISS = DER_PART_CACHE.labels(part="name", result="miss")
DER_EXT_CACHE_HIT = DER_PART_CACHE.labels(part="extensions", result="hit")
DER_EXT_CACHE_MISS = DER_PART_CACHE.labels(part="extensions", result="miss")
COLUMNAR_ROWS_VECTORIZED = COLUMNAR_ROWS.labels(mode="vectorized")
COLUMNAR_ROWS_LINE = COLUMNAR_ROWS.labels(mode="line")
COLUMNAR_RUNS_VECTORIZED = COLUMNAR_RUNS.labels(outcome="vectorized")
COLUMNAR_RUNS_FALLBACK = COLUMNAR_RUNS.labels(outcome="fallback")
MATCH_MEMO_HIT = MATCH_MEMO.labels(result="hit")
MATCH_MEMO_MISS = MATCH_MEMO.labels(result="miss")
CT_VERDICT_MEMO_HIT = CT_VERDICT_MEMO.labels(result="hit")
CT_VERDICT_MEMO_MISS = CT_VERDICT_MEMO.labels(result="miss")

"""Bounded LRU cache with metric-instrumented lookups.

The hot ingest paths memoize pure, deterministic computations — RFC 4514
DN parsing, certificate reconstruction from log rows — whose inputs repeat
massively in real traffic (a handful of issuer names cover most of a
campus corpus).  An unbounded ``dict`` would grow with corpus cardinality;
this cache evicts least-recently-used entries at a fixed ``maxsize`` so a
year-scale ingest runs in constant memory, and reports hit/miss counts to
the metrics registry so operators can verify the cache is actually earning
its keep (see ``docs/PERFORMANCE.md`` on sizing).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

__all__ = ["BoundedLRU"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class BoundedLRU(Generic[K, V]):
    """A ``maxsize``-bounded mapping with least-recently-used eviction.

    ``hits``/``misses`` are optional metric children (anything with an
    ``inc()``) bumped on every :meth:`get`.  Not thread-safe by itself —
    callers in the parallel engine each run in their own process, and the
    single-process pipeline is single-threaded on these paths.
    """

    __slots__ = ("maxsize", "_data", "_hits", "_misses")

    def __init__(self, maxsize: int, *, hits=None, misses=None):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._hits = hits
        self._misses = misses

    def get(self, key: K) -> Optional[V]:
        """The cached value (refreshing its recency), or ``None`` on miss."""
        data = self._data
        try:
            value = data[key]
        except KeyError:
            if self._misses is not None:
                self._misses.inc()
            return None
        data.move_to_end(key)
        if self._hits is not None:
            self._hits.inc()
        return value

    def put(self, key: K, value: V) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
            data[key] = value
            return
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

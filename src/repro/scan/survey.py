"""Usage-weighted active survey — the paper's proposed future work (§6.3).

"Future studies may generalize … by performing active scanning of the
entire IP address space, combined with network traffic logs from operators
to obtain connection statistics to pinpoint the actual usage of the
chains."  This module implements exactly that combination over the
simulated fleet: scan *every* server (the IP-space sweep), analyze the
presented chains structurally, and weight each finding by the connection
volume the passive logs recorded for it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..campus.dataset import CampusDataset
from ..core.classification import CertificateClassifier, IssuerClass
from ..core.matching import analyze_structure
from ..tls.handshake import TLSServer
from .scanner import ActiveScanner

__all__ = ["SurveyFinding", "SurveyReport", "run_survey"]


@dataclass(frozen=True, slots=True)
class SurveyFinding:
    """One scanned endpoint with its structural verdict and usage weight."""

    server_id: str
    hostname: Optional[str]
    chain_length: int
    issuer_mix: str          # "public" / "non-public" / "hybrid"
    fully_matched: bool
    has_unnecessary: bool
    #: Connections the passive logs attribute to this endpoint's chain.
    observed_connections: int


@dataclass
class SurveyReport:
    findings: List[SurveyFinding] = field(default_factory=list)

    @property
    def endpoints(self) -> int:
        return len(self.findings)

    def share_by_mix(self, *, weighted: bool = False) -> Dict[str, float]:
        """Issuer-mix shares by endpoint count, or by observed connections
        — the two views whose divergence motivates the future work."""
        totals: Counter = Counter()
        for finding in self.findings:
            weight = finding.observed_connections if weighted else 1
            totals[finding.issuer_mix] += weight
        grand = sum(totals.values()) or 1
        return {mix: 100.0 * count / grand for mix, count in totals.items()}

    def broken_share(self, *, weighted: bool = False) -> float:
        total = broken = 0
        for finding in self.findings:
            weight = finding.observed_connections if weighted else 1
            total += weight
            if not finding.fully_matched:
                broken += weight
        return 100.0 * broken / total if total else 0.0

    def unnecessary_share(self, *, weighted: bool = False) -> float:
        total = with_junk = 0
        for finding in self.findings:
            weight = finding.observed_connections if weighted else 1
            total += weight
            if finding.has_unnecessary:
                with_junk += weight
        return 100.0 * with_junk / total if total else 0.0


def run_survey(dataset: CampusDataset, *, seed: int | str = 0) -> SurveyReport:
    """Scan every simulated endpoint and join with passive usage counts."""
    scanner = ActiveScanner(seed=seed)
    classifier = CertificateClassifier(dataset.registry)
    observed = dataset.analyze().chains
    report = SurveyReport()
    for spec in dataset.specs:
        server = TLSServer("203.0.113.250", 443, spec.chain,
                           hostnames=(spec.hostname,) if spec.hostname else ())
        scan = scanner.scan(server, server_id=spec.server_id or "?",
                            hostname=spec.hostname)
        if not scan.chain:
            continue
        classes = {classifier.classify(c) for c in scan.chain}
        if classes == {IssuerClass.PUBLIC_DB}:
            mix = "public"
        elif classes == {IssuerClass.NON_PUBLIC_DB}:
            mix = "non-public"
        else:
            mix = "hybrid"
        structure = analyze_structure(scan.chain, require_leaf=False,
                                      disclosures=dataset.disclosures)
        leafed = analyze_structure(scan.chain, require_leaf=True,
                                   disclosures=dataset.disclosures)
        usage = observed.get(spec.key)
        report.findings.append(SurveyFinding(
            server_id=spec.server_id or "?",
            hostname=spec.hostname,
            chain_length=len(scan.chain),
            issuer_mix=mix,
            fully_matched=structure.is_fully_matched,
            has_unnecessary=leafed.has_unnecessary,
            observed_connections=usage.usage.connections if usage else 0,
        ))
    return report

"""Fleet evolution 2021 → 2024 (§5's ground truth).

The revisit found that most hybrid-chain servers had migrated to public-DB
issuers — overwhelmingly Let's Encrypt — while non-public-only servers kept
non-public chains but adopted longer, hierarchical ones.  This module ages
the simulated 2021 fleet into its November-2024 state with exactly those
calibrated dispositions, keeping per-server ground truth so the revisit
analysis can be validated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence

from ..campus.dataset import CampusDataset
from ..campus.profiles import PAPER
from ..campus.spec import ChainSpec
from ..x509.certificate import Certificate
from ..x509.generation import CertificateFactory, name

__all__ = ["EvolvedServer", "EvolvedFleet", "evolve_fleet"]

#: Certificates minted for the 2024 state.
EVOLUTION_EPOCH = datetime(2024, 6, 1, tzinfo=timezone.utc)

#: Hybrid-server dispositions (§5).
DISPOSITION_UNREACHABLE = "unreachable"
DISPOSITION_TO_PUBLIC_LE = "to-public-lets-encrypt"
DISPOSITION_TO_PUBLIC_OTHER = "to-public-other"
DISPOSITION_TO_NONPUB = "to-non-public"
DISPOSITION_STILL_COMPLETE_CLEAN = "still-hybrid-complete-clean"
DISPOSITION_STILL_COMPLETE_UNNECESSARY = "still-hybrid-complete-unnecessary"
DISPOSITION_STILL_NO_PATH = "still-hybrid-no-path"

#: Non-public-server dispositions.
DISPOSITION_NOW_MULTI = "nonpub-now-multi"
DISPOSITION_NOW_MULTI_BROKEN = "nonpub-now-multi-broken"
DISPOSITION_STILL_SINGLE = "nonpub-still-single"


@dataclass
class EvolvedServer:
    """One server's 2024 state with its 2021 history."""

    server_id: str
    hostname: Optional[str]
    previous_specs: List[ChainSpec]
    disposition: str
    new_chain: tuple[Certificate, ...] = ()

    @property
    def reachable(self) -> bool:
        return self.disposition != DISPOSITION_UNREACHABLE

    @property
    def previous_primary(self) -> ChainSpec:
        return self.previous_specs[0]

    def was_single(self) -> bool:
        return len(self.previous_primary.chain) == 1

    def was_single_self_signed(self) -> bool:
        chain = self.previous_primary.chain
        return len(chain) == 1 and chain[0].is_self_signed


@dataclass
class EvolvedFleet:
    hybrid: List[EvolvedServer] = field(default_factory=list)
    nonpub: List[EvolvedServer] = field(default_factory=list)

    def hybrid_reachable(self) -> List[EvolvedServer]:
        return [s for s in self.hybrid if s.reachable]


def _group_by_server(specs: Sequence[ChainSpec]) -> Dict[str, List[ChainSpec]]:
    grouped: Dict[str, List[ChainSpec]] = {}
    for spec in specs:
        grouped.setdefault(spec.server_id or spec.hostname or "?", []).append(spec)
    return grouped


def evolve_fleet(dataset: CampusDataset, *, seed: int | str = 0) -> EvolvedFleet:
    rng = random.Random(f"evolution:{seed}")
    factory = CertificateFactory(seed=f"evolution:{seed}",
                                 epoch=EVOLUTION_EPOCH)
    fleet = EvolvedFleet()
    _evolve_hybrid(dataset, fleet, rng, factory)
    _evolve_nonpublic(dataset, fleet, rng, factory)
    return fleet


# -- hybrid servers -----------------------------------------------------------------


def _evolve_hybrid(dataset: CampusDataset, fleet: EvolvedFleet,
                   rng: random.Random, factory: CertificateFactory) -> None:
    pki = dataset.pki
    grouped = _group_by_server(dataset.specs_in_category("hybrid"))
    server_ids = sorted(grouped)
    rng.shuffle(server_ids)
    n = len(server_ids)
    n_reachable = round(n * PAPER.revisit_hybrid_reachable_pct / 100)

    # Paper proportions among the 270 reachable servers, with the tiny
    # still-hybrid cells kept at their exact counts.
    reachable_ids = server_ids[:n_reachable]
    still_clean = PAPER.revisit_still_hybrid_complete_clean
    still_unnecessary = PAPER.revisit_still_hybrid_complete_unnecessary
    still_no_path = (PAPER.revisit_hybrid_still_hybrid
                     - still_clean - still_unnecessary)
    still_no_path = max(1, round(still_no_path * n_reachable / 270))
    to_nonpub = PAPER.revisit_hybrid_to_nonpub
    dispositions: List[str] = (
        [DISPOSITION_STILL_COMPLETE_CLEAN] * still_clean
        + [DISPOSITION_STILL_COMPLETE_UNNECESSARY] * still_unnecessary
        + [DISPOSITION_STILL_NO_PATH] * still_no_path
        + [DISPOSITION_TO_NONPUB] * to_nonpub
    )
    remaining = n_reachable - len(dispositions)
    n_le = round(remaining * 0.9)
    dispositions += [DISPOSITION_TO_PUBLIC_LE] * n_le
    dispositions += [DISPOSITION_TO_PUBLIC_OTHER] * (remaining - n_le)
    rng.shuffle(dispositions)

    for server_id, disposition in zip(reachable_ids, dispositions):
        specs = grouped[server_id]
        host = specs[0].hostname or f"{server_id}.example"
        fleet.hybrid.append(EvolvedServer(
            server_id=server_id,
            hostname=host,
            previous_specs=specs,
            disposition=disposition,
            new_chain=_hybrid_chain_for(disposition, specs, host, pki,
                                        factory, rng),
        ))
    for server_id in server_ids[n_reachable:]:
        specs = grouped[server_id]
        fleet.hybrid.append(EvolvedServer(
            server_id=server_id,
            hostname=specs[0].hostname,
            previous_specs=specs,
            disposition=DISPOSITION_UNREACHABLE,
        ))


def _renewed_intermediate(factory: CertificateFactory, pki, ca_name: str,
                          label: str):
    """A 2024 re-issue of a public CA's intermediate: same subject DN,
    signed by the same (long-lived) root — how real CAs rotate issuing
    certificates without changing names."""
    ca = pki.ca(ca_name)
    original = ca.intermediates[label]
    return factory.intermediate(ca.root, original.certificate.subject,
                                not_before=EVOLUTION_EPOCH)


def _hybrid_chain_for(disposition: str, specs: Sequence[ChainSpec], host: str,
                      pki, factory: CertificateFactory,
                      rng: random.Random) -> tuple[Certificate, ...]:
    if disposition == DISPOSITION_TO_PUBLIC_LE:
        r3 = _renewed_intermediate(factory, pki, "lets_encrypt", "R3")
        leaf = factory.leaf(r3, name(host), dns_names=[host],
                            not_before=EVOLUTION_EPOCH)
        return (leaf, r3.certificate)
    if disposition == DISPOSITION_TO_PUBLIC_OTHER:
        inter = _renewed_intermediate(factory, pki, "digicert", "tls2020")
        leaf = factory.leaf(inter, name(host), dns_names=[host],
                            not_before=EVOLUTION_EPOCH)
        return (leaf, inter.certificate)
    if disposition == DISPOSITION_TO_NONPUB:
        return (factory.self_signed(name(host), lifetime_days=730,
                                    not_before=EVOLUTION_EPOCH),)
    if disposition == DISPOSITION_STILL_COMPLETE_CLEAN:
        # A renewed non-public leaf still anchored to a public root.
        parent = _renewed_intermediate(factory, pki, "federal_pki",
                                       "verizon_ssp")
        private = factory.intermediate(parent, name(f"{host} Agency CA",
                                                    o="U.S. Government"),
                                       not_before=EVOLUTION_EPOCH)
        leaf = factory.leaf(private, name(host), dns_names=[host],
                            not_before=EVOLUTION_EPOCH)
        return (leaf, private.certificate, parent.certificate)
    if disposition == DISPOSITION_STILL_COMPLETE_UNNECESSARY:
        inter = _renewed_intermediate(factory, pki, "usertrust", "sectigo_dv")
        leaf = factory.leaf(inter, name(host), dns_names=[host],
                            not_before=EVOLUTION_EPOCH)
        tester = factory.self_signed(name("tester", o="HP Inc"),
                                     not_before=EVOLUTION_EPOCH)
        return (leaf, inter.certificate,
                pki.ca("usertrust").root.certificate, tester)
    # Still hybrid, no matched path: a freshly broken deployment — the
    # renewed self-signed substitute followed by stale public material
    # (the same failure family as Table 7's dominant category).
    stale_inter = pki.ca("godaddy").intermediates["g2"].certificate
    ss_leaf = factory.self_signed(name(host), not_before=EVOLUTION_EPOCH)
    return (ss_leaf, stale_inter)


# -- non-public-only servers ----------------------------------------------------------


def _evolve_nonpublic(dataset: CampusDataset, fleet: EvolvedFleet,
                      rng: random.Random, factory: CertificateFactory) -> None:
    grouped = _group_by_server(dataset.specs_in_category("nonpub"))
    #: Only servers whose connections ever carried an SNI can be revisited
    #: (the paper could extract just 12,404 of them).
    now_multi_p = {
        "multi": 0.95,
        "single-ss": 0.75,
        "single-distinct": 0.70,
    }
    for server_id in sorted(grouped):
        specs = grouped[server_id]
        primary = specs[0]
        if not primary.hostname or primary.sni_rate <= 0.0:
            continue  # never observable via SNI; not scannable
        if primary.labels.get("outlier") or primary.labels.get("dga"):
            continue
        host = primary.hostname
        if len(primary.chain) > 1:
            prev = "multi"
        elif primary.chain[0].is_self_signed:
            prev = "single-ss"
        else:
            prev = "single-distinct"
        if rng.random() < now_multi_p[prev]:
            broken = rng.random() < (1 - PAPER.revisit_multi_complete_pct / 100)
            org = f"Org-{server_id}"
            root = factory.root(name(f"{org} Root", o=org),
                                not_before=EVOLUTION_EPOCH)
            leaf = factory.leaf(root, name(host), dns_names=[host],
                                omit_basic_constraints=rng.random() < 0.5)
            if broken:
                junk = factory.mismatched_pair_cert(
                    name(f"{org} stale issuer"), name(f"{org} stale subject"))
                chain = (leaf, junk)
                disposition = DISPOSITION_NOW_MULTI_BROKEN
            else:
                chain = (leaf, root.certificate)
                disposition = DISPOSITION_NOW_MULTI
        else:
            if prev == "single-distinct":
                chain = (factory.mismatched_pair_cert(
                    name(f"gw-{server_id}"), name(host)),)
            else:
                chain = (factory.self_signed(name(host),
                                             not_before=EVOLUTION_EPOCH),)
            disposition = DISPOSITION_STILL_SINGLE
        fleet.nonpub.append(EvolvedServer(
            server_id=server_id,
            hostname=host,
            previous_specs=specs,
            disposition=disposition,
            new_chain=chain,
        ))

"""Active scanning and the §5 November-2024 revisit."""

from .evolution import (
    DISPOSITION_NOW_MULTI,
    DISPOSITION_NOW_MULTI_BROKEN,
    DISPOSITION_STILL_COMPLETE_CLEAN,
    DISPOSITION_STILL_COMPLETE_UNNECESSARY,
    DISPOSITION_STILL_NO_PATH,
    DISPOSITION_STILL_SINGLE,
    DISPOSITION_TO_NONPUB,
    DISPOSITION_TO_PUBLIC_LE,
    DISPOSITION_TO_PUBLIC_OTHER,
    DISPOSITION_UNREACHABLE,
    EVOLUTION_EPOCH,
    EvolvedFleet,
    EvolvedServer,
    evolve_fleet,
)
from .revisit import RevisitReport, run_revisit
from .survey import SurveyFinding, SurveyReport, run_survey
from .scanner import (REVISIT_TIME, ActiveScanner, ScanResult, ScanTarget,
                      render_showcerts)

__all__ = [
    "ActiveScanner",
    "DISPOSITION_NOW_MULTI",
    "DISPOSITION_NOW_MULTI_BROKEN",
    "DISPOSITION_STILL_COMPLETE_CLEAN",
    "DISPOSITION_STILL_COMPLETE_UNNECESSARY",
    "DISPOSITION_STILL_NO_PATH",
    "DISPOSITION_STILL_SINGLE",
    "DISPOSITION_TO_NONPUB",
    "DISPOSITION_TO_PUBLIC_LE",
    "DISPOSITION_TO_PUBLIC_OTHER",
    "DISPOSITION_UNREACHABLE",
    "EVOLUTION_EPOCH",
    "EvolvedFleet",
    "EvolvedServer",
    "REVISIT_TIME",
    "RevisitReport",
    "SurveyFinding",
    "SurveyReport",
    "ScanResult",
    "ScanTarget",
    "evolve_fleet",
    "render_showcerts",
    "run_revisit",
    "run_survey",
]

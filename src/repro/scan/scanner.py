"""Active TLS scanner — the reproduction's ``openssl s_client -showcerts``.

The §5 revisit connects to previously observed servers and retrieves the
chains they deliver now.  Our scanner connects to the simulated fleet the
same way: it performs a handshake with a permissive client (a scanner never
rejects; it records) and returns the presented chain, optionally rendered
the way ``-showcerts`` prints it.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Iterable, List, Optional, Sequence

from ..obs import instruments
from ..tls.connection import ConnectionRecord
from ..tls.handshake import HandshakeSimulator, TLSClient, TLSServer
from ..tls.policy import PermissivePolicy
from ..x509.certificate import Certificate

__all__ = ["ScanResult", "ActiveScanner", "render_showcerts"]

#: The revisit experiment ran in November 2024.
REVISIT_TIME = datetime(2024, 11, 15, tzinfo=timezone.utc)


@dataclass(frozen=True, slots=True)
class ScanResult:
    """One scan attempt against one server."""

    server_id: str
    hostname: Optional[str]
    reachable: bool
    chain: tuple[Certificate, ...] = ()

    @property
    def chain_length(self) -> int:
        return len(self.chain)

    @property
    def is_single(self) -> bool:
        return len(self.chain) == 1

    @property
    def is_single_self_signed(self) -> bool:
        return self.is_single and self.chain[0].is_self_signed


class ActiveScanner:
    """Scans servers and records whatever they present, verbatim."""

    def __init__(self, *, scanner_ip: str = "198.18.0.99",
                 when: datetime = REVISIT_TIME, seed: int | str = 0):
        self._client = TLSClient(scanner_ip, policy=PermissivePolicy())
        self._sim = HandshakeSimulator(seed=f"scanner:{seed}")
        self.when = when

    def scan(self, server: TLSServer, *, server_id: str,
             hostname: Optional[str] = None) -> ScanResult:
        sni = hostname or (server.hostnames[0] if server.hostnames else None)
        outcome = self._sim.connect(self._client, server, sni=sni,
                                    when=self.when)
        instruments.SCAN_ATTEMPTS.inc(outcome="scanned")
        return ScanResult(
            server_id=server_id,
            hostname=sni,
            reachable=True,
            chain=outcome.record.chain,
        )

    def unreachable(self, server_id: str,
                    hostname: Optional[str] = None) -> ScanResult:
        """Record a server that no longer answers (gone, firewalled, moved)."""
        instruments.SCAN_ATTEMPTS.inc(outcome="unreachable")
        return ScanResult(server_id=server_id, hostname=hostname,
                          reachable=False)


def render_showcerts(chain: Sequence[Certificate], *, sni: str = "",
                     include_pem: bool = False) -> str:
    """Format a chain the way ``openssl s_client -showcerts`` narrates it.

    With ``include_pem`` the real PEM bodies are emitted too, rendered
    through the :mod:`repro.x509.der` encoder — the output feeds any
    external X.509 tooling.
    """
    lines = [f"CONNECTED(00000003) servername={sni}"]
    lines.append("---")
    lines.append("Certificate chain")
    for i, certificate in enumerate(chain):
        lines.append(f" {i} s:{certificate.subject.rfc4514()}")
        lines.append(f"   i:{certificate.issuer.rfc4514()}")
        if include_pem:
            from ..x509.der import certificate_to_pem
            lines.append(certificate_to_pem(certificate).rstrip())
    lines.append("---")
    return "\n".join(lines)

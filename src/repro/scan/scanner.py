"""Active TLS scanner — the reproduction's ``openssl s_client -showcerts``.

The §5 revisit connects to previously observed servers and retrieves the
chains they deliver now.  Our scanner connects to the simulated fleet the
same way: it performs a handshake with a permissive client (a scanner never
rejects; it records) and returns the presented chain, optionally rendered
the way ``-showcerts`` prints it.

Scanning a real internet is mostly error handling, so the scanner carries
its own resilience: each scan runs under a
:class:`~repro.resilience.retry.RetryPolicy` with exponential backoff, a
:class:`~repro.faults.injector.FaultInjector` (explicit, or the ambient
plan) can impose timeouts, resets, slow handshakes and truncated chains,
and the :class:`ScanResult` reports how many attempts were needed and why
the scan ultimately failed — §5's "unreachable" becomes an *emergent*
outcome of exhausted retries, not only a caller-supplied label.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Iterable, List, Optional, Sequence

from ..faults.injector import FaultInjector
from ..faults.plan import active_plan
from ..obs import instruments
from ..resilience.errors import ScanReset, ScanTimeout, TransientError
from ..resilience.retry import RetryPolicy
from ..tls.connection import ConnectionRecord
from ..tls.handshake import HandshakeSimulator, TLSClient, TLSServer
from ..tls.policy import PermissivePolicy
from ..x509.certificate import Certificate

__all__ = ["ScanResult", "ActiveScanner", "render_showcerts"]

#: The revisit experiment ran in November 2024.
REVISIT_TIME = datetime(2024, 11, 15, tzinfo=timezone.utc)

#: Failure reason recorded when a server was known-dead before scanning.
REASON_NO_ANSWER = "no_answer"


@dataclass(frozen=True, slots=True)
class ScanResult:
    """One scan outcome against one server (after any retries)."""

    server_id: str
    hostname: Optional[str]
    reachable: bool
    chain: tuple[Certificate, ...] = ()
    #: How many connection attempts this outcome took (0 = never attempted).
    attempts: int = 1
    #: Why the scan failed (``timeout``/``reset``/``no_answer``), or None.
    failure_reason: Optional[str] = None
    #: The SNI actually present in the ClientHello — taken from the wire
    #: record, so it reflects what was sent, not what the caller asked for.
    sni_sent: Optional[str] = None

    @property
    def chain_length(self) -> int:
        return len(self.chain)

    @property
    def is_single(self) -> bool:
        return len(self.chain) == 1

    @property
    def is_single_self_signed(self) -> bool:
        return self.is_single and self.chain[0].is_self_signed


class ActiveScanner:
    """Scans servers and records whatever they present, verbatim."""

    def __init__(self, *, scanner_ip: str = "198.18.0.99",
                 when: datetime = REVISIT_TIME, seed: int | str = 0,
                 faults: Optional[FaultInjector] = None,
                 retry: Optional[RetryPolicy] = None):
        self._client = TLSClient(scanner_ip, policy=PermissivePolicy())
        self._sim = HandshakeSimulator(seed=f"scanner:{seed}")
        self.when = when
        if faults is None:
            plan = active_plan()
            faults = FaultInjector(plan) if plan.any() else None
        self._faults = faults
        self.retry = retry or RetryPolicy(seed=f"scan:{seed}")

    def scan(self, server: TLSServer, *, server_id: str,
             hostname: Optional[str] = None) -> ScanResult:
        """Scan one server, retrying transient connection failures.

        Like ``openssl s_client``, the SNI sent is the hostname the caller
        targeted (falling back to the server's first known name, i.e. the
        name on the command line); the result's ``sni_sent`` records the
        value actually put on the wire by the client.
        """
        sni = hostname if hostname is not None else (
            server.hostnames[0] if server.hostnames else None)

        def attempt(number: int) -> ScanResult:
            fault = (self._faults.scan_fault(server_id, number)
                     if self._faults is not None else None)
            if fault == "timeout":
                instruments.SCAN_ATTEMPTS.inc(outcome="timeout")
                raise ScanTimeout(f"{server_id}: connection timed out")
            if fault == "reset":
                instruments.SCAN_ATTEMPTS.inc(outcome="reset")
                raise ScanReset(f"{server_id}: connection reset by peer")
            outcome = self._sim.connect(self._client, server, sni=sni,
                                        when=self.when)
            chain = outcome.record.chain
            if fault == "truncated_chain" and len(chain) > 1:
                chain = chain[:-1]
            if fault == "slow_handshake":
                instruments.SCAN_ATTEMPTS.inc(outcome="slow")
            else:
                instruments.SCAN_ATTEMPTS.inc(outcome="scanned")
            return ScanResult(
                server_id=server_id,
                hostname=sni,
                reachable=True,
                chain=chain,
                attempts=number,
                sni_sent=outcome.record.sni,
            )

        try:
            result = self.retry.call(attempt, key=server_id,
                                     operation="scan")
        except TransientError as exc:
            reason = "timeout" if isinstance(exc, ScanTimeout) else "reset"
            return ScanResult(server_id=server_id, hostname=sni,
                              reachable=False,
                              attempts=self.retry.max_attempts,
                              failure_reason=reason)
        return result.value  # type: ignore[return-value]

    def unreachable(self, server_id: str,
                    hostname: Optional[str] = None) -> ScanResult:
        """Record a server that no longer answers (gone, firewalled, moved)."""
        instruments.SCAN_ATTEMPTS.inc(outcome="unreachable")
        return ScanResult(server_id=server_id, hostname=hostname,
                          reachable=False, attempts=0,
                          failure_reason=REASON_NO_ANSWER)


def render_showcerts(chain: Sequence[Certificate], *, sni: str = "",
                     include_pem: bool = False) -> str:
    """Format a chain the way ``openssl s_client -showcerts`` narrates it.

    With ``include_pem`` the real PEM bodies are emitted too, rendered
    through the :mod:`repro.x509.der` encoder — the output feeds any
    external X.509 tooling.
    """
    lines = [f"CONNECTED(00000003) servername={sni}"]
    lines.append("---")
    lines.append("Certificate chain")
    for i, certificate in enumerate(chain):
        lines.append(f" {i} s:{certificate.subject.rfc4514()}")
        lines.append(f"   i:{certificate.issuer.rfc4514()}")
        if include_pem:
            from ..x509.der import certificate_to_pem
            lines.append(certificate_to_pem(certificate).rstrip())
    lines.append("---")
    return "\n".join(lines)

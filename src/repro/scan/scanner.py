"""Active TLS scanner — the reproduction's ``openssl s_client -showcerts``.

The §5 revisit connects to previously observed servers and retrieves the
chains they deliver now.  Our scanner connects to the simulated fleet the
same way: it performs a handshake with a permissive client (a scanner never
rejects; it records) and returns the presented chain, optionally rendered
the way ``-showcerts`` prints it.

Scanning a real internet is mostly error handling, so the scanner carries
its own resilience: each scan runs under a
:class:`~repro.resilience.retry.RetryPolicy` with exponential backoff, a
:class:`~repro.faults.injector.FaultInjector` (explicit, or the ambient
plan) can impose timeouts, resets, slow handshakes and truncated chains,
and the :class:`ScanResult` reports how many attempts were needed and why
the scan ultimately failed — §5's "unreachable" becomes an *emergent*
outcome of exhausted retries, not only a caller-supplied label.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Iterable, List, Optional, Sequence, Tuple

from ..faults.injector import FaultInjector
from ..faults.plan import active_plan
from ..obs import instruments
from ..obs.sink import WorkerTelemetry, capture_telemetry, get_sink
from ..obs.tracing import trace_span
from ..parallel.pool import clamp_jobs
from ..parallel.supervisor import (SupervisorConfig, resolve_config,
                                   run_supervised)
from ..resilience.errors import ScanReset, ScanTimeout, TransientError
from ..resilience.retry import RetryPolicy
from ..tls.connection import ConnectionRecord
from ..tls.handshake import HandshakeSimulator, TLSClient, TLSServer
from ..tls.policy import PermissivePolicy
from ..x509.certificate import Certificate

__all__ = ["ScanResult", "ScanTarget", "ActiveScanner", "render_showcerts"]

#: The revisit experiment ran in November 2024.
REVISIT_TIME = datetime(2024, 11, 15, tzinfo=timezone.utc)

#: Failure reason recorded when a server was known-dead before scanning.
REASON_NO_ANSWER = "no_answer"


@dataclass(frozen=True, slots=True)
class ScanResult:
    """One scan outcome against one server (after any retries)."""

    server_id: str
    hostname: Optional[str]
    reachable: bool
    chain: tuple[Certificate, ...] = ()
    #: How many connection attempts this outcome took (0 = never attempted).
    attempts: int = 1
    #: Why the scan failed (``timeout``/``reset``/``no_answer``), or None.
    failure_reason: Optional[str] = None
    #: The SNI actually present in the ClientHello — taken from the wire
    #: record, so it reflects what was sent, not what the caller asked for.
    sni_sent: Optional[str] = None

    @property
    def chain_length(self) -> int:
        return len(self.chain)

    @property
    def is_single(self) -> bool:
        return len(self.chain) == 1

    @property
    def is_single_self_signed(self) -> bool:
        return self.is_single and self.chain[0].is_self_signed


@dataclass(frozen=True, slots=True)
class ScanTarget:
    """One unit of :meth:`ActiveScanner.scan_many` work.

    ``server=None`` marks a server known-dead before scanning (gone,
    firewalled, moved) — it is recorded unreachable without an attempt,
    exactly like :meth:`ActiveScanner.unreachable`.
    """

    server_id: str
    server: Optional[TLSServer] = None
    hostname: Optional[str] = None


class ActiveScanner:
    """Scans servers and records whatever they present, verbatim."""

    def __init__(self, *, scanner_ip: str = "198.18.0.99",
                 when: datetime = REVISIT_TIME, seed: int | str = 0,
                 faults: Optional[FaultInjector] = None,
                 retry: Optional[RetryPolicy] = None):
        self._scanner_ip = scanner_ip
        self._seed = seed
        self._client = TLSClient(scanner_ip, policy=PermissivePolicy())
        self._sim = HandshakeSimulator(seed=f"scanner:{seed}")
        self.when = when
        if faults is None:
            plan = active_plan()
            faults = FaultInjector(plan) if plan.any() else None
        self._faults = faults
        self.retry = retry or RetryPolicy(seed=f"scan:{seed}")

    def scan(self, server: TLSServer, *, server_id: str,
             hostname: Optional[str] = None) -> ScanResult:
        """Scan one server, retrying transient connection failures.

        Like ``openssl s_client``, the SNI sent is the hostname the caller
        targeted (falling back to the server's first known name, i.e. the
        name on the command line); the result's ``sni_sent`` records the
        value actually put on the wire by the client.
        """
        sni = hostname if hostname is not None else (
            server.hostnames[0] if server.hostnames else None)

        def attempt(number: int) -> ScanResult:
            fault = (self._faults.scan_fault(server_id, number)
                     if self._faults is not None else None)
            if fault == "timeout":
                instruments.SCAN_ATTEMPTS.inc(outcome="timeout")
                raise ScanTimeout(f"{server_id}: connection timed out")
            if fault == "reset":
                instruments.SCAN_ATTEMPTS.inc(outcome="reset")
                raise ScanReset(f"{server_id}: connection reset by peer")
            outcome = self._sim.connect(self._client, server, sni=sni,
                                        when=self.when)
            chain = outcome.record.chain
            if fault == "truncated_chain" and len(chain) > 1:
                chain = chain[:-1]
            if fault == "slow_handshake":
                instruments.SCAN_ATTEMPTS.inc(outcome="slow")
            else:
                instruments.SCAN_ATTEMPTS.inc(outcome="scanned")
            return ScanResult(
                server_id=server_id,
                hostname=sni,
                reachable=True,
                chain=chain,
                attempts=number,
                sni_sent=outcome.record.sni,
            )

        try:
            result = self.retry.call(attempt, key=server_id,
                                     operation="scan")
        except TransientError as exc:
            reason = "timeout" if isinstance(exc, ScanTimeout) else "reset"
            return ScanResult(server_id=server_id, hostname=sni,
                              reachable=False,
                              attempts=self.retry.max_attempts,
                              failure_reason=reason)
        return result.value  # type: ignore[return-value]

    def unreachable(self, server_id: str,
                    hostname: Optional[str] = None) -> ScanResult:
        """Record a server that no longer answers (gone, firewalled, moved)."""
        instruments.SCAN_ATTEMPTS.inc(outcome="unreachable")
        return ScanResult(server_id=server_id, hostname=hostname,
                          reachable=False, attempts=0,
                          failure_reason=REASON_NO_ANSWER)

    def scan_target(self, target: ScanTarget) -> ScanResult:
        """Scan one :class:`ScanTarget` (or record it known-dead)."""
        if target.server is None:
            return self.unreachable(target.server_id, target.hostname)
        return self.scan(target.server, server_id=target.server_id,
                         hostname=target.hostname)

    def scan_many(self, targets: Sequence[ScanTarget], *, jobs: int = 1,
                  supervise: Optional[SupervisorConfig] = None
                  ) -> List[ScanResult]:
        """Scan a target list, optionally across a bounded worker pool.

        ``jobs`` bounds the pool (clamped to the CPU count and the target
        count; ``jobs=1`` scans inline — no pool, no pickling).  Targets
        are split into contiguous batches, one per worker slot, and the
        merged list is always in the input's target order.

        Every per-target decision — fault draws, retry schedules, the
        emergent unreachable outcomes — is a pure function of
        ``(seed, server_id, attempt)``, never of shared RNG state, so the
        results are identical at any ``jobs``.  Each batch worker runs
        under :func:`~repro.obs.sink.capture_telemetry` and ships its
        observations home; the driver attaches them in batch order,
        replaying the scan-path counter families
        (:data:`_SCAN_REPLAY_FAMILIES`) value-for-value — so counter
        exports match a serial scan exactly.  Batch count follows
        ``jobs``, so the attach skips the per-record ``repro_worker_*``
        bookkeeping counters (they would vary with ``--jobs``).

        Dispatch runs through the supervised executor (``supervise``
        tunes deadlines/retries) — a crashed or hung batch worker is
        retried on a rebuilt pool, and a poison batch is recovered
        in-driver; merged results stay in target order regardless.
        Batch boundaries follow ``jobs``, so scans are never journaled.
        """
        targets = list(targets)
        requested, jobs = clamp_jobs(max(1, jobs), len(targets))
        if jobs == 1:
            return [self.scan_target(target) for target in targets]
        base, extra = divmod(len(targets), jobs)
        tasks: List[_ScanBatchTask] = []
        start = 0
        for index in range(jobs):
            size = base + (1 if index < extra else 0)
            tasks.append(_ScanBatchTask(
                index=index, targets=tuple(targets[start:start + size]),
                scanner_ip=self._scanner_ip, when=self.when,
                seed=self._seed, faults=self._faults, retry=self.retry))
            start += size
        plan = self._faults.plan if self._faults is not None else None
        config = resolve_config(supervise, plan=plan)
        config.journal = None  # batch layout follows jobs; never resumable
        with trace_span("parallel_scan", targets=len(targets), jobs=jobs):
            outcome = run_supervised(
                "scan", tasks, _scan_batch, jobs=jobs, config=config,
                task_ids=lambda task, i: f"scan:{task.index:04d}")
        sink = get_sink()
        results: List[ScanResult] = []
        for partial in sorted((p for p in outcome.results if p is not None),
                              key=lambda p: p.index):
            sink.attach(partial.telemetry, replay=_SCAN_REPLAY_FAMILIES,
                        record_metrics=False)
            results.extend(partial.results)
        return results


#: Counter families whose canonical values accrue on the scan path
#: itself (attempt outcomes, retry schedules, fault kinds) — the driver
#: replays these from worker telemetry value-for-value.
_SCAN_REPLAY_FAMILIES = (
    instruments.SCAN_ATTEMPTS.name,
    instruments.RETRY_ATTEMPTS.name,
    instruments.FAULTS_INJECTED.name,
)


@dataclass(frozen=True, slots=True)
class _ScanBatchTask:
    """One contiguous slice of a ``scan_many`` call, picklable for the
    pool.  The injector and retry policy travel whole (both are frozen /
    stateless), so a custom ``faults=`` or ``retry=`` behaves identically
    under fan-out."""

    index: int
    targets: Tuple[ScanTarget, ...]
    scanner_ip: str
    when: datetime
    seed: int | str
    faults: Optional[FaultInjector]
    retry: RetryPolicy


@dataclass(slots=True)
class _ScanBatchResult:
    index: int
    results: List[ScanResult]
    telemetry: Optional[WorkerTelemetry] = None


def _scan_batch(task: _ScanBatchTask) -> _ScanBatchResult:
    """Scan one batch inside a worker process.

    The whole batch runs under
    :func:`~repro.obs.sink.capture_telemetry`: the per-attempt outcome
    labels (``scanned`` vs ``slow`` vs ``timeout``…) count into the
    process-local registry exactly as a serial scan's would, then
    travel home as deltas — no tally object threaded through the retry
    and fault layers, and a forked registry's inherited values cancel
    out in the diff.
    """
    with capture_telemetry("scan", task.index) as telemetry, \
            trace_span("scan_batch", batch=task.index,
                       targets=len(task.targets)):
        scanner = ActiveScanner(scanner_ip=task.scanner_ip, when=task.when,
                                seed=task.seed, faults=task.faults,
                                retry=task.retry)
        results = [scanner.scan_target(target) for target in task.targets]
    return _ScanBatchResult(index=task.index, results=results,
                            telemetry=telemetry)


def render_showcerts(chain: Sequence[Certificate], *, sni: str = "",
                     include_pem: bool = False) -> str:
    """Format a chain the way ``openssl s_client -showcerts`` narrates it.

    With ``include_pem`` the real PEM bodies are emitted too, rendered
    through the :mod:`repro.x509.der` encoder — the output feeds any
    external X.509 tooling.
    """
    lines = [f"CONNECTED(00000003) servername={sni}"]
    lines.append("---")
    lines.append("Certificate chain")
    for i, certificate in enumerate(chain):
        lines.append(f" {i} s:{certificate.subject.rfc4514()}")
        lines.append(f"   i:{certificate.issuer.rfc4514()}")
        if include_pem:
            from ..x509.der import certificate_to_pem
            lines.append(certificate_to_pem(certificate).rstrip())
    lines.append("---")
    return "\n".join(lines)

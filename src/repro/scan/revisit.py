"""The §5 revisit analysis: scan the evolved fleet, re-analyze the chains.

Reproduces every §5 statistic:

* hybrid servers — reachability, migration to public-DB issuers (and the
  Let's Encrypt share), migration to non-public-only chains, and the
  still-hybrid breakdown (complete/clean, complete-with-unnecessary,
  no matched path);
* non-public-only servers — all still non-public, the single→multi
  transition (with previous-state composition), and the complete-matched-
  path share of the new multi-certificate chains;
* the Chrome-vs-OpenSSL validation divergence on still-hybrid chains with
  unnecessary certificates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..campus.dataset import CampusDataset
from ..core.classification import CertificateClassifier, IssuerClass
from ..core.matching import analyze_structure
from ..tls.handshake import TLSServer
from ..tls.policy import BrowserPolicy, StrictPresentedChainPolicy
from .evolution import EvolvedFleet, EvolvedServer, evolve_fleet
from .scanner import ActiveScanner, REVISIT_TIME, ScanResult, ScanTarget

__all__ = ["RevisitReport", "run_revisit"]


@dataclass
class RevisitReport:
    # hybrid side ---------------------------------------------------------------
    hybrid_total: int = 0
    hybrid_reachable: int = 0
    hybrid_to_public: int = 0
    hybrid_to_public_lets_encrypt: int = 0
    hybrid_to_nonpub: int = 0
    hybrid_still_hybrid: int = 0
    still_complete_clean: int = 0
    still_complete_unnecessary: int = 0
    still_no_path: int = 0
    # validation divergence (§5's three chains) -------------------------------------
    divergent_browser_ok: int = 0
    divergent_strict_ok: int = 0
    divergent_chains: int = 0
    # non-public side ------------------------------------------------------------------
    nonpub_scanned: int = 0
    nonpub_still_nonpub: int = 0
    nonpub_now_multi: int = 0
    nonpub_prev_multi: int = 0
    nonpub_prev_single_self_signed: int = 0
    nonpub_prev_single_distinct: int = 0
    nonpub_multi_complete: int = 0

    @property
    def hybrid_reachable_pct(self) -> float:
        return 100.0 * self.hybrid_reachable / self.hybrid_total \
            if self.hybrid_total else 0.0

    @property
    def nonpub_now_multi_pct(self) -> float:
        return 100.0 * self.nonpub_now_multi / self.nonpub_scanned \
            if self.nonpub_scanned else 0.0

    @property
    def nonpub_multi_complete_pct(self) -> float:
        return 100.0 * self.nonpub_multi_complete / self.nonpub_now_multi \
            if self.nonpub_now_multi else 0.0

    def prev_state_shares(self) -> dict:
        """Previous-state composition of the now-multi servers (§5)."""
        total = self.nonpub_now_multi or 1
        return {
            "prev_multi_pct": 100.0 * self.nonpub_prev_multi / total,
            "prev_single_self_signed_pct":
                100.0 * self.nonpub_prev_single_self_signed / total,
            "prev_single_distinct_pct":
                100.0 * self.nonpub_prev_single_distinct / total,
        }


def _scan_fleet(fleet_servers: List[EvolvedServer],
                scanner: ActiveScanner, *,
                jobs: int = 1) -> Dict[str, ScanResult]:
    """Scan one fleet side via ``scan_many``; key results by server id.

    Results come back in target order, so the dict's insertion order —
    and every statistic folded from it — is identical at any ``jobs``.
    """
    targets = [
        ScanTarget(
            server_id=server.server_id,
            server=TLSServer("203.0.113.200", 443, server.new_chain,
                             hostnames=(server.hostname,)
                             if server.hostname else ())
            if server.reachable else None,
            hostname=server.hostname)
        for server in fleet_servers]
    results = scanner.scan_many(targets, jobs=jobs)
    return {result.server_id: result for result in results}


def run_revisit(dataset: CampusDataset, *, seed: int | str = 0,
                fleet: Optional[EvolvedFleet] = None,
                jobs: int = 1) -> RevisitReport:
    """Evolve (unless given), scan, and re-analyze — the full §5 pipeline.

    ``jobs`` fans the active scans out across worker processes (see
    :meth:`~repro.scan.scanner.ActiveScanner.scan_many`); the report is
    identical at any value.
    """
    if fleet is None:
        fleet = evolve_fleet(dataset, seed=seed)
    scanner = ActiveScanner(seed=seed)
    classifier = CertificateClassifier(dataset.registry)
    report = RevisitReport()

    # -- hybrid servers ---------------------------------------------------------
    hybrid_scans = _scan_fleet(fleet.hybrid, scanner, jobs=jobs)
    report.hybrid_total = len(fleet.hybrid)
    browser = BrowserPolicy(dataset.registry)
    strict = StrictPresentedChainPolicy(dataset.registry)
    for server in fleet.hybrid:
        scan = hybrid_scans[server.server_id]
        if not scan.reachable:
            continue
        report.hybrid_reachable += 1
        classes = {classifier.classify(c) for c in scan.chain}
        if classes == {IssuerClass.PUBLIC_DB}:
            report.hybrid_to_public += 1
            leaf_issuer_org = scan.chain[0].issuer.organization or ""
            if "let's encrypt" in leaf_issuer_org.lower():
                report.hybrid_to_public_lets_encrypt += 1
            continue
        if classes == {IssuerClass.NON_PUBLIC_DB}:
            report.hybrid_to_nonpub += 1
            continue
        report.hybrid_still_hybrid += 1
        structure = analyze_structure(scan.chain, require_leaf=True,
                                      disclosures=dataset.disclosures)
        if structure.is_complete_matched_path:
            report.still_complete_clean += 1
        elif structure.contains_complete_matched_path:
            report.still_complete_unnecessary += 1
            # §5's divergence experiment: validate with both tools.
            report.divergent_chains += 1
            if browser.validate(scan.chain, at=scanner.when).ok:
                report.divergent_browser_ok += 1
            if strict.validate(scan.chain, at=scanner.when).ok:
                report.divergent_strict_ok += 1
        else:
            report.still_no_path += 1

    # -- non-public-only servers ----------------------------------------------------
    nonpub_scans = _scan_fleet(fleet.nonpub, scanner, jobs=jobs)
    for server in fleet.nonpub:
        scan = nonpub_scans[server.server_id]
        if not scan.reachable:
            continue
        report.nonpub_scanned += 1
        classes = {classifier.classify(c) for c in scan.chain}
        if classes == {IssuerClass.NON_PUBLIC_DB}:
            report.nonpub_still_nonpub += 1
        if len(scan.chain) > 1:
            report.nonpub_now_multi += 1
            if server.was_single():
                if server.was_single_self_signed():
                    report.nonpub_prev_single_self_signed += 1
                else:
                    report.nonpub_prev_single_distinct += 1
            else:
                report.nonpub_prev_multi += 1
            structure = analyze_structure(scan.chain, require_leaf=False)
            if structure.is_fully_matched:
                report.nonpub_multi_complete += 1
    return report

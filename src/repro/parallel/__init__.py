"""Parallel sharded ingestion: map shards over worker processes, reduce
with ``ChainUsage.merge`` into the exact chain map a serial pass yields.

See ``docs/PERFORMANCE.md`` for the sharding model and the determinism
guarantees, and ``benchmarks/test_parallel_scaling.py`` for the tracked
speedup numbers.
"""

from .engine import IngestResult, ingest_logs, ingest_shards
from .shards import ShardSpec, discover_shards, split_zeek_log
from .worker import ShardAggregate, ShardTask, process_shard

__all__ = [
    "IngestResult",
    "ShardAggregate",
    "ShardSpec",
    "ShardTask",
    "discover_shards",
    "ingest_logs",
    "ingest_shards",
    "process_shard",
    "split_zeek_log",
]
